"""Benchmark the execution engine: scalar loop vs vectorised ensemble path.

Times ``ext_montecarlo`` and ``ext_yield`` at ``fidelity="paper"`` with
the reference per-trial loop (``method="loop"``) and with the vectorised
batch engine (the default), verifies the two agree, and writes
``benchmarks/BENCH_exec_engine.json``.

Both workloads are also registered with the :mod:`repro.perf` registry
(``script.exec.*``, report kind), so ``repro perf run --bench-dir
benchmarks`` tracks their speedup ratios in the perf history store.

Run with::

    PYTHONPATH=src python benchmarks/bench_exec_engine.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis import adder_monte_carlo, make_blobs, perceptron_yield
from repro.core.training import PerceptronTrainer
from repro.core.weighted_adder import AdderConfig, WeightedAdder
from repro.experiments.table2_adder import PAPER_ROWS
from repro.perf import benchmark, finish, host_fields, timed

OUT = Path(__file__).parent / "BENCH_exec_engine.json"


@benchmark("script.exec.montecarlo",
           title="ext_montecarlo scalar-vs-vectorised speedup",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, noise=0.6, tags=("script", "exec"))
def bench_montecarlo(n_trials: int = 200, quick: bool = False) -> dict:
    """The ext_montecarlo hot loop: every Table II row, paper trial count."""
    if quick:
        n_trials = 40
    adder = WeightedAdder(AdderConfig())

    def run(method: str):
        stats = []
        for i, row in enumerate(PAPER_ROWS):
            stats.append(adder_monte_carlo(
                adder, row.duties, row.weights, n_trials=n_trials,
                seed=3 + i, method=method))
        return stats

    t_loop, loop = timed(lambda: run("loop"))
    t_vec, vec = timed(lambda: run("vectorized"))
    agree = all(
        np.allclose(l.errors, v.errors, rtol=1e-9, atol=1e-15)
        for l, v in zip(loop, vec))
    return {"experiment": "ext_montecarlo", "fidelity": "paper",
            "n_trials": n_trials, "rows": len(PAPER_ROWS),
            "loop_seconds": round(t_loop, 4),
            "vectorized_seconds": round(t_vec, 4),
            "speedup": round(t_loop / t_vec, 2),
            "paths_agree_rtol_1e9": bool(agree)}


@benchmark("script.exec.yield",
           title="ext_yield scalar-vs-vectorised speedup",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, noise=0.6, tags=("script", "exec"))
def bench_yield(n_parts: int = 60, n_per_class: int = 30,
                quick: bool = False) -> dict:
    """The ext_yield hot loop: paper part/dataset sizes."""
    if quick:
        n_parts, n_per_class = 12, 12
    data = make_blobs(n_per_class=n_per_class, n_features=2,
                      separation=0.35, spread=0.09, seed=13)
    trained = PerceptronTrainer(2, seed=13).fit(data.X, data.y, epochs=60)
    pwm = trained.perceptron

    def sampler(seed=13):
        rng = np.random.default_rng(seed)
        return lambda: float(rng.uniform(1.2, 3.5))

    t_loop, loop = timed(lambda: perceptron_yield(
        pwm, data, n_parts=n_parts, vdd_sampler=sampler(), seed=13,
        method="loop"))
    t_vec, vec = timed(lambda: perceptron_yield(
        pwm, data, n_parts=n_parts, vdd_sampler=sampler(), seed=13,
        method="vectorized"))
    return {"experiment": "ext_yield", "fidelity": "paper",
            "n_parts": n_parts, "n_samples": 2 * n_per_class,
            "loop_seconds": round(t_loop, 4),
            "vectorized_seconds": round(t_vec, 4),
            "speedup": round(t_loop / t_vec, 2),
            "paths_agree_exactly": loop.accuracies == vec.accuracies}


def main() -> None:
    payload = {
        "description": "scalar per-trial loop vs vectorised batch engine "
                       "(repro.exec.batch) on the paper-fidelity "
                       "Monte-Carlo and yield campaigns",
        **host_fields(),
        "benchmarks": [bench_montecarlo(), bench_yield()],
    }
    finish(OUT, payload)


if __name__ == "__main__":
    main()
