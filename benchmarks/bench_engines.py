"""Benchmark the engine layer: batched MNA sweeps vs the per-point loop.

Times the transistor-level (``spice``) supply sweep of the Fig. 2 cell
at ``fidelity="paper"`` — the paper's 0.5–5 V grid, 150 steps/period —
through the historical per-point shooting loop and through the stacked
:class:`~repro.circuit.batch_transient.BatchTransientSolver` path,
verifies the two agree bit for bit, and records the other engines'
timings on the same workload for the fidelity/speed ladder.  Writes
``benchmarks/BENCH_engines.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_engines.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.cells import CellDesign
from repro.engines import CellStimulus, get_engine
from repro.experiments.fig6_fig7_supply import (
    DUTIES,
    FREQUENCY,
    PAPER_VDD,
    ROUT,
)

OUT = Path(__file__).parent / "BENCH_engines.json"

PAPER_STEPS = 150
#: Timing repetitions; the minimum is reported (standard for
#: wall-clock microbenchmarks — it is the least noisy estimator).
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS) -> "tuple[float, object]":
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_spice_sweep() -> dict:
    """Batched vs per-point MNA shooting on the paper supply grid."""
    spice = get_engine("spice")
    design = CellDesign()

    def sweep(batched: bool):
        return {duty: spice.sweep_supply(
            design,
            CellStimulus(duty=duty, frequency=FREQUENCY, rout=ROUT),
            PAPER_VDD, steps_per_period=PAPER_STEPS, batched=batched)
            for duty in DUTIES}

    # Warm both paths once (imports, caches) before timing.
    spice.sweep_supply(design, CellStimulus(duty=0.5, rout=ROUT),
                       PAPER_VDD[:2], steps_per_period=PAPER_STEPS)
    t_loop, loop = _best_of(lambda: sweep(batched=False))
    t_batch, batch = _best_of(lambda: sweep(batched=True))
    identical = all(np.array_equal(loop[d], batch[d]) for d in DUTIES)
    return {
        "workload": "fig6/fig7 spice supply sweep",
        "fidelity": "paper",
        "duties": list(DUTIES),
        "n_vdd_points": len(PAPER_VDD),
        "steps_per_period": PAPER_STEPS,
        "per_point_loop_seconds": round(t_loop, 4),
        "batched_mna_seconds": round(t_batch, 4),
        "speedup": round(t_loop / t_batch, 2),
        "results_bit_identical": bool(identical),
    }


def bench_engine_ladder() -> dict:
    """All three engines on one paper-grid duty (fidelity/speed ladder)."""
    design = CellDesign()
    stimulus = CellStimulus(duty=0.5, frequency=FREQUENCY, rout=ROUT)
    ladder = {}
    for eid in ("behavioral", "rc", "spice"):
        eng = get_engine(eid)
        options = {"steps_per_period": PAPER_STEPS} if eid == "spice" \
            else {}
        seconds, values = _best_of(
            lambda eng=eng, options=options: eng.sweep_supply(
                design, stimulus, PAPER_VDD, **options))
        ladder[eid] = {
            "seconds": round(seconds, 6),
            "output_at_2p5V": round(
                float(values[list(PAPER_VDD).index(2.5)]), 6),
        }
    return {
        "workload": "one-duty paper supply sweep per engine",
        "n_vdd_points": len(PAPER_VDD),
        "engines": ladder,
    }


def main() -> None:
    payload = {
        "description": "engine registry benchmarks: stacked "
                       "BatchTransientSolver MNA sweeps vs the "
                       "historical per-point shooting loop, plus the "
                       "behavioral/rc/spice fidelity ladder",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": [bench_spice_sweep(), bench_engine_ladder()],
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
