"""Benchmark the engine layer: batched MNA sweeps vs the per-point loop.

Times the transistor-level (``spice``) supply sweep of the Fig. 2 cell
at ``fidelity="paper"`` — the paper's 0.5–5 V grid, 150 steps/period —
through the historical per-point shooting loop and through the stacked
:class:`~repro.circuit.batch_transient.BatchTransientSolver` path,
verifies the two agree bit for bit, and records the other engines'
timings on the same workload for the fidelity/speed ladder.  Writes
``benchmarks/BENCH_engines.json``.

Both workloads are registered with :mod:`repro.perf`
(``script.engines.*``, report kind) for history tracking via
``repro perf run --bench-dir benchmarks``.

Run with::

    PYTHONPATH=src python benchmarks/bench_engines.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.cells import CellDesign
from repro.engines import CellStimulus, get_engine
from repro.experiments.fig6_fig7_supply import (
    DUTIES,
    FREQUENCY,
    PAPER_VDD,
    ROUT,
)
from repro.perf import benchmark, best_of_with_result, finish, host_fields

OUT = Path(__file__).parent / "BENCH_engines.json"

PAPER_STEPS = 150
#: Timing repetitions; the minimum is reported (standard for
#: wall-clock microbenchmarks — it is the least noisy estimator).
REPEATS = 3


@benchmark("script.engines.spice_sweep",
           title="spice supply sweep: batched MNA vs per-point loop",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, noise=0.6,
           tags=("script", "engines"))
def bench_spice_sweep(quick: bool = False) -> dict:
    """Batched vs per-point MNA shooting on the paper supply grid."""
    vdd_grid = PAPER_VDD[:5] if quick else PAPER_VDD
    steps = 30 if quick else PAPER_STEPS
    repeats = 1 if quick else REPEATS
    spice = get_engine("spice")
    design = CellDesign()

    def sweep(batched: bool):
        return {duty: spice.sweep_supply(
            design,
            CellStimulus(duty=duty, frequency=FREQUENCY, rout=ROUT),
            vdd_grid, steps_per_period=steps, batched=batched)
            for duty in DUTIES}

    # Warm both paths once (imports, caches) before timing.
    spice.sweep_supply(design, CellStimulus(duty=0.5, rout=ROUT),
                       vdd_grid[:2], steps_per_period=steps)
    t_loop, loop = best_of_with_result(lambda: sweep(batched=False),
                                       repeats)
    t_batch, batch = best_of_with_result(lambda: sweep(batched=True),
                                         repeats)
    identical = all(np.array_equal(loop[d], batch[d]) for d in DUTIES)
    return {
        "workload": "fig6/fig7 spice supply sweep",
        "fidelity": "paper",
        "duties": list(DUTIES),
        "n_vdd_points": len(vdd_grid),
        "steps_per_period": steps,
        "per_point_loop_seconds": round(t_loop, 4),
        "batched_mna_seconds": round(t_batch, 4),
        "speedup": round(t_loop / t_batch, 2),
        "results_bit_identical": bool(identical),
    }


@benchmark("script.engines.ladder",
           title="behavioral/rc/spice fidelity ladder sweep",
           kind="report", metric=None, noise=1.0,
           tags=("script", "engines"))
def bench_engine_ladder(quick: bool = False) -> dict:
    """All three engines on one paper-grid duty (fidelity/speed ladder)."""
    # Quick keeps 2.5 V in the grid (the ladder's probe point).
    vdd_grid = PAPER_VDD[:5] if quick else PAPER_VDD
    steps = 30 if quick else PAPER_STEPS
    repeats = 1 if quick else REPEATS
    design = CellDesign()
    stimulus = CellStimulus(duty=0.5, frequency=FREQUENCY, rout=ROUT)
    ladder = {}
    for eid in ("behavioral", "rc", "spice"):
        eng = get_engine(eid)
        options = {"steps_per_period": steps} if eid == "spice" \
            else {}
        seconds, values = best_of_with_result(
            lambda eng=eng, options=options: eng.sweep_supply(
                design, stimulus, vdd_grid, **options), repeats)
        ladder[eid] = {
            "seconds": round(seconds, 6),
            "output_at_2p5V": round(
                float(values[list(vdd_grid).index(2.5)]), 6),
        }
    return {
        "workload": "one-duty paper supply sweep per engine",
        "n_vdd_points": len(vdd_grid),
        "engines": ladder,
    }


def main() -> None:
    payload = {
        "description": "engine registry benchmarks: stacked "
                       "BatchTransientSolver MNA sweeps vs the "
                       "historical per-point shooting loop, plus the "
                       "behavioral/rc/spice fidelity ladder",
        **host_fields(),
        "benchmarks": [bench_spice_sweep(), bench_engine_ladder()],
    }
    finish(OUT, payload)


if __name__ == "__main__":
    main()
