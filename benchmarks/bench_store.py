"""Benchmark the SQLite result store against the flat-JSON cache.

Populates one Monte-Carlo campaign (a few hundred millisecond-scale
configs) into both backends, then measures the operations the store
exists for:

* **indexed axis query** — ``StoreQuery.where("seed", "<", k)`` (JSON1
  expression index) vs the flat cache's only option: open and parse
  every entry file and filter in Python;
* **bulk collection** — ``collect_results`` through the store's
  batched ``get_configs`` vs one flat-cache probe per config (the
  ``campaign report`` hot path);
* **concurrent writer throughput** — N processes hammering one store
  database (WAL mode) vs the same processes writing flat cache files.

Verifies the store-backed aggregate document is byte-identical to the
flat-cache one, and writes ``benchmarks/BENCH_store.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_store.py
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT = Path(__file__).parent / "BENCH_store.json"

N_CONFIGS = 200
QUERY_REPEATS = 20
N_WRITERS = 4
WRITES_PER_WRITER = 50

SPEC = {
    "name": "bench-store",
    "experiment": "ext_montecarlo",
    "fidelity": "fast",
    "axes": [{"param": "seed",
              "range": {"start": 0, "count": N_CONFIGS}}],
}

_WRITER = """
import sys, time
from repro.experiments import RunConfig, run_config
from repro.store import ResultStore
from repro.exec.cache import ResultCache

backend, root, worker, n = (sys.argv[1], sys.argv[2], int(sys.argv[3]),
                            int(sys.argv[4]))
sink = ResultStore(root) if backend == "store" else ResultCache(root)
seed0 = 10_000 + worker * n
result = run_config(RunConfig.build("ext_montecarlo", "fast",
                                    {"seed": seed0}))
t0 = time.perf_counter()
for k in range(n):
    config = RunConfig.build("ext_montecarlo", "fast",
                             {"seed": seed0 + k})
    sink.put_config(result, config)
print(time.perf_counter() - t0)
"""


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _flat_scan(cache, experiment: str, param: str, below) -> list:
    """What an axis filter costs without an index: parse every file."""
    rows = []
    for path in sorted(cache.root.glob(f"{experiment}/*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        params = payload.get("params", {})
        value = params.get(param)
        if isinstance(value, (int, float)) and value < below:
            rows.append((path.name, params,
                         payload["result"].get("metrics", {})))
    return rows


def _time(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _writer_throughput(backend: str, root: Path, env: dict) -> float:
    t0 = time.perf_counter()
    procs = [subprocess.Popen(
        [sys.executable, "-c", _WRITER, backend, str(root), str(i),
         str(WRITES_PER_WRITER)],
        cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE) for i in range(N_WRITERS)]
    for proc in procs:
        _out, err = proc.communicate(timeout=600)
        if proc.returncode != 0:
            raise SystemExit(f"writer failed: {err.decode()}")
    wall = time.perf_counter() - t0
    return N_WRITERS * WRITES_PER_WRITER / wall


def main() -> None:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.campaigns import (CampaignRunner, CampaignSpec,
                                 collect_results, results_document)
    from repro.exec.cache import ResultCache
    from repro.store import ResultStore, StoreQuery

    env = _cli_env()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        spec = CampaignSpec.from_dict(SPEC)
        flat = ResultCache(root / "flat")
        print(f"populating {N_CONFIGS} configs in the flat cache ...",
              file=sys.stderr)
        CampaignRunner(spec, flat).run()
        store = ResultStore(root / "flat",
                            db_path=root / "store.sqlite")
        t0 = time.perf_counter()
        migrated = store.migrate_from_cache(flat)
        migrate_seconds = time.perf_counter() - t0

        flat_doc = json.dumps(results_document(
            spec, collect_results(spec, flat)), sort_keys=True)
        store_doc = json.dumps(results_document(
            spec, collect_results(spec, store)), sort_keys=True)
        identical = flat_doc == store_doc

        below = N_CONFIGS // 10    # a selective filter (10% of rows)
        query = StoreQuery(store, "ext_montecarlo").where(
            "seed", "<", below)
        query.rows()               # warm: builds the expression index
        indexed = _time(lambda: query.rows(), QUERY_REPEATS)
        scanned = _time(
            lambda: _flat_scan(flat, "ext_montecarlo", "seed", below),
            QUERY_REPEATS)
        n_hits = len(query.rows())
        assert n_hits == len(_flat_scan(flat, "ext_montecarlo",
                                        "seed", below))

        bulk = _time(lambda: collect_results(spec, store), 5)
        per_file = _time(lambda: collect_results(spec, flat), 5)

        store_rate = _writer_throughput("store", root / "wstore", env)
        flat_rate = _writer_throughput("flat", root / "wflat", env)

    payload = {
        "benchmark": "SQLite result store vs flat-JSON cache",
        "n_configs": N_CONFIGS,
        "migrate": {"seconds": round(migrate_seconds, 4),
                    "summary": migrated},
        "aggregates_byte_identical": bool(identical),
        "axis_query": {
            "filter": f"seed < {below}",
            "matching_rows": n_hits,
            "store_indexed_seconds": round(indexed, 6),
            "flat_scan_seconds": round(scanned, 6),
            "speedup": round(scanned / indexed, 2),
        },
        "bulk_collect": {
            "store_batched_seconds": round(bulk, 6),
            "flat_per_file_seconds": round(per_file, 6),
            "speedup": round(per_file / bulk, 2),
        },
        "concurrent_writers": {
            "processes": N_WRITERS,
            "writes_per_process": WRITES_PER_WRITER,
            "store_rows_per_second": round(store_rate, 1),
            "flat_files_per_second": round(flat_rate, 1),
            "note": "includes interpreter start-up and one warm-up "
                    "experiment run per process; the store number is "
                    "WAL-serialised INSERT OR REPLACE, the flat number "
                    "is tmp-file + os.replace per entry",
        },
        "query_repeats_median": QUERY_REPEATS,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if not identical:
        raise SystemExit("store and flat aggregates differ")
    if indexed >= scanned:
        raise SystemExit("indexed query failed to beat the flat scan")


if __name__ == "__main__":
    main()
