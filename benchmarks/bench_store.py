"""Benchmark the SQLite result store against the flat-JSON cache.

Populates one Monte-Carlo campaign (a few hundred millisecond-scale
configs) into both backends, then measures the operations the store
exists for:

* **indexed axis query** — ``StoreQuery.where("seed", "<", k)`` (JSON1
  expression index) vs the flat cache's only option: open and parse
  every entry file and filter in Python;
* **bulk collection** — ``collect_results`` through the store's
  batched ``get_configs`` vs one flat-cache probe per config (the
  ``campaign report`` hot path);
* **concurrent writer throughput** — N processes hammering one store
  database (WAL mode) vs the same processes writing flat cache files.

Verifies the store-backed aggregate document is byte-identical to the
flat-cache one, and writes ``benchmarks/BENCH_store.json``.

Registered with :mod:`repro.perf` as ``script.store.compare`` (report
kind, wall-seconds metric: the payload's interesting numbers are
nested ratios, so history tracks the whole comparison's cost).

Run with::

    PYTHONPATH=src python benchmarks/bench_store.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import (  # noqa: E402
    benchmark,
    cli_env,
    finish,
    host_fields,
    median_of,
)

OUT = Path(__file__).parent / "BENCH_store.json"

N_CONFIGS = 200
QUERY_REPEATS = 20
N_WRITERS = 4
WRITES_PER_WRITER = 50

SPEC = {
    "name": "bench-store",
    "experiment": "ext_montecarlo",
    "fidelity": "fast",
    "axes": [{"param": "seed",
              "range": {"start": 0, "count": N_CONFIGS}}],
}

_WRITER = """
import sys, time
from repro.experiments import RunConfig, run_config
from repro.store import ResultStore
from repro.exec.cache import ResultCache

backend, root, worker, n = (sys.argv[1], sys.argv[2], int(sys.argv[3]),
                            int(sys.argv[4]))
sink = ResultStore(root) if backend == "store" else ResultCache(root)
seed0 = 10_000 + worker * n
result = run_config(RunConfig.build("ext_montecarlo", "fast",
                                    {"seed": seed0}))
t0 = time.perf_counter()
for k in range(n):
    config = RunConfig.build("ext_montecarlo", "fast",
                             {"seed": seed0 + k})
    sink.put_config(result, config)
print(time.perf_counter() - t0)
"""


def _flat_scan(cache, experiment: str, param: str, below) -> list:
    """What an axis filter costs without an index: parse every file."""
    rows = []
    for path in sorted(cache.root.glob(f"{experiment}/*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        params = payload.get("params", {})
        value = params.get(param)
        if isinstance(value, (int, float)) and value < below:
            rows.append((path.name, params,
                         payload["result"].get("metrics", {})))
    return rows


def _writer_throughput(backend: str, root: Path, env: dict,
                       n_writers: int, writes_per_writer: int) -> float:
    t0 = time.perf_counter()
    procs = [subprocess.Popen(
        [sys.executable, "-c", _WRITER, backend, str(root), str(i),
         str(writes_per_writer)],
        cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE) for i in range(n_writers)]
    for proc in procs:
        _out, err = proc.communicate(timeout=600)
        if proc.returncode != 0:
            raise SystemExit(f"writer failed: {err.decode()}")
    wall = time.perf_counter() - t0
    return n_writers * writes_per_writer / wall


@benchmark("script.store.compare",
           title="SQLite result store vs flat-JSON cache",
           kind="report", metric=None, noise=1.0,
           tags=("script", "store"))
def bench_store_compare(quick: bool = False) -> dict:
    from repro.campaigns import (CampaignRunner, CampaignSpec,
                                 collect_results, results_document)
    from repro.exec.cache import ResultCache
    from repro.store import ResultStore, StoreQuery

    n_configs = 40 if quick else N_CONFIGS
    query_repeats = 5 if quick else QUERY_REPEATS
    n_writers = 2 if quick else N_WRITERS
    writes_per_writer = 10 if quick else WRITES_PER_WRITER
    spec_dict = {**SPEC, "axes": [{"param": "seed", "range": {
        "start": 0, "count": n_configs}}]}

    env = cli_env(REPO_ROOT)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        spec = CampaignSpec.from_dict(spec_dict)
        flat = ResultCache(root / "flat")
        print(f"populating {n_configs} configs in the flat cache ...",
              file=sys.stderr)
        CampaignRunner(spec, flat).run()
        store = ResultStore(root / "flat",
                            db_path=root / "store.sqlite")
        t0 = time.perf_counter()
        migrated = store.migrate_from_cache(flat)
        migrate_seconds = time.perf_counter() - t0

        flat_doc = json.dumps(results_document(
            spec, collect_results(spec, flat)), sort_keys=True)
        store_doc = json.dumps(results_document(
            spec, collect_results(spec, store)), sort_keys=True)
        identical = flat_doc == store_doc

        below = n_configs // 10    # a selective filter (10% of rows)
        query = StoreQuery(store, "ext_montecarlo").where(
            "seed", "<", below)
        query.rows()               # warm: builds the expression index
        indexed = median_of(lambda: query.rows(), query_repeats)
        scanned = median_of(
            lambda: _flat_scan(flat, "ext_montecarlo", "seed", below),
            query_repeats)
        n_hits = len(query.rows())
        assert n_hits == len(_flat_scan(flat, "ext_montecarlo",
                                        "seed", below))

        bulk = median_of(lambda: collect_results(spec, store), 5)
        per_file = median_of(lambda: collect_results(spec, flat), 5)

        store_rate = _writer_throughput("store", root / "wstore", env,
                                        n_writers, writes_per_writer)
        flat_rate = _writer_throughput("flat", root / "wflat", env,
                                       n_writers, writes_per_writer)

    return {
        "benchmark": "SQLite result store vs flat-JSON cache",
        "n_configs": n_configs,
        "migrate": {"seconds": round(migrate_seconds, 4),
                    "summary": migrated},
        "aggregates_byte_identical": bool(identical),
        "axis_query": {
            "filter": f"seed < {below}",
            "matching_rows": n_hits,
            "store_indexed_seconds": round(indexed, 6),
            "flat_scan_seconds": round(scanned, 6),
            "speedup": round(scanned / indexed, 2),
        },
        "bulk_collect": {
            "store_batched_seconds": round(bulk, 6),
            "flat_per_file_seconds": round(per_file, 6),
            "speedup": round(per_file / bulk, 2),
        },
        "concurrent_writers": {
            "processes": n_writers,
            "writes_per_process": writes_per_writer,
            "store_rows_per_second": round(store_rate, 1),
            "flat_files_per_second": round(flat_rate, 1),
            "note": "includes interpreter start-up and one warm-up "
                    "experiment run per process; the store number is "
                    "WAL-serialised INSERT OR REPLACE, the flat number "
                    "is tmp-file + os.replace per entry",
        },
        "query_repeats_median": query_repeats,
        "cpu_count": os.cpu_count(),
    }


def main() -> None:
    result = bench_store_compare()
    payload = {**result, **host_fields()}
    finish(OUT, payload)
    if not payload["aggregates_byte_identical"]:
        raise SystemExit("store and flat aggregates differ")
    if payload["axis_query"]["store_indexed_seconds"] >= \
            payload["axis_query"]["flat_scan_seconds"]:
        raise SystemExit("indexed query failed to beat the flat scan")


if __name__ == "__main__":
    main()
