"""Bench: extension — behavioural / RC / transistor engine agreement."""


def test_ext_engine_fidelity(record):
    result = record("ext_engine_fidelity")
    assert result.metrics["worst_rc_vs_behavioral_V"] < 0.05
    assert result.metrics["worst_spice_vs_behavioral_V"] < 0.20
    assert result.metrics["calibrated_rms_residual_V"] < 0.05
