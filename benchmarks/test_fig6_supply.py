"""Bench: Fig. 6 — absolute Vout vs supply voltage 0.5–5 V.

Reproduction target: Vout grows almost linearly with Vdd; higher duty
cycle sits lower.  (The absolute value is therefore not a usable readout
under supply variation — Fig. 7 provides the fix.)
"""


def test_fig6_supply_absolute(record):
    result = record("fig6")
    for duty in (25, 50, 75):
        assert result.metrics[f"slope[DC={duty}%]"] > 0.1
    fig = result.figure("fig6")
    # Ordering at the nominal 2.5 V point: DC=25% above DC=75%.
    s25, s75 = fig.get("DC=25%"), fig.get("DC=75%")
    idx = s25.x.index(2.5)
    assert s25.y[idx] > s75.y[idx]
