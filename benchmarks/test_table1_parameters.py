"""Bench: Table I — parameter echo and derived device quantities."""


def test_table1_parameters(record):
    result = record("table1")
    assert result.metrics["rout_ron_ratio"] > 5.0
