"""Bench: extension — transistor count, PWM adder vs digital MAC."""


def test_ext_transistor_count(record):
    result = record("ext_transistor_count")
    assert result.metrics["pwm_transistors"] == 54
