"""Bench: extension — AC characterisation of the averaging node."""

import pytest


def test_ext_ac(record):
    result = record("ext_ac")
    # Table I cell: pole within 15% of 1/(2*pi*R*C).
    assert result.metrics["pole_ratio[100k/1.0p]"] == pytest.approx(
        1.0, abs=0.15)
    # Pole scales inversely with Cout (decade apart for 1p vs 10p).
    ratio = result.metrics["pole_MHz[100k/1.0p]"] / \
        result.metrics["pole_MHz[100k/10.0p]"]
    assert ratio == pytest.approx(10.0, rel=0.1)
