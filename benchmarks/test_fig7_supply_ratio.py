"""Bench: Fig. 7 — ratiometric Vout/Vdd vs supply voltage.

Reproduction target (the paper's headline): from roughly 1–1.5 V the
Vout/Vdd relationship stays put for every duty cycle — power elasticity.
"""


def test_fig7_supply_ratiometric(record):
    result = record("fig7")
    for duty in (25, 50, 75):
        assert result.metrics[f"usable_from[DC={duty}%]"] <= 1.5
        assert result.metrics[f"spread[DC={duty}%]"] < 0.08
