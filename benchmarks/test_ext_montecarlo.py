"""Bench: extension — Monte-Carlo mismatch and corner analysis."""


def test_ext_montecarlo(record):
    result = record("ext_montecarlo")
    # Mismatch-induced sigma stays in the few-mV range on every row.
    sigmas = [v for k, v in result.metrics.items()
              if k.startswith("sigma_mV")]
    assert sigmas and all(s < 30.0 for s in sigmas)
