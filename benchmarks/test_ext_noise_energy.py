"""Bench: extensions — impairment study and energy-per-op comparison."""


def test_ext_noise(record):
    result = record("ext_noise")
    # The paper's claim: amplitude/frequency immune.
    assert result.metrics["worst_mV[amplitude sigma 3%]"] == 0.0
    assert result.metrics["worst_mV[frequency sigma 3%]"] == 0.0
    # The dual: jitter hits the output directly.
    assert result.metrics["mean_mV[edge jitter 3% of period]"] > 10.0


def test_ext_energy(record):
    result = record("ext_energy")
    assert 0.9 < result.metrics["digital_min_reliable_vdd"] < 1.6
    # The honest finding: PWM costs more energy per op at these
    # parameters; its advantages are area and elasticity.
    assert result.metrics["pwm_pJ[2.5V]"] > result.metrics["digital_pJ[2.5V]"]


def test_ext_sensitivity(record):
    result = record("ext_sensitivity")
    for key, value in result.metrics.items():
        assert abs(value) < 0.1, key   # ratiometric: far below 1 %/%
