"""Bench: extensions — architecture scaling and parametric yield."""


def test_ext_scaling(record):
    result = record("ext_scaling")
    # Error bounded across the sweep; area exactly 6*k*n.
    worst = [v for k, v in result.metrics.items() if k.startswith("worst")]
    assert worst and all(v < 50.0 for v in worst)
    assert result.metrics["transistors[3x3]"] == 54


def test_ext_yield(record):
    result = record("ext_yield")
    assert result.metrics["pwm_yield"] >= 0.9
    assert result.metrics["analog_yield"] <= 0.2
