"""Benchmark campaign orchestration: sharded vs serial wall-clock.

Expands a Monte-Carlo yield campaign (the committed example axis,
scaled up), runs it once serially and once as 2 concurrent shard
processes (the real ``python -m repro campaign run --shard i/2``
surface, separate caches), verifies the two aggregate documents are
byte-identical, and times a full-cache resume (the no-op re-run every
interrupted campaign relies on).  Writes
``benchmarks/BENCH_campaigns.json``.

Registered with :mod:`repro.perf` as ``script.campaigns.sharded``
(report kind; the tracked metric is the full-cache resume time — on a
one-core CI box the 2-process speedup hovers around 1.0 and says
nothing, while resume latency is the cost every interrupted campaign
pays).

Run with::

    PYTHONPATH=src python benchmarks/bench_campaigns.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.perf import benchmark, cli_env, finish, host_fields

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT = Path(__file__).parent / "BENCH_campaigns.json"

#: Eight DC-transfer configs at ~1 s each: per-config work that dwarfs
#: interpreter start-up, the regime sharding is for (the example yield
#: campaign's millisecond configs would only benchmark process spawn).
DUTY_GRID = [
    [0.1, 0.5, 0.9], [0.2, 0.5, 0.8], [0.15, 0.45, 0.85],
    [0.25, 0.55, 0.95], [0.1, 0.4, 0.7], [0.3, 0.6, 0.9],
    [0.2, 0.6, 1.0], [0.05, 0.5, 0.95],
]

SPEC = {
    "name": "bench-dc-transfer",
    "title": "DC-transfer duty-grid benchmark campaign",
    "experiment": "fig4",
    "fidelity": "fast",
    "axes": [{"param": "duties", "values": DUTY_GRID}],
}


def _run_shards(spec_path: Path, cache_dir: Path, n_shards: int,
                env: dict) -> float:
    """Wall-clock for n_shards concurrent ``campaign run`` processes."""
    t0 = time.perf_counter()
    procs = [subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         str(spec_path), "--shard", f"{i}/{n_shards}",
         "--cache-dir", str(cache_dir)],
        cwd=REPO_ROOT, env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL) for i in range(1, n_shards + 1)]
    for proc in procs:
        proc.wait()
        if proc.returncode != 0:
            raise SystemExit(f"shard process failed: {proc.args}")
    return time.perf_counter() - t0


def _report(spec_path: Path, cache_dir: Path, json_path: Path,
            env: dict) -> bytes:
    subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "report",
         str(spec_path), "--cache-dir", str(cache_dir),
         "--json", str(json_path), "--require-complete"],
        cwd=REPO_ROOT, env=env, check=True, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    return json_path.read_bytes()


@benchmark("script.campaigns.sharded",
           title="sharded vs serial campaign run + full-cache resume",
           kind="report", metric="resume_full_cache_seconds", unit="s",
           lower_is_better=True, noise=1.0,
           tags=("script", "campaigns"))
def bench_sharded(quick: bool = False) -> dict:
    spec = SPEC if not quick else {
        **SPEC, "axes": [{"param": "duties", "values": DUTY_GRID[:2]}]}
    env = cli_env(REPO_ROOT)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        spec_path = root / "bench_campaign.json"
        spec_path.write_text(json.dumps(spec))

        serial_cache, sharded_cache = root / "serial", root / "sharded"
        serial_seconds = _run_shards(spec_path, serial_cache, 1, env)
        sharded_seconds = _run_shards(spec_path, sharded_cache, 2, env)
        resume_seconds = _run_shards(spec_path, sharded_cache, 2, env)

        serial_doc = _report(spec_path, serial_cache,
                             root / "serial.json", env)
        sharded_doc = _report(spec_path, sharded_cache,
                              root / "sharded.json", env)
        identical = serial_doc == sharded_doc
        n_configs = json.loads(serial_doc)["total"]

    return {
        "benchmark": "campaign orchestration: 2 shard processes vs serial",
        "campaign": {"experiment": spec["experiment"],
                     "fidelity": spec["fidelity"],
                     "n_configs": n_configs},
        "serial_seconds": round(serial_seconds, 4),
        "sharded_2proc_seconds": round(sharded_seconds, 4),
        "speedup": round(serial_seconds / sharded_seconds, 2),
        "resume_full_cache_seconds": round(resume_seconds, 4),
        "aggregates_byte_identical": bool(identical),
        "cpu_count": os.cpu_count(),
        "note": "wall-clock includes interpreter start-up per shard "
                "process, and the speedup is bounded by cpu_count "
                "(two CPU-bound shards cannot beat serial on one "
                "core — sharding buys throughput across cores/"
                "machines); the resume row is the no-op re-run of an "
                "already-complete campaign (cache hits only)",
    }


def main() -> None:
    payload = {**bench_sharded(), **host_fields()}
    finish(OUT, payload)
    if not payload["aggregates_byte_identical"]:
        raise SystemExit("sharded and serial aggregates differ")


if __name__ == "__main__":
    main()
