"""Benchmark the serving transports under concurrent HTTP load.

Drives both serving transports with :mod:`repro.serve.loadgen` and
writes ``benchmarks/BENCH_loadgen.json`` with three measurements:

* ``saturation`` — closed-loop rows/s at 64 concurrent keep-alive
  connections (4-row ``/predict`` requests), asyncio vs threaded.
  The acceptance target for the asyncio transport is >= 5x the
  threaded server's saturation rows/s;
* ``open_loop``  — latency percentiles at a fixed offered rate on the
  asyncio transport, measured from each request's *scheduled* time
  (no coordinated omission);
* ``batch_sweep`` — the latency-vs-batch-size table: closed-loop runs
  at increasing rows-per-request, showing where per-request HTTP
  overhead stops dominating and the vectorised engine takes over.

All three are registered with :mod:`repro.perf` (``script.loadgen.*``,
report kind) for history tracking via ``repro perf run --bench-dir
benchmarks``; the quick-capable gate twins live in
:mod:`repro.perf.suite` (``serve.loadgen.*``).

Run with::

    PYTHONPATH=src python benchmarks/bench_loadgen.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Optional

from repro.analysis import make_blobs
from repro.core.training import PerceptronTrainer
from repro.perf import benchmark, finish, host_fields
from repro.serve import AsyncPerceptronServer, ModelStore, PerceptronServer
from repro.serve.loadgen import run_closed_loop, run_open_loop

OUT = Path(__file__).parent / "BENCH_loadgen.json"

CONNECTIONS = 64
QUICK_CONNECTIONS = 16
DURATION = 2.0
QUICK_DURATION = 0.5
ROWS_PER_REQUEST = 4


def _export_model(tmp_root: Path):
    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=60).perceptron
    store = ModelStore(tmp_root)
    store.save("loadgen", model)
    return store, data.X


@benchmark("script.loadgen.saturation",
           title="closed-loop /predict saturation: asyncio vs threaded",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, noise=0.8, tags=("script", "loadgen"))
def bench_saturation(tmp_root: Optional[Path] = None,
                     quick: bool = False) -> dict:
    if tmp_root is None:
        with tempfile.TemporaryDirectory() as tmp:
            return bench_saturation(Path(tmp), quick=quick)
    connections = QUICK_CONNECTIONS if quick else CONNECTIONS
    duration = QUICK_DURATION if quick else DURATION
    store, X = _export_model(tmp_root)
    inputs = X[:ROWS_PER_REQUEST].tolist()
    with AsyncPerceptronServer(store, workers=0) as aio:
        r_aio = run_closed_loop(aio.url, "loadgen", inputs,
                                connections=connections,
                                duration=duration)
    with PerceptronServer(store) as threaded:
        r_thr = run_closed_loop(threaded.url, "loadgen", inputs,
                                connections=connections,
                                duration=duration)
    return {
        "connections": connections,
        "rows_per_request": ROWS_PER_REQUEST,
        "aio": r_aio,
        "threaded": r_thr,
        "aio_rows_per_s": r_aio["rows_per_s"],
        "threaded_rows_per_s": r_thr["rows_per_s"],
        "speedup": round(r_aio["rows_per_s"]
                         / max(r_thr["rows_per_s"], 1e-9), 2),
    }


@benchmark("script.loadgen.open",
           title="open-loop latency at a fixed offered rate (asyncio)",
           kind="report", metric="p99_ms", unit="ms",
           lower_is_better=True, noise=1.0, tags=("script", "loadgen"))
def bench_open_loop(tmp_root: Optional[Path] = None,
                    quick: bool = False) -> dict:
    if tmp_root is None:
        with tempfile.TemporaryDirectory() as tmp:
            return bench_open_loop(Path(tmp), quick=quick)
    duration = QUICK_DURATION if quick else DURATION
    rate = 200.0 if quick else 1000.0
    store, X = _export_model(tmp_root)
    inputs = X[:ROWS_PER_REQUEST].tolist()
    with AsyncPerceptronServer(store, workers=0) as aio:
        report = run_open_loop(aio.url, "loadgen", inputs, rate=rate,
                               connections=QUICK_CONNECTIONS,
                               duration=duration)
    report["p99_ms"] = report["latency_ms"]["p99"]
    return report


@benchmark("script.loadgen.batch_sweep",
           title="latency vs rows-per-request on the asyncio transport",
           kind="report", metric="best_rows_per_s", unit="rows/s",
           lower_is_better=False, noise=1.0, tags=("script", "loadgen"))
def bench_batch_sweep(tmp_root: Optional[Path] = None,
                      quick: bool = False) -> dict:
    if tmp_root is None:
        with tempfile.TemporaryDirectory() as tmp:
            return bench_batch_sweep(Path(tmp), quick=quick)
    connections = QUICK_CONNECTIONS if quick else CONNECTIONS
    duration = QUICK_DURATION if quick else 1.0
    sizes = (1, 4, 16) if quick else (1, 4, 16, 64)
    store, X = _export_model(tmp_root)
    rows = []
    with AsyncPerceptronServer(store, workers=0) as aio:
        for size in sizes:
            inputs = X[:size].tolist() if size <= len(X) \
                else (X.tolist() * (size // len(X) + 1))[:size]
            report = run_closed_loop(aio.url, "loadgen", inputs,
                                     connections=connections,
                                     duration=duration)
            rows.append({"rows_per_request": size,
                         "rows_per_s": report["rows_per_s"],
                         "requests_per_s": report["requests_per_s"],
                         "p50_ms": report["latency_ms"]["p50"],
                         "p99_ms": report["latency_ms"]["p99"]})
    return {"connections": connections,
            "sweep": rows,
            "best_rows_per_s": max(r["rows_per_s"] for r in rows)}


def main() -> None:
    payload = {
        "description": "serving-transport load generation: closed-loop "
                       f"saturation at {CONNECTIONS} connections "
                       "(asyncio vs threaded), open-loop latency, and "
                       "the rows-per-request sweep",
        **host_fields(),
        "benchmarks": [bench_saturation(), bench_open_loop(),
                       bench_batch_sweep()],
    }
    finish(OUT, payload)


if __name__ == "__main__":
    main()
