"""Benchmark the serving subsystem: per-sample vs batched inference.

Three measurements, written to ``benchmarks/BENCH_serving.json``:

* ``perceptron``  — scalar ``predict()`` loop vs
  :class:`~repro.serve.engine.BatchInferenceEngine` on a batch of 256
  rows (the acceptance target is >= 10x at this batch size);
* ``mlp``         — the same comparison through a 6-unit hidden layer;
* ``http``        — end-to-end rows/s through the micro-batching
  ``/predict`` endpoint (one client, whole-batch requests).

All three are registered with :mod:`repro.perf` (``script.serving.*``,
report kind) for history tracking via ``repro perf run --bench-dir
benchmarks``.

Run with::

    PYTHONPATH=src python benchmarks/bench_serving.py
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import numpy as np

from repro.analysis import make_blobs
from repro.core.network import PwmMlp
from repro.core.training import PerceptronTrainer
from repro.perf import benchmark, best_of, finish, host_fields
from repro.serve import (
    BatchInferenceEngine,
    ModelStore,
    PerceptronServer,
)

OUT = Path(__file__).parent / "BENCH_serving.json"

BATCH = 256
QUICK_BATCH = 64


def _make_batch(rows: int, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, (rows, 2))


def _compare(name: str, rows: int, scalar_fn, batched_fn,
             check_equal) -> dict:
    t_scalar = best_of(scalar_fn, 3)
    t_batched = best_of(batched_fn, 3)
    return {
        "model": name,
        "batch_rows": rows,
        "scalar_seconds": round(t_scalar, 6),
        "batched_seconds": round(t_batched, 6),
        "scalar_rows_per_s": round(rows / t_scalar, 1),
        "batched_rows_per_s": round(rows / t_batched, 1),
        "speedup": round(t_scalar / t_batched, 2),
        "paths_agree_exactly": bool(check_equal()),
    }


@benchmark("script.serving.perceptron",
           title="scalar predict() loop vs batched perceptron inference",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, noise=0.6, tags=("script", "serving"))
def bench_perceptron(quick: bool = False) -> dict:
    rows = QUICK_BATCH if quick else BATCH
    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=60).perceptron
    X = _make_batch(rows)
    engine = BatchInferenceEngine()
    return _compare(
        "perceptron", rows,
        lambda: [model.predict(x) for x in X],
        lambda: engine.predict(model, X),
        lambda: np.array_equal(
            np.array([model.predict(x) for x in X]),
            engine.predict(model, X)))


@benchmark("script.serving.mlp",
           title="scalar predict() loop vs batched MLP inference",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, noise=0.6, tags=("script", "serving"))
def bench_mlp(quick: bool = False) -> dict:
    rows = QUICK_BATCH if quick else BATCH
    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PwmMlp(2, 6, seed=1)
    model.fit(data.X, data.y, epochs=40)
    X = _make_batch(rows)
    engine = BatchInferenceEngine()
    return _compare(
        "mlp(2x6)", rows,
        lambda: [model.predict(x) for x in X],
        lambda: engine.predict_mlp(model, X),
        lambda: np.array_equal(
            np.array([model.predict(x) for x in X]),
            engine.predict_mlp(model, X)))


@benchmark("script.serving.http",
           title="HTTP /predict whole-batch round-trip throughput",
           kind="report", metric="rows_per_s", unit="rows/s",
           lower_is_better=False, noise=1.0, tags=("script", "serving"))
def bench_http(tmp_root: Optional[Path] = None,
               quick: bool = False) -> dict:
    import tempfile
    import urllib.request

    if tmp_root is None:
        with tempfile.TemporaryDirectory() as tmp:
            return bench_http(Path(tmp), quick=quick)

    rows = QUICK_BATCH if quick else BATCH
    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=60).perceptron
    store = ModelStore(tmp_root)
    store.save("bench", model)
    X = _make_batch(rows)
    payload = json.dumps({"model": "bench",
                          "inputs": X.tolist()}).encode()
    with PerceptronServer(store, port=0) as server:
        def roundtrip():
            request = urllib.request.Request(
                server.url + "/predict", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                return json.loads(response.read())

        body = roundtrip()  # warm up + sanity
        assert body["count"] == rows
        t = best_of(roundtrip, 3)
    return {
        "model": "perceptron over HTTP /predict",
        "batch_rows": rows,
        "roundtrip_seconds": round(t, 6),
        "rows_per_s": round(rows / t, 1),
    }


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        payload = {
            "description": "per-sample scalar inference vs the batched "
                           "serving engine (repro.serve) at batch "
                           f"{BATCH}, plus HTTP round-trip throughput",
            **host_fields(),
            "benchmarks": [bench_perceptron(), bench_mlp(),
                           bench_http(Path(tmp))],
        }
    finish(OUT, payload)


if __name__ == "__main__":
    main()
