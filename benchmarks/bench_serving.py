"""Benchmark the serving subsystem: per-sample vs batched inference.

Three measurements, written to ``benchmarks/BENCH_serving.json``:

* ``perceptron``  — scalar ``predict()`` loop vs
  :class:`~repro.serve.engine.BatchInferenceEngine` on a batch of 256
  rows (the acceptance target is >= 10x at this batch size);
* ``mlp``         — the same comparison through a 6-unit hidden layer;
* ``http``        — end-to-end rows/s through the micro-batching
  ``/predict`` endpoint (one client, whole-batch requests).

Run with::

    PYTHONPATH=src python benchmarks/bench_serving.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis import make_blobs
from repro.core.network import PwmMlp
from repro.core.training import PerceptronTrainer
from repro.serve import (
    BatchInferenceEngine,
    ModelStore,
    PerceptronServer,
)

OUT = Path(__file__).parent / "BENCH_serving.json"

BATCH = 256


def _make_batch(seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, (BATCH, 2))


def _best_of(fn, repeats: int = 3) -> float:
    """Wall-clock of the fastest of ``repeats`` runs, seconds."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _compare(name: str, scalar_fn, batched_fn, check_equal) -> dict:
    t_scalar = _best_of(scalar_fn)
    t_batched = _best_of(batched_fn)
    return {
        "model": name,
        "batch_rows": BATCH,
        "scalar_seconds": round(t_scalar, 6),
        "batched_seconds": round(t_batched, 6),
        "scalar_rows_per_s": round(BATCH / t_scalar, 1),
        "batched_rows_per_s": round(BATCH / t_batched, 1),
        "speedup": round(t_scalar / t_batched, 2),
        "paths_agree_exactly": bool(check_equal()),
    }


def bench_perceptron() -> dict:
    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=60).perceptron
    X = _make_batch()
    engine = BatchInferenceEngine()
    return _compare(
        "perceptron",
        lambda: [model.predict(x) for x in X],
        lambda: engine.predict(model, X),
        lambda: np.array_equal(
            np.array([model.predict(x) for x in X]),
            engine.predict(model, X)))


def bench_mlp() -> dict:
    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PwmMlp(2, 6, seed=1)
    model.fit(data.X, data.y, epochs=40)
    X = _make_batch()
    engine = BatchInferenceEngine()
    return _compare(
        "mlp(2x6)",
        lambda: [model.predict(x) for x in X],
        lambda: engine.predict_mlp(model, X),
        lambda: np.array_equal(
            np.array([model.predict(x) for x in X]),
            engine.predict_mlp(model, X)))


def bench_http(tmp_root: Path) -> dict:
    import urllib.request

    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=60).perceptron
    store = ModelStore(tmp_root)
    store.save("bench", model)
    X = _make_batch()
    payload = json.dumps({"model": "bench",
                          "inputs": X.tolist()}).encode()
    with PerceptronServer(store, port=0) as server:
        def roundtrip():
            request = urllib.request.Request(
                server.url + "/predict", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                return json.loads(response.read())

        body = roundtrip()  # warm up + sanity
        assert body["count"] == BATCH
        t = _best_of(roundtrip)
    return {
        "model": "perceptron over HTTP /predict",
        "batch_rows": BATCH,
        "roundtrip_seconds": round(t, 6),
        "rows_per_s": round(BATCH / t, 1),
    }


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        payload = {
            "description": "per-sample scalar inference vs the batched "
                           "serving engine (repro.serve) at batch "
                           f"{BATCH}, plus HTTP round-trip throughput",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "benchmarks": [bench_perceptron(), bench_mlp(),
                           bench_http(Path(tmp))],
        }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
