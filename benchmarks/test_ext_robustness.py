"""Bench: extension — accuracy vs supply for PWM and both baselines.

Reproduction target (paper's motivation made measurable): the PWM
perceptron holds its accuracy over the full sweep; the digital MAC
collapses below its timing-closure voltage; the amplitude-coded analog
baseline degrades away from nominal.
"""


def test_ext_robustness(record):
    result = record("ext_robustness")
    pwm = result.metrics["min_accuracy[PWM (this work)]"]
    dig = result.metrics["min_accuracy[digital MAC @500MHz]"]
    ana = result.metrics["min_accuracy[current-mode analog]"]
    assert pwm >= 0.97
    assert dig < 0.8
    assert ana < 0.8
