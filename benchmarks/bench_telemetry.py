"""Benchmark the telemetry layer's overhead on the table2 PSS path.

Two questions, one workload — the table2 adder evaluated through the
transistor-level engine (shooting PSS over the batched MNA path), the
hottest instrumented code in the repository:

* **disabled overhead** — the zero-cost-when-disabled contract.  Every
  hot function is a thin wrapper (``telemetry.active()`` + ``None``
  check) around an untouched ``_impl``; timing the wrapper against a
  direct ``_impl`` call measures exactly what instrumentation costs
  when telemetry is off.  The floor assertion holds it **under 3%**.
* **enabled overhead** — what a traced + counted run costs relative to
  a disabled one (spans, counters and histogram observations on every
  Newton solve).

Registered with :mod:`repro.perf` as ``script.telemetry.overhead``
(report kind, wall-seconds metric — the overhead percentages can be
negative at this workload size, so relative noise bands on them are
meaningless; the wall time of the whole comparison is what history
tracks).

Writes ``benchmarks/BENCH_telemetry.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_telemetry.py
"""

from __future__ import annotations

from pathlib import Path

from repro import telemetry
from repro.core.weighted_adder import AdderConfig, WeightedAdder
from repro.perf import benchmark, best_of_with_result, finish, host_fields

OUT = Path(__file__).parent / "BENCH_telemetry.json"

#: Timing repetitions; the minimum is reported (least-noise estimator).
REPEATS = 5

#: Disabled instrumentation must stay under this relative overhead.
DISABLED_OVERHEAD_LIMIT_PCT = 3.0

DUTIES = (0.2, 0.6, 0.8)
WEIGHTS = (5, 6, 7)
STEPS_PER_PERIOD = 30


def _run_wrapped(adder: WeightedAdder, steps: int):
    return adder.evaluate(DUTIES, WEIGHTS, engine="spice",
                          steps_per_period=steps)


def _run_impl(adder: WeightedAdder, steps: int):
    """The same solve through the raw ``_impl`` entry points (as if the
    telemetry wrappers had never been added)."""
    return adder._evaluate_impl(
        DUTIES, WEIGHTS, engine="spice", vdd=None, frequency=None,
        frequencies=None, phases=None, input_amplitude=None,
        steps_per_period=steps, cell_overrides=None,
        solver="auto")


@benchmark("script.telemetry.overhead",
           title="telemetry wrapper overhead on the table2 PSS path",
           kind="report", metric=None, noise=1.0,
           tags=("script", "telemetry"))
def bench_overhead(quick: bool = False) -> dict:
    steps = 12 if quick else STEPS_PER_PERIOD
    repeats = 2 if quick else REPEATS
    telemetry.disable()
    adder = WeightedAdder(AdderConfig())
    _run_wrapped(adder, steps)  # warm caches before timing

    t_impl, ref = best_of_with_result(
        lambda: _run_impl(adder, steps), repeats)
    t_disabled, disabled = best_of_with_result(
        lambda: _run_wrapped(adder, steps), repeats)

    telemetry.enable()
    try:
        t_enabled, enabled = best_of_with_result(
            lambda: _run_wrapped(adder, steps), repeats)
        rt = telemetry.active()
        trace_events = len(rt.tracer.events())
        counters = len(rt.registry.flat_values())
    finally:
        telemetry.disable()

    disabled_pct = 100.0 * (t_disabled - t_impl) / t_impl
    enabled_pct = 100.0 * (t_enabled - t_disabled) / t_disabled
    return {
        "workload": "table2 adder, engine=spice shooting PSS, "
                    f"steps_per_period={steps}",
        "impl_seconds": round(t_impl, 4),
        "disabled_seconds": round(t_disabled, 4),
        "enabled_seconds": round(t_enabled, 4),
        "disabled_overhead_percent": round(disabled_pct, 2),
        "enabled_overhead_percent": round(enabled_pct, 2),
        "disabled_overhead_limit_percent": DISABLED_OVERHEAD_LIMIT_PCT,
        "trace_events_per_enabled_run": trace_events,
        "metric_series_per_enabled_run": counters,
        "results_identical": (disabled.value == ref.value
                              and enabled.value == ref.value),
    }


def main() -> None:
    result = bench_overhead()
    payload = {
        "description": "telemetry overhead on the table2 shooting-PSS "
                       "path: wrapper-vs-impl when disabled (the "
                       "zero-cost contract) and enabled-vs-disabled "
                       "(spans + counters on every Newton solve)",
        **host_fields(),
        "benchmarks": [result],
    }
    finish(OUT, payload)
    assert result["results_identical"], \
        "telemetry perturbed the solve — instrumentation must observe only"
    assert result["disabled_overhead_percent"] < \
        DISABLED_OVERHEAD_LIMIT_PCT, (
            f"disabled telemetry costs "
            f"{result['disabled_overhead_percent']}% "
            f"(limit {DISABLED_OVERHEAD_LIMIT_PCT}%)")


if __name__ == "__main__":
    main()
