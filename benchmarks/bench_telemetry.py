"""Benchmark the telemetry layer's overhead on the table2 PSS path.

Two questions, one workload — the table2 adder evaluated through the
transistor-level engine (shooting PSS over the batched MNA path), the
hottest instrumented code in the repository:

* **disabled overhead** — the zero-cost-when-disabled contract.  Every
  hot function is a thin wrapper (``telemetry.active()`` + ``None``
  check) around an untouched ``_impl``; timing the wrapper against a
  direct ``_impl`` call measures exactly what instrumentation costs
  when telemetry is off.  The floor assertion holds it **under 3%**.
* **enabled overhead** — what a traced + counted run costs relative to
  a disabled one (spans, counters and histogram observations on every
  Newton solve).

Writes ``benchmarks/BENCH_telemetry.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_telemetry.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro import telemetry
from repro.core.weighted_adder import AdderConfig, WeightedAdder

OUT = Path(__file__).parent / "BENCH_telemetry.json"

#: Timing repetitions; the minimum is reported (least-noise estimator).
REPEATS = 5

#: Disabled instrumentation must stay under this relative overhead.
DISABLED_OVERHEAD_LIMIT_PCT = 3.0

DUTIES = (0.2, 0.6, 0.8)
WEIGHTS = (5, 6, 7)
STEPS_PER_PERIOD = 30


def _best_of(fn, repeats: int = REPEATS) -> "tuple[float, object]":
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _run_wrapped(adder: WeightedAdder):
    return adder.evaluate(DUTIES, WEIGHTS, engine="spice",
                          steps_per_period=STEPS_PER_PERIOD)


def _run_impl(adder: WeightedAdder):
    """The same solve through the raw ``_impl`` entry points (as if the
    telemetry wrappers had never been added)."""
    return adder._evaluate_impl(
        DUTIES, WEIGHTS, engine="spice", vdd=None, frequency=None,
        frequencies=None, phases=None, input_amplitude=None,
        steps_per_period=STEPS_PER_PERIOD, cell_overrides=None,
        solver="auto")


def bench_overhead() -> dict:
    telemetry.disable()
    adder = WeightedAdder(AdderConfig())
    _run_wrapped(adder)  # warm caches before timing

    t_impl, ref = _best_of(lambda: _run_impl(adder))
    t_disabled, disabled = _best_of(lambda: _run_wrapped(adder))

    telemetry.enable()
    try:
        t_enabled, enabled = _best_of(lambda: _run_wrapped(adder))
        rt = telemetry.active()
        trace_events = len(rt.tracer.events())
        counters = len(rt.registry.flat_values())
    finally:
        telemetry.disable()

    disabled_pct = 100.0 * (t_disabled - t_impl) / t_impl
    enabled_pct = 100.0 * (t_enabled - t_disabled) / t_disabled
    return {
        "workload": "table2 adder, engine=spice shooting PSS, "
                    f"steps_per_period={STEPS_PER_PERIOD}",
        "impl_seconds": round(t_impl, 4),
        "disabled_seconds": round(t_disabled, 4),
        "enabled_seconds": round(t_enabled, 4),
        "disabled_overhead_percent": round(disabled_pct, 2),
        "enabled_overhead_percent": round(enabled_pct, 2),
        "disabled_overhead_limit_percent": DISABLED_OVERHEAD_LIMIT_PCT,
        "trace_events_per_enabled_run": trace_events,
        "metric_series_per_enabled_run": counters,
        "results_identical": (disabled.value == ref.value
                              and enabled.value == ref.value),
    }


def main() -> None:
    result = bench_overhead()
    payload = {
        "description": "telemetry overhead on the table2 shooting-PSS "
                       "path: wrapper-vs-impl when disabled (the "
                       "zero-cost contract) and enabled-vs-disabled "
                       "(spans + counters on every Newton solve)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": [result],
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    assert result["results_identical"], \
        "telemetry perturbed the solve — instrumentation must observe only"
    assert result["disabled_overhead_percent"] < \
        DISABLED_OVERHEAD_LIMIT_PCT, (
            f"disabled telemetry costs "
            f"{result['disabled_overhead_percent']}% "
            f"(limit {DISABLED_OVERHEAD_LIMIT_PCT}%)")


if __name__ == "__main__":
    main()
