"""Bench: Fig. 5 — Vout vs input frequency, 1 MHz – 1.5 GHz.

Reproduction target: the three duty-cycle curves stay flat ("almost the
same for a wide range of frequencies").
"""


def test_fig5_frequency(record):
    result = record("fig5")
    for duty in (25, 50, 75):
        assert result.metrics[f"flatness[DC={duty}%]"] < 0.10
    # Ordering: higher duty -> lower output, at every frequency.
    fig = result.figure("fig5")
    y25, y75 = fig.get("DC=25%").y, fig.get("DC=75%").y
    assert all(a > b for a, b in zip(y25, y75))
