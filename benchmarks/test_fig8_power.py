"""Bench: Fig. 8 — average supply power vs input frequency.

Reproduction target: hundreds of µW, rising with frequency above a
frequency-flat static-divider floor.  Absolute values differ from the
paper's (unknown workload, synthetic devices); the range and shape are
the claim.
"""


def test_fig8_power(record):
    result = record("fig8")
    p_min = result.metrics["power_at_min_freq_uW"]
    p_max = result.metrics["power_at_max_freq_uW"]
    assert 100 < p_min < 2000
    assert p_max > p_min
    assert result.metrics["dynamic_slope_uW_per_MHz"] > 0
    assert 0 < result.metrics["static_floor_uW"] < p_min
