"""Bench: extension — Kessels generator to adder, elastic clock."""


def test_ext_kessels(record):
    result = record("ext_kessels")
    assert result.metrics["worst_duty_error"] < 0.01
