"""Bench: extension — complete Fig. 1 perceptron at transistor level."""


def test_ext_full_system(record):
    result = record("ext_full_system")
    assert result.metrics["mismatches"] == 0
    assert result.metrics["n_points"] >= 9   # 3 operand sets x 3 supplies
    assert result.metrics["transistors"] == 62
