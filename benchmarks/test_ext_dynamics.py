"""Bench: extensions — multi-frequency inputs and live supply ramp."""


def test_ext_multifreq(record):
    result = record("ext_multifreq")
    # Paper's remark holds up to 500 MHz: spread of a few mV.
    assert result.metrics["spread_upto_500MHz_mV"] < 30.0


def test_ext_dynamic_supply(record):
    result = record("ext_dynamic_supply")
    assert result.metrics["rail_droop_ratio"] > 1.6
    assert result.metrics["ratio_spread"] < 0.05
    assert result.metrics["ratio_worst_dev"] < 0.07
