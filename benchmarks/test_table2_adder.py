"""Bench: Table II — 3x3 weighted adder, theory vs transistor level.

Reproduction target: our theory column equals Eq. 2 exactly; the
transistor-level column lands within ~0.1 V of theory with the paper's
signature undershoot at low outputs.
"""

import pytest

from repro.experiments.table2_adder import PAPER_ROWS


def test_table2_adder(record):
    result = record("table2")
    assert result.metrics["worst_abs_error"] < 0.12
    for i, row in enumerate(PAPER_ROWS):
        sim = result.metrics[f"row{i}_simulated"]
        # Within 80 mV of the paper's own simulated column.
        assert sim == pytest.approx(row.paper_simulated, abs=0.08), i
