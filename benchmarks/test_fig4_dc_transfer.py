"""Bench: Fig. 4 — Vout vs duty cycle for No-load / 5k / 100k.

Reproduction target: output inversely proportional to duty cycle; the
100 kOhm curve linear (r² > 0.999), the smaller loads visibly bent.
"""


def test_fig4_dc_transfer(record):
    result = record("fig4")
    assert result.metrics["r2[100kOhm]"] > 0.999
    assert result.metrics["r2[100kOhm]"] > result.metrics["r2[5kOhm]"]
    assert result.metrics["r2[5kOhm]"] > result.metrics["r2[No load]"]
    # The no-load curve's worst deviation from linear is an order of
    # magnitude above the 100k curve's (the paper's visual argument).
    assert result.metrics["max_lin_err[No load]"] > \
        5 * result.metrics["max_lin_err[100kOhm]"]
