"""Bench: extension — Rout/Cout design-space ablations (Table I rationale)."""


def test_ext_ablations(record):
    result = record("ext_ablation")
    assert result.metrics["recommended_rout"] <= 100e3
    assert result.metrics["recommended_cout"] <= 2e-12
