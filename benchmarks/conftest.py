"""Benchmark harness shared helpers.

Each benchmark regenerates one paper artefact at ``paper`` fidelity via
``benchmark.pedantic`` (one round — these are minutes-scale simulations,
not microbenchmarks), prints the same rows/series the paper reports, and
writes artefacts (rendered text + CSV) under ``benchmarks/artifacts/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import run_experiment
from repro.reporting import figure_to_csv, table_to_csv

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def run_and_record(benchmark, experiment_id: str, *, fidelity: str = "paper",
                   **kwargs):
    """Run an experiment under the benchmark timer and persist artefacts."""
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, fidelity=fidelity, **kwargs),
        rounds=1, iterations=1)
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    rendered = result.render(charts=True)
    (ARTIFACT_DIR / f"{experiment_id}.txt").write_text(rendered + "\n")
    if result.table is not None:
        table_to_csv(result.table, ARTIFACT_DIR / f"{experiment_id}.csv")
    for figure in result.figures:
        figure_to_csv(figure, ARTIFACT_DIR / f"{figure.figure_id}.csv")
    print()
    print(rendered)
    return result


@pytest.fixture
def record(benchmark):
    """``record("fig4")`` → run, print and persist the artefact."""
    def _run(experiment_id: str, **kwargs):
        return run_and_record(benchmark, experiment_id, **kwargs)
    return _run
