"""Benchmark the sparse/stacked MNA paths added with the solver knob.

Four workloads:

* the supply-ramp **waveform family** of ``ext_dynamic_supply`` — one
  lock-step :class:`~repro.circuit.batch_transient.BatchTransientSolver`
  run vs the historical per-ramp transient loop (bit-identical);
* the full-perceptron **shooting Jacobian** — the 62-transistor Fig. 1
  netlist's PSS with its seven finite-difference probes stacked into one
  8-point batch vs the scalar probe loop (bit-identical);
* the **dense/sparse crossover** — one big RC ladder (past
  ``SPARSE_MIN_SIZE`` unknowns at MNA-typical fill) integrated through
  both linear backends;
* the north-star **spice-backed ``/predict`` margin round-trip** — a
  full HTTP-payload-to-margins pass through
  :meth:`~repro.serve.server.PerceptronServer.handle_predict` with
  ``engine="spice"``.

All four are registered with :mod:`repro.perf` (``script.sparse.*``,
report kind) for history tracking via ``repro perf run --bench-dir
benchmarks``.

Writes ``benchmarks/BENCH_sparse_mna.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_sparse_mna.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.circuit import Capacitor, Circuit, Resistor, Vpulse, transient
from repro.circuit.batch_transient import shooting_jacobian_batched
from repro.circuit.pss import shooting
from repro.circuit.sparse import HAS_SCIPY, SPARSE_MIN_SIZE
from repro.core.full_perceptron import build_full_perceptron_circuit
from repro.experiments.ext_dynamic_supply import (
    FREQUENCY,
    RAMP_TARGETS,
    _build,
    _run_family,
)
from repro.perf import benchmark, best_of_with_result, finish, host_fields

OUT = Path(__file__).parent / "BENCH_sparse_mna.json"

#: Timing repetitions; the minimum is reported (least-noise estimator).
REPEATS = 3

#: The seven capacitor-bearing nodes the full-system experiment observes.
PERCEPTRON_OBSERVE = ["out", "decision", "vref", "XCMP.d2", "XCMP.d1",
                      "XCMP.tail", "XCMP.outb"]


@benchmark("script.sparse.ramp_family",
           title="supply-ramp waveform family: stacked vs per-ramp loop",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, noise=0.6, tags=("script", "sparse"))
def bench_ramp_family(quick: bool = False) -> dict:
    """ext_dynamic_supply's waveform family: stacked vs per-ramp loop."""
    n_windows, periods_per_window = (4, 4) if quick else (14, 8)
    repeats = 1 if quick else REPEATS
    period = 1.0 / FREQUENCY
    t_ramp = n_windows * periods_per_window * period
    dt = period / 40

    def run(batched: bool):
        circuits = [_build(t_ramp, v_end) for v_end in RAMP_TARGETS]
        return _run_family(circuits, t_ramp, dt, batched=batched,
                           solver="auto")

    run(batched=True)  # warm caches before timing
    t_loop, loop = best_of_with_result(lambda: run(batched=False),
                                       repeats)
    t_batch, batch = best_of_with_result(lambda: run(batched=True),
                                         repeats)
    identical = all(np.array_equal(s.X, b.X) and np.array_equal(s.t, b.t)
                    for s, b in zip(loop, batch))
    return {
        "workload": "ext_dynamic_supply supply-ramp waveform family",
        "fidelity": "fast",
        "n_waveforms": len(RAMP_TARGETS),
        "per_ramp_loop_seconds": round(t_loop, 4),
        "batched_mna_seconds": round(t_batch, 4),
        "speedup": round(t_loop / t_batch, 2),
        "results_bit_identical": bool(identical),
    }


@benchmark("script.sparse.jacobian",
           title="full-perceptron shooting Jacobian: batched FD probes",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, noise=0.6, tags=("script", "sparse"))
def bench_perceptron_jacobian(quick: bool = False) -> dict:
    """Full Fig. 1 perceptron PSS: batched FD probes vs the scalar loop."""
    steps = 30 if quick else 80
    repeats = 1 if quick else REPEATS
    duties, weights, theta = (0.5, 0.5, 0.5), (7, 7, 7), 9.0
    period = 1.0 / FREQUENCY

    def scalar():
        return shooting(
            build_full_perceptron_circuit(duties, weights, theta),
            period, observe=PERCEPTRON_OBSERVE, steps_per_period=steps)

    def batched():
        return shooting_jacobian_batched(
            build_full_perceptron_circuit(duties, weights, theta),
            period, observe=PERCEPTRON_OBSERVE, steps_per_period=steps)

    t_scalar, ref = best_of_with_result(scalar, repeats)
    t_batch, got = best_of_with_result(batched, repeats)
    identical = (np.array_equal(ref.waves.X, got.waves.X)
                 and ref.iterations == got.iterations)
    return {
        "workload": "full-perceptron shooting PSS (7 observed nodes)",
        "steps_per_period": steps,
        "points_per_iteration": 1 + len(PERCEPTRON_OBSERVE),
        "scalar_probe_loop_seconds": round(t_scalar, 4),
        "jacobian_batched_seconds": round(t_batch, 4),
        "speedup": round(t_scalar / t_batch, 2),
        "results_bit_identical": bool(identical),
    }


def _big_ladder(stages: int) -> Circuit:
    c = Circuit("big_ladder")
    c.add(Vpulse("VIN", "n0", "0", v1=0.0, v2=1.0, rise=1e-9, fall=1e-9,
                 width=40e-9, period=100e-9))
    rng = np.random.default_rng(7)
    for k in range(stages):
        c.add(Resistor(f"R{k}", f"n{k}", f"n{k + 1}",
                       float(10 ** rng.uniform(3, 4))))
        c.add(Capacitor(f"C{k}", f"n{k + 1}", "0",
                        float(10 ** rng.uniform(-13, -12))))
    return c


@benchmark("script.sparse.crossover",
           title="dense vs sparse linear backend on a big RC ladder",
           kind="report", metric="dense_seconds", unit="s",
           lower_is_better=True, noise=1.0, tags=("script", "sparse"))
def bench_sparse_crossover(quick: bool = False) -> dict:
    """One big RC ladder through the dense and sparse backends."""
    stages = 3 * SPARSE_MIN_SIZE  # comfortably past the crossover
    t_stop, dt = (8e-9, 0.5e-9) if quick else (20e-9, 0.5e-9)

    def run(solver: str):
        return transient(_big_ladder(stages), t_stop, dt, solver=solver)

    t_dense, dense = best_of_with_result(lambda: run("dense"), 1)
    t_sparse, sparse = best_of_with_result(lambda: run("sparse"), 1) \
        if HAS_SCIPY else (None, None)
    out = {
        "workload": f"{stages}-stage RC ladder transient "
                    f"({stages + 1} unknowns)",
        "scipy_available": HAS_SCIPY,
        "dense_seconds": round(t_dense, 4),
    }
    if HAS_SCIPY:
        out.update({
            "sparse_seconds": round(t_sparse, 4),
            "speedup": round(t_dense / t_sparse, 2),
            "max_abs_delta": float(np.max(np.abs(dense.X - sparse.X))),
            "auto_picks_sparse": True,
        })
    return out


@benchmark("script.sparse.predict",
           title="spice-backed /predict margin round-trip",
           kind="report", metric="round_trip_seconds", unit="s",
           lower_is_better=True, noise=1.0, tags=("script", "sparse"))
def bench_predict_round_trip(quick: bool = False) -> dict:
    """North star: spice-backed served margins, payload to response."""
    import tempfile

    from repro.core.perceptron import DifferentialPwmPerceptron
    from repro.serve.artifacts import ModelStore
    from repro.serve.server import PerceptronServer

    repeats = 1 if quick else REPEATS
    payload = {"model": "m", "inputs": [[0.9, 0.9]], "engine": "spice"}
    with tempfile.TemporaryDirectory() as tmp:
        store = ModelStore(tmp)
        store.save("m", DifferentialPwmPerceptron([3, 3], bias=-3))
        with PerceptronServer(store, port=0) as server:
            behavioral = server.handle_predict(
                {**payload, "engine": "behavioral"})
            t_spice, spice = best_of_with_result(
                lambda: server.handle_predict(payload), repeats)
    return {
        "workload": "POST /predict, one row, engine=spice",
        "round_trip_seconds": round(t_spice, 4),
        "margin_volts": round(spice["margins"][0], 6),
        "behavioral_margin_volts": round(behavioral["margins"][0], 6),
        "margin_delta_volts": round(
            abs(spice["margins"][0] - behavioral["margins"][0]), 6),
        "predictions_agree":
            spice["predictions"] == behavioral["predictions"],
    }


def main() -> None:
    payload = {
        "description": "sparse/stacked MNA benchmarks: the supply-ramp "
                       "waveform family and shooting Jacobian probes as "
                       "lock-step batched solves, the dense/sparse "
                       "linear-backend crossover, and the spice-backed "
                       "/predict margin round-trip",
        **host_fields(),
        "benchmarks": [bench_ramp_family(), bench_perceptron_jacobian(),
                       bench_sparse_crossover(),
                       bench_predict_round_trip()],
    }
    finish(OUT, payload)


if __name__ == "__main__":
    main()
