"""Design-space ablations: the rationale behind Table I's choices."""

import pytest

from repro.circuit import AnalysisError
from repro.core import (
    CellDesign,
    CellOperatingPoint,
    cell_transfer_curve,
    cout_ablation,
    recommend_cout,
    recommend_rout,
    rout_ablation,
)

import numpy as np


class TestTransferCurve:
    def test_monotone_decreasing_in_duty(self):
        duties = np.linspace(0, 1, 11)
        curve = cell_transfer_curve(CellDesign(), CellOperatingPoint(),
                                    duties)
        assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:]))

    def test_endpoints(self):
        curve = cell_transfer_curve(CellDesign(), CellOperatingPoint(),
                                    [0.0, 1.0])
        assert curve[0] == pytest.approx(2.5, abs=1e-6)
        assert curve[1] == pytest.approx(0.0, abs=1e-6)


class TestRoutAblation:
    def test_linearity_improves_with_rout(self):
        points = rout_ablation([5e3, 100e3])
        assert points[1].r2 > points[0].r2
        assert points[1].max_error < points[0].max_error

    def test_static_power_falls_with_rout(self):
        points = rout_ablation([5e3, 100e3])
        assert points[1].static_power < points[0].static_power

    def test_validation(self):
        with pytest.raises(AnalysisError):
            rout_ablation([0.0])


class TestCoutAblation:
    def test_ripple_falls_settling_grows(self):
        points = cout_ablation([0.5e-12, 10e-12])
        assert points[1].ripple < points[0].ripple
        assert points[1].settling_time > points[0].settling_time

    def test_validation(self):
        with pytest.raises(AnalysisError):
            cout_ablation([-1e-12])


class TestRecommendations:
    def test_recommend_rout_reaches_target(self):
        best = recommend_rout(min_r2=0.999)
        points = rout_ablation([best])
        assert points[0].r2 >= 0.999

    def test_recommend_rout_impossible_target(self):
        with pytest.raises(AnalysisError):
            recommend_rout(min_r2=0.999, candidates=[1e3])

    def test_recommend_cout_meets_ripple(self):
        best = recommend_cout(max_ripple=0.02)
        points = cout_ablation([best])
        assert points[0].ripple <= 0.02

    def test_recommendations_match_paper_choices(self):
        """The paper's Table I values satisfy the sweeps' targets.

        The switch-level ablation sees only the fixed-Ron asymmetry, not
        the transistor-level curvature, so its minimum acceptable Rout
        sits below the paper's conservative 100 kOhm — but 100 kOhm must
        comfortably meet both targets.
        """
        rout = recommend_rout(min_r2=0.999)
        cout = recommend_cout(max_ripple=0.02)
        assert 5e3 <= rout <= 100e3
        assert 0.2e-12 <= cout <= 2e-12
        assert rout_ablation([100e3])[0].r2 >= 0.9999
        assert cout_ablation([1e-12])[0].ripple <= 0.02
