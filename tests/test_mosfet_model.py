"""Level-1 MOSFET model: regions, symmetry, derivatives, vectorisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech import (
    NMOS_UMC65,
    PMOS_UMC65,
    MosfetParams,
    gate_capacitances,
    ids_full,
    ids_full_vec,
    on_resistance,
)

W, L = 320e-9, 1.2e-6


class TestRegions:
    def test_cutoff_current_negligible(self):
        ids, _, _ = ids_full(2.5, 0.0, 0.0, NMOS_UMC65, W, L)
        assert abs(ids) < 1e-9

    def test_saturation_square_law(self):
        vgs, vds = 1.45, 2.5  # vov = 1.0, deep saturation
        ids, _, _ = ids_full(vds, vgs, 0.0, NMOS_UMC65, W, L)
        beta = NMOS_UMC65.kp * W / L
        expected = 0.5 * beta * 1.0**2 * (1 + NMOS_UMC65.lam * vds)
        assert ids == pytest.approx(expected, rel=0.02)

    def test_triode_small_vds_acts_resistive(self):
        vgs = 2.5
        ids1, _, _ = ids_full(0.01, vgs, 0.0, NMOS_UMC65, W, L)
        ids2, _, _ = ids_full(0.02, vgs, 0.0, NMOS_UMC65, W, L)
        assert ids2 == pytest.approx(2 * ids1, rel=0.02)

    def test_monotone_in_vgs(self):
        currents = [ids_full(1.0, vgs, 0.0, NMOS_UMC65, W, L)[0]
                    for vgs in np.linspace(0, 2.5, 26)]
        assert all(b >= a - 1e-15 for a, b in zip(currents, currents[1:]))

    def test_subthreshold_tail_is_exponential_ish(self):
        i1 = ids_full(1.0, 0.30, 0.0, NMOS_UMC65, W, L)[0]
        i2 = ids_full(1.0, 0.20, 0.0, NMOS_UMC65, W, L)[0]
        assert i1 > i2 > 0
        # Roughly a decade per ~90 mV at n=1.5.
        assert 5 < i1 / i2 < 100

    def test_pmos_mirror_symmetry(self):
        # PMOS with |vgs|, |vds| mirrors NMOS apart from kp ratio.
        ids_n, _, _ = ids_full(1.0, 2.0, 0.0, NMOS_UMC65, W, L)
        ids_p, _, _ = ids_full(-1.0, -2.0, 0.0, PMOS_UMC65, W, L)
        ratio = abs(ids_p / ids_n)
        assert ratio == pytest.approx(PMOS_UMC65.kp / NMOS_UMC65.kp, rel=0.05)
        assert ids_p < 0  # current flows out of the drain

    def test_drain_source_swap_antisymmetric(self):
        # The device is symmetric: exchanging the drain and source node
        # voltages (same gate) negates the drain-terminal current.
        fwd, _, _ = ids_full(0.8, 2.0, 0.0, NMOS_UMC65, W, L)
        rev, _, _ = ids_full(0.0, 2.0, 0.8, NMOS_UMC65, W, L)
        assert rev == pytest.approx(-fwd, rel=1e-9)


class TestDerivatives:
    @pytest.mark.parametrize("vgs,vds", [
        (2.5, 0.05),   # deep triode
        (2.0, 1.0),    # triode
        (1.0, 2.0),    # saturation
        (0.4, 1.0),    # subthreshold
        (1.5, -0.5),   # reverse mode
        (2.5, -2.0),   # deep reverse
    ])
    def test_gm_gds_match_finite_differences(self, vgs, vds):
        h = 1e-6
        ids0, gm, gds = ids_full(vds, vgs, 0.0, NMOS_UMC65, W, L)
        ids_gp = ids_full(vds, vgs + h, 0.0, NMOS_UMC65, W, L)[0]
        ids_gm_ = ids_full(vds, vgs - h, 0.0, NMOS_UMC65, W, L)[0]
        ids_dp = ids_full(vds + h, vgs, 0.0, NMOS_UMC65, W, L)[0]
        ids_dm = ids_full(vds - h, vgs, 0.0, NMOS_UMC65, W, L)[0]
        assert gm == pytest.approx((ids_gp - ids_gm_) / (2 * h),
                                   rel=1e-3, abs=1e-12)
        assert gds == pytest.approx((ids_dp - ids_dm) / (2 * h),
                                    rel=1e-3, abs=1e-12)

    @pytest.mark.parametrize("vgs,vds", [(2.0, -1.0), (-0.5, 0.7), (1.2, 0.3)])
    def test_pmos_derivatives_match_finite_differences(self, vgs, vds):
        h = 1e-6
        _, gm, gds = ids_full(vds, vgs, 0.0, PMOS_UMC65, W, L)
        ids_gp = ids_full(vds, vgs + h, 0.0, PMOS_UMC65, W, L)[0]
        ids_gm_ = ids_full(vds, vgs - h, 0.0, PMOS_UMC65, W, L)[0]
        ids_dp = ids_full(vds + h, vgs, 0.0, PMOS_UMC65, W, L)[0]
        ids_dm = ids_full(vds - h, vgs, 0.0, PMOS_UMC65, W, L)[0]
        assert gm == pytest.approx((ids_gp - ids_gm_) / (2 * h),
                                   rel=1e-3, abs=1e-12)
        assert gds == pytest.approx((ids_dp - ids_dm) / (2 * h),
                                    rel=1e-3, abs=1e-12)

    @settings(max_examples=60)
    @given(st.floats(min_value=-3, max_value=3),
           st.floats(min_value=-3, max_value=3),
           st.floats(min_value=-1, max_value=1))
    def test_current_continuity(self, vd, vg, vs):
        """No jumps: nearby operating points give nearby currents."""
        eps = 1e-9
        i0 = ids_full(vd, vg, vs, NMOS_UMC65, W, L)[0]
        i1 = ids_full(vd + eps, vg, vs, NMOS_UMC65, W, L)[0]
        assert abs(i1 - i0) < 1e-6


class TestVectorised:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=-3, max_value=3),
        st.sampled_from([1.0, -1.0])), min_size=1, max_size=8))
    def test_vector_matches_scalar(self, points):
        vd = np.array([p[0] for p in points])
        vg = np.array([p[1] for p in points])
        vs = np.array([p[2] for p in points])
        sign = np.array([p[3] for p in points])
        n = len(points)
        params_n = NMOS_UMC65
        params_p = PMOS_UMC65
        beta = np.where(sign > 0, params_n.kp, params_p.kp) * W / L
        vt = np.where(sign > 0, abs(params_n.vt0), abs(params_p.vt0))
        lam = np.where(sign > 0, params_n.lam, params_p.lam)
        n_sub = np.where(sign > 0, params_n.n_sub, params_p.n_sub)
        ids_v, gm_v, gds_v = ids_full_vec(vd, vg, vs, sign, beta, vt, lam,
                                          n_sub)
        for k in range(n):
            params = params_n if sign[k] > 0 else params_p
            ids_s, gm_s, gds_s = ids_full(vd[k], vg[k], vs[k], params, W, L)
            assert ids_v[k] == pytest.approx(ids_s, rel=1e-9, abs=1e-18)
            assert gm_v[k] == pytest.approx(gm_s, rel=1e-9, abs=1e-18)
            assert gds_v[k] == pytest.approx(gds_s, rel=1e-9, abs=1e-18)


class TestParamsValidation:
    def test_bad_polarity(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity="cmos", vt0=0.4, kp=1e-4)

    def test_nmos_negative_vt_rejected(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity="nmos", vt0=-0.4, kp=1e-4)

    def test_pmos_positive_vt_rejected(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity="pmos", vt0=0.4, kp=1e-4)

    def test_kp_positive(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity="nmos", vt0=0.4, kp=0.0)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            ids_full(1, 1, 0, NMOS_UMC65, 0.0, L)


class TestDerivedQuantities:
    def test_on_resistance_magnitude(self):
        # Table I NMOS at full drive: about 10 kOhm (see umc65.py).
        r = on_resistance(NMOS_UMC65, W, L, 2.5)
        assert 5e3 < r < 20e3

    def test_on_resistance_scales_inverse_width(self):
        r1 = on_resistance(NMOS_UMC65, W, L, 2.5)
        r2 = on_resistance(NMOS_UMC65, 2 * W, L, 2.5)
        assert r1 / r2 == pytest.approx(2.0, rel=1e-6)

    def test_off_resistance_enormous(self):
        r = on_resistance(NMOS_UMC65, W, L, 0.0)
        assert r > 1e8

    def test_gate_capacitances_positive_and_scale(self):
        cgs1, cgd1, cj1 = gate_capacitances(NMOS_UMC65, W, L)
        cgs2, cgd2, cj2 = gate_capacitances(NMOS_UMC65, 2 * W, L)
        assert cgs1 > 0 and cgd1 > 0 and cj1 > 0
        assert cgs2 == pytest.approx(2 * cgs1)
        assert cj2 == pytest.approx(2 * cj1)
