"""Circuit container, compilation and subcircuits."""

import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    Mosfet,
    NetlistError,
    Resistor,
    SubCircuit,
    Vdc,
)
from repro.tech import NMOS_UMC65


class TestCircuit:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "b", 1.0))
        with pytest.raises(NetlistError):
            c.add(Resistor("R1", "b", "c", 1.0))

    def test_node_indexing_skips_ground(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "0", 1.0))
        c.add(Resistor("R2", "a", "gnd", 1.0))
        assert c.n_nodes == 1
        assert c.node_index("0") == -1
        assert c.node_index("gnd") == -1
        assert c.node_index("a") == 0

    def test_unknown_node_raises(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "0", 1.0))
        with pytest.raises(NetlistError):
            c.node_index("zz")

    def test_remove(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "0", 1.0))
        c.remove("R1")
        assert "R1" not in c
        with pytest.raises(NetlistError):
            c.remove("R1")

    def test_branch_allocation(self):
        c = Circuit()
        c.add(Vdc("V1", "a", "0", 1.0))
        c.add(Vdc("V2", "b", "0", 2.0))
        c.add(Resistor("R1", "a", "b", 1.0))
        assert c.n_nodes == 2
        assert c.n_branches == 2
        assert c.size == 4

    def test_mosfet_expansion_adds_caps(self):
        c = Circuit()
        c.add(Vdc("V1", "d", "0", 1.0))
        c.add(Mosfet("M1", "d", "g", "0", model=NMOS_UMC65,
                     w="320n", l="1.2u"))
        names = [el.name for el in c.flat_elements]
        assert "M1.cgs" in names and "M1.cgd" in names and "M1.cj" in names

    def test_stats_counts_transistors(self):
        c = Circuit()
        c.add(Mosfet("M1", "d", "g", "0", model=NMOS_UMC65, w="1u", l="1u"))
        c.add(Mosfet("M2", "d", "g", "0", model=NMOS_UMC65, w="1u", l="1u"))
        c.add(Resistor("R1", "d", "0", 1.0))
        assert c.stats()["transistors"] == 2

    def test_recompile_after_mutation(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "0", 1.0))
        assert c.n_nodes == 1
        c.add(Resistor("R2", "b", "0", 1.0))
        assert c.n_nodes == 2

    def test_element_lookup(self):
        c = Circuit()
        r = c.add(Resistor("R1", "a", "0", 1.0))
        assert c.element("R1") is r
        with pytest.raises(NetlistError):
            c.element("R9")


class TestResistorValidation:
    def test_zero_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", 0.0)

    def test_negative_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", -5.0)


class TestSubCircuit:
    def make_divider(self) -> SubCircuit:
        sub = SubCircuit("divider", ports=("top", "mid"))
        sub.add(Resistor("RA", "top", "mid", "1k"))
        sub.add(Resistor("RB", "mid", "internal", "1k"))
        sub.add(Resistor("RC", "internal", "0", "1k"))
        return sub

    def test_instantiation_prefixes_names(self):
        c = Circuit()
        c.add(Vdc("V1", "vin", "0", 3.0))
        c.instantiate(self.make_divider(), "X1",
                      {"top": "vin", "mid": "vout"})
        assert "X1.RA" in c
        assert c.has_node("X1.internal")
        assert c.has_node("vout")

    def test_multiple_instances_are_independent(self):
        c = Circuit()
        c.add(Vdc("V1", "vin", "0", 3.0))
        sub = self.make_divider()
        c.instantiate(sub, "X1", {"top": "vin", "mid": "m1"})
        c.instantiate(sub, "X2", {"top": "vin", "mid": "m2"})
        assert c.has_node("X1.internal") and c.has_node("X2.internal")
        assert c.node_index("X1.internal") != c.node_index("X2.internal")

    def test_missing_port_rejected(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            c.instantiate(self.make_divider(), "X1", {"top": "vin"})

    def test_unknown_port_rejected(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            c.instantiate(self.make_divider(), "X1",
                          {"top": "a", "mid": "b", "oops": "c"})

    def test_ground_cannot_be_port(self):
        with pytest.raises(NetlistError):
            SubCircuit("bad", ports=("0",))

    def test_duplicate_ports_rejected(self):
        with pytest.raises(NetlistError):
            SubCircuit("bad", ports=("a", "a"))

    def test_ground_passes_through(self):
        sub = SubCircuit("leak", ports=("a",))
        sub.add(Resistor("R", "a", "0", "1k"))
        c = Circuit()
        c.add(Vdc("V1", "x", "0", 1.0))
        c.instantiate(sub, "X1", {"a": "x"})
        # The resistor must connect to global ground, not "X1.0".
        assert c.n_nodes == 1
