"""Doctests of API-bearing modules + the experiment result container."""

import doctest

import pytest

import repro.campaigns.runner
import repro.circuit.units
import repro.core.encoding
import repro.exec.cache
import repro.experiments.spec
import repro.signals.pwm
import repro.tech.corners
from repro.circuit import AnalysisError
from repro.experiments import check_fidelity
from repro.experiments.base import ExperimentResult
from repro.reporting import FigureData, Table


@pytest.mark.parametrize("module", [
    repro.campaigns.runner,
    repro.circuit.units,
    repro.core.encoding,
    repro.exec.cache,
    repro.experiments.spec,
    repro.tech.corners,
])
def test_module_doctests(module):
    """The usage examples in docstrings must actually work."""
    failures, tried = doctest.testmod(module, raise_on_error=False).failed, \
        doctest.testmod(module).attempted
    assert failures == 0
    assert tried > 0, f"{module.__name__} has no doctests to run"


class TestExperimentResult:
    def make(self) -> ExperimentResult:
        table = Table(["a"])
        table.add_row(1.0)
        fig = FigureData("figX", "t", "x", "y")
        fig.add_series("s", [0, 1], [0, 1])
        return ExperimentResult(
            experiment_id="demo", title="Demo", fidelity="fast",
            table=table, figures=[fig], metrics={"m": 1.5},
            notes=["a note"])

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "demo" in text and "Demo" in text
        assert "1.000" in text
        assert "m = 1.5" in text
        assert "a note" in text
        assert "figX" in text

    def test_render_without_charts(self):
        text = self.make().render(charts=False)
        assert "figX" in text          # the series table remains
        assert "|" in text

    def test_figure_lookup(self):
        result = self.make()
        assert result.figure("figX").title == "t"
        with pytest.raises(AnalysisError):
            result.figure("nope")

    def test_check_fidelity(self):
        assert check_fidelity("fast") == "fast"
        assert check_fidelity("paper") == "paper"
        with pytest.raises(AnalysisError):
            check_fidelity("ludicrous")
