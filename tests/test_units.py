"""Unit parsing and formatting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import UnitError, format_quantity, parse_quantity


class TestParseQuantity:
    @pytest.mark.parametrize("text,expected", [
        ("100k", 100e3),
        ("1p", 1e-12),
        ("320n", 320e-9),
        ("1.2u", 1.2e-6),
        ("2.5", 2.5),
        ("5KOhm", 5e3),
        ("100kOhm", 100e3),
        ("1pF", 1e-12),
        ("500MHz", 500e6),
        ("1GHz", 1e9),
        ("2meg", 2e6),
        ("-3m", -3e-3),
        ("1e-9", 1e-9),
        ("1.5e3", 1500.0),
        ("10f", 10e-15),
        ("0", 0.0),
        ("3V", 3.0),
        ("+2k", 2000.0),
    ])
    def test_strings(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected, rel=1e-12)

    def test_numbers_pass_through(self):
        assert parse_quantity(42) == 42.0
        assert parse_quantity(1.5e-9) == 1.5e-9

    @pytest.mark.parametrize("bad", ["", "k", "1x2", "abc", "1..2", "--3", "1 2"])
    def test_malformed_raises(self, bad):
        with pytest.raises(UnitError):
            parse_quantity(bad)

    def test_bool_rejected(self):
        with pytest.raises(UnitError):
            parse_quantity(True)

    def test_none_rejected(self):
        with pytest.raises(UnitError):
            parse_quantity(None)

    def test_unknown_unit_rejected(self):
        with pytest.raises(UnitError):
            parse_quantity("3parsec")

    @given(st.floats(min_value=-1e15, max_value=1e15,
                     allow_nan=False, allow_infinity=False))
    def test_float_roundtrip(self, value):
        assert parse_quantity(value) == value


class TestFormatQuantity:
    @pytest.mark.parametrize("value,unit,expected", [
        (100e3, "Ohm", "100kOhm"),
        (1e-12, "F", "1pF"),
        (2.5, "V", "2.5V"),
        (0, "A", "0A"),
        (320e-9, "m", "320nm"),
    ])
    def test_known_values(self, value, unit, expected):
        assert format_quantity(value, unit) == expected

    @given(st.floats(min_value=1e-15, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_within_format_precision(self, value):
        text = format_quantity(value)
        parsed = parse_quantity(text)
        assert parsed == pytest.approx(value, rel=5e-3)

    def test_negative(self):
        text = format_quantity(-4.7e3, "Ohm")
        assert parse_quantity(text) == pytest.approx(-4.7e3, rel=1e-6)

    def test_non_finite(self):
        assert "inf" in format_quantity(math.inf)
