"""Technology helpers and true end-to-end spice-engine perceptron runs."""

import pytest

from repro.core import DifferentialPwmPerceptron, PwmPerceptron
from repro.tech import (
    NMOS_UMC65,
    PMOS_UMC65,
    TABLE1_SIZING,
    TechSizing,
    table1_parameters,
)


class TestTechSizing:
    def test_defaults_match_paper_table1(self):
        s = TABLE1_SIZING
        assert s.nmos_width == pytest.approx(320e-9)
        assert s.pmos_width == pytest.approx(865e-9)
        assert s.length == pytest.approx(1.2e-6)
        assert s.cout == pytest.approx(1e-12)
        assert s.rout == pytest.approx(100e3)
        assert s.vdd == 2.5

    def test_from_values_parses_quantities(self):
        s = TechSizing.from_values(nmos_width="640n", rout="50k",
                                   cout="2p", vdd="3.3")
        assert s.nmos_width == pytest.approx(640e-9)
        assert s.rout == pytest.approx(50e3)
        assert s.cout == pytest.approx(2e-12)
        assert s.vdd == pytest.approx(3.3)

    def test_table1_echo_strings(self):
        echo = table1_parameters()
        assert "320nm" in echo["Transistors width"]
        assert "1pF" in echo["Output capacitor"]

    def test_device_polarity_pairing(self):
        assert NMOS_UMC65.polarity == "nmos"
        assert PMOS_UMC65.polarity == "pmos"
        assert NMOS_UMC65.vt0 > 0 > PMOS_UMC65.vt0


class TestSpiceEndToEnd:
    """The perceptron APIs driven through the transistor engine —
    the slowest but most faithful path, exercised end to end."""

    def test_unsigned_perceptron_decision(self):
        p = PwmPerceptron([7, 3], theta=4.0)
        high = p.decide([0.9, 0.9], engine="spice", steps_per_period=60)
        low = p.decide([0.1, 0.1], engine="spice", steps_per_period=60)
        assert high.fired and not low.fired
        assert high.v_out > high.v_threshold > 0
        assert high.adder.power > 0

    def test_differential_perceptron_decision(self):
        p = DifferentialPwmPerceptron([6, -5], bias=0)
        assert p.predict([0.9, 0.1], engine="spice",
                         steps_per_period=60) == 1
        assert p.predict([0.1, 0.9], engine="spice",
                         steps_per_period=60) == 0

    def test_engines_agree_on_decisions(self):
        p = DifferentialPwmPerceptron([5, -3], bias=1)
        for x in ([0.8, 0.2], [0.15, 0.95]):
            behavioral = p.predict(x)
            spice = p.predict(x, engine="spice", steps_per_period=60)
            assert behavioral == spice
