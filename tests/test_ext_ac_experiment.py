"""The AC-characterisation experiment (fast fidelity)."""

import pytest

from repro.experiments import run_experiment


def test_pole_tracks_hand_value():
    res = run_experiment("ext_ac", fidelity="fast")
    assert res.metrics["pole_ratio[100k/1.0p]"] == pytest.approx(1.0,
                                                                 abs=0.15)


def test_pole_scales_with_cout():
    res = run_experiment("ext_ac", fidelity="fast")
    ratio = res.metrics["pole_MHz[100k/1.0p]"] / \
        res.metrics["pole_MHz[100k/10.0p]"]
    assert ratio == pytest.approx(10.0, rel=0.1)


def test_small_rout_pole_shifted_by_transistor_resistance():
    res = run_experiment("ext_ac", fidelity="fast")
    # At 5k the device output resistance is no longer negligible, so
    # the measured pole sits well below the ideal-R hand value.
    assert res.metrics["pole_ratio[5k/1.0p]"] < 0.7
