"""The asyncio serving plane: scheduler, transport, pool, loadgen.

Pins the guarantees the transport rewrite rests on:

* the :class:`AsyncMicroBatcher` delivers exactly the handler's
  answers under coalescing, deadline flushes, oversized-request
  splitting, and shutdown with in-flight futures;
* the asyncio transport answers **byte-identically** to the threaded
  one — success and error bodies alike — so clients cannot tell the
  transports apart (the upgrade-safety contract);
* ``/predict`` error bodies always carry ``error``/``model``/
  ``engine`` in that order, on both transports;
* schema-v3 artifacts round-trip custom cell designs and older
  documents migrate (v2 → v3, v1 → v3);
* the worker pool dispatches by artifact document with per-process
  caching, and the new gauges show up in the Prometheus exposition;
* the load generator measures both transports without erroring.
"""

from __future__ import annotations

import asyncio
import dataclasses
import http.client
import json
import time

import numpy as np
import pytest

from repro.analysis.datasets import make_blobs
from repro.circuit import AnalysisError
from repro.core.cells import CellDesign
from repro.core.perceptron import DifferentialPwmPerceptron
from repro.core.training import PerceptronTrainer
from repro.core.weighted_adder import AdderConfig
from repro.serve import (
    ARTIFACT_SCHEMA_VERSION,
    AsyncMicroBatcher,
    AsyncPerceptronServer,
    BatchInferenceEngine,
    EngineWorkerPool,
    ModelStore,
    PerceptronServer,
    deserialize_model,
    serialize_model,
)
from repro.serve.artifacts import artifact_hash, upgrade_artifact
from repro.serve.loadgen import run_closed_loop, run_open_loop
from repro.serve.pool import _pool_margins
from repro.telemetry.metrics import validate_prometheus_text

ENGINE = BatchInferenceEngine()


def _raw(host, port, method, path, body=None):
    """One request, raw response bytes (the byte-identity probe)."""
    conn = http.client.HTTPConnection(host, port, timeout=15)
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    status, data = response.status, response.read()
    conn.close()
    return status, data


# -- the async scheduler ---------------------------------------------------


class TestAsyncMicroBatcher:
    @staticmethod
    def _handler(calls):
        def handler(features, vdds):
            calls.append((features.copy(),
                          None if vdds is None else vdds.copy()))
            return features[:, 0] * 2.0
        return handler

    def test_needs_running_loop(self):
        with pytest.raises(AnalysisError, match="running event loop"):
            AsyncMicroBatcher(lambda f, v: f[:, 0])

    def test_coalesces_across_submitters(self):
        async def scenario():
            calls = []
            batcher = AsyncMicroBatcher(self._handler(calls),
                                        max_batch=8, max_latency=0.05)
            rows = [np.full((2, 3), k, dtype=float) for k in range(4)]
            results = await asyncio.gather(
                *[batcher.submit(r) for r in rows])
            return calls, rows, results

        calls, rows, results = asyncio.run(scenario())
        # 4 x 2 rows fill max_batch exactly: one flush, in order.
        assert len(calls) == 1 and calls[0][0].shape == (8, 3)
        for row, result in zip(rows, results):
            assert np.array_equal(result, row[:, 0] * 2.0)

    def test_deadline_flushes_partial_batch(self):
        async def scenario():
            calls = []
            batcher = AsyncMicroBatcher(self._handler(calls),
                                        max_batch=64, max_latency=0.005)
            t0 = time.perf_counter()
            result = await batcher.submit(np.array([[1.0, 2.0]]))
            return calls, result, time.perf_counter() - t0

        calls, result, elapsed = asyncio.run(scenario())
        assert len(calls) == 1
        assert np.array_equal(result, [2.0])
        assert elapsed >= 0.004   # waited for the deadline, not forever

    def test_deadline_with_empty_queue_is_noop(self):
        async def scenario():
            batcher = AsyncMicroBatcher(self._handler([]), max_batch=4,
                                        max_latency=0.002)
            # Fill to max_batch: the size trigger flushes synchronously
            # and cancels the timer...
            tasks = [asyncio.ensure_future(
                batcher.submit(np.ones((1, 2)))) for _ in range(4)]
            await asyncio.gather(*tasks)
            assert not batcher._queue
            # ...and a deadline callback racing the cancel must
            # tolerate finding nothing to flush.
            batcher._on_deadline()
            await asyncio.sleep(0.01)
            # The batcher still works afterwards.
            return await batcher.submit(np.array([[3.0, 0.0]]))

        assert np.array_equal(asyncio.run(scenario()), [6.0])

    def test_oversized_request_splits_across_batches(self):
        async def scenario():
            calls = []
            batcher = AsyncMicroBatcher(self._handler(calls),
                                        max_batch=8, max_latency=0.005)
            X = np.arange(40.0).reshape(20, 2)
            result = await batcher.submit(X, vdd=1.5)
            return calls, X, result, batcher.stats

        calls, X, result, stats = asyncio.run(scenario())
        # 20 rows through an 8-row envelope: 8 + 8 + 4.
        assert [c[0].shape[0] for c in calls] == [8, 8, 4]
        assert stats.max_batch_rows <= 8
        assert np.array_equal(result, X[:, 0] * 2.0)  # order preserved
        for _, vdds in calls:                          # vdd rides along
            assert vdds is not None and np.all(vdds == 1.5)

    def test_stop_drains_in_flight_futures(self):
        async def scenario():
            calls = []
            batcher = AsyncMicroBatcher(self._handler(calls),
                                        max_batch=64, max_latency=5.0)
            tasks = [asyncio.ensure_future(
                batcher.submit(np.full((1, 2), k, dtype=float)))
                for k in range(3)]
            await asyncio.sleep(0)     # let the submits enqueue
            batcher.stop(drain=True)   # long before any deadline
            results = await asyncio.gather(*tasks)
            with pytest.raises(AnalysisError, match="not running"):
                await batcher.submit(np.ones((1, 2)))
            return calls, results

        calls, results = asyncio.run(scenario())
        assert len(calls) == 1 and calls[0][0].shape == (3, 2)
        assert [float(r[0]) for r in results] == [0.0, 2.0, 4.0]

    def test_stop_without_drain_fails_pending_futures(self):
        async def scenario():
            batcher = AsyncMicroBatcher(self._handler([]),
                                        max_batch=64, max_latency=5.0)
            task = asyncio.ensure_future(
                batcher.submit(np.ones((1, 2))))
            await asyncio.sleep(0)
            batcher.stop(drain=False)
            with pytest.raises(AnalysisError, match="stopped"):
                await task

        asyncio.run(scenario())

    def test_handler_error_propagates_to_batch(self):
        async def scenario():
            def broken(features, vdds):
                raise ValueError("flush exploded")

            batcher = AsyncMicroBatcher(broken, max_batch=2,
                                        max_latency=0.002)
            with pytest.raises(ValueError, match="flush exploded"):
                await batcher.submit(np.ones((2, 2)))
            return batcher.stats.batches

        assert asyncio.run(scenario()) == 1

    def test_validation(self):
        async def scenario():
            with pytest.raises(AnalysisError):
                AsyncMicroBatcher(lambda f, v: f, max_batch=0)
            with pytest.raises(AnalysisError):
                AsyncMicroBatcher(lambda f, v: f, max_latency=-1)
            batcher = AsyncMicroBatcher(lambda f, v: f[:, 0])
            with pytest.raises(AnalysisError):
                await batcher.submit(np.empty((0, 2)))

        asyncio.run(scenario())


# -- the asyncio transport --------------------------------------------------


@pytest.fixture(scope="class")
def dual_stack(request, tmp_path_factory):
    """One store, one model, both transports serving it."""
    data = make_blobs(n_per_class=20, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=40).perceptron
    store = ModelStore(tmp_path_factory.mktemp("models"))
    store.save("demo", model)
    threaded = PerceptronServer(store, port=0, max_batch=16,
                                max_latency=0.002).start()
    aio = AsyncPerceptronServer(store, port=0, max_batch=16,
                                max_latency=0.002, workers=0).start()
    request.cls.data = data
    request.cls.model = model
    request.cls.store = store
    request.cls.threaded = threaded
    request.cls.aio = aio
    yield
    aio.close()
    threaded.close()


@pytest.mark.usefixtures("dual_stack")
class TestTransportByteIdentity:
    """Clients must not be able to tell the transports apart."""

    def _both(self, method, path, body=None):
        s1, b1 = _raw(self.threaded.host, self.threaded.port, method,
                      path, body)
        s2, b2 = _raw(self.aio.host, self.aio.port, method, path, body)
        return (s1, b1), (s2, b2)

    def test_predict_success_bodies_identical(self):
        for payload in (
                {"model": "demo", "inputs": self.data.X[:5].tolist()},
                {"model": "demo", "inputs": [0.2, 0.8], "vdd": 1.2},
                {"model": "demo", "inputs": self.data.X.tolist(),
                 "vdd": 2.0}):
            body = json.dumps(payload).encode()
            threaded, aio = self._both("POST", "/predict", body)
            assert threaded == aio
            assert threaded[0] == 200

    def test_predict_error_bodies_identical(self):
        cases = [
            json.dumps(p).encode() for p in (
                {"model": "nope", "inputs": [[0.1, 0.2]]},
                {"inputs": [[0.1, 0.2]]},
                {"model": "demo"},
                {"model": "demo", "inputs": [[0.1]]},
                {"model": "demo", "inputs": [[0.1, 0.2]], "vdd": -2},
                {"model": "demo", "inputs": [[0.1, 0.2]],
                 "engine": "bogus"},
                {"model": "demo", "inputs": [[0.1, 0.2]],
                 "solver": "sparse"})
        ] + [b"{not json", b""]
        for body in cases:
            threaded, aio = self._both("POST", "/predict", body)
            assert threaded == aio, body
            assert threaded[0] >= 400

    def test_get_endpoints_identical(self):
        for path in ("/healthz", "/models", "/engines", "/experiments",
                     "/experiments/table1", "/campaigns", "/nope"):
            threaded, aio = self._both("GET", path)
            assert threaded == aio, path


@pytest.mark.usefixtures("dual_stack")
class TestErrorShapeContract:
    """Every /predict error body: error, model, engine — in order."""

    SERVERS = ("threaded", "aio")

    def _post_pairs(self, server, payload):
        status, raw = _raw(server.host, server.port, "POST", "/predict",
                           json.dumps(payload).encode())
        return status, json.loads(raw,
                                  object_pairs_hook=lambda p: p)

    def test_error_bodies_carry_model_and_engine(self):
        for name in self.SERVERS:
            server = getattr(self, name)
            for payload, model, engine in (
                    ({"model": "nope", "inputs": [[0.1, 0.2]]},
                     "nope", "behavioral"),
                    ({"model": "demo", "inputs": [[0.1]],
                      "engine": "rc"}, "demo", "rc"),
                    ({"inputs": [[0.1, 0.2]]}, None, "behavioral"),
                    ({"model": "demo"}, "demo", "behavioral")):
                status, pairs = self._post_pairs(server, payload)
                assert status >= 400
                assert [k for k, _ in pairs] == \
                    ["error", "model", "engine"], (name, payload)
                fields = dict(pairs)
                assert fields["model"] == model
                assert fields["engine"] == engine

    def test_success_bodies_unchanged_by_contract(self):
        for name in self.SERVERS:
            server = getattr(self, name)
            status, raw = _raw(server.host, server.port, "POST",
                               "/predict",
                               json.dumps({"model": "demo",
                                           "inputs": [[0.3, 0.7]]
                                           }).encode())
            assert status == 200
            assert list(json.loads(raw)) == \
                ["model", "predictions", "margins", "count", "engine",
                 "solver"]


@pytest.mark.usefixtures("dual_stack")
class TestAioTransport:
    def _get(self, path, headers=None):
        conn = http.client.HTTPConnection(self.aio.host, self.aio.port,
                                          timeout=15)
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        status, raw = response.status, response.read()
        conn.close()
        return status, raw

    def test_predict_matches_engine(self):
        X = self.data.X
        status, raw = _raw(self.aio.host, self.aio.port, "POST",
                           "/predict",
                           json.dumps({"model": "demo",
                                       "inputs": X.tolist()}).encode())
        body = json.loads(raw)
        assert status == 200
        assert body["predictions"] == \
            [int(v) for v in ENGINE.predict(self.model, X)]
        assert np.allclose(body["margins"],
                           ENGINE.margins(self.model, X))

    def test_keep_alive_reuses_one_connection(self):
        conn = http.client.HTTPConnection(self.aio.host, self.aio.port,
                                          timeout=15)
        payload = json.dumps({"model": "demo",
                              "inputs": [[0.4, 0.6]]}).encode()
        for _ in range(5):
            conn.request("POST", "/predict", body=payload,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.read()
            # HTTP/1.1 keep-alive: the server must not close on us.
            assert not response.will_close
        conn.close()

    def test_concurrent_connections_coalesce(self):
        """Rows from different connections ride shared batches."""
        before = self.aio.batcher_metrics().get("demo",
                                                {"batches": 0,
                                                 "rows": 0})

        async def blast():
            async def one():
                reader, writer = await asyncio.open_connection(
                    self.aio.host, self.aio.port)
                body = json.dumps({"model": "demo",
                                   "inputs": [[0.5, 0.5]]}).encode()
                head = (f"POST /predict HTTP/1.1\r\n"
                        f"Host: x\r\nContent-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n"
                        ).encode() + body
                writer.write(head)
                await writer.drain()
                raw = await reader.readuntil(b"\r\n\r\n")
                length = int([ln.split(b":")[1] for ln in
                              raw.split(b"\r\n")
                              if ln.lower().startswith(
                                  b"content-length")][0])
                await reader.readexactly(length)
                writer.close()

            await asyncio.gather(*[one() for _ in range(12)])

        asyncio.run(blast())
        after = self.aio.batcher_metrics()["demo"]
        new_rows = after["rows"] - before["rows"]
        new_batches = after["batches"] - before["batches"]
        assert new_rows == 12
        assert new_batches < 12    # coalescing actually happened

    def test_prometheus_gauges_exposed(self):
        time.sleep(0.3)            # one heartbeat interval
        status, raw = self._get("/metrics?format=prometheus")
        text = raw.decode()
        assert status == 200
        validate_prometheus_text(text)
        for gauge in ("repro_eventloop_lag_seconds",
                      "repro_worker_pool_queue_depth",
                      "repro_open_connections"):
            assert f"# TYPE {gauge} gauge" in text
            assert any(line.startswith(gauge)
                       for line in text.splitlines()
                       if not line.startswith("#")), gauge

    def test_rc_engine_served_off_the_event_loop(self):
        X = [[0.3, 0.8]]
        status, raw = _raw(self.aio.host, self.aio.port, "POST",
                           "/predict",
                           json.dumps({"model": "demo", "inputs": X,
                                       "engine": "rc"}).encode())
        body = json.loads(raw)
        assert status == 200 and body["engine"] == "rc"
        expected = ENGINE.model_margins(self.model, np.asarray(X),
                                        engine="rc")
        assert np.allclose(body["margins"], expected)

    def test_hot_reload_after_reexport(self):
        data = self.data
        retrained = PerceptronTrainer(2, seed=99).fit(
            data.X, data.y, epochs=10).perceptron
        self.store.save("reload-demo", self.model)
        payload = json.dumps({"model": "reload-demo",
                              "inputs": data.X[:3].tolist()}).encode()
        _, first = _raw(self.aio.host, self.aio.port, "POST",
                        "/predict", payload)
        time.sleep(0.01)           # ensure a distinct mtime
        self.store.save("reload-demo", retrained)
        _, second = _raw(self.aio.host, self.aio.port, "POST",
                         "/predict", payload)
        expected = ENGINE.margins(retrained, data.X[:3])
        assert np.allclose(json.loads(second)["margins"], expected)
        if not np.allclose(expected,
                           ENGINE.margins(self.model, data.X[:3])):
            assert first != second

    def test_experiment_run_over_aio(self):
        status, raw = _raw(self.aio.host, self.aio.port, "POST",
                           "/experiments/table1/run",
                           json.dumps({"fidelity": "fast"}).encode())
        body = json.loads(raw)
        assert status == 200
        assert body["experiment_id"] == "table1"
        assert body["result"]["experiment_id"] == "table1"

    def test_workers_validation(self):
        with pytest.raises(AnalysisError):
            AsyncPerceptronServer(self.store, workers=-1)

    def test_bind_failure_surfaces_on_both_entry_points(self):
        # A port collision must raise loudly, not exit a silent 0 —
        # both from start() (background thread) and run() (CLI path).
        clash = AsyncPerceptronServer(self.store, port=self.aio.port)
        with pytest.raises(OSError):
            clash.start()
        with pytest.raises(OSError):
            clash.run()


# -- worker pool ------------------------------------------------------------


class TestEngineWorkerPool:
    def test_pool_margins_match_in_process(self, tmp_path):
        data = make_blobs(n_per_class=10, n_features=2,
                          separation=0.35, spread=0.09, seed=3)
        model = PerceptronTrainer(2, seed=3).fit(data.X, data.y,
                                                 epochs=20).perceptron
        doc = serialize_model(model, name="pool-demo")
        X = data.X[:6]
        expected = ENGINE.model_margins(model, X)
        # The worker function itself (what the pool pickles over).
        direct = _pool_margins(doc, X, None, "behavioral", "auto")
        assert np.allclose(direct, expected)
        pool = EngineWorkerPool(workers=1)
        try:
            future = pool.submit(doc, X, None, "behavioral", "auto")
            assert np.allclose(future.result(timeout=120), expected)
            deadline = time.time() + 5
            while pool.queue_depth and time.time() < deadline:
                time.sleep(0.01)
            assert pool.queue_depth == 0
            assert pool.completed == 1
        finally:
            pool.shutdown()

    def test_disabled_pool_refuses_submits(self):
        pool = EngineWorkerPool(workers=0)
        assert not pool.enabled
        with pytest.raises(RuntimeError):
            pool.submit({}, np.ones((1, 2)), None, "behavioral", "auto")


# -- schema v3 artifacts ----------------------------------------------------


class TestArtifactSchemaV3:
    def _custom_cell(self):
        base = CellDesign()
        return dataclasses.replace(
            base,
            nmos=dataclasses.replace(base.nmos, vt0=0.55, kp=110e-6),
            pmos=dataclasses.replace(base.pmos, vt0=-0.62),
            nmos_width=3.2e-6, pmos_width=7.5e-6, length=0.6e-6,
            rout=55e3, scale=0.8)

    def test_custom_cell_round_trip_exact(self):
        cell = self._custom_cell()
        config = AdderConfig(vdd=1.8, cell=cell)
        p = DifferentialPwmPerceptron([3, -2], bias=1, config=config)
        doc = serialize_model(p, name="custom")
        assert doc["schema"] == ARTIFACT_SCHEMA_VERSION == 3
        q = deserialize_model(doc)
        assert q.config.cell == cell
        assert q.config.vdd == 1.8
        X = np.array([[0.2, 0.9], [0.7, 0.1]])
        assert np.array_equal(ENGINE.margins(p, X),
                              ENGINE.margins(q, X))

    def test_v2_document_migrates_to_table1_cell(self):
        p = DifferentialPwmPerceptron([1, 2], bias=0)
        doc = serialize_model(p, name="legacy")
        del doc["config"]["cell"]          # what a v2 file looked like
        doc["schema"] = 2
        doc["hash"] = artifact_hash(doc)
        upgraded = upgrade_artifact(doc)
        assert upgraded["schema"] == 3
        assert "cell" in upgraded["config"]
        assert upgraded["hash"] == artifact_hash(upgraded)
        q = deserialize_model(upgraded)
        assert q.config.cell == CellDesign()   # the implicit Table I

    def test_v2_artifact_loads_from_store(self, tmp_path):
        p = DifferentialPwmPerceptron([2, -1], bias=1)
        store = ModelStore(tmp_path)
        path = store.save("legacy", p)
        doc = json.loads(path.read_text())
        del doc["config"]["cell"]
        doc["schema"] = 2
        doc["hash"] = artifact_hash(doc)
        path.write_text(json.dumps(doc))
        q = store.load("legacy")
        assert q.weights == p.weights and q.bias == p.bias
        assert q.config.cell == CellDesign()

    def test_v1_chains_all_the_way_to_v3(self):
        p = DifferentialPwmPerceptron([1, 1], bias=0)
        doc = serialize_model(p)
        doc["schema"] = 1
        del doc["config"]["cell"]
        doc["calibration"] = [0.1, 0.9]    # v1: one list, both banks
        del doc["comparator"]
        upgraded = upgrade_artifact(doc)
        assert upgraded["schema"] == 3
        assert upgraded["calibration"] == {"pos": [0.1, 0.9],
                                           "neg": [0.1, 0.9]}
        assert upgraded["comparator"] == {"offset": 0.0,
                                          "hysteresis": 0.0}
        assert "cell" in upgraded["config"]
        deserialize_model(upgraded)        # rebuilds cleanly

    def test_unsupported_schema_rejected(self):
        with pytest.raises(AnalysisError, match="unsupported artifact"):
            upgrade_artifact({"schema": 99, "kind": "perceptron"})


# -- load generator ---------------------------------------------------------


@pytest.mark.usefixtures("dual_stack")
class TestLoadgen:
    def test_closed_loop_reports(self):
        report = run_closed_loop(self.aio.url, "demo",
                                 self.data.X[:4].tolist(),
                                 connections=4, duration=0.3)
        assert report["mode"] == "closed"
        assert report["requests"] > 0 and report["errors"] == 0
        assert report["connection_failures"] == 0
        assert report["rows_per_s"] > 0
        assert set(report["latency_ms"]) == \
            {"mean", "p50", "p95", "p99", "max"}
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        fill = report["batch_fill"]["demo"]
        assert fill["rows"] == report["requests"] * 4
        assert sum(fill["batch_rows_hist"].values()) == fill["batches"]

    def test_closed_loop_against_threaded_transport(self):
        report = run_closed_loop(self.threaded.url, "demo",
                                 self.data.X[:2].tolist(),
                                 connections=2, duration=0.2)
        assert report["requests"] > 0 and report["errors"] == 0

    def test_open_loop_honours_schedule(self):
        report = run_open_loop(self.aio.url, "demo",
                               self.data.X[:2].tolist(),
                               rate=100.0, connections=4,
                               duration=0.4)
        assert report["mode"] == "open"
        assert report["requests"] == 40      # every scheduled arrival
        assert report["errors"] == 0
        assert report["offered_requests_per_s"] == 100.0
        assert report["offered_rows_per_s"] == 200.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            run_closed_loop("nonsense", "demo", [[0.1, 0.2]])
        with pytest.raises(AnalysisError):
            run_closed_loop(self.aio.url, "demo", [[0.1, 0.2]],
                            connections=0)
        with pytest.raises(AnalysisError):
            run_open_loop(self.aio.url, "demo", [[0.1, 0.2]], rate=0)
