"""Training loop, Fig. 1 feedback step and the MLP extension."""

import numpy as np
import pytest

from repro.analysis import make_blobs, make_logic
from repro.circuit import AnalysisError
from repro.core import (
    AdderConfig,
    DifferentialPwmPerceptron,
    PerceptronTrainer,
    PwmMlp,
    reference_feedback_step,
)


@pytest.fixture(scope="module")
def blobs():
    return make_blobs(n_per_class=40, separation=0.4, spread=0.07, seed=11)


class TestTrainer:
    def test_converges_on_separable_data(self, blobs):
        trainer = PerceptronTrainer(2, seed=5)
        result = trainer.fit(blobs.X, blobs.y, epochs=50)
        assert result.converged
        assert result.final_accuracy == 1.0

    def test_history_records_progress(self, blobs):
        trainer = PerceptronTrainer(2, seed=5)
        result = trainer.fit(blobs.X, blobs.y, epochs=50)
        assert result.history[0].epoch == 0
        assert result.history[-1].errors == 0
        assert all(isinstance(r.weights, list) for r in result.history)

    def test_weights_on_hardware_grid(self, blobs):
        trainer = PerceptronTrainer(2, seed=5)
        result = trainer.fit(blobs.X, blobs.y, epochs=50)
        limit = 7
        for w in result.perceptron.weights:
            assert -limit <= w <= limit
        assert -limit <= result.perceptron.bias <= limit

    def test_validates_inputs(self):
        trainer = PerceptronTrainer(2)
        with pytest.raises(AnalysisError):
            trainer.fit([[0.5]], [0], epochs=1)
        with pytest.raises(AnalysisError):
            trainer.fit([[0.5, 1.5]], [0], epochs=1)
        with pytest.raises(AnalysisError):
            trainer.fit([[0.5, 0.5]], [2], epochs=1)

    def test_trained_model_robust_across_vdd(self, blobs):
        trainer = PerceptronTrainer(2, seed=5)
        p = trainer.fit(blobs.X, blobs.y, epochs=50).perceptron
        for vdd in (1.0, 2.0, 4.0):
            assert trainer.evaluate(p, blobs.X, blobs.y, vdd=vdd) == 1.0

    def test_training_under_varying_supply(self, blobs):
        trainer = PerceptronTrainer(2, seed=6)
        rng = np.random.default_rng(0)
        result = trainer.fit(blobs.X, blobs.y, epochs=60,
                             vdd_sampler=lambda: float(rng.uniform(1.5, 3.5)))
        assert result.final_accuracy >= 0.95

    def test_logic_and_is_learnable(self):
        data = make_logic("and", n_samples=60, seed=3)
        trainer = PerceptronTrainer(2, seed=3)
        result = trainer.fit(data.X, data.y, epochs=80)
        assert result.final_accuracy >= 0.95


class TestReferenceFeedback:
    def test_matching_output_is_stable(self):
        p = DifferentialPwmPerceptron([7, 7], bias=-7)
        x = [0.9, 0.9]
        assert p.predict(x) == 1
        assert reference_feedback_step(p, x, reference=1)

    def test_mismatch_moves_weights_toward_reference(self):
        p = DifferentialPwmPerceptron([0, 0], bias=-2)
        x = [0.9, 0.9]
        assert p.predict(x) == 0
        for _ in range(12):
            if reference_feedback_step(p, x, reference=1):
                break
        assert p.predict(x) == 1

    def test_clipping_at_grid_limits(self):
        p = DifferentialPwmPerceptron([7, 7], bias=7)
        reference_feedback_step(p, [0.9, 0.9], reference=1)
        assert max(p.weights) <= 7


class TestMlp:
    def test_xor_solvable_with_hidden_layer(self):
        data = make_logic("xor", n_samples=40, noise=0.03, seed=2)
        solved = False
        for seed in range(6):
            mlp = PwmMlp(2, 6, seed=seed)
            mlp.fit(data.X, data.y, epochs=80)
            if mlp.accuracy(data.X, data.y) >= 0.95:
                solved = True
                break
        assert solved, "no seed solved XOR"

    def test_predict_before_fit_raises(self):
        mlp = PwmMlp(2, 3, seed=0)
        with pytest.raises(AnalysisError):
            mlp.predict([0.5, 0.5])

    def test_hidden_features_are_duties(self, blobs):
        mlp = PwmMlp(2, 4, seed=0)
        H = mlp.hidden_features(blobs.X[:10])
        assert H.shape == (10, 4)
        assert H.min() >= 0.0 and H.max() <= 1.0

    def test_transistor_count_grows_with_layers(self, blobs):
        mlp = PwmMlp(2, 4, seed=0)
        before = mlp.transistor_count
        mlp.fit(blobs.X, blobs.y, epochs=10)
        assert mlp.transistor_count > before
