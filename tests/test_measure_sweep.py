"""Measurement helpers and the sweep harness."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import (
    AnalysisError,
    SweepResult,
    flatness,
    linear_fit,
    max_linearity_error,
    r_squared,
    relative_error,
    sweep,
    sweep1d,
)


class TestLinearity:
    def test_perfect_line(self):
        x = np.linspace(0, 1, 11)
        y = 2 * x + 1
        slope, intercept = linear_fit(x, y)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r_squared(x, y) == pytest.approx(1.0)
        assert max_linearity_error(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_curved_data_scores_lower(self):
        x = np.linspace(0, 1, 21)
        assert r_squared(x, x**3) < r_squared(x, x)

    def test_needs_two_points(self):
        with pytest.raises(AnalysisError):
            linear_fit([1.0], [2.0])

    @given(st.floats(min_value=1e-3, max_value=10),
           st.floats(min_value=-10, max_value=10))
    def test_r_squared_of_any_line_is_one(self, slope, intercept):
        # Slopes below ~1e-3 degenerate into constant series where r^2
        # is dominated by floating-point noise, hence the lower bound.
        x = np.linspace(0, 1, 7)
        y = slope * x + intercept
        assert r_squared(x, y) == pytest.approx(1.0, abs=1e-9)


class TestFlatness:
    def test_constant_series_is_flat(self):
        assert flatness([3.0, 3.0, 3.0]) == 0.0

    def test_spread_measured_relative(self):
        assert flatness([1.0, 1.1]) == pytest.approx(0.1 / 1.05)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            flatness([])


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert relative_error(0.2, 0.0) == pytest.approx(0.2)


class TestSweep:
    def test_product_grid(self):
        result = sweep(lambda a, b: {"sum": a + b},
                       {"a": [1, 2], "b": [10, 20]})
        assert len(result) == 4
        assert result.column("sum") == [11, 21, 12, 22]

    def test_where_filter(self):
        result = sweep(lambda a, b: {"sum": a + b},
                       {"a": [1, 2], "b": [10, 20]})
        only_a1 = result.where(a=1)
        assert len(only_a1) == 2
        assert only_a1.column("b") == [10, 20]

    def test_missing_column_raises(self):
        result = sweep1d(lambda v: {"y": v}, "v", [1, 2])
        with pytest.raises(AnalysisError):
            result.column("nope")

    def test_error_recorded_when_requested(self):
        def sometimes_fails(v):
            if v == 2:
                raise ValueError("boom")
            return {"y": v * v}

        result = sweep1d(sometimes_fails, "v", [1, 2, 3], on_error="record")
        assert len(result) == 3
        assert "error" in result.records[1]
        assert result.records[0]["y"] == 1

    def test_error_raises_by_default(self):
        def fails(v):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            sweep1d(fails, "v", [1])

    def test_bad_on_error_mode(self):
        with pytest.raises(AnalysisError):
            sweep(lambda v: {}, {"v": [1]}, on_error="ignore")

    def test_sweep1d_equivalent_to_sweep(self):
        a = sweep1d(lambda v: {"y": 2 * v}, "v", [1, 2, 3])
        b = sweep(lambda v: {"y": 2 * v}, {"v": [1, 2, 3]})
        assert a.column("y") == b.column("y")
