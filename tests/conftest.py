"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.circuit import Capacitor, Circuit, Mosfet, PwmVoltage, Resistor, Vdc
from repro.tech import NMOS_UMC65, PMOS_UMC65, TABLE1_SIZING


@pytest.fixture
def rc_circuit() -> Circuit:
    """1 V step into a 1k/1u RC (tau = 1 ms)."""
    c = Circuit("rc")
    c.add(Vdc("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "out", "1k"))
    c.add(Capacitor("C1", "out", "0", "1u"))
    return c


def make_transcoding_inverter(duty: float, *, vdd: float = 2.5,
                              frequency: float = 500e6,
                              rout: "float | None" = 100e3,
                              cout: float = 1e-12,
                              amplitude: "float | None" = None) -> Circuit:
    """Paper Fig. 2 cell: inverter + Rout + Cout driven by a PWM source."""
    c = Circuit("transcoding_inverter")
    c.add(Vdc("VDD", "vdd", "0", vdd))
    c.add(PwmVoltage("VIN", "in", "0", v_high=amplitude or vdd,
                     frequency=frequency, duty=duty))
    c.add(Mosfet("MP", "drain", "in", "vdd", model=PMOS_UMC65,
                 w=TABLE1_SIZING.pmos_width, l=TABLE1_SIZING.length))
    c.add(Mosfet("MN", "drain", "in", "0", model=NMOS_UMC65,
                 w=TABLE1_SIZING.nmos_width, l=TABLE1_SIZING.length))
    if rout is None:
        c.add(Resistor("ROUT", "drain", "out", 1.0))  # effectively a wire
    else:
        c.add(Resistor("ROUT", "drain", "out", rout))
    c.add(Capacitor("COUT", "out", "0", cout))
    return c


@pytest.fixture
def pwm_inverter_cell() -> Circuit:
    return make_transcoding_inverter(0.5)
