"""Digital baseline: fixed point, gate library, cost and failure models."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import AnalysisError
from repro.digital import (
    DigitalPerceptron,
    V_LOGIC_FAIL,
    from_twos_complement,
    gate,
    gate_delay,
    quantize_unsigned,
    saturating_add,
    to_twos_complement,
)


class TestFixedPoint:
    def test_quantize_endpoints(self):
        assert quantize_unsigned(0.0, 8) == 0
        assert quantize_unsigned(1.0, 8) == 255

    def test_quantize_validation(self):
        with pytest.raises(AnalysisError):
            quantize_unsigned(1.5, 8)
        with pytest.raises(AnalysisError):
            quantize_unsigned(0.5, 0)

    @given(st.integers(min_value=-128, max_value=127))
    def test_twos_complement_roundtrip(self, v):
        assert from_twos_complement(to_twos_complement(v, 8), 8) == v

    def test_twos_complement_range_check(self):
        with pytest.raises(AnalysisError):
            to_twos_complement(128, 8)

    def test_saturating_add(self):
        assert saturating_add(120, 50, 8) == 127
        assert saturating_add(-120, -50, 8) == -128
        assert saturating_add(1, 2, 8) == 3


class TestGateLibrary:
    def test_known_counts(self):
        assert gate("INV").transistors == 2
        assert gate("NAND2").transistors == 4
        assert gate("FULL_ADDER").transistors == 28

    def test_unknown_gate(self):
        with pytest.raises(AnalysisError):
            gate("NAND9")

    def test_switching_energy_scales_with_vdd_squared(self):
        g = gate("NAND2")
        assert g.switching_energy(2.0) == pytest.approx(
            4 * g.switching_energy(1.0))

    def test_delay_increases_as_supply_drops(self):
        assert gate_delay(1.0) > gate_delay(2.5)

    def test_delay_infinite_at_threshold(self):
        assert math.isinf(gate_delay(0.45))
        assert math.isinf(gate_delay(0.3))

    def test_delay_normalised_at_nominal(self):
        assert gate_delay(2.5) == pytest.approx(40e-12, rel=1e-9)


class TestDigitalPerceptron:
    def test_functional_classification(self):
        d = DigitalPerceptron([7, 7, 7], theta=10.0, input_bits=8)
        assert d.predict([0.9, 0.9, 0.9]) == 1
        assert d.predict([0.1, 0.1, 0.1]) == 0

    def test_weighted_sum_exact(self):
        d = DigitalPerceptron([1, 2], theta=0.0, input_bits=4)
        # codes: 0.5 -> round(0.5*15)=8; 1.0 -> 15
        assert d.weighted_sum([0.5, 1.0]) == 8 * 1 + 15 * 2

    def test_weight_validation(self):
        with pytest.raises(AnalysisError):
            DigitalPerceptron([9], theta=0.0, n_bits=3)
        with pytest.raises(AnalysisError):
            DigitalPerceptron([], theta=0.0)

    def test_cost_has_expected_blocks(self):
        d = DigitalPerceptron([7, 7, 7], theta=10.0, input_bits=8, n_bits=3)
        cost = d.cost()
        assert cost.gates["AND2"] == 3 * 8 * 3
        assert cost.transistors > 1000
        assert cost.critical_path_units > 5

    def test_pwm_advantage_is_order_of_magnitude(self):
        d = DigitalPerceptron([7, 7, 7], theta=10.0, input_bits=8, n_bits=3)
        assert d.transistor_count > 20 * 54

    def test_fails_below_logic_collapse(self):
        d = DigitalPerceptron([7, 7, 7], theta=10.0)
        assert d.predict([0.9, 0.9, 0.9], vdd=0.5) == 0

    def test_metastable_below_timing_closure(self):
        d = DigitalPerceptron([7] * 6, theta=10.0, input_bits=10,
                              clock_frequency=1.5e9)
        v_min = d.min_reliable_vdd()
        assert v_min > V_LOGIC_FAIL
        rng = np.random.default_rng(1)
        outs = {d.predict([0.9] * 6, vdd=v_min * 0.9, rng=rng)
                for _ in range(40)}
        assert outs == {0, 1}  # garbage, not a constant

    def test_reliable_above_timing_closure(self):
        d = DigitalPerceptron([7, 7, 7], theta=10.0, clock_frequency=100e6)
        v_min = d.min_reliable_vdd()
        assert d.predict([0.9] * 3, vdd=v_min * 1.1) == 1

    def test_max_frequency_monotone_in_vdd(self):
        d = DigitalPerceptron([7, 7, 7], theta=10.0)
        cost = d.cost()
        freqs = [cost.max_frequency(v) for v in (0.8, 1.5, 2.5, 4.0)]
        assert all(b >= a for a, b in zip(freqs, freqs[1:]))

    def test_energy_per_op_scales(self):
        d = DigitalPerceptron([7, 7, 7], theta=10.0)
        cost = d.cost()
        assert cost.energy_per_op(2.5) > cost.energy_per_op(1.0)
