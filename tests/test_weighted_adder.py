"""The weighted adder across all three engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import AnalysisError
from repro.core import AdderConfig, CalibrationModel, WeightedAdder


@pytest.fixture(scope="module")
def adder():
    return WeightedAdder(AdderConfig())


class TestConfig:
    def test_defaults_are_paper_3x3(self):
        cfg = AdderConfig()
        assert cfg.n_inputs == 3 and cfg.n_bits == 3
        assert cfg.cout == pytest.approx(10e-12)
        assert cfg.transistor_count == 54
        assert cfg.weight_limit == 7

    def test_validation(self):
        with pytest.raises(AnalysisError):
            AdderConfig(n_inputs=0)
        with pytest.raises(AnalysisError):
            AdderConfig(cout=0.0)

    def test_transistor_count_scales(self):
        assert AdderConfig(n_inputs=5, n_bits=4).transistor_count == 120


class TestOperandValidation:
    def test_wrong_lengths(self, adder):
        with pytest.raises(AnalysisError):
            adder.evaluate([0.5, 0.5], [7, 7, 7])

    def test_weight_range(self, adder):
        with pytest.raises(AnalysisError):
            adder.evaluate([0.5] * 3, [8, 0, 0])

    def test_duty_range(self, adder):
        with pytest.raises(AnalysisError):
            adder.evaluate([1.5, 0.5, 0.5], [7, 7, 7])

    def test_unknown_engine(self, adder):
        with pytest.raises(AnalysisError):
            adder.evaluate([0.5] * 3, [7] * 3, engine="hspice")


class TestBehavioralEngine:
    def test_matches_eq2(self, adder):
        r = adder.evaluate([0.7, 0.8, 0.9], [7, 7, 7], engine="behavioral")
        assert r.value == pytest.approx(r.theoretical)
        assert r.error == pytest.approx(0.0)

    def test_calibration_applied(self):
        cal = CalibrationModel([0.0, 0.9])
        adder = WeightedAdder(AdderConfig(), calibration=cal)
        r = adder.evaluate([0.5] * 3, [7] * 3, engine="behavioral")
        assert r.value == pytest.approx(0.9 * r.theoretical)


class TestRcEngine:
    def test_close_to_eq2(self, adder):
        for duties, weights in [
            ([0.7, 0.8, 0.9], [7, 7, 7]),
            ([0.5, 0.5, 0.5], [1, 2, 4]),
            ([0.2, 0.6, 0.8], [5, 6, 7]),
        ]:
            r = adder.evaluate(duties, weights, engine="rc")
            assert r.error < 0.03, (duties, weights)

    def test_zero_weights_pull_down(self, adder):
        r = adder.evaluate([0.9, 0.9, 0.9], [0, 0, 0], engine="rc")
        assert r.value == pytest.approx(0.0, abs=1e-6)

    def test_ripple_small_with_10pF(self, adder):
        r = adder.evaluate([0.5] * 3, [7] * 3, engine="rc")
        assert 0 < r.ripple < 0.03

    def test_power_positive_for_mixed_workload(self, adder):
        r = adder.evaluate([0.5] * 3, [7, 3, 1], engine="rc")
        assert r.power > 0

    def test_vdd_override_scales_output(self, adder):
        lo = adder.evaluate([0.6] * 3, [7] * 3, engine="rc", vdd=2.0)
        hi = adder.evaluate([0.6] * 3, [7] * 3, engine="rc", vdd=4.0)
        assert hi.value / lo.value == pytest.approx(2.0, rel=0.03)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=3,
                    max_size=3),
           st.lists(st.integers(min_value=0, max_value=7), min_size=3,
                    max_size=3))
    def test_tracks_eq2_property(self, duties, weights):
        adder = WeightedAdder(AdderConfig())
        r = adder.evaluate(duties, weights, engine="rc")
        # The RC engine deviates from Eq. 2 only through the ~15%
        # Ron asymmetry on a 100k resistor: bounded by ~40 mV.
        assert r.error < 0.04

    def test_monte_carlo_override_hook(self, adder):
        from dataclasses import replace
        cfg = adder.config
        slow = replace(cfg.cell, rout=cfg.cell.rout * 2)
        r_nom = adder.evaluate([0.5] * 3, [7] * 3, engine="rc")
        r_mod = adder.evaluate([0.5] * 3, [7] * 3, engine="rc",
                               cell_overrides={0: slow})
        assert r_mod.value != pytest.approx(r_nom.value, abs=1e-6)


class TestSpiceEngine:
    """Transistor-level: slow, so only the load-bearing checks."""

    def test_netlist_shape(self, adder):
        circuit = adder.build_circuit([0.5] * 3, [7] * 3)
        stats = circuit.stats()
        assert stats["transistors"] == 54
        assert circuit.has_node("out")

    def test_zero_weight_bits_tie_gates_low(self, adder):
        circuit = adder.build_circuit([0.5] * 3, [5] * 3)
        # Weight 5 = bits 101: the middle cell's w port ties to ground.
        el = circuit.element("X0_1.MPB")
        assert el.node_names[1] == "0"

    def test_matches_paper_row1(self, adder):
        r = adder.evaluate([0.7, 0.8, 0.9], [7, 7, 7], engine="spice",
                           steps_per_period=80)
        assert r.value == pytest.approx(2.00, abs=0.08)
        assert 100e-6 < r.power < 2e-3

    def test_low_output_undershoots_like_paper(self, adder):
        r = adder.evaluate([0.5, 0.5, 0.5], [1, 2, 4], engine="spice",
                           steps_per_period=80)
        # Paper: theory 0.42, simulated 0.39 — an undershoot.
        assert r.value < r.theoretical
        assert r.value == pytest.approx(0.39, abs=0.06)
