"""Event-driven RC switch-level solver against analytic results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    AnalysisError,
    Capacitor,
    Circuit,
    PwmVoltage,
    Resistor,
    shooting,
)
from repro.core import RcLeg, RcSwitchSolver


def single_leg(duty, r=10e3, phase=0.0, vdd=2.5):
    return RcLeg(r_up=r, r_down=r, duty=duty, phase=phase, v_up=vdd)


class TestValidation:
    def test_bad_resistances(self):
        with pytest.raises(AnalysisError):
            RcLeg(r_up=0.0, r_down=1.0, duty=0.5)

    def test_bad_duty(self):
        with pytest.raises(AnalysisError):
            RcLeg(r_up=1.0, r_down=1.0, duty=1.5)

    def test_solver_needs_legs(self):
        with pytest.raises(AnalysisError):
            RcSwitchSolver([], cout=1e-12, period=1e-9, vdd=2.5)

    def test_bad_cout(self):
        with pytest.raises(AnalysisError):
            RcSwitchSolver([single_leg(0.5)], cout=0.0, period=1e-9, vdd=2.5)


class TestSingleLeg:
    def test_symmetric_leg_average_equals_duty(self):
        sol = RcSwitchSolver([single_leg(0.3)], cout=1e-12, period=2e-9,
                             vdd=2.5).solve()
        assert sol.average_voltage() == pytest.approx(0.75, rel=1e-6)

    def test_asymmetric_resistances_shift_average(self):
        # Stronger pull-up than pull-down raises the average above
        # duty * vdd.
        leg = RcLeg(r_up=5e3, r_down=20e3, duty=0.5, v_up=2.5)
        sol = RcSwitchSolver([leg], cout=1e-12, period=2e-9, vdd=2.5).solve()
        # Analytic: v = vdd * (d/Ru) / (d/Ru + (1-d)/Rd)
        expected = 2.5 * (0.5 / 5e3) / (0.5 / 5e3 + 0.5 / 20e3)
        assert sol.average_voltage() == pytest.approx(expected, rel=1e-3)

    def test_duty_zero_and_one(self):
        lo = RcSwitchSolver([single_leg(0.0)], cout=1e-12, period=2e-9,
                            vdd=2.5).solve()
        hi = RcSwitchSolver([single_leg(1.0)], cout=1e-12, period=2e-9,
                            vdd=2.5).solve()
        assert lo.average_voltage() == pytest.approx(0.0, abs=1e-9)
        assert hi.average_voltage() == pytest.approx(2.5, abs=1e-9)

    def test_ripple_exact_for_slow_switching(self):
        # Period >> tau: the node swings rail to rail.
        sol = RcSwitchSolver([single_leg(0.5, r=1e3)], cout=1e-12,
                             period=1e-6, vdd=2.5).solve()
        assert sol.ripple() == pytest.approx(2.5, abs=0.01)

    def test_ripple_small_for_fast_switching(self):
        sol = RcSwitchSolver([single_leg(0.5, r=100e3)], cout=10e-12,
                             period=1e-9, vdd=2.5).solve()
        assert sol.ripple() < 0.01

    def test_supply_power_drawn_only_when_up(self):
        sol = RcSwitchSolver([single_leg(0.0)], cout=1e-12, period=2e-9,
                             vdd=2.5).solve()
        assert sol.supply_power() == pytest.approx(0.0, abs=1e-12)

    def test_supply_power_static_divider(self):
        # Two always-on legs, one up one down: a pure resistive divider.
        legs = [RcLeg(r_up=10e3, r_down=10e3, duty=1.0, v_up=2.5),
                RcLeg(r_up=10e3, r_down=10e3, duty=0.0, v_up=2.5)]
        sol = RcSwitchSolver(legs, cout=1e-12, period=2e-9, vdd=2.5).solve()
        assert sol.average_voltage() == pytest.approx(1.25, rel=1e-6)
        # P = Vdd * I = 2.5 * (2.5-1.25)/10k = 312.5 uW
        assert sol.supply_power() == pytest.approx(312.5e-6, rel=1e-6)


class TestMultiLeg:
    def test_conductance_weighted_average(self):
        legs = [RcLeg(r_up=10e3, r_down=10e3, duty=1.0, v_up=2.5),
                RcLeg(r_up=30e3, r_down=30e3, duty=0.0, v_up=2.5)]
        sol = RcSwitchSolver(legs, cout=1e-12, period=2e-9, vdd=2.5).solve()
        # v = vdd * g1/(g1+g2) = 2.5 * (1/10k)/(1/10k + 1/30k) = 1.875
        assert sol.average_voltage() == pytest.approx(1.875, rel=1e-6)

    def test_phases_do_not_change_average(self):
        base = [single_leg(0.4, phase=0.0), single_leg(0.6, phase=0.0)]
        shifted = [single_leg(0.4, phase=0.3), single_leg(0.6, phase=0.7)]
        a = RcSwitchSolver(base, cout=10e-12, period=2e-9, vdd=2.5).solve()
        b = RcSwitchSolver(shifted, cout=10e-12, period=2e-9,
                           vdd=2.5).solve()
        assert a.average_voltage() == pytest.approx(b.average_voltage(),
                                                    abs=1e-3)

    def test_interleaved_phases_reduce_ripple(self):
        aligned = [single_leg(0.5, phase=0.0), single_leg(0.5, phase=0.0)]
        spread = [single_leg(0.5, phase=0.0), single_leg(0.5, phase=0.5)]
        a = RcSwitchSolver(aligned, cout=1e-12, period=2e-9, vdd=2.5).solve()
        b = RcSwitchSolver(spread, cout=1e-12, period=2e-9, vdd=2.5).solve()
        assert b.ripple() < a.ripple()

    def test_waveform_periodicity(self):
        sol = RcSwitchSolver([single_leg(0.35, r=50e3)], cout=1e-12,
                             period=2e-9, vdd=2.5).solve()
        wave = sol.waveform()
        assert wave.y[0] == pytest.approx(wave.y[-1], rel=1e-6)

    def test_matches_transistor_free_spice(self):
        """The RC engine must agree with the MNA engine on the same
        idealised circuit (PWM source + R + C)."""
        duty, r, c, period = 0.6, 10e3, 1e-12, 2e-9
        sol = RcSwitchSolver(
            [RcLeg(r_up=r, r_down=r, duty=duty, v_up=2.5)],
            cout=c, period=period, vdd=2.5).solve()
        ckt = Circuit()
        ckt.add(PwmVoltage("VIN", "in", "0", v_high=2.5, frequency=1 / period,
                           duty=duty, rise_fraction=0.001))
        ckt.add(Resistor("R1", "in", "out", r))
        ckt.add(Capacitor("C1", "out", "0", c))
        pss = shooting(ckt, period, steps_per_period=400)
        assert sol.average_voltage() == pytest.approx(
            pss.average("out"), abs=0.02)


@settings(max_examples=30)
@given(st.floats(min_value=0, max_value=1),
       st.floats(min_value=1e3, max_value=1e6),
       st.floats(min_value=1e-13, max_value=1e-10))
def test_average_always_bounded(duty, r, cout):
    sol = RcSwitchSolver([single_leg(duty, r=r)], cout=cout, period=2e-9,
                         vdd=2.5).solve()
    assert -1e-9 <= sol.average_voltage() <= 2.5 + 1e-9
    assert sol.ripple() >= 0.0
    assert sol.supply_power() >= -1e-15
