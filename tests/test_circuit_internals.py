"""Solver internals: failure paths, conservation laws, spectrum, sources."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    AnalysisError,
    Capacitor,
    Circuit,
    ConvergenceError,
    Idc,
    MnaContext,
    NetlistError,
    PwmVoltage,
    Resistor,
    SingularMatrixError,
    Vdc,
    Vpulse,
    Waveform,
    operating_point,
    settle_average,
    shooting,
    transient,
)


class TestFailurePaths:
    def test_floating_branch_is_held_by_gmin(self):
        # A node connected only through a capacitor has no DC path, but
        # the gmin shunt keeps the matrix solvable (SPICE behaviour).
        c = Circuit()
        c.add(Vdc("V1", "a", "0", 1.0))
        c.add(Capacitor("C1", "a", "b", "1n"))
        op = operating_point(c)
        assert abs(op.voltage("b")) < 1e-6

    def test_voltage_source_loop_is_singular(self):
        # Two ideal sources directly in parallel with different values
        # has no solution; the solver must say so, not return nonsense.
        c = Circuit()
        c.add(Vdc("V1", "a", "0", 1.0))
        c.add(Vdc("V2", "a", "0", 2.0))
        with pytest.raises(ConvergenceError):
            operating_point(c)

    def test_shooting_reports_nonconvergence(self):
        ckt = Circuit()
        ckt.add(PwmVoltage("VIN", "in", "0", v_high=1.0, frequency=1e6,
                           duty=0.5))
        ckt.add(Resistor("R1", "in", "out", "10k"))
        ckt.add(Capacitor("C1", "out", "0", "1u"))  # tau = 10 ms >> T
        with pytest.raises(ConvergenceError):
            # Zero Newton iterations allowed -> must raise, not hang.
            shooting(ckt, period=1e-6, steps_per_period=40,
                     max_iterations=0)

    def test_settle_average_gives_up(self):
        ckt = Circuit()
        ckt.add(PwmVoltage("VIN", "in", "0", v_high=1.0, frequency=1e6,
                           duty=0.5))
        ckt.add(Resistor("R1", "in", "out", "10k"))
        ckt.add(Capacitor("C1", "out", "0", "1u"))
        with pytest.raises(ConvergenceError):
            settle_average(ckt, 1e-6, "out", chunk_periods=2, max_chunks=2,
                           tol=1e-12)


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=10.0, max_value=1e6), min_size=2,
                    max_size=6))
    def test_kcl_source_currents_balance(self, resistances):
        """In a star network fed by one source, the source current must
        equal the sum of resistor currents (KCL at the hub)."""
        c = Circuit()
        c.add(Vdc("V1", "hub", "0", 1.0))
        for i, r in enumerate(resistances):
            c.add(Resistor(f"R{i}", "hub", "0", r))
        op = operating_point(c)
        expected = -sum(1.0 / r for r in resistances)
        assert op.branch_current("V1") == pytest.approx(expected, rel=1e-6)

    def test_charge_conservation_in_transient(self):
        """Current source into a capacitor: V = I*t/C exactly."""
        c = Circuit()
        c.add(Idc("I1", "0", "top", 1e-6))
        c.add(Capacitor("C1", "top", "0", "1n"))
        res = transient(c, tstop=1e-3, dt=1e-5, ic={"top": 0.0}, uic=True)
        assert res.node("top").value_at(1e-3) == pytest.approx(
            1e-6 * 1e-3 / 1e-9, rel=1e-6)


class TestSpectrum:
    def test_sine_single_line(self):
        t = np.linspace(0, 1e-3, 4001)
        y = 0.7 * np.sin(2 * np.pi * 10e3 * t) + 0.2
        w = Waveform(t, y)
        freqs, amps = w.spectrum(2048)
        peak_idx = int(np.argmax(amps[1:])) + 1
        assert freqs[peak_idx] == pytest.approx(10e3, rel=0.01)
        assert amps[peak_idx] == pytest.approx(0.7, rel=0.05)
        assert amps[0] == pytest.approx(0.2, abs=0.01)

    def test_square_wave_harmonics(self):
        # 50% square: odd harmonics at 4/(pi*n); even harmonics absent.
        f0 = 1e6
        t = np.linspace(0, 8 / f0, 8001)
        y = np.where((t * f0) % 1.0 < 0.5, 1.0, -1.0)
        w = Waveform(t, y)
        h1 = w.harmonic_amplitude(f0, 1)
        h2 = w.harmonic_amplitude(f0, 2)
        h3 = w.harmonic_amplitude(f0, 3)
        assert h1 == pytest.approx(4 / np.pi, rel=0.05)
        assert h3 == pytest.approx(4 / (3 * np.pi), rel=0.1)
        assert h2 < 0.05 * h1

    def test_validation(self):
        w = Waveform([0.0], [1.0])
        with pytest.raises(AnalysisError):
            w.spectrum()
        w2 = Waveform([0, 1], [0, 1])
        with pytest.raises(AnalysisError):
            w2.spectrum(n_points=1)
        with pytest.raises(AnalysisError):
            w2.harmonic_amplitude(0.0)


class TestSourceValidation:
    def test_vpulse_segment_checks(self):
        with pytest.raises(NetlistError):
            Vpulse("V1", "a", "0", v1=0, v2=1, rise=-1e-9, fall=1e-9,
                   width=1e-9, period=1e-6)
        with pytest.raises(NetlistError):
            Vpulse("V1", "a", "0", v1=0, v2=1, rise=1e-9, fall=1e-9,
                   width=2e-6, period=1e-6)

    def test_pwm_duty_bounds(self):
        with pytest.raises(NetlistError):
            PwmVoltage("V1", "a", "0", v_high=1.0, frequency=1e6, duty=1.1)

    def test_pwm_extreme_duty_measured(self):
        for duty in (0.02, 0.98):
            c = Circuit()
            c.add(PwmVoltage("V1", "a", "0", v_high=1.0, frequency=1e6,
                             duty=duty))
            c.add(Resistor("R1", "a", "0", "1k"))
            res = transient(c, tstop=5e-6, dt=2e-8)
            assert res.node("a").duty_cycle(0.5) == pytest.approx(duty,
                                                                  abs=0.01)

    def test_pwm_phase_shifts_waveform(self):
        c = Circuit()
        c.add(PwmVoltage("V1", "a", "0", v_high=1.0, frequency=1e6,
                         duty=0.5, phase=0.25))
        c.add(Resistor("R1", "a", "0", "1k"))
        res = transient(c, tstop=2e-6, dt=1e-8)
        rises = res.node("a").crossings(0.5, "rise")
        # First rise lands a quarter period late.
        assert rises[0] == pytest.approx(0.25e-6, abs=0.03e-6)


class TestMnaContextReuse:
    def test_context_reused_across_analyses(self):
        c = Circuit()
        c.add(Vdc("V1", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "out", "1k"))
        c.add(Capacitor("C1", "out", "0", "1u"))
        ctx = MnaContext(c)
        op = operating_point(c, ctx=ctx)
        res = transient(c, tstop=1e-4, dt=1e-6, ctx=ctx, x0=op.x)
        assert res.node("out").maximum() == pytest.approx(1.0, abs=1e-6)
