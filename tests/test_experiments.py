"""Integration tests: every registered experiment at fast fidelity.

These assert the *claims*, not just absence of crashes: linearity
ordering (fig4), frequency flatness (fig5), supply behaviour (fig6/7),
Table II agreement, power decomposition (fig8), and the extension
results.
"""

import pytest

from repro.circuit import AnalysisError
from repro.experiments import (
    PAPER_ARTEFACTS,
    REGISTRY,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        assert set(PAPER_ARTEFACTS) <= set(REGISTRY)

    def test_unknown_experiment(self):
        with pytest.raises(AnalysisError):
            run_experiment("fig99")

    def test_unknown_fidelity(self):
        with pytest.raises(AnalysisError):
            run_experiment("table1", fidelity="ultra")


class TestPaperArtefacts:
    def test_table1_echoes_parameters(self):
        res = run_experiment("table1")
        assert res.table is not None
        assert any("320" in cell for row in res.table.rows for cell in row)
        assert 5e3 < res.metrics["r_on_nmos"] < 20e3

    @pytest.fixture(scope="class")
    def fig4(self):
        return run_experiment("fig4", fidelity="fast")

    def test_fig4_linearity_ordering(self, fig4):
        assert fig4.metrics["r2[100kOhm]"] > fig4.metrics["r2[5kOhm]"] > \
            fig4.metrics["r2[No load]"]
        assert fig4.metrics["r2[100kOhm]"] > 0.999

    def test_fig4_output_inverse_of_duty(self, fig4):
        series = fig4.figure("fig4").get("100kOhm")
        assert all(b < a for a, b in zip(series.y, series.y[1:]))

    def test_fig5_frequency_flatness(self):
        res = run_experiment("fig5", fidelity="fast")
        for duty in (25, 50, 75):
            assert res.metrics[f"flatness[DC={duty}%]"] < 0.10

    def test_fig6_absolute_grows_with_vdd(self):
        res = run_experiment("fig6", fidelity="fast")
        for duty in (25, 50, 75):
            assert res.metrics[f"slope[DC={duty}%]"] > 0.1

    def test_fig7_ratiometric_flat_from_1V(self):
        res = run_experiment("fig7", fidelity="fast")
        for duty in (25, 50, 75):
            assert res.metrics[f"usable_from[DC={duty}%]"] <= 1.5

    def test_fig7_ratio_ordering_matches_duty(self):
        res = run_experiment("fig7", fidelity="fast")
        fig = res.figure("fig7")
        # Higher duty -> lower Vout/Vdd (inverting transcoder).
        r25 = fig.get("DC=25%").y[-1]
        r75 = fig.get("DC=75%").y[-1]
        assert r25 > r75

    def test_table2_theory_matches_paper(self):
        res = run_experiment("table2", fidelity="fast")
        paper_theory = [2.00, 0.42, 1.21, 2.00, 0.34, 0.96]
        for i, expected in enumerate(paper_theory[:5]):
            assert res.metrics[f"row{i}_theory"] == pytest.approx(expected,
                                                                  abs=0.01)
        assert res.metrics["worst_abs_error"] < 0.15

    def test_fig8_power_in_paper_range(self):
        res = run_experiment("fig8", fidelity="fast")
        assert 50 < res.metrics["power_at_min_freq_uW"] < 2000
        assert res.metrics["power_at_max_freq_uW"] >= \
            res.metrics["power_at_min_freq_uW"]
        assert res.metrics["static_floor_uW"] > 0


class TestExtensions:
    def test_transistor_count_claim(self):
        res = run_experiment("ext_transistor_count")
        assert res.metrics["pwm_transistors"] == 54
        assert res.metrics["config_formula"] == 54

    def test_robustness_ordering(self):
        res = run_experiment("ext_robustness", fidelity="fast")
        pwm = res.metrics["min_accuracy[PWM (this work)]"]
        dig = res.metrics["min_accuracy[digital MAC @500MHz]"]
        ana = res.metrics["min_accuracy[current-mode analog]"]
        assert pwm == 1.0
        assert pwm > dig
        assert pwm > ana

    def test_montecarlo_errors_affordable(self):
        res = run_experiment("ext_montecarlo", fidelity="fast")
        assert res.metrics["sigma_mV[row0]"] < 30.0

    def test_ablation_recommends_paper_values(self):
        res = run_experiment("ext_ablation", fidelity="fast")
        assert 20e3 <= res.metrics["recommended_rout"] <= 200e3
        assert res.metrics["recommended_cout"] <= 2e-12

    def test_engine_fidelity_bounds(self):
        res = run_experiment("ext_engine_fidelity", fidelity="fast")
        assert res.metrics["worst_rc_vs_behavioral_V"] < 0.05
        assert res.metrics["worst_spice_vs_behavioral_V"] < 0.20
        assert res.metrics["calibrated_rms_residual_V"] < 0.05

    def test_kessels_duty_exact(self):
        res = run_experiment("ext_kessels", fidelity="fast")
        assert res.metrics["worst_duty_error"] < 0.01


class TestRendering:
    def test_every_experiment_renders(self):
        for eid in ("table1", "table2", "ext_transistor_count",
                    "ext_ablation", "ext_kessels"):
            text = run_experiment(eid, fidelity="fast").render(charts=False)
            assert eid in text
            assert len(text) > 100
