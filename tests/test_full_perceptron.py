"""Transistor-level comparator and the complete Fig. 1 netlist."""

import pytest

from repro.circuit import AnalysisError, operating_point
from repro.core import (
    ComparatorDesign,
    build_comparator_bench,
    build_full_perceptron_circuit,
    evaluate_full_perceptron,
    reference_divider_subckt,
)
from repro.circuit import Circuit, Vdc


class TestComparatorCircuit:
    @pytest.mark.parametrize("vp,vn,expected", [
        (1.5, 1.0, 2.5), (1.0, 1.5, 0.0),
        (1.30, 1.25, 2.5), (1.25, 1.30, 0.0),
    ])
    def test_decision_polarity(self, vp, vn, expected):
        op = operating_point(build_comparator_bench(vp, vn))
        assert op.voltage("out") == pytest.approx(expected, abs=0.05)

    def test_works_across_common_mode(self):
        for vcm in (0.6, 1.25, 2.0):
            op = operating_point(build_comparator_bench(vcm + 0.05,
                                                        vcm - 0.05))
            assert op.voltage("out") > 2.4

    def test_works_at_low_supply(self):
        op = operating_point(build_comparator_bench(0.8, 0.6, vdd=1.2))
        assert op.voltage("out") > 1.1

    def test_geometry_validation(self):
        from repro.circuit import NetlistError
        with pytest.raises(NetlistError):
            ComparatorDesign(input_width=0.0)
        with pytest.raises(NetlistError):
            ComparatorDesign(r_tail=-1.0)


class TestReferenceDivider:
    def test_ratio_tracks_supply(self):
        for vdd in (1.0, 2.5, 5.0):
            c = Circuit()
            c.add(Vdc("VDD", "vdd", "0", vdd))
            c.instantiate(reference_divider_subckt(0.4), "X1",
                          {"ref": "ref", "vdd": "vdd"})
            assert operating_point(c).voltage("ref") == pytest.approx(
                0.4 * vdd, rel=1e-6)

    def test_ratio_validation(self):
        with pytest.raises(AnalysisError):
            reference_divider_subckt(0.0)
        with pytest.raises(AnalysisError):
            reference_divider_subckt(1.0)


class TestFullPerceptron:
    def test_netlist_transistor_count(self):
        circuit = build_full_perceptron_circuit(
            [0.5] * 3, [7] * 3, theta=9.0)
        # 54 (adder) + 8 (comparator).
        assert circuit.stats()["transistors"] == 62

    def test_theta_range_checked(self):
        with pytest.raises(AnalysisError):
            build_full_perceptron_circuit([0.5] * 3, [7] * 3, theta=25.0)

    def test_decision_above_and_below(self):
        high = evaluate_full_perceptron([0.7, 0.8, 0.9], [7, 7, 7],
                                        theta=9.0, steps_per_period=70)
        low = evaluate_full_perceptron([0.3, 0.4, 0.5], [1, 4, 2],
                                       theta=9.0, steps_per_period=70)
        assert high.decision == 1
        assert low.decision == 0
        assert high.margin > 0 > low.margin
        assert high.v_ref == pytest.approx(2.5 * 9 / 21, abs=0.02)

    def test_decision_survives_supply_change(self):
        decisions = []
        for vdd in (1.5, 3.5):
            result = evaluate_full_perceptron([0.7, 0.8, 0.9], [7, 7, 7],
                                              theta=9.0, vdd=vdd,
                                              steps_per_period=70)
            decisions.append(result.decision)
            # Reference scales with the rail.
            assert result.v_ref == pytest.approx(vdd * 9 / 21, abs=0.05)
        assert decisions == [1, 1]
