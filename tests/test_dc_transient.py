"""DC operating point and transient analysis against closed-form circuits."""

import numpy as np
import pytest

from repro.circuit import (
    AnalysisError,
    Capacitor,
    Circuit,
    Idc,
    Inductor,
    Mosfet,
    PwmVoltage,
    Resistor,
    Vdc,
    Vpulse,
    Vpwl,
    Vsin,
    dc_sweep,
    operating_point,
    transient,
)
from repro.tech import NMOS_UMC65, PMOS_UMC65


class TestOperatingPoint:
    def test_voltage_divider(self):
        c = Circuit()
        c.add(Vdc("V1", "in", "0", 10.0))
        c.add(Resistor("R1", "in", "mid", "1k"))
        c.add(Resistor("R2", "mid", "0", "3k"))
        op = operating_point(c)
        assert op.voltage("mid") == pytest.approx(7.5, rel=1e-9)
        # rel=1e-6 leaves room for the solver's gmin leakage (1e-12 S).
        assert op.branch_current("V1") == pytest.approx(-10.0 / 4e3, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add(Idc("I1", "0", "out", 1e-3))
        c.add(Resistor("R1", "out", "0", "2k"))
        op = operating_point(c)
        assert op.voltage("out") == pytest.approx(2.0, rel=1e-6)

    def test_inductor_is_dc_short(self):
        c = Circuit()
        c.add(Vdc("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "mid", "1k"))
        c.add(Inductor("L1", "mid", "out", "1m"))
        c.add(Resistor("R2", "out", "0", "1k"))
        op = operating_point(c)
        assert op.voltage("mid") == pytest.approx(op.voltage("out"), abs=1e-9)
        assert op.voltage("out") == pytest.approx(2.5, rel=1e-6)

    def test_capacitor_is_dc_open(self):
        c = Circuit()
        c.add(Vdc("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "out", "1k"))
        c.add(Capacitor("C1", "out", "0", "1n"))
        op = operating_point(c)
        assert op.voltage("out") == pytest.approx(5.0, rel=1e-6)

    def test_cmos_inverter_rails(self):
        c = Circuit()
        c.add(Vdc("VDD", "vdd", "0", 2.5))
        c.add(Vdc("VIN", "in", "0", 0.0))
        c.add(Mosfet("MP", "out", "in", "vdd", model=PMOS_UMC65,
                     w="865n", l="1.2u"))
        c.add(Mosfet("MN", "out", "in", "0", model=NMOS_UMC65,
                     w="320n", l="1.2u"))
        vin = c.element("VIN")
        op_low = operating_point(c)
        assert op_low.voltage("out") == pytest.approx(2.5, abs=0.01)
        vin.voltage = 2.5
        op_high = operating_point(c)
        assert op_high.voltage("out") == pytest.approx(0.0, abs=0.01)

    def test_inverter_dc_sweep_monotone_falling(self):
        c = Circuit()
        c.add(Vdc("VDD", "vdd", "0", 2.5))
        c.add(Vdc("VIN", "in", "0", 0.0))
        c.add(Mosfet("MP", "out", "in", "vdd", model=PMOS_UMC65,
                     w="865n", l="1.2u"))
        c.add(Mosfet("MN", "out", "in", "0", model=NMOS_UMC65,
                     w="320n", l="1.2u"))
        vin = c.element("VIN")
        ops = dc_sweep(c, lambda v: setattr(vin, "voltage", v),
                       np.linspace(0, 2.5, 11))
        vout = [op.voltage("out") for op in ops]
        assert all(b <= a + 1e-6 for a, b in zip(vout, vout[1:]))
        assert vout[0] > 2.4 and vout[-1] < 0.1

    def test_voltages_mapping(self):
        c = Circuit()
        c.add(Vdc("V1", "a", "0", 1.0))
        c.add(Resistor("R1", "a", "b", 1.0))
        c.add(Resistor("R2", "b", "0", 1.0))
        v = operating_point(c).voltages()
        assert set(v) == {"a", "b"}


class TestTransient:
    def test_rc_step_matches_analytic(self, rc_circuit):
        res = transient(rc_circuit, tstop=5e-3, dt=1e-5,
                        ic={"out": 0.0}, uic=True)
        out = res.node("out")
        for t_probe in (0.5e-3, 1e-3, 3e-3):
            expected = 1.0 - np.exp(-t_probe / 1e-3)
            assert out.value_at(t_probe) == pytest.approx(expected, abs=2e-4)

    def test_rc_with_dc_op_start_stays_settled(self, rc_circuit):
        res = transient(rc_circuit, tstop=1e-3, dt=1e-5)
        out = res.node("out")
        assert out.minimum() == pytest.approx(1.0, abs=1e-6)
        assert out.maximum() == pytest.approx(1.0, abs=1e-6)

    def test_rl_current_rise(self):
        c = Circuit()
        c.add(Vdc("V1", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "out", "1k"))
        c.add(Inductor("L1", "out", "0", "1m", ic=0.0))
        res = transient(c, tstop=5e-6, dt=1e-8, uic=True)
        i = res.branch_current("L1")
        tau = 1e-3 / 1e3
        expected = (1.0 / 1e3) * (1 - np.exp(-3e-6 / tau))
        assert i.value_at(3e-6) == pytest.approx(expected, rel=5e-3)

    def test_lc_oscillation_frequency(self):
        c = Circuit()
        c.add(Capacitor("C1", "n", "0", "1n", ic=1.0))
        c.add(Inductor("L1", "n", "0", "1m", ic=0.0))
        f0 = 1 / (2 * np.pi * np.sqrt(1e-3 * 1e-9))
        res = transient(c, tstop=3 / f0, dt=1 / (400 * f0), uic=True,
                        ic={"n": 1.0})
        crossings = res.node("n").crossings(0.0, "rise")
        assert len(crossings) >= 2
        measured = 1 / np.diff(crossings).mean()
        assert measured == pytest.approx(f0, rel=0.01)

    def test_sin_source_amplitude(self):
        c = Circuit()
        c.add(Vsin("V1", "a", "0", offset=1.0, amplitude=0.5, frequency=1e3))
        c.add(Resistor("R1", "a", "0", "1k"))
        res = transient(c, tstop=2e-3, dt=1e-6)
        wave = res.node("a")
        assert wave.maximum() == pytest.approx(1.5, abs=1e-3)
        assert wave.minimum() == pytest.approx(0.5, abs=1e-3)
        assert wave.average() == pytest.approx(1.0, abs=2e-3)

    def test_pwl_source(self):
        c = Circuit()
        c.add(Vpwl("V1", "a", "0", [(0, 0), (1e-3, 1.0), (2e-3, 1.0)]))
        c.add(Resistor("R1", "a", "0", "1k"))
        res = transient(c, tstop=2e-3, dt=5e-5)
        assert res.node("a").value_at(0.5e-3) == pytest.approx(0.5, abs=1e-6)
        assert res.node("a").value_at(1.5e-3) == pytest.approx(1.0, abs=1e-6)

    def test_pwm_duty_measured_on_node(self):
        c = Circuit()
        c.add(PwmVoltage("V1", "a", "0", v_high=1.0, frequency=1e6, duty=0.3))
        c.add(Resistor("R1", "a", "0", "1k"))
        res = transient(c, tstop=4e-6, dt=1e-7)
        assert res.node("a").duty_cycle(0.5) == pytest.approx(0.3, abs=0.01)

    def test_breakpoints_land_exactly(self):
        c = Circuit()
        c.add(Vpulse("V1", "a", "0", v1=0.0, v2=1.0, delay=0.0,
                     rise=1e-9, fall=1e-9, width=499e-9, period=1e-6))
        c.add(Resistor("R1", "a", "0", "1k"))
        res = transient(c, tstop=2e-6, dt=0.3e-6)
        # The rise corner at t=1e-9 must be a sample point even though
        # dt is 300x larger.
        assert np.any(np.isclose(res.t, 1e-9, rtol=0, atol=1e-15))
        assert res.node("a").maximum() == pytest.approx(1.0, abs=1e-9)

    def test_supply_power_of_resistive_load(self):
        c = Circuit()
        c.add(Vdc("VDD", "vdd", "0", 2.0))
        c.add(Resistor("R1", "vdd", "0", "1k"))
        res = transient(c, tstop=1e-3, dt=1e-5)
        assert res.average_power("VDD") == pytest.approx(4e-3, rel=1e-6)

    def test_bad_arguments(self, rc_circuit):
        with pytest.raises(AnalysisError):
            transient(rc_circuit, tstop=0.0, dt=1e-6)
        with pytest.raises(AnalysisError):
            transient(rc_circuit, tstop=1e-3, dt=-1.0)
        with pytest.raises(AnalysisError):
            transient(rc_circuit, tstop=1e-3, dt=1e-5, method="rk4")

    def test_be_and_trap_agree_on_smooth_circuit(self, rc_circuit):
        res_be = transient(rc_circuit, tstop=3e-3, dt=5e-6,
                           ic={"out": 0.0}, uic=True, method="be")
        res_tr = transient(rc_circuit, tstop=3e-3, dt=5e-6,
                           ic={"out": 0.0}, uic=True, method="trap")
        v_be = res_be.node("out").value_at(1e-3)
        v_tr = res_tr.node("out").value_at(1e-3)
        assert v_be == pytest.approx(v_tr, abs=5e-3)
