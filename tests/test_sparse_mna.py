"""The sparse/stacked MNA equivalence net.

Pins the two promises the solver knob makes:

* **batched == scalar, bit for bit** — the supply-ramp waveform family,
  the shooting Jacobian probes and the supply-sweep stacks reproduce the
  per-point scalar loops exactly (block-diagonal stacked systems, same
  iterates);
* **sparse == dense, within a documented tolerance** — splu and LAPACK
  factorisations of the same MNA system agree to ``atol=1e-9`` (the
  measured gap on the 54-transistor adder is ~2e-12; the slack covers
  platform BLAS variation), and the ``auto`` crossover never moves the
  paper's small cells off the bit-exact dense path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (
    AnalysisError,
    Capacitor,
    Circuit,
    Resistor,
    Vpulse,
    transient,
)
from repro.circuit.batch_transient import (
    shooting_batch,
    shooting_jacobian_batched,
)
from repro.circuit.pss import shooting
from repro.circuit.sparse import (
    HAS_SCIPY,
    SOLVERS,
    SPARSE_MAX_FILL,
    SPARSE_MIN_SIZE,
    check_solver,
    choose_backend,
    matrix_fill,
    sparse_solve,
    sparse_solve_batch,
)
from repro.core.weighted_adder import AdderConfig, WeightedAdder

needs_scipy = pytest.mark.skipif(not HAS_SCIPY,
                                 reason="scipy not installed")

#: Documented sparse-vs-dense agreement (see module docstring).
SPARSE_ATOL = 1e-9


# -- the solver knob ---------------------------------------------------------


class TestSolverKnob:
    def test_check_solver(self):
        assert check_solver(None) == "auto"
        for s in SOLVERS:
            if s == "sparse" and not HAS_SCIPY:
                continue
            assert check_solver(s) == s
        with pytest.raises(AnalysisError, match="unknown solver 'lu'"):
            check_solver("lu")

    @pytest.mark.skipif(HAS_SCIPY, reason="needs a scipy-free install")
    def test_sparse_without_scipy_fails_at_validation(self):
        with pytest.raises(AnalysisError, match="requires scipy"):
            check_solver("sparse")

    def test_explicit_backends_pass_through(self):
        assert choose_backend(8, 0.9, "dense") == "dense"
        assert choose_backend(10_000, 0.001, "dense") == "dense"
        if HAS_SCIPY:
            assert choose_backend(8, 0.9, "sparse") == "sparse"
        with pytest.raises(AnalysisError, match="unknown solver"):
            choose_backend(8, 0.5, "turbo")

    @needs_scipy
    def test_auto_crossover(self):
        assert choose_backend(SPARSE_MIN_SIZE, SPARSE_MAX_FILL) == "sparse"
        assert choose_backend(SPARSE_MIN_SIZE - 1, SPARSE_MAX_FILL) \
            == "dense"
        assert choose_backend(SPARSE_MIN_SIZE, SPARSE_MAX_FILL + 1e-6) \
            == "dense"

    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(size=st.integers(min_value=0, max_value=SPARSE_MIN_SIZE - 1),
           fill=st.floats(min_value=0.0, max_value=1.0))
    def test_auto_never_sparse_for_paper_grid_cells(self, size, fill):
        # Regression guard: the paper's benches (S <= ~60) must stay on
        # the bit-exact dense path no matter how sparse they look.
        assert choose_backend(size, fill) == "dense"

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(size=st.integers(min_value=1, max_value=4096),
           fill=st.floats(min_value=0.0, max_value=1.0))
    def test_auto_is_total_and_deterministic(self, size, fill):
        backend = choose_backend(size, fill)
        assert backend in ("dense", "sparse")
        assert choose_backend(size, fill) == backend
        if backend == "sparse":
            assert HAS_SCIPY
            assert size >= SPARSE_MIN_SIZE and fill <= SPARSE_MAX_FILL

    def test_matrix_fill(self):
        assert matrix_fill(np.zeros((0, 0))) == 0.0
        assert matrix_fill(np.eye(4)) == pytest.approx(0.25)
        assert matrix_fill(np.ones((3, 3))) == 1.0


# -- raw solve agreement -----------------------------------------------------


@needs_scipy
class TestSparseSolve:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(n=st.integers(min_value=1, max_value=24),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_matches_dense_on_random_systems(self, n, seed):
        rng = np.random.default_rng(seed)
        # Diagonally dominated like an MNA conductance matrix.
        G = rng.standard_normal((n, n)) + n * np.eye(n)
        I = rng.standard_normal(n)
        np.testing.assert_allclose(sparse_solve(G, I),
                                   np.linalg.solve(G, I),
                                   atol=SPARSE_ATOL, rtol=1e-9)

    def test_batch_matches_dense(self):
        rng = np.random.default_rng(11)
        G = rng.standard_normal((5, 12, 12)) + 12 * np.eye(12)
        I = rng.standard_normal((5, 12))
        got = sparse_solve_batch(G, I)
        want = np.linalg.solve(G, I[:, :, None])[:, :, 0]
        np.testing.assert_allclose(got, want, atol=SPARSE_ATOL, rtol=1e-9)

    def test_singular_raises_linalgerror(self):
        G = np.zeros((3, 3))
        with pytest.raises(np.linalg.LinAlgError):
            sparse_solve(G, np.ones(3))
        with pytest.raises(np.linalg.LinAlgError):
            sparse_solve_batch(G[None], np.ones((1, 3)))


# -- random RC topologies through the full transient engine ------------------


def _rc_ladder(r_values, c_values) -> Circuit:
    """A driven RC ladder — one stage per (R, C) pair."""
    c = Circuit("ladder")
    c.add(Vpulse("VIN", "n0", "0", v1=0.0, v2=1.0, rise=1e-9,
                 fall=1e-9, width=40e-9, period=100e-9))
    for k, (r, cap) in enumerate(zip(r_values, c_values)):
        c.add(Resistor(f"R{k}", f"n{k}", f"n{k + 1}", r))
        c.add(Capacitor(f"C{k}", f"n{k + 1}", "0", cap))
    return c


@needs_scipy
class TestRandomTopologies:
    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(stages=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_transient_sparse_matches_dense(self, stages, seed):
        rng = np.random.default_rng(seed)
        r = 10 ** rng.uniform(2, 5, stages)         # 100 ohm .. 100 k
        cap = 10 ** rng.uniform(-13, -11, stages)   # 0.1 pF .. 10 pF
        dense = transient(_rc_ladder(r, cap), 50e-9, 1e-9, solver="dense")
        sparse = transient(_rc_ladder(r, cap), 50e-9, 1e-9,
                           solver="sparse")
        assert np.array_equal(dense.t, sparse.t)
        np.testing.assert_allclose(sparse.X, dense.X, atol=SPARSE_ATOL)


# -- batched paths == scalar paths -------------------------------------------


class TestBatchedEquivalence:
    def test_ramp_family_batched_bit_identical_to_scalar(self):
        from repro.experiments.ext_dynamic_supply import (
            RAMP_TARGETS,
            _build,
            _run_family,
        )

        t_ramp = 16e-9          # a short ramp keeps the test cheap;
        dt = 2e-9 / 40          # the solver path is the full one
        circuits = [_build(t_ramp, v_end) for v_end in RAMP_TARGETS]
        scalar = _run_family(circuits, t_ramp, dt, batched=False,
                             solver="auto")
        circuits = [_build(t_ramp, v_end) for v_end in RAMP_TARGETS]
        batched = _run_family(circuits, t_ramp, dt, batched=True,
                              solver="auto")
        assert len(scalar) == len(batched) == len(RAMP_TARGETS)
        for s, b in zip(scalar, batched):
            assert np.array_equal(s.t, b.t)
            assert np.array_equal(s.X, b.X)

    def test_jacobian_batched_shooting_bit_identical(self):
        # The 54-transistor adder: the Jacobian-batched PSS must
        # reproduce the scalar shooting run exactly — same iterates,
        # same waves, same averages.
        adder = WeightedAdder(AdderConfig())
        circuit = adder.build_circuit((0.2, 0.6, 0.8), (5, 6, 7))
        period = 1.0 / adder.config.frequency
        ref = shooting(adder.build_circuit((0.2, 0.6, 0.8), (5, 6, 7)),
                       period, observe=["out"], steps_per_period=40)
        got = shooting_jacobian_batched(circuit, period, observe=["out"],
                                        steps_per_period=40)
        assert got.iterations == ref.iterations
        assert got.residual == ref.residual
        assert np.array_equal(got.waves.t, ref.waves.t)
        assert np.array_equal(got.waves.X, ref.waves.X)
        assert got.average("out") == ref.average("out")

    def test_supply_sweep_stack_bit_identical_to_scalar(self):
        adder = WeightedAdder(AdderConfig())
        period = 1.0 / adder.config.frequency
        vdds = (1.5, 2.5, 4.0)
        circuits = [adder.build_circuit((0.7, 0.8, 0.9), (7, 7, 7),
                                        vdd=v) for v in vdds]
        batch = shooting_batch(circuits, period, observe=["out"],
                               steps_per_period=40)
        for p, v in enumerate(vdds):
            ref = shooting(adder.build_circuit((0.7, 0.8, 0.9), (7, 7, 7),
                                               vdd=v),
                           period, observe=["out"], steps_per_period=40)
            assert batch.averages("out")[p] == ref.average("out")

    @needs_scipy
    def test_adder_pss_sparse_within_pinned_tolerance(self):
        adder = WeightedAdder(AdderConfig())
        dense = adder.evaluate((0.2, 0.6, 0.8), (5, 6, 7), engine="spice",
                               steps_per_period=40, solver="dense")
        sparse = adder.evaluate((0.2, 0.6, 0.8), (5, 6, 7), engine="spice",
                                steps_per_period=40, solver="sparse")
        assert abs(dense.value - sparse.value) < SPARSE_ATOL


# -- capability + knob error surfaces ----------------------------------------


class TestErrorSurfaces:
    def test_dynamic_supply_gate_names_experiment_and_engine(self):
        from repro.experiments.ext_dynamic_supply import run

        with pytest.raises(
                AnalysisError,
                match="experiment 'ext_dynamic_supply': engine 'rc' does "
                      "not support dynamic_supply"):
            run(engine="rc")

    def test_robustness_gate_names_experiment_and_engine(self):
        from repro.engines import require_capability

        with pytest.raises(
                AnalysisError,
                match="experiment 'ext_robustness': unknown engine "
                      "'nope'"):
            require_capability("nope", "serving_margins",
                               experiment_id="ext_robustness")

    def test_resolve_solver_rejects_non_transistor_engines(self):
        from repro.exec.batch import resolve_solver

        assert resolve_solver("auto", engine_id="rc") == "auto"
        assert resolve_solver("dense", engine_id="spice") == "dense"
        with pytest.raises(AnalysisError,
                           match="only applies to transistor-level"):
            resolve_solver("dense", engine_id="rc")

    def test_experiment_solver_knob_is_validated(self):
        from repro.experiments import RunConfig

        with pytest.raises(AnalysisError, match="must be one of"):
            RunConfig.build("table2", "fast", {"solver": "turbo"})


# -- the served transistor path ----------------------------------------------


class TestServedSpiceMargins:
    def _server(self, tmp_path):
        from repro.core.perceptron import DifferentialPwmPerceptron
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        store = ModelStore(tmp_path)
        store.save("m", DifferentialPwmPerceptron([3, 3], bias=-3))
        return PerceptronServer(store, port=0)

    def test_predict_round_trip_spice(self, tmp_path):
        with self._server(tmp_path) as server:
            beh = server.handle_predict(
                {"model": "m", "inputs": [[0.9, 0.9]]})
            out = server.handle_predict(
                {"model": "m", "inputs": [[0.9, 0.9]],
                 "engine": "spice", "solver": "dense"})
            assert out["engine"] == "spice"
            assert out["solver"] == "dense"
            assert out["predictions"] == beh["predictions"]
            assert abs(out["margins"][0] - beh["margins"][0]) < 0.05

    def test_predict_rejects_solver_on_behavioral(self, tmp_path):
        with self._server(tmp_path) as server:
            with pytest.raises(AnalysisError,
                               match="only applies to transistor-level"):
                server.handle_predict(
                    {"model": "m", "inputs": [[0.5, 0.5]],
                     "solver": "dense"})
            with pytest.raises(AnalysisError, match="solver"):
                server.handle_predict(
                    {"model": "m", "inputs": [[0.5, 0.5]], "solver": 3})

    def test_supply_sweep_spice_matches_per_point_margins(self, tmp_path):
        from repro.core.perceptron import DifferentialPwmPerceptron
        from repro.serve.engine import BatchInferenceEngine

        p = DifferentialPwmPerceptron([3, 3], bias=-3)
        engine = BatchInferenceEngine()
        vdds = [1.5, 2.5]
        sweep = engine.predict_supply_sweep(p, [0.9, 0.9], vdds,
                                            engine="spice")
        per_point = [
            int(engine.margins_spice(p, [[0.9, 0.9]], vdd=v)[0]
                > p.comparator.offset)
            for v in vdds]
        assert list(sweep) == per_point
