"""Property-based tests (hypothesis) for sweep records and PWM encoding.

Two families the execution-engine refactor leans on:

* :class:`repro.circuit.sweep.SweepResult` — ``where``/``column``
  invariants and failure recording must hold for arbitrary grids, since
  every experiment funnels through them;
* :mod:`repro.signals.pwm` — duty-cycle encode/decode/quantise round
  trips, the input side of every perceptron evaluation.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import AnalysisError, run_sweep, sweep
from repro.signals.pwm import (
    decode_duty,
    encode_duty,
    encode_features,
    quantize_duty,
)

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
small_grid = st.lists(st.integers(min_value=-50, max_value=50),
                      min_size=1, max_size=6, unique=True)


class TestSweepProperties:
    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(xs=small_grid, ys=small_grid)
    def test_product_shape_and_columns(self, xs, ys):
        result = sweep(lambda x, y: {"sum": x + y}, {"x": xs, "y": ys})
        assert len(result) == len(xs) * len(ys)
        # Columns come back in grid order and merge point + measurement.
        assert result.column("sum") == [
            r["x"] + r["y"] for r in result.records]

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(xs=small_grid, pick=st.integers(min_value=0, max_value=5))
    def test_where_partitions_records(self, xs, pick):
        result = sweep(lambda x: {"y": x * 2}, {"x": xs})
        target = xs[pick % len(xs)]
        kept = result.where(x=target)
        assert len(kept) == 1 and kept.records[0]["x"] == target
        assert len(result.where(x=max(xs) + 1)) == 0

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(base=st.floats(min_value=0.01, max_value=100,
                          allow_nan=False, allow_infinity=False),
           n=st.integers(min_value=1, max_value=7))
    def test_where_matches_computed_floats(self, base, n):
        # Grid values built by repeated addition rarely equal n*base
        # exactly; where() must still find them (the isclose fix).
        values, acc = [], 0.0
        for _ in range(n):
            acc += base
            values.append(acc)
        result = sweep(lambda v: {"y": v}, {"v": values})
        assert len(result.where(v=n * base)) >= 1

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(xs=small_grid, bad=st.integers(min_value=-50, max_value=50))
    def test_failure_recording_partitions(self, xs, bad):
        def fn(x):
            if x == bad:
                raise ValueError("boom")
            return {"y": x}

        result = run_sweep(fn, {"x": xs}, on_error="record")
        assert len(result) == len(xs)
        assert len(result.failures) + len(result.ok) == len(result)
        for record in result.failures:
            assert record["x"] == bad and "boom" in record["error"]
        for record in result.ok:
            assert record["y"] == record["x"]
        if bad in xs:
            with pytest.raises(ValueError):
                run_sweep(fn, {"x": xs}, on_error="raise")

    def test_column_missing_raises(self):
        result = sweep(lambda x: {"y": x}, {"x": [1, 2]})
        with pytest.raises(AnalysisError):
            result.column("z")

    def test_where_regression_float_exact_equality(self):
        # Regression: 0.1 * 3 != 0.3 exactly, but must match.
        values = [0.1 * k for k in range(5)]
        result = sweep(lambda v: {"y": v}, {"v": values})
        assert len(result.where(v=0.3)) == 1
        assert len(result.where(v=0.30000000000000004)) == 1


class TestPwmEncodingProperties:
    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(value=finite,
           lo=st.floats(min_value=-100, max_value=99,
                        allow_nan=False, allow_infinity=False),
           span=st.floats(min_value=1e-3, max_value=100,
                          allow_nan=False, allow_infinity=False))
    def test_encode_decode_round_trip_is_clamp(self, value, lo, span):
        hi = lo + span
        duty = encode_duty(value, lo, hi)
        assert 0.0 <= duty <= 1.0
        recovered = decode_duty(duty, lo, hi)
        clamped = min(max(value, lo), hi)
        assert math.isclose(recovered, clamped,
                            rel_tol=1e-9, abs_tol=1e-9 * span)

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(duty=st.floats(min_value=0, max_value=1,
                          allow_nan=False, allow_infinity=False),
           lo=st.floats(min_value=-100, max_value=99,
                        allow_nan=False, allow_infinity=False),
           span=st.floats(min_value=1e-3, max_value=100,
                          allow_nan=False, allow_infinity=False))
    def test_decode_encode_round_trip(self, duty, lo, span):
        hi = lo + span
        value = decode_duty(duty, lo, hi)
        assert lo <= value <= hi
        assert math.isclose(encode_duty(value, lo, hi), duty,
                            rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(duty=st.floats(min_value=0, max_value=1,
                          allow_nan=False, allow_infinity=False),
           steps=st.integers(min_value=1, max_value=1024))
    def test_quantize_lands_on_grid_and_is_idempotent(self, duty, steps):
        q = quantize_duty(duty, steps)
        assert 0.0 <= q <= 1.0
        assert abs(q - duty) <= 0.5 / steps + 1e-12
        on_grid = round(q * steps)
        assert math.isclose(q, on_grid / steps, abs_tol=1e-12)
        assert quantize_duty(q, steps) == q

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(values=st.lists(finite, min_size=1, max_size=8),
           steps=st.integers(min_value=1, max_value=64))
    def test_encode_features_matches_elementwise(self, values, steps):
        lo, hi = -10.0, 10.0
        encoded = encode_features(values, lo, hi, steps=steps)
        assert encoded == [
            quantize_duty(encode_duty(v, lo, hi), steps) for v in values]

    def test_bad_ranges_rejected(self):
        with pytest.raises(AnalysisError):
            encode_duty(0.5, 1.0, 1.0)
        with pytest.raises(AnalysisError):
            decode_duty(0.5, 2.0, 1.0)
        with pytest.raises(AnalysisError):
            quantize_duty(0.5, 0)
