"""Controlled sources and the voltage-controlled switch."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    NetlistError,
    Resistor,
    Vccs,
    Vcvs,
    Vdc,
    VSwitch,
    operating_point,
)


class TestVcvs:
    def test_ideal_amplifier(self):
        c = Circuit()
        c.add(Vdc("VIN", "in", "0", 0.5))
        c.add(Vcvs("E1", "out", "0", "in", "0", gain=4.0))
        c.add(Resistor("RL", "out", "0", "1k"))
        op = operating_point(c)
        assert op.voltage("out") == pytest.approx(2.0, rel=1e-9)

    def test_differential_control(self):
        c = Circuit()
        c.add(Vdc("VA", "a", "0", 1.0))
        c.add(Vdc("VB", "b", "0", 0.3))
        c.add(Vcvs("E1", "out", "0", "a", "b", gain=2.0))
        c.add(Resistor("RL", "out", "0", "1k"))
        assert operating_point(c).voltage("out") == pytest.approx(1.4,
                                                                  rel=1e-9)


class TestVccs:
    def test_transconductance(self):
        c = Circuit()
        c.add(Vdc("VIN", "in", "0", 1.0))
        c.add(Resistor("RIN", "in", "0", "1k"))  # load the source
        c.add(Vccs("G1", "0", "out", "in", "0", gm=1e-3))
        c.add(Resistor("RL", "out", "0", "2k"))
        # i = gm*vin = 1 mA from ground into out -> V = 2 V.
        assert operating_point(c).voltage("out") == pytest.approx(2.0,
                                                                  rel=1e-6)


class TestVSwitch:
    def make(self, vctrl):
        c = Circuit()
        c.add(Vdc("VC", "ctrl", "0", vctrl))
        c.add(Vdc("VS", "src", "0", 1.0))
        c.add(VSwitch("S1", "src", "out", "ctrl", "0",
                      r_on=100.0, r_off=1e9, threshold=0.5, smooth=0.02))
        c.add(Resistor("RL", "out", "0", "1k"))
        return c

    def test_switch_off(self):
        op = operating_point(self.make(0.0))
        assert op.voltage("out") < 0.01

    def test_switch_on(self):
        op = operating_point(self.make(1.0))
        # Divider: 1k/(1k+100) ~ 0.909
        assert op.voltage("out") == pytest.approx(1.0 * 1000 / 1100,
                                                  rel=1e-3)

    def test_transition_is_monotone(self):
        values = []
        for vctrl in np.linspace(0.3, 0.7, 9):
            values.append(operating_point(self.make(float(vctrl)))
                          .voltage("out"))
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(NetlistError):
            VSwitch("S1", "a", "b", "c", "0", r_on=0.0)
        with pytest.raises(NetlistError):
            VSwitch("S1", "a", "b", "c", "0", smooth=0.0)
