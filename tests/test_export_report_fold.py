"""SPICE export, markdown report generation and waveform folding."""

import numpy as np
import pytest

from repro.circuit import (
    AnalysisError,
    Capacitor,
    Circuit,
    Mosfet,
    PwmVoltage,
    Resistor,
    Vdc,
    Vsin,
    Waveform,
    to_spice,
    write_spice,
)
from repro.core import AdderConfig, WeightedAdder
from repro.experiments import run_experiment
from repro.reporting import build_markdown_report, write_markdown_report
from repro.tech import NMOS_UMC65


class TestSpiceExport:
    def make_cell(self):
        c = Circuit("cell")
        c.add(Vdc("VDD", "vdd", "0", 2.5))
        c.add(PwmVoltage("VIN", "in", "0", v_high=2.5, frequency=500e6,
                         duty=0.5))
        c.add(Mosfet("MN", "out", "in", "0", model=NMOS_UMC65,
                     w="320n", l="1.2u"))
        c.add(Resistor("R1", "vdd", "out", "100k"))
        c.add(Capacitor("C1", "out", "0", "1p", ic=1.0))
        return c

    def test_deck_structure(self):
        deck = to_spice(self.make_cell())
        assert deck.startswith("* cell")
        assert deck.rstrip().endswith(".end")
        assert "VVDD vdd 0 DC 2.5" in deck
        assert "PULSE(" in deck
        assert ".model umc65_nmos_io NMOS (LEVEL=1" in deck
        assert "W=3.2e-07" in deck
        assert "IC=1" in deck

    @staticmethod
    def parse_deck(deck: str):
        """Minimal SPICE card reader: element cards -> (letter, nodes).

        Node counts per element letter follow the standard card
        layouts the exporter emits (R/C/L/V/I: 2, M/E/G/S: 4).
        """
        nodes_per_letter = {"R": 2, "C": 2, "L": 2, "V": 2, "I": 2,
                            "M": 4, "E": 4, "G": 4, "S": 4}
        elements = []
        nodes = set()
        for line in deck.splitlines():
            line = line.strip()
            if not line or line.startswith(("*", ".")):
                continue
            fields = line.split()
            letter = fields[0][0].upper()
            assert letter in nodes_per_letter, f"unknown card {line!r}"
            card_nodes = fields[1:1 + nodes_per_letter[letter]]
            elements.append((letter, tuple(card_nodes)))
            nodes.update(card_nodes)
        return elements, nodes

    def test_roundtrip_counts_match_netlist(self):
        # Export, re-parse the card text, and check the deck describes
        # exactly the circuit: same element count per type, same
        # non-ground node set.
        circuit = self.make_cell()
        circuit.compile()
        elements, nodes = self.parse_deck(to_spice(circuit))
        assert len(elements) == len(circuit.elements)
        letters = sorted(letter for letter, _ in elements)
        assert letters == ["C", "M", "R", "V", "V"]
        # SPICE spells ground as 0; every other node must round-trip.
        assert nodes - {"0"} == {"vdd", "in", "out"}

    def test_roundtrip_counts_match_adder_netlist(self):
        # The full 54-transistor bench: subcircuit expansion must be
        # reflected card for card (6 MOSFETs per AND cell + sources,
        # per-cell resistors and the shared Cout).
        adder = WeightedAdder(AdderConfig())
        circuit = adder.build_circuit((0.2, 0.5, 0.8), (1, 2, 3))
        circuit.compile()
        elements, nodes = self.parse_deck(to_spice(circuit))
        assert len(elements) == len(circuit.elements)
        counts = {}
        for letter, _ in elements:
            counts[letter] = counts.get(letter, 0) + 1
        assert counts["M"] == adder.config.transistor_count
        expected_nodes = {n for n in circuit.node_names}
        spice_nodes = {n.replace(".", "_") for n in expected_nodes}
        assert nodes - {"0"} == spice_nodes

    def test_ground_aliases_map_to_zero(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "gnd", "1k"))
        c.add(Vdc("V1", "a", "0", 1.0))
        deck = to_spice(c)
        assert "RR1 a 0 1000" in deck

    def test_subcircuit_nodes_flattened(self):
        adder = WeightedAdder(AdderConfig())
        circuit = adder.build_circuit([0.5] * 3, [7] * 3)
        deck = to_spice(circuit)
        # Hierarchical names flattened with underscores; 54 devices.
        assert deck.count("\nMX") == 54
        assert "X0_0_ROUT" in deck

    def test_sin_source(self):
        c = Circuit()
        c.add(Vsin("V1", "a", "0", offset=1.0, amplitude=0.5,
                   frequency=1e6))
        c.add(Resistor("R1", "a", "0", "1k"))
        assert "SIN(1 0.5 1e+06 0)" in to_spice(c)

    def test_analysis_lines_appended(self):
        deck = to_spice(self.make_cell(),
                        analysis_lines=[".tran 10p 100n"])
        assert ".tran 10p 100n" in deck

    def test_write_to_disk(self, tmp_path):
        path = write_spice(self.make_cell(), tmp_path / "cell.cir")
        assert path.read_text().startswith("* cell")


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            "table1": run_experiment("table1"),
            "ext_transistor_count": run_experiment("ext_transistor_count"),
        }

    def test_report_contains_sections(self, results):
        text = build_markdown_report(results)
        assert "# Reproduction report" in text
        assert "## `table1`" in text
        assert "## `ext_transistor_count`" in text
        assert "| Parameter |" in text

    def test_metrics_and_notes_included(self, results):
        text = build_markdown_report(results)
        assert "`pwm_transistors` = 54" in text
        assert "> Paper" in text or "> The" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            build_markdown_report({})

    def test_write_to_disk(self, results, tmp_path):
        path = write_markdown_report(results, tmp_path / "r.md",
                                     title="T")
        assert path.read_text().startswith("# T")


class TestWaveformFold:
    def test_folding_recovers_periodic_shape(self):
        period = 1e-6
        t = np.linspace(0, 10 * period, 5001)
        y = np.sin(2 * np.pi * t / period)
        folded = Waveform(t, y).fold(period, n_bins=100)
        assert len(folded) == 100
        # Shape preserved: peak near T/4, trough near 3T/4.
        assert folded.value_at(0.25 * period) == pytest.approx(1.0,
                                                               abs=0.01)
        assert folded.value_at(0.75 * period) == pytest.approx(-1.0,
                                                               abs=0.01)

    def test_folding_averages_noise(self):
        period = 1e-6
        rng = np.random.default_rng(0)
        t = np.linspace(0, 50 * period, 20001)
        y = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.3, t.size)
        folded = Waveform(t, y).fold(period, n_bins=50)
        clean = np.sin(2 * np.pi * folded.t / period)
        assert float(np.max(np.abs(folded.y - clean))) < 0.1

    def test_validation(self):
        w = Waveform([0, 1], [0, 1])
        with pytest.raises(AnalysisError):
            w.fold(0.0)
        with pytest.raises(AnalysisError):
            w.fold(1.0, n_bins=1)
