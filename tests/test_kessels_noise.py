"""Kessels counter PWM generator and noise injection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import AnalysisError
from repro.signals import (
    CounterConfig,
    KesselsPwmGenerator,
    NoiseSpec,
    PwmNoiseSampler,
    PwmSpec,
    elastic_clock,
    ramp,
)


class TestCounter:
    def test_duty_is_code_over_modulus(self):
        gen = KesselsPwmGenerator(CounterConfig(modulus=16))
        gen.load(4)
        assert gen.duty == pytest.approx(0.25)
        assert gen.measured_duty(4) == pytest.approx(0.25, abs=1e-6)

    def test_load_duty_picks_nearest_code(self):
        gen = KesselsPwmGenerator(CounterConfig(modulus=8))
        code = gen.load_duty(0.3)
        assert code == 2  # 0.25 is nearest to 0.3 on the /8 grid
        assert gen.duty == pytest.approx(0.25)

    def test_code_clamped(self):
        gen = KesselsPwmGenerator(CounterConfig(modulus=8))
        gen.load(99)
        assert gen.code == 8
        gen.load(-3)
        assert gen.code == 0

    def test_extreme_codes(self):
        gen = KesselsPwmGenerator(CounterConfig(modulus=8))
        gen.load(0)
        assert gen.measured_duty(2) == 0.0
        gen.load(8)
        assert gen.measured_duty(2) == 1.0

    def test_non_integer_code_rejected(self):
        gen = KesselsPwmGenerator()
        with pytest.raises(AnalysisError):
            gen.load(0.5)

    def test_bad_modulus(self):
        with pytest.raises(AnalysisError):
            CounterConfig(modulus=1)

    def test_waveform_levels(self):
        gen = KesselsPwmGenerator(CounterConfig(modulus=4, v_high=2.0))
        gen.load(2)
        wave = gen.waveform(2)
        assert wave.maximum() == 2.0
        assert wave.minimum() == 0.0

    @given(st.integers(min_value=0, max_value=16))
    def test_duty_exact_for_every_code(self, code):
        gen = KesselsPwmGenerator(CounterConfig(modulus=16))
        gen.load(code)
        assert gen.measured_duty(3) == pytest.approx(code / 16, abs=1e-9)

    def test_elastic_clock_preserves_duty(self):
        # Supply droops 2.5 -> 1.2 V: the clock slows ~2x but the duty
        # (the information) must not move.
        supply = ramp(2.5, 1.2, 2e-6).clamped(v_min=1.0)
        gen = KesselsPwmGenerator(
            CounterConfig(modulus=16),
            clock_period=elastic_clock(1e-9, supply, sensitivity=1.2))
        gen.load(12)
        assert gen.measured_duty(8) == pytest.approx(0.75, abs=0.02)

    def test_elastic_clock_actually_slows(self):
        supply = ramp(2.5, 1.2, 2e-6).clamped(v_min=1.0)
        period_fn = elastic_clock(1e-9, supply, sensitivity=1.2)
        first = period_fn(0)
        for i in range(1, 5000):
            last = period_fn(i)
        assert last > 1.5 * first

    def test_to_spec(self):
        gen = KesselsPwmGenerator(CounterConfig(modulus=10),
                                  clock_period=1e-9)
        gen.load(3)
        spec = gen.to_spec()
        assert isinstance(spec, PwmSpec)
        assert spec.duty == pytest.approx(0.3)
        assert spec.frequency == pytest.approx(1e8)  # 10 cycles of 1 ns

    def test_bad_clock_period_caught(self):
        gen = KesselsPwmGenerator(CounterConfig(modulus=4),
                                  clock_period=lambda i: -1.0)
        gen.load(2)
        with pytest.raises(AnalysisError):
            gen.waveform(1)


class TestNoise:
    def test_zero_noise_is_identity(self):
        spec = PwmSpec(duty=0.4)
        sampler = PwmNoiseSampler(NoiseSpec(), seed=0)
        assert sampler.perturb(spec) == spec

    def test_jitter_spread_scales(self):
        spec = PwmSpec(duty=0.5)
        sampler = PwmNoiseSampler(NoiseSpec(jitter_rms=0.01), seed=1)
        duties = [sampler.perturb(spec).duty for _ in range(400)]
        assert np.std(duties) == pytest.approx(np.sqrt(2) * 0.01, rel=0.2)

    def test_duty_stays_in_range(self):
        spec = PwmSpec(duty=0.98)
        sampler = PwmNoiseSampler(NoiseSpec(jitter_rms=0.05), seed=2)
        for s in sampler.perturb_many(spec, 200):
            assert 0.0 <= s.duty <= 1.0

    def test_amplitude_noise_changes_vhigh_only(self):
        spec = PwmSpec(duty=0.5)
        sampler = PwmNoiseSampler(NoiseSpec(amplitude_sigma=0.1), seed=3)
        out = sampler.perturb(spec)
        assert out.duty == spec.duty
        assert out.v_high != spec.v_high

    def test_negative_magnitude_rejected(self):
        with pytest.raises(AnalysisError):
            NoiseSpec(jitter_rms=-0.1)

    def test_seeded_reproducibility(self):
        spec = PwmSpec(duty=0.5)
        a = PwmNoiseSampler(NoiseSpec(jitter_rms=0.02), seed=42).perturb(spec)
        b = PwmNoiseSampler(NoiseSpec(jitter_rms=0.02), seed=42).perturb(spec)
        assert a == b
