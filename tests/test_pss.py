"""Periodic steady-state (shooting) against analytic and brute-force results."""

import numpy as np
import pytest

from repro.circuit import (
    AnalysisError,
    Capacitor,
    Circuit,
    CircuitError,
    ConvergenceError,
    PwmVoltage,
    Resistor,
    Vdc,
    settle_average,
    shooting,
)
from tests.conftest import make_transcoding_inverter


def rc_pwm_circuit(duty: float, *, r=10e3, c=1e-9, f=1e6, vhigh=1.0) -> Circuit:
    """Linear RC driven by PWM: steady-state average is duty*vhigh."""
    ckt = Circuit("rc_pwm")
    ckt.add(PwmVoltage("VIN", "in", "0", v_high=vhigh, frequency=f, duty=duty))
    ckt.add(Resistor("R1", "in", "out", r))
    ckt.add(Capacitor("C1", "out", "0", c))
    return ckt


class TestShootingLinear:
    @pytest.mark.parametrize("duty", [0.2, 0.5, 0.8])
    def test_rc_average_equals_duty(self, duty):
        ckt = rc_pwm_circuit(duty)
        pss = shooting(ckt, period=1e-6, steps_per_period=200)
        # Average of the RC output equals the average of the input.
        assert pss.average("out") == pytest.approx(duty, abs=0.01)

    def test_converges_in_few_iterations(self):
        # tau = 10us >> T = 1us: brute force would need ~50 periods,
        # shooting needs a handful of Newton steps.
        ckt = rc_pwm_circuit(0.5)
        pss = shooting(ckt, period=1e-6, steps_per_period=100)
        assert pss.iterations <= 4

    def test_periodicity_of_result(self):
        ckt = rc_pwm_circuit(0.3)
        pss = shooting(ckt, period=1e-6, steps_per_period=200)
        wave = pss.node("out")
        assert wave.y[0] == pytest.approx(wave.y[-1], abs=1e-3)

    def test_ripple_scales_with_period(self):
        slow = shooting(rc_pwm_circuit(0.5, f=1e6), period=1e-6,
                        steps_per_period=100)
        fast = shooting(rc_pwm_circuit(0.5, f=10e6), period=1e-7,
                        steps_per_period=100)
        assert fast.ripple("out") < slow.ripple("out") / 5


class TestShootingVsSettle:
    def test_agreement_on_transcoding_inverter(self):
        ckt = make_transcoding_inverter(0.6)
        pss = shooting(ckt, period=2e-9, steps_per_period=100)
        avg_settle, _ = settle_average(
            make_transcoding_inverter(0.6), 2e-9, "out",
            steps_per_period=60, chunk_periods=30, tol=5e-4)
        assert pss.average("out") == pytest.approx(avg_settle, abs=0.02)


class TestShootingValidation:
    def test_bad_period(self):
        with pytest.raises(AnalysisError):
            shooting(rc_pwm_circuit(0.5), period=0.0)

    def test_no_observable_nodes(self):
        c = Circuit()
        c.add(Vdc("V1", "a", "0", 1.0))
        c.add(Resistor("R1", "a", "0", "1k"))
        with pytest.raises(AnalysisError):
            shooting(c, period=1e-6)

    def test_cannot_observe_ground(self):
        with pytest.raises(AnalysisError):
            shooting(rc_pwm_circuit(0.5), period=1e-6, observe=["0"])

    def test_explicit_observe_works(self):
        pss = shooting(rc_pwm_circuit(0.5), period=1e-6, observe=["out"],
                       steps_per_period=100)
        assert pss.average("out") == pytest.approx(0.5, abs=0.01)


class TestShootingNonConvergence:
    """Shooting failure must surface as a typed, bounded error."""

    def test_unreachable_tolerance_raises_typed_error(self):
        # tol=0 can never be met; the engine must stop at
        # max_iterations with ConvergenceError — never a raw
        # numpy.linalg.LinAlgError or an unbounded loop.
        with pytest.raises(ConvergenceError) as excinfo:
            shooting(rc_pwm_circuit(0.5), period=1e-6,
                     steps_per_period=40, max_iterations=3, tol=0.0)
        assert "3 iterations" in str(excinfo.value)
        assert not isinstance(excinfo.value, np.linalg.LinAlgError)
        assert isinstance(excinfo.value, CircuitError)
        assert excinfo.value.analysis == "pss"

    def test_max_iterations_bounds_the_period_runs(self, monkeypatch):
        # Each iteration costs one base run plus one finite-difference
        # run per observed node; max_iterations=2 with one observed
        # node and no warmup is exactly 4 transient calls.
        import repro.circuit.pss as pss_module

        calls = []
        real = pss_module.transient

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(pss_module, "transient", counting)
        with pytest.raises(ConvergenceError):
            shooting(rc_pwm_circuit(0.5), period=1e-6,
                     steps_per_period=40, max_iterations=2, tol=0.0,
                     warmup_periods=0, observe=["out"])
        assert len(calls) == 4

    def test_singular_period_map_falls_back_not_raises(self):
        # A duty-0 source makes the observed node an undriven RC to
        # ground: the shooting Jacobian is benign here, but the
        # (I - A) solve path must never leak LinAlgError for any
        # converged-or-not outcome.
        ckt = rc_pwm_circuit(0.0)
        pss = shooting(ckt, period=1e-6, steps_per_period=40)
        assert pss.average("out") == pytest.approx(0.0, abs=1e-6)


class TestTranscodingInverterPss:
    """The paper's Fig. 2 cell behaves as designed under PSS."""

    def test_output_inverse_of_duty(self):
        v40 = shooting(make_transcoding_inverter(0.4), 2e-9,
                       steps_per_period=80).average("out")
        v70 = shooting(make_transcoding_inverter(0.7), 2e-9,
                       steps_per_period=80).average("out")
        assert v40 > v70

    def test_output_close_to_ideal_with_large_rout(self):
        for duty in (0.25, 0.75):
            pss = shooting(make_transcoding_inverter(duty), 2e-9,
                           steps_per_period=80)
            ideal = 2.5 * (1 - duty)
            assert pss.average("out") == pytest.approx(ideal, abs=0.15)

    def test_supply_power_positive_and_small(self):
        pss = shooting(make_transcoding_inverter(0.5), 2e-9,
                       steps_per_period=80)
        power = pss.supply_power("VDD")
        assert 0 < power < 1e-3  # sub-milliwatt cell
