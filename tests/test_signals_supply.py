"""Supply profiles and the harvester model."""

import numpy as np
import pytest

from repro.circuit import AnalysisError, Circuit, Resistor, transient
from repro.signals import (
    HarvesterModel,
    brownout,
    constant,
    ramp,
    sine_ripple,
    solar_flicker,
)


class TestProfiles:
    def test_constant(self):
        p = constant(2.5)
        assert p(0.0) == 2.5
        assert p(1e3) == 2.5

    def test_ramp_endpoints_and_midpoint(self):
        p = ramp(1.0, 3.0, 2e-3)
        assert p(0.0) == 1.0
        assert p(1e-3) == pytest.approx(2.0)
        assert p(5e-3) == 3.0

    def test_ramp_validation(self):
        with pytest.raises(AnalysisError):
            ramp(1.0, 2.0, 0.0)

    def test_sine_ripple_bounds(self):
        p = sine_ripple(2.5, 0.3, 1e3)
        samples = [p(t) for t in np.linspace(0, 2e-3, 500)]
        assert max(samples) == pytest.approx(2.8, abs=0.01)
        assert min(samples) == pytest.approx(2.2, abs=0.01)

    def test_brownout_window(self):
        p = brownout(2.5, 1.0, 1e-3, 2e-3)
        assert p(0.5e-3) == 2.5
        assert p(1.5e-3) == 1.0
        assert p(2.5e-3) == 2.5

    def test_brownout_validation(self):
        with pytest.raises(AnalysisError):
            brownout(2.5, 1.0, 2e-3, 1e-3)

    def test_clamped(self):
        p = ramp(0.0, 5.0, 1e-3).clamped(v_min=1.0, v_max=3.0)
        assert p(0.0) == 1.0
        assert p(1e-3) == 3.0

    def test_sample_waveform(self):
        wave = constant(1.5).sample(1e-3, n=50)
        assert wave.average() == pytest.approx(1.5)

    def test_to_source_drives_circuit(self):
        c = Circuit()
        c.add(ramp(1.0, 2.0, 1e-3).to_source("VDD", "vdd"))
        c.add(Resistor("R1", "vdd", "0", "1k"))
        res = transient(c, tstop=1e-3, dt=2e-5)
        assert res.node("vdd").value_at(0.5e-3) == pytest.approx(1.5, abs=0.01)


class TestHarvester:
    def test_balanced_harvest_holds_voltage(self):
        model = HarvesterModel(c_store=100e-9, v_init=2.5, i_load=200e-6,
                               dt=1e-6)
        profile = model.profile(lambda t: 200e-6, 1e-3)
        assert profile(1e-3) == pytest.approx(2.5, abs=0.01)

    def test_deficit_discharges(self):
        model = HarvesterModel(c_store=100e-9, v_init=2.5, i_load=300e-6,
                               dt=1e-6)
        profile = model.profile(lambda t: 100e-6, 1e-3)
        # dV = (100u-300u)/100n * 1ms = -2.0V
        assert profile(1e-3) == pytest.approx(0.5, abs=0.05)

    def test_clamp_limits_charge(self):
        model = HarvesterModel(c_store=10e-9, v_init=2.5, v_clamp=3.0,
                               i_load=0.0, dt=1e-6)
        profile = model.profile(lambda t: 1e-3, 1e-3)
        assert profile(1e-3) == pytest.approx(3.0)

    def test_never_negative(self):
        model = HarvesterModel(c_store=10e-9, v_init=0.5, i_load=1e-3,
                               dt=1e-6)
        profile = model.profile(lambda t: 0.0, 1e-3)
        assert profile(1e-3) == 0.0

    def test_solar_flicker_shape(self):
        fn = solar_flicker(1e-3, period=1e-3, shadow_fraction=0.3)
        assert fn(0.1e-3) == pytest.approx(0.05e-3)   # in shadow
        assert fn(0.5e-3) == pytest.approx(1e-3)      # lit
        with pytest.raises(AnalysisError):
            solar_flicker(1e-3, 1e-3, shadow_fraction=1.0)
