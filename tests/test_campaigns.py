"""Campaign orchestration tests: expansion, sharding, resume, surfaces.

The contracts under test:

* a :class:`CampaignSpec` expands deterministically (ordered, validated,
  de-duplicated) for every axis kind (values / range / sample / zip);
* ``--shard i/N`` partitions the expansion exactly (disjoint cover,
  stable under re-expansion), and a campaign executed as 2 shards on
  separate processes produces a merged results table byte-identical to
  an unsharded run;
* re-running an interrupted campaign executes only the cache misses —
  including misses caused by corrupt/truncated cache entries, which
  must read as misses, never raise (the ResultCache regression net);
* the deprecated ``run_experiment`` shim warns exactly once per process
  and matches ``run_config`` output exactly;
* the CLI and HTTP surfaces serve the same spec documents.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import urllib.error
import urllib.request
import warnings
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    campaign_status,
    collect_results,
    find_campaigns,
    parse_shard,
    read_manifests,
    results_document,
    results_table,
    shard_index,
)
from repro.circuit import AnalysisError
from repro.exec import ResultCache, default_cache_dir
from repro.experiments import RunConfig, run_config, run_experiment
from repro.reporting import build_campaign_report

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLE_DIR = REPO_ROOT / "examples" / "campaigns"
YIELD_SPEC = EXAMPLE_DIR / "montecarlo_yield.json"
ROBUSTNESS_SPEC = EXAMPLE_DIR / "supply_robustness.json"


def montecarlo_spec(count: int = 3, **extra) -> CampaignSpec:
    """A cheap campaign (ext_montecarlo runs in milliseconds at fast)."""
    doc = {
        "name": "mc-smoke",
        "experiment": "ext_montecarlo",
        "fidelity": "fast",
        "axes": [{"param": "seed", "range": {"start": 0, "count": count}}],
    }
    doc.update(extra)
    return CampaignSpec.from_dict(doc)


class TestAxisExpansion:
    def test_product_order_last_axis_fastest(self):
        spec = CampaignSpec.from_dict({
            "name": "order",
            "experiment": "ext_montecarlo",
            "axes": [
                {"param": "seed", "values": [1, 2]},
                {"param": "method", "values": ["loop", "vectorized"]},
            ],
        })
        points = [dict(c.params) for c in spec.expand()]
        assert [(p["seed"], p["method"]) for p in points] == [
            (1, "loop"), (1, "vectorized"), (2, "loop"), (2, "vectorized")]

    def test_range_axis_with_step(self):
        spec = CampaignSpec.from_dict({
            "name": "r",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed",
                      "range": {"start": 4, "count": 3, "step": 2}}],
        })
        assert [dict(c.params)["seed"] for c in spec.expand()] == [4, 6, 8]

    def test_int_sample_fractional_bounds_shrink_inward(self):
        spec = CampaignSpec.from_dict({
            "name": "frac",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed",
                      "sample": {"count": 32, "low": 0.5, "high": 2.5,
                                 "seed": 0}}],
        })
        seeds = {dict(c.params)["seed"] for c in spec.expand()}
        assert seeds <= {1, 2}, "draws must stay inside [ceil(low), floor(high)]"
        empty = CampaignSpec.from_dict({
            "name": "empty",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed",
                      "sample": {"count": 2, "low": 1.2, "high": 1.8}}],
        })
        with pytest.raises(AnalysisError, match="no integers"):
            empty.expand()

    def test_sample_axis_deterministic_and_bounded(self):
        doc = {
            "name": "s",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed",
                      "sample": {"count": 8, "low": 10, "high": 20,
                                 "seed": 5}}],
        }
        first = [dict(c.params)["seed"]
                 for c in CampaignSpec.from_dict(doc).expand()]
        second = [dict(c.params)["seed"]
                  for c in CampaignSpec.from_dict(doc).expand()]
        assert first == second
        assert all(10 <= s <= 20 for s in first)
        assert all(isinstance(s, int) for s in first)

    def test_zip_axis_lockstep(self):
        spec = CampaignSpec.from_dict({
            "name": "z",
            "experiment": "ext_montecarlo",
            "axes": [{"zip": [
                {"param": "seed", "values": [1, 2]},
                {"param": "method", "values": ["loop", "vectorized"]},
            ]}],
        })
        points = [dict(c.params) for c in spec.expand()]
        assert [(p["seed"], p["method"]) for p in points] == [
            (1, "loop"), (2, "vectorized")]

    def test_zip_length_mismatch_rejected(self):
        spec = CampaignSpec.from_dict({
            "name": "z",
            "experiment": "ext_montecarlo",
            "axes": [{"zip": [
                {"param": "seed", "values": [1, 2, 3]},
                {"param": "method", "values": ["loop"]},
            ]}],
        })
        with pytest.raises(AnalysisError, match="mismatched lengths"):
            spec.expand()

    def test_floats_param_values_become_grids(self):
        spec = CampaignSpec.from_dict({
            "name": "grids",
            "experiment": "ext_robustness",
            "axes": [{"param": "vdd_values",
                      "values": [[1.0, 2.0], [2.5, 3.0, 3.5]]}],
        })
        values = [dict(c.params)["vdd_values"] for c in spec.expand()]
        assert values == [(1.0, 2.0), (2.5, 3.0, 3.5)]

    def test_duplicate_points_deduped_keeping_order(self):
        spec = CampaignSpec.from_dict({
            "name": "dup",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed", "values": [3, 3, 1]}],
        })
        assert [dict(c.params)["seed"] for c in spec.expand()] == [3, 1]

    def test_base_params_apply_to_every_config(self):
        spec = montecarlo_spec(2, base={"method": "loop"})
        assert all(dict(c.params)["method"] == "loop"
                   for c in spec.expand())

    @pytest.mark.parametrize("doc, match", [
        ({"name": "x", "experiment": "nope", "axes": []},
         "unknown experiment"),
        ({"name": "x", "experiment": "ext_montecarlo",
          "axes": [{"param": "nope", "values": [1]}]},
         "not\\s+declared"),
        ({"name": "x", "experiment": "ext_montecarlo",
          "base": {"seed": 1},
          "axes": [{"param": "seed", "values": [2]}]},
         "assigned\\s+more than once"),
        ({"name": "bad name!", "experiment": "ext_montecarlo",
          "axes": []}, "campaign name"),
        ({"name": "x", "experiment": "ext_montecarlo",
          "fidelity": "turbo", "axes": []}, "fidelity"),
        ({"name": "x", "experiment": "ext_montecarlo",
          "axes": [{"param": "seed"}]}, "exactly one of"),
        ({"name": "x", "experiment": "ext_montecarlo",
          "axes": [{"param": "seed", "values": [1],
                    "range": {"start": 0, "count": 1}}]},
         "exactly one of"),
        ({"name": "x", "experiment": "ext_montecarlo",
          "axes": [{"param": "seed",
                    "sample": {"count": 2, "low": 5, "high": 1}}]},
         "low.*high"),
        ({"name": "x", "experiment": "ext_montecarlo",
          "axes": [{"param": "seed",
                    "range": {"start": "a", "count": 2}}]},
         "must be a number"),
        ({"name": "x", "experiment": "ext_montecarlo",
          "axes": [{"param": "seed",
                    "sample": {"count": 2, "low": 0, "high": 9,
                               "seed": 1.5}}]},
         "'seed' must be an integer"),
        ({"name": "x", "experiment": "ext_montecarlo", "typo": 1,
          "axes": []}, "unknown field"),
    ])
    def test_invalid_specs_rejected(self, doc, match):
        with pytest.raises(AnalysisError, match=match):
            CampaignSpec.from_dict(doc).expand()

    def test_out_of_bounds_value_fails_at_expansion(self):
        spec = CampaignSpec.from_dict({
            "name": "neg",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed", "values": [-1]}],
        })
        with pytest.raises(AnalysisError, match=">= 0"):
            spec.expand()

    def test_describe_round_trips(self):
        spec = CampaignSpec.load(ROBUSTNESS_SPEC)
        again = CampaignSpec.from_dict(spec.describe())
        assert again == spec
        assert again.key() == spec.key()

    def test_committed_examples_are_valid(self):
        entries = find_campaigns(EXAMPLE_DIR)
        assert len(entries) == 2
        for path, loaded in entries:
            assert isinstance(loaded, CampaignSpec), (path, loaded)
            assert loaded.expand()
            assert loaded.size_bound() == len(loaded.expand())

    def test_size_bound_never_expands(self):
        spec = CampaignSpec.from_dict({
            "name": "huge",
            "experiment": "ext_montecarlo",
            "axes": [
                {"param": "seed",
                 "range": {"start": 0, "count": 10_000_000}},
                {"param": "method", "values": ["loop", "vectorized"]},
            ],
        })
        # O(axes): instant even for a 20M-point declaration.
        assert spec.size_bound() == 20_000_000

    def test_non_utf8_spec_file_is_a_listed_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_bytes(b"\xff\xfe\x00garbage")
        entries = find_campaigns(tmp_path)
        assert len(entries) == 1
        assert isinstance(entries[0][1], AnalysisError)


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/4") == (2, 4)
        for bad in ("0/2", "3/2", "2/0", "x", "2", "1/x", "-1/2"):
            with pytest.raises(AnalysisError):
                parse_shard(bad)

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_shards_partition_exactly(self, n_shards):
        configs = montecarlo_spec(7).expand()
        buckets = [shard_index(c, n_shards) for c in configs]
        assert all(0 <= b < n_shards for b in buckets)
        # Re-expansion assigns identically: the partition is a pure
        # function of the config content.
        assert buckets == [shard_index(c, n_shards)
                           for c in montecarlo_spec(7).expand()]

    def test_shard_entries_cover_disjointly(self, tmp_path):
        spec = montecarlo_spec(6)
        cache = ResultCache(tmp_path)
        seen = {}
        for index in (1, 2, 3):
            runner = CampaignRunner(spec, cache, shard=(index, 3))
            for entry in runner.shard_entries():
                assert entry.config not in seen, "overlapping shards"
                seen[entry.config] = index
        assert len(seen) == 6


class TestRunAndResume:
    def _counting(self, monkeypatch):
        """Patch the runner's run_config to count real executions."""
        import repro.campaigns.runner as runner_mod

        calls = []

        def wrapped(config, **kwargs):
            calls.append(config)
            return run_config(config, **kwargs)

        monkeypatch.setattr(runner_mod, "run_config", wrapped)
        return calls

    def test_resume_executes_only_misses(self, tmp_path, monkeypatch):
        calls = self._counting(monkeypatch)
        spec = montecarlo_spec(4)
        cache = ResultCache(tmp_path)
        summary = CampaignRunner(spec, cache).run()
        assert (summary.executed, summary.skipped) == (4, 0)
        assert len(calls) == 4
        # A completed campaign re-runs for free.
        summary = CampaignRunner(spec, cache).run()
        assert (summary.executed, summary.skipped) == (0, 4)
        assert len(calls) == 4
        # Interrupt simulation: lose one entry, re-run fills exactly it.
        victim = spec.expand()[2]
        cache.path_for_config(victim).unlink()
        summary = CampaignRunner(spec, cache).run()
        assert (summary.executed, summary.skipped) == (1, 3)
        assert calls[-1] == victim

    def test_corrupt_entry_is_rerun_and_healed(self, tmp_path,
                                               monkeypatch):
        calls = self._counting(monkeypatch)
        spec = montecarlo_spec(3)
        cache = ResultCache(tmp_path)
        CampaignRunner(spec, cache).run()
        victim = spec.expand()[0]
        cache.path_for_config(victim).write_text('{"schema": 1, "resu')
        status = campaign_status(spec, cache)
        assert status["missing"] == 1
        summary = CampaignRunner(spec, cache).run()
        assert summary.executed == 1 and calls[-1] == victim
        assert cache.get_config(victim) is not None

    def test_manifests_record_progress(self, tmp_path):
        spec = montecarlo_spec(4)
        cache = ResultCache(tmp_path)
        for index in (1, 2):
            CampaignRunner(spec, cache, shard=(index, 2)).run()
        manifests = read_manifests(spec, cache.root)
        assert len(manifests) == 2
        assert all(doc["status"] == "complete" for doc in manifests)
        assert sum(len(doc["completed"]) for doc in manifests) == 4
        assert all(doc["spec_key"] == spec.key() for doc in manifests)

    def test_torn_journal_tail_is_skipped(self, tmp_path):
        spec = montecarlo_spec(3)
        cache = ResultCache(tmp_path)
        CampaignRunner(spec, cache).run()
        log = (cache.root / "campaigns" / spec.name / "shard-1of1.log")
        with log.open("a") as handle:
            handle.write('{"key": "torn-mid-wri')  # killed mid-append
        manifests = read_manifests(spec, cache.root)
        assert len(manifests) == 1
        assert len(manifests[0]["completed"]) == 3

    def test_torn_non_utf8_tail_is_partial_not_fatal(self, tmp_path):
        spec = montecarlo_spec(3)
        cache = ResultCache(tmp_path)
        CampaignRunner(spec, cache).run()
        directory = cache.root / "campaigns" / spec.name
        log = directory / "shard-1of1.log"
        with log.open("ab") as handle:
            handle.write(b'{"key": "torn \xc3')  # cut mid UTF-8 sequence
        manifests = read_manifests(spec, cache.root)
        assert len(manifests) == 1
        assert len(manifests[0]["completed"]) == 3
        # A header torn into invalid bytes is as good as no manifest.
        (directory / "shard-1of1.json").write_bytes(b'{"name": \xff\xfe')
        assert read_manifests(spec, cache.root) == []

    def test_status_breaks_down_by_shard(self, tmp_path):
        spec = montecarlo_spec(5)
        cache = ResultCache(tmp_path)
        CampaignRunner(spec, cache, shard=(1, 2)).run()
        status = campaign_status(spec, cache, n_shards=2)
        assert status["total"] == 5
        assert status["done"] == status["shards"][0]["done"]
        assert status["shards"][0]["done"] == status["shards"][0]["total"]
        assert status["shards"][1]["done"] == 0
        assert len(status["missing_labels"]) == status["missing"]
        assert status["missing_labels_truncated"] is False
        # Manifests are summarised, never the full per-config journal.
        assert all("completed" not in doc for doc in status["manifests"])

    def test_status_caps_missing_labels(self, tmp_path):
        from repro.campaigns.runner import MISSING_LABEL_CAP

        spec = montecarlo_spec(MISSING_LABEL_CAP + 5)
        cache = ResultCache(tmp_path)  # nothing run: everything missing
        status = campaign_status(spec, cache)
        assert status["missing"] == MISSING_LABEL_CAP + 5
        assert len(status["missing_labels"]) == MISSING_LABEL_CAP
        assert status["missing_labels_truncated"] is True

    def test_key_ignores_cosmetic_fields(self):
        base = montecarlo_spec(2)
        retitled = montecarlo_spec(
            2, title="New title", description="typo fixed")
        assert retitled.key() == base.key()
        widened = montecarlo_spec(3)
        assert widened.key() != base.key()


class TestShardedMergeIdentity:
    """Acceptance: 2 shards on separate processes == unsharded, byte-wise."""

    def _cli(self, args, env):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args], cwd=REPO_ROOT,
            env=env, capture_output=True, text=True, timeout=300)

    def test_two_process_shards_match_serial_run(self, tmp_path):
        env = {**os.environ,
               "PYTHONPATH": str(REPO_ROOT / "src")}
        spec_arg = str(YIELD_SPEC)
        sharded_cache, serial_cache = tmp_path / "a", tmp_path / "b"
        procs = [subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run", spec_arg,
             "--shard", f"{i}/2", "--cache-dir", str(sharded_cache)],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE) for i in (1, 2)]
        for proc in procs:
            _out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err.decode()
        serial = self._cli(["campaign", "run", spec_arg,
                            "--cache-dir", str(serial_cache)], env)
        assert serial.returncode == 0, serial.stderr

        reports = []
        for cache_dir, name in ((sharded_cache, "sharded"),
                                (serial_cache, "serial")):
            json_path = tmp_path / f"{name}.json"
            result = self._cli(
                ["campaign", "report", spec_arg, "--cache-dir",
                 str(cache_dir), "--json", str(json_path),
                 "--require-complete"], env)
            assert result.returncode == 0, result.stderr
            reports.append((result.stdout, json_path.read_bytes()))
        assert reports[0] == reports[1], \
            "sharded and serial campaign aggregates must be byte-identical"


class TestResultsAggregation:
    def test_table_rows_follow_expansion_order(self, tmp_path):
        spec = montecarlo_spec(3)
        cache = ResultCache(tmp_path)
        CampaignRunner(spec, cache).run()
        table = results_table(spec, collect_results(spec, cache))
        assert table.headers[:3] == ["#", "config", "seed"]
        assert [row[0] for row in table.rows] == ["0", "1", "2"]
        # Metric columns are the union over results, sorted.
        assert table.headers[3:] == sorted(table.headers[3:])

    def test_incomplete_campaign_reports_partial_table(self, tmp_path):
        spec = montecarlo_spec(3)
        cache = ResultCache(tmp_path)
        CampaignRunner(spec, cache).run()
        cache.path_for_config(spec.expand()[1]).unlink()
        collected = collect_results(spec, cache)
        document = results_document(spec, collected)
        assert (document["total"], document["done"]) == (3, 2)
        assert [row["position"] for row in document["rows"]] == [0, 2]
        report = build_campaign_report(
            name=spec.name, title=spec.display_title,
            experiment_id=spec.experiment_id, fidelity=spec.fidelity,
            table=results_table(spec, collected),
            total=3, done=2)
        assert "1 config(s) still missing" in report

    def test_document_is_deterministic_content_only(self, tmp_path):
        spec = montecarlo_spec(2)
        cache = ResultCache(tmp_path)
        CampaignRunner(spec, cache).run()
        document = results_document(spec, collect_results(spec, cache))
        text = json.dumps(document, sort_keys=True)
        assert str(tmp_path) not in text  # no paths leak
        again = results_document(spec, collect_results(spec, cache))
        assert json.dumps(again, sort_keys=True) == text


class TestCacheCorruptionRegression:
    """A corrupt/truncated cache entry is a miss, never an exception."""

    GARBAGE = [
        "",                                        # truncated to nothing
        '{"schema": 1, "result": {"experime',      # torn mid-write
        "null",                                    # valid JSON, wrong shape
        "[1, 2, 3]",
        '"a string"',
        '{"schema": 1}',                           # missing result
        '{"schema": 1, "result": null}',
        '{"schema": 1, "result": []}',
        '{"schema": 1, "result": {}}',             # result missing fields
        '{"schema": 1, "result": {"experiment_id": "x"}}',
        '{"schema": 1, "result": {"experiment_id": "x", "title": "t", '
        '"fidelity": "fast", "table": {"headers": []}}}',  # bad table
    ]

    def test_every_garbage_shape_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = RunConfig.build("ext_montecarlo", "fast")
        path = cache.path_for_config(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        for garbage in self.GARBAGE:
            path.write_text(garbage)
            assert cache.get_config(config) is None, garbage
        path.write_bytes(b"\x80\x81\xff")  # not even UTF-8
        assert cache.get_config(config) is None

    def test_corrupt_entry_overwritten_on_next_write(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = RunConfig.build("ext_montecarlo", "fast")
        path = cache.path_for_config(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"schema": 1, "resu')
        result = run_config(config, cache=cache)  # miss -> run -> put
        hit = cache.get_config(config)
        assert hit is not None
        assert hit.render() == result.render()

    def test_legacy_path_corruption_also_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for("ext_montecarlo", "fast", {})
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all")
        config = RunConfig.build("ext_montecarlo", "fast")
        assert cache.get_config(config, legacy_params={}) is None


class TestRunExperimentShim:
    """The deprecated shim warns once and matches run_config exactly."""

    def test_warns_exactly_once_per_process(self):
        import repro.experiments.registry as registry

        registry._RUN_EXPERIMENT_WARNED = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                run_experiment("ext_montecarlo", fidelity="fast", seed=5)
                run_experiment("ext_montecarlo", fidelity="fast", seed=6)
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)
                            and "run_experiment" in str(w.message)]
            assert len(deprecations) == 1
        finally:
            registry._RUN_EXPERIMENT_WARNED = True

    def test_shim_matches_run_config_output(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = run_experiment("ext_montecarlo", fidelity="fast",
                                  seed=11, method="vectorized")
        direct = run_config(RunConfig.build(
            "ext_montecarlo", "fast",
            {"seed": 11, "method": "vectorized"}))
        assert shim.to_dict() == direct.to_dict()
        assert shim.render() == direct.render()


class TestCampaignCli:
    def test_run_status_report_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        cache_dir = tmp_path / "cache"
        spec_arg = str(YIELD_SPEC)
        assert cli_main(["campaign", "run", spec_arg,
                         "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "6 executed" in out
        assert cli_main(["campaign", "status", spec_arg,
                         "--cache-dir", str(cache_dir), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert (status["done"], status["missing"]) == (6, 0)
        out_md = tmp_path / "report.md"
        csv_dir = tmp_path / "csv"
        json_path = tmp_path / "agg.json"
        assert cli_main(["campaign", "report", spec_arg,
                         "--cache-dir", str(cache_dir),
                         "--out", str(out_md), "--csv", str(csv_dir),
                         "--json", str(json_path),
                         "--require-complete"]) == 0
        assert "montecarlo-yield" in capsys.readouterr().out
        assert "pwm_yield" in out_md.read_text()
        assert (csv_dir / "campaign_montecarlo-yield.csv").exists()
        assert json.loads(json_path.read_text())["done"] == 6

    def test_require_complete_fails_on_missing(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        cache_dir = tmp_path / "cache"
        assert cli_main(["campaign", "report", str(YIELD_SPEC),
                         "--cache-dir", str(cache_dir),
                         "--require-complete"]) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_bad_spec_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert cli_main(["campaign", "status", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cache_dir_env_is_default_root(self, tmp_path, monkeypatch,
                                           capsys):
        from repro.__main__ import main as cli_main

        root = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        assert default_cache_dir() == root
        spec = montecarlo_spec(2)
        spec_path = tmp_path / "mc.json"
        spec_path.write_text(json.dumps(spec.describe()))
        assert cli_main(["campaign", "run", str(spec_path)]) == 0
        capsys.readouterr()
        assert list(root.glob("ext_montecarlo/fast-rc*.json")), \
            "campaign results must land under $REPRO_CACHE_DIR"

    def test_help_documents_cache_env_var(self, capsys):
        from repro.__main__ import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["campaign", "run", "--help"])
        assert "REPRO_CACHE_DIR" in capsys.readouterr().out


class TestHttpCampaigns:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        store = ModelStore(tmp_path / "models")
        with PerceptronServer(store, port=0,
                              campaign_dir=str(EXAMPLE_DIR)) as srv:
            yield srv

    def _get(self, server, path):
        with urllib.request.urlopen(server.url + path, timeout=30) as r:
            return json.loads(r.read())

    def _post(self, server, path, payload=b"{}"):
        request = urllib.request.Request(
            server.url + path, data=payload,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=120) as r:
            return json.loads(r.read())

    def test_get_campaigns_lists_specs(self, server):
        doc = self._get(server, "/campaigns")
        names = {c["name"] for c in doc["campaigns"]}
        assert names == {"montecarlo-yield", "supply-robustness"}
        yield_entry = next(c for c in doc["campaigns"]
                           if c["name"] == "montecarlo-yield")
        assert yield_entry["n_configs"] == 6
        assert yield_entry["experiment"] == "ext_yield"

    def test_run_campaign_returns_aggregate(self, server):
        doc = self._post(server, "/campaigns/montecarlo-yield/run")
        assert (doc["done"], doc["total"]) == (6, 6)
        assert len(doc["rows"]) == 6
        assert "pwm_yield" in doc["metrics"]
        assert "campaign 'montecarlo-yield'" in doc["table"]
        # Memoised: a second run replays the identical rows.
        again = self._post(server, "/campaigns/montecarlo-yield/run")
        assert again["rows"] == doc["rows"]

    def test_unknown_campaign_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/campaigns/nope/run")
        assert excinfo.value.code == 404

    def test_request_fields_rejected(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/campaigns/montecarlo-yield/run",
                       payload=b'{"fidelity": "paper"}')
        assert excinfo.value.code == 400

    def test_no_campaign_dir_serves_empty_list(self, tmp_path):
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        store = ModelStore(tmp_path / "models")
        with PerceptronServer(store, port=0) as srv:
            assert self._get(srv, "/campaigns") == {"count": 0,
                                                    "campaigns": []}

    def test_invalid_spec_file_listed_with_error(self, tmp_path):
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        camp_dir = tmp_path / "camps"
        camp_dir.mkdir()
        (camp_dir / "broken.json").write_text("{oops")
        store = ModelStore(tmp_path / "models")
        with PerceptronServer(store, port=0,
                              campaign_dir=str(camp_dir)) as srv:
            doc = self._get(srv, "/campaigns")
        assert doc["count"] == 1
        assert "error" in doc["campaigns"][0]

    def test_oversized_campaign_rejected_without_expansion(self, tmp_path):
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        camp_dir = tmp_path / "camps"
        camp_dir.mkdir()
        (camp_dir / "huge.json").write_text(json.dumps({
            "name": "huge",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed",
                      "range": {"start": 0, "count": 10_000_000}}],
        }))
        store = ModelStore(tmp_path / "models")
        with PerceptronServer(store, port=0,
                              campaign_dir=str(camp_dir)) as srv:
            # Listing reports the declared size cheaply, marked inexact.
            doc = self._get(srv, "/campaigns")
            entry = doc["campaigns"][0]
            assert entry["n_configs"] == 10_000_000
            assert entry["n_configs_exact"] is False
            assert entry["servable"] is False
            # Running it is refused before any config is built.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(srv, "/campaigns/huge/run")
            assert excinfo.value.code == 400

    def test_servable_cap_fits_the_memo(self):
        from repro.serve.server import PerceptronServer

        assert (PerceptronServer.campaign_config_max
                <= PerceptronServer.experiment_memo_max), \
            "a servable campaign must fit the memo or replay breaks"

    def test_expand_time_error_does_not_hide_valid_listings(self, tmp_path):
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        camp_dir = tmp_path / "camps"
        camp_dir.mkdir()
        # Loads fine, fails only at expansion (zip length mismatch).
        (camp_dir / "bad.json").write_text(json.dumps({
            "name": "bad-zip",
            "experiment": "ext_montecarlo",
            "axes": [{"zip": [
                {"param": "seed", "values": [1, 2]},
                {"param": "method", "values": ["loop"]},
            ]}],
        }))
        (camp_dir / "good.json").write_text(json.dumps({
            "name": "good",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed", "values": [1]}],
        }))
        store = ModelStore(tmp_path / "models")
        with PerceptronServer(store, port=0,
                              campaign_dir=str(camp_dir)) as srv:
            doc = self._get(srv, "/campaigns")
        by_name = {c.get("name"): c for c in doc["campaigns"]}
        assert "error" in by_name["bad-zip"]
        assert by_name["good"]["n_configs"] == 1

    def test_duplicate_name_counts_expansion_failures(self, tmp_path):
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        camp_dir = tmp_path / "camps"
        camp_dir.mkdir()
        # Twin A expands fine; twin B only fails at expansion — the
        # listing must still flag the collision the run endpoint will
        # refuse.
        (camp_dir / "a.json").write_text(json.dumps({
            "name": "clash",
            "experiment": "ext_montecarlo",
            "axes": [{"param": "seed", "values": [1]}],
        }))
        (camp_dir / "b.json").write_text(json.dumps({
            "name": "clash",
            "experiment": "ext_montecarlo",
            "axes": [{"zip": [
                {"param": "seed", "values": [1, 2]},
                {"param": "method", "values": ["loop"]},
            ]}],
        }))
        store = ModelStore(tmp_path / "models")
        with PerceptronServer(store, port=0,
                              campaign_dir=str(camp_dir)) as srv:
            doc = self._get(srv, "/campaigns")
            assert all(c.get("duplicate_name") for c in doc["campaigns"])
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(srv, "/campaigns/clash/run")
            assert excinfo.value.code == 400

    def test_duplicate_campaign_names_flagged_and_refused(self, tmp_path):
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        camp_dir = tmp_path / "camps"
        camp_dir.mkdir()
        for filename, seeds in (("a.json", [1]), ("b.json", [2])):
            (camp_dir / filename).write_text(json.dumps({
                "name": "clash",
                "experiment": "ext_montecarlo",
                "axes": [{"param": "seed", "values": seeds}],
            }))
        store = ModelStore(tmp_path / "models")
        with PerceptronServer(store, port=0,
                              campaign_dir=str(camp_dir)) as srv:
            doc = self._get(srv, "/campaigns")
            assert all(c.get("duplicate_name") for c in doc["campaigns"])
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(srv, "/campaigns/clash/run")
            assert excinfo.value.code == 400
            assert "multiple spec files" in json.loads(
                excinfo.value.read())["error"]
