"""Weight encoding and the Eq. 2 behavioural model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import AnalysisError
from repro.core import (
    BehavioralAdder,
    CalibrationModel,
    bits_to_weight,
    eq2_output,
    fit_calibration,
    max_weight,
    quantize_signed_weight,
    quantize_weight,
    split_signed_weight,
    weight_to_bits,
)


class TestBits:
    def test_known_decomposition(self):
        assert weight_to_bits(5, 3) == [1, 0, 1]
        assert weight_to_bits(0, 3) == [0, 0, 0]
        assert weight_to_bits(7, 3) == [1, 1, 1]

    def test_out_of_range(self):
        with pytest.raises(AnalysisError):
            weight_to_bits(8, 3)
        with pytest.raises(AnalysisError):
            weight_to_bits(-1, 3)

    def test_non_integer_rejected(self):
        with pytest.raises(AnalysisError):
            weight_to_bits(1.5, 3)
        with pytest.raises(AnalysisError):
            weight_to_bits(True, 3)

    @given(st.integers(min_value=0, max_value=255))
    def test_roundtrip(self, w):
        assert bits_to_weight(weight_to_bits(w, 8)) == w

    def test_bits_validated(self):
        with pytest.raises(AnalysisError):
            bits_to_weight([0, 2, 1])

    def test_max_weight(self):
        assert max_weight(3) == 7
        assert max_weight(1) == 1
        with pytest.raises(AnalysisError):
            max_weight(0)


class TestSignedSplit:
    @given(st.integers(min_value=-7, max_value=7))
    def test_split_reconstructs(self, w):
        p, n = split_signed_weight(w, 3)
        assert p - n == w
        assert p >= 0 and n >= 0
        assert p == 0 or n == 0

    def test_out_of_range(self):
        with pytest.raises(AnalysisError):
            split_signed_weight(8, 3)

    def test_quantizers_clip(self):
        assert quantize_weight(9.7, 3) == 7
        assert quantize_weight(-2.0, 3) == 0
        assert quantize_signed_weight(-9.1, 3) == -7
        assert quantize_signed_weight(3.4, 3) == 3


class TestEq2:
    def test_paper_table2_theory_column(self):
        rows = [
            ((0.70, 0.80, 0.90), (7, 7, 7), 2.00),
            ((0.50, 0.50, 0.50), (1, 2, 4), 0.42),
            ((0.20, 0.60, 0.80), (5, 6, 7), 1.21),
            ((0.95, 0.90, 0.80), (7, 6, 6), 2.00),
            ((0.30, 0.40, 0.50), (1, 4, 2), 0.34),
        ]
        for duties, weights, expected in rows:
            v = eq2_output(duties, weights, n_bits=3, vdd=2.5)
            # abs=0.01: the paper prints two decimals (row 4's exact
            # value is 2.006).
            assert v == pytest.approx(expected, abs=0.01)

    def test_full_scale(self):
        v = eq2_output([1.0, 1.0, 1.0], [7, 7, 7], n_bits=3, vdd=2.5)
        assert v == pytest.approx(2.5)

    def test_zero_inputs(self):
        v = eq2_output([0.0, 0.0, 0.0], [7, 7, 7], n_bits=3, vdd=2.5)
        assert v == 0.0

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            eq2_output([0.5], [1, 2], n_bits=3, vdd=2.5)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1),
                              st.integers(min_value=0, max_value=7)),
                    min_size=1, max_size=6))
    def test_output_bounded_by_vdd(self, pairs):
        duties = [p[0] for p in pairs]
        weights = [p[1] for p in pairs]
        v = eq2_output(duties, weights, n_bits=3, vdd=2.5)
        assert 0.0 <= v <= 2.5 + 1e-12

    @given(st.floats(min_value=0, max_value=1),
           st.floats(min_value=0.5, max_value=5.0))
    def test_scales_linearly_with_vdd(self, duty, vdd):
        base = eq2_output([duty] * 3, [7, 7, 7], n_bits=3, vdd=1.0)
        assert eq2_output([duty] * 3, [7, 7, 7], n_bits=3, vdd=vdd) == \
            pytest.approx(base * vdd, rel=1e-9)


class TestBehavioralAdder:
    def test_output_and_ratio(self):
        adder = BehavioralAdder(3, 3, vdd=2.5)
        v = adder.output([0.5, 0.5, 0.5], [7, 7, 7])
        assert v == pytest.approx(1.25)
        assert adder.output_ratio([0.5, 0.5, 0.5], [7, 7, 7]) == \
            pytest.approx(0.5)

    def test_input_count_enforced(self):
        adder = BehavioralAdder(3, 3)
        with pytest.raises(AnalysisError):
            adder.output([0.5, 0.5], [7, 7])

    def test_dot_product(self):
        adder = BehavioralAdder(2, 3)
        assert adder.dot_product([0.5, 1.0], [2, 3]) == pytest.approx(4.0)


class TestCalibration:
    def test_identity_calibration(self):
        model = CalibrationModel()
        assert model.apply(1.3, 2.5) == pytest.approx(1.3)

    def test_fit_recovers_linear_distortion(self):
        ideal = np.linspace(0.1, 2.4, 12)
        measured = 0.95 * ideal - 0.02
        model = fit_calibration(ideal, measured, 2.5, degree=1)
        for v in (0.5, 1.0, 2.0):
            assert model.apply(v, 2.5) == pytest.approx(0.95 * v - 0.02,
                                                        abs=1e-6)

    def test_fit_needs_enough_points(self):
        with pytest.raises(AnalysisError):
            fit_calibration([1.0], [1.0], 2.5, degree=2)

    def test_apply_clips_to_rails(self):
        model = CalibrationModel([0.0, 2.0])  # doubles the ratio
        assert model.apply(2.0, 2.5) == pytest.approx(2.5)

    def test_calibrated_adder_changes_output(self):
        plain = BehavioralAdder(3, 3)
        calibrated = BehavioralAdder(3, 3,
                                     calibration=CalibrationModel([0.0, 0.9]))
        duties, weights = [0.5] * 3, [7] * 3
        assert calibrated.output(duties, weights) == pytest.approx(
            0.9 * plain.output(duties, weights))
