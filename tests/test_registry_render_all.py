"""Every registered experiment renders and exports at fast fidelity.

This is the rot-guard for the experiment layer: ids, titles, tables,
figures, CSV export and markdown report generation for the whole
registry (the slowest transistor-level ones are sampled by their own
dedicated tests; here we run the cheap majority end to end).
"""

import pytest

from repro.experiments import PAPER_ARTEFACTS, REGISTRY, run_experiment
from repro.reporting import (
    build_markdown_report,
    figure_to_csv,
    table_to_csv,
)
from repro.signals import rail_referenced_pwm
from repro.signals.supply import constant

#: Fast-running experiments (sub-second to a few seconds each).
QUICK_IDS = [
    "table1", "table2", "ext_transistor_count", "ext_robustness",
    "ext_montecarlo", "ext_ablation", "ext_kessels", "ext_noise",
    "ext_energy", "ext_sensitivity", "ext_scaling", "ext_yield",
    "ext_dynamic_supply", "ext_ac",
]


@pytest.fixture(scope="module")
def quick_results():
    return {eid: run_experiment(eid, fidelity="fast") for eid in QUICK_IDS}


def test_registry_covers_all_paper_artefacts():
    assert set(PAPER_ARTEFACTS) <= set(REGISTRY)
    assert len(REGISTRY) >= 20


def test_every_quick_experiment_renders(quick_results):
    for eid, result in quick_results.items():
        text = result.render(charts=False)
        assert eid in text
        assert result.title in text
        assert len(text) > 150, eid


def test_every_quick_experiment_has_metrics(quick_results):
    for eid, result in quick_results.items():
        assert result.metrics, eid


def test_artifacts_export_cleanly(quick_results, tmp_path):
    for eid, result in quick_results.items():
        if result.table is not None:
            table_to_csv(result.table, tmp_path / f"{eid}.csv")
        for figure in result.figures:
            figure_to_csv(figure, tmp_path / f"{figure.figure_id}.csv")
    assert any(tmp_path.iterdir())


def test_combined_report_builds(quick_results):
    report = build_markdown_report(quick_results, title="CI report")
    for eid in quick_results:
        assert f"## `{eid}`" in report


def test_rail_referenced_pwm_tracks_supply():
    from repro.circuit import Circuit, Resistor, transient

    c = Circuit()
    c.add(rail_referenced_pwm("V1", "a", constant(1.8), frequency=1e6,
                              duty=0.5))
    c.add(Resistor("R1", "a", "0", "1k"))
    res = transient(c, tstop=3e-6, dt=2e-8)
    assert res.node("a").maximum() == pytest.approx(1.8, abs=0.01)
    assert res.node("a").duty_cycle(0.9) == pytest.approx(0.5, abs=0.01)
