"""The CLI entry point and the noise/energy/sensitivity experiments."""

import pytest

from repro.__main__ import main as cli_main
from repro.analysis import adder_sensitivities
from repro.circuit import AnalysisError
from repro.core import AdderConfig, WeightedAdder
from repro.experiments import REGISTRY, run_experiment


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in REGISTRY:
            assert eid in out

    def test_run_single(self, capsys):
        assert cli_main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "320" in out

    def test_run_with_csv_export(self, tmp_path, capsys):
        assert cli_main(["run", "ext_transistor_count", "--csv",
                         str(tmp_path)]) == 0
        assert (tmp_path / "ext_transistor_count.csv").exists()

    def test_unknown_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "fig99"])

    @pytest.mark.parametrize("jobs", ["0", "-2", "-99", "two"])
    def test_invalid_jobs_rejected_by_argparse(self, jobs, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["run", "table1", "--jobs", jobs])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid jobs count" in err

    @pytest.mark.parametrize("jobs", ["1", "-1", "2"])
    def test_valid_jobs_accepted(self, jobs, capsys):
        assert cli_main(["run", "table1", "--jobs", jobs]) == 0
        assert "table1" in capsys.readouterr().out


class TestNoiseExperiment:
    def test_amplitude_and_frequency_immune(self):
        res = run_experiment("ext_noise", fidelity="fast")
        assert res.metrics["worst_mV[amplitude sigma 3%]"] == 0.0
        assert res.metrics["worst_mV[frequency sigma 3%]"] == 0.0

    def test_jitter_not_immune(self):
        res = run_experiment("ext_noise", fidelity="fast")
        assert res.metrics["mean_mV[edge jitter 3% of period]"] > 10.0


class TestEnergyExperiment:
    def test_energy_table_well_formed(self):
        res = run_experiment("ext_energy", fidelity="fast")
        assert res.metrics["pwm_pJ[2.5V]"] > 0
        assert res.metrics["digital_pJ[2.5V]"] > 0
        assert 0.9 < res.metrics["digital_min_reliable_vdd"] < 1.6

    def test_energy_scales_superlinearly_with_vdd(self):
        res = run_experiment("ext_energy", fidelity="fast")
        assert res.metrics["pwm_pJ[3.5V]"] > 1.5 * res.metrics["pwm_pJ[1.5V]"]


class TestSensitivity:
    def test_all_sensitivities_small(self):
        res = run_experiment("ext_sensitivity", fidelity="fast")
        assert res.metrics and all(
            abs(v) < 0.1 for v in res.metrics.values())

    def test_polarity_asymmetry_dominates(self):
        adder = WeightedAdder(AdderConfig())
        sens = {s.parameter: s.sensitivity for s in adder_sensitivities(
            adder, [0.7, 0.8, 0.9], [7, 7, 7])}
        # NMOS and PMOS strength shifts pull in opposite directions.
        assert sens["nmos_kp"] * sens["pmos_kp"] < 0

    def test_width_and_kp_equivalent(self):
        # Both enter the model only through beta = kp*W/L.
        adder = WeightedAdder(AdderConfig())
        sens = {s.parameter: s.sensitivity for s in adder_sensitivities(
            adder, [0.7, 0.8, 0.9], [7, 7, 7])}
        assert sens["nmos_width"] == pytest.approx(sens["nmos_kp"],
                                                   rel=1e-6)

    def test_zero_output_rejected(self):
        adder = WeightedAdder(AdderConfig())
        with pytest.raises(AnalysisError):
            adder_sensitivities(adder, [0.0, 0.0, 0.0], [0, 0, 0])

    def test_unknown_parameter(self):
        adder = WeightedAdder(AdderConfig())
        with pytest.raises(AnalysisError):
            adder_sensitivities(adder, [0.5] * 3, [7] * 3,
                                parameters=("oxide_thickness",))
