"""Datasets, elasticity metrics, Monte Carlo and calibration."""

import numpy as np
import pytest

from repro.analysis import (
    Dataset,
    adder_corner_errors,
    adder_monte_carlo,
    accuracy_under_supply,
    calibrate_adder,
    elasticity_score,
    frequency_flatness,
    make_blobs,
    make_edge_patches,
    make_logic,
    make_majority,
    ratiometric_report,
)
from repro.circuit import AnalysisError
from repro.core import AdderConfig, WeightedAdder
from repro.tech import MonteCarloSampler, corner
from repro.tech.umc65 import NMOS_UMC65


class TestDatasets:
    def test_blobs_shapes_and_ranges(self):
        data = make_blobs(n_per_class=20, n_features=3, seed=0)
        assert data.X.shape == (40, 3)
        assert set(np.unique(data.y)) == {0, 1}
        assert data.X.min() >= 0 and data.X.max() <= 1

    def test_split_partitions(self):
        data = make_blobs(n_per_class=25, seed=1)
        train, test = data.split(0.8, seed=2)
        assert len(train) + len(test) == len(data)
        assert len(train) == 40

    def test_split_validation(self):
        with pytest.raises(AnalysisError):
            make_blobs(seed=0).split(1.0)

    def test_edge_patches_have_nine_features(self):
        data = make_edge_patches(n_samples=30, seed=0)
        assert data.n_features == 9
        # Class 1: top row brighter than bottom row.
        for x, label in zip(data.X, data.y):
            top, bottom = x[:3].mean(), x[6:].mean()
            assert (top > bottom) == bool(label)

    def test_majority_labels(self):
        data = make_majority(n_samples=60, n_features=3, noise=0.0, seed=0)
        for x, label in zip(data.X, data.y):
            assert label == int((x > 0.5).sum() > 1.5)

    def test_logic_validation(self):
        with pytest.raises(AnalysisError):
            make_logic("xnor3")

    def test_dataset_validation(self):
        with pytest.raises(AnalysisError):
            Dataset(np.array([[0.5, 1.5]]), np.array([0]))
        with pytest.raises(AnalysisError):
            Dataset(np.zeros((2, 2)), np.zeros(3, dtype=int))


class TestElasticity:
    def test_perfectly_ratiometric_design(self):
        vdd = np.linspace(0.5, 5.0, 10)
        vout = 0.4 * vdd
        report = ratiometric_report(vdd, vout)
        assert report.usable_from == pytest.approx(0.5)
        assert report.spread_in_window == pytest.approx(0.0, abs=1e-12)
        assert report.is_elastic

    def test_collapse_below_knee_detected(self):
        vdd = np.array([0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0])
        ratio = np.array([0.1, 0.25, 0.39, 0.40, 0.40, 0.40, 0.40])
        report = ratiometric_report(vdd, ratio * vdd, tolerance=0.05)
        assert report.usable_from == pytest.approx(1.5)

    def test_never_elastic(self):
        vdd = np.array([1.0, 2.0, 3.0])
        vout = np.array([0.9, 0.5, 2.7])  # wild ratios
        report = ratiometric_report(vdd, vout, tolerance=0.01)
        assert not report.is_elastic

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ratiometric_report([1.0], [0.5])
        with pytest.raises(AnalysisError):
            ratiometric_report([2.0, 1.0], [1.0, 0.5])

    def test_frequency_flatness(self):
        assert frequency_flatness([1e6, 1e9], [1.0, 1.0]) == 0.0
        assert frequency_flatness([1e6, 1e9], [1.0, 1.1]) == \
            pytest.approx(0.1 / 1.05)

    def test_elasticity_score_range(self):
        vdd = np.linspace(0.5, 5.0, 10)
        perfect = elasticity_score(vdd, 0.4 * vdd)
        assert perfect == pytest.approx(1.0)
        bad = elasticity_score(vdd, np.random.default_rng(0).uniform(0, 1, 10))
        assert 0.0 <= bad < 1.0


class TestCornersAndSampler:
    def test_corner_shifts_parameters(self):
        ff = corner(NMOS_UMC65, "ff")
        assert ff.vt0 < NMOS_UMC65.vt0
        assert ff.kp > NMOS_UMC65.kp

    def test_unknown_corner(self):
        with pytest.raises(ValueError):
            corner(NMOS_UMC65, "zz")

    def test_sampler_sigma_shrinks_with_area(self):
        s = MonteCarloSampler(seed=0)
        assert s.sigma_vt(1e-6, 1e-6) < s.sigma_vt(0.1e-6, 1e-6)

    def test_sampler_reproducible(self):
        a = MonteCarloSampler(seed=9).sample(320e-9, 1.2e-6)
        b = MonteCarloSampler(seed=9).sample(320e-9, 1.2e-6)
        assert a == b

    def test_mismatch_apply_respects_polarity(self):
        s = MonteCarloSampler(seed=1).sample(320e-9, 1.2e-6)
        pmos = corner(NMOS_UMC65, "tt")  # placeholder nmos
        shifted = s.apply(NMOS_UMC65)
        assert shifted.vt0 == pytest.approx(NMOS_UMC65.vt0 + s.delta_vt)


class TestMonteCarloHarness:
    def test_stats_shape(self):
        adder = WeightedAdder(AdderConfig())
        stats = adder_monte_carlo(adder, [0.5] * 3, [7] * 3, n_trials=10,
                                  seed=0)
        assert stats.n_trials == 10
        assert len(stats.errors) == 10
        assert stats.worst_error >= abs(stats.mean_error)
        assert stats.percentile(50) <= stats.worst_error

    def test_errors_small_but_nonzero(self):
        adder = WeightedAdder(AdderConfig())
        stats = adder_monte_carlo(adder, [0.7, 0.8, 0.9], [7, 7, 7],
                                  n_trials=15, seed=1)
        assert 0 < stats.std_error < 0.05

    def test_corner_errors_cover_all_corners(self):
        adder = WeightedAdder(AdderConfig())
        errors = adder_corner_errors(adder, [0.5] * 3, [7] * 3)
        assert set(errors) == {"tt", "ff", "ss", "fs", "sf"}
        assert errors["tt"] == pytest.approx(0.0, abs=1e-9)

    def test_accuracy_under_supply_harness(self):
        X = np.array([[0.1], [0.9]])
        y = np.array([0, 1])
        points = accuracy_under_supply(
            lambda x, vdd: int(x[0] > (0.5 if vdd > 1 else 0.0)),
            X, y, [0.5, 2.0])
        assert points[0].accuracy == 0.5
        assert points[1].accuracy == 1.0


class TestCalibration:
    def test_calibrate_against_rc(self):
        adder = WeightedAdder(AdderConfig())
        model, residual = calibrate_adder(adder, engine="rc", n_random=4)
        assert residual < 0.02
        # Calibrated behavioural engine should land closer to RC.
        calibrated = adder.with_calibration(model)
        raw = adder.evaluate([0.6] * 3, [7] * 3, engine="rc").value
        cal = calibrated.evaluate([0.6] * 3, [7] * 3,
                                  engine="behavioral").value
        plain = adder.evaluate([0.6] * 3, [7] * 3, engine="behavioral").value
        assert abs(cal - raw) <= abs(plain - raw) + 1e-6

    def test_bad_engine(self):
        adder = WeightedAdder(AdderConfig())
        with pytest.raises(AnalysisError):
            calibrate_adder(adder, engine="behavioral")
