"""The declarative experiment API: specs, RunConfig, CLI, cache, HTTP.

Four contracts are pinned here:

* **Schema integrity** — every registered experiment's declared
  parameter schema matches its runner's actual signature (the drift
  net for future experiments), and the committed
  ``experiments_schema.json`` snapshot matches ``describe()`` so any
  change to the public experiment surface shows up in review.
* **Canonical configs** — :class:`RunConfig` validation (types,
  bounds, choices, unknown params, fidelity at the choke point) and
  normalisation (explicit defaults don't fork identity or cache keys).
* **Cache migration** — entries written under the pre-RunConfig
  kwargs-hash key are still served (and transparently promoted to the
  canonical key).
* **Generated surfaces** — the CLI's schema-derived options and the
  HTTP experiment endpoints accept what the schema accepts and reject
  the rest at their parsers.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path

import numpy as np
import pytest

from repro.circuit import AnalysisError
from repro.exec import ResultCache
from repro.experiments import (
    PAPER_ARTEFACTS,
    REGISTRY,
    RUN_CONFIG_SCHEMA_VERSION,
    ExperimentResult,
    Param,
    RunConfig,
    describe,
    get_spec,
    list_experiments,
    run_all,
    run_config,
    run_experiment,
)
from repro.experiments.base import _json_scalar
from repro.experiments.spec import SPECS

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRegistryIntrospection:
    def test_all_22_registered_via_specs(self):
        assert len(SPECS) == 22
        assert set(SPECS) == set(REGISTRY)
        for eid, spec in SPECS.items():
            assert spec.id == eid
            assert spec.title == REGISTRY[eid][0]
            assert spec.entry is REGISTRY[eid][1]
            assert getattr(spec.entry, "__experiment_spec__") is spec

    def test_paper_artefacts_derived_from_tags(self):
        assert PAPER_ARTEFACTS == ("table1", "fig4", "fig5", "fig6",
                                   "fig7", "table2", "fig8")
        assert set(list_experiments(tag="paper")) == set(PAPER_ARTEFACTS)

    def test_list_experiments_tag_filter(self):
        assert list_experiments() == list(SPECS)
        mc = list_experiments(tag="monte-carlo")
        assert set(mc) == {"ext_montecarlo", "ext_yield"}
        assert list_experiments(tag="no-such-tag") == []

    def test_describe_one_and_all(self):
        document = describe()
        assert document["schema_version"] == RUN_CONFIG_SCHEMA_VERSION
        assert document["count"] == len(SPECS)
        one = describe("ext_yield")
        assert one["id"] == "ext_yield"
        names = [p["name"] for p in one["params"]]
        assert names == ["fidelity", "seed", "method"]
        assert one["description"]  # module docstring fallback

    def test_describe_unknown_experiment(self):
        with pytest.raises(AnalysisError):
            describe("fig99")

    def test_every_spec_has_fidelity_first(self):
        for spec in SPECS.values():
            assert spec.params[0].name == "fidelity"
            assert spec.params[0].choices == ("fast", "paper")


class TestSchemaDriftNet:
    """Declared schemas must match the runner signatures exactly."""

    @pytest.mark.parametrize("experiment_id", sorted(SPECS))
    def test_schema_matches_runner_signature(self, experiment_id):
        spec = SPECS[experiment_id]
        signature = inspect.signature(spec.runner)
        sig_names = list(signature.parameters)
        declared = [p.name for p in spec.params]
        assert declared == sig_names, (
            f"{experiment_id}: declared params {declared} != runner "
            f"signature {sig_names}")
        for param in spec.runner_params:
            sig_param = signature.parameters[param.name]
            assert sig_param.default is not inspect.Parameter.empty, (
                f"{experiment_id}.{param.name}: runner parameter must "
                "have a default")
            sig_default = sig_param.default
            if isinstance(sig_default, (list, tuple)):
                sig_default = tuple(float(v) for v in sig_default)
            assert param.default == sig_default, (
                f"{experiment_id}.{param.name}: schema default "
                f"{param.default!r} != runner default {sig_default!r}")

    @pytest.mark.parametrize("experiment_id", sorted(SPECS))
    def test_every_param_documented(self, experiment_id):
        for param in SPECS[experiment_id].params:
            assert param.help, f"{experiment_id}.{param.name}: no help"


class TestSchemaSnapshot:
    def test_committed_snapshot_matches_describe(self):
        """``experiments_schema.json`` is the reviewable API surface.

        Regenerate after an intentional change with::

            PYTHONPATH=src python -m repro list --json > experiments_schema.json
        """
        path = REPO_ROOT / "experiments_schema.json"
        assert path.exists(), "experiments_schema.json missing"
        committed = json.loads(path.read_text())
        assert committed == json.loads(
            json.dumps(describe())), (
            "experiment schemas drifted from experiments_schema.json; "
            "regenerate with: PYTHONPATH=src python -m repro list --json "
            "> experiments_schema.json")

    def test_cli_list_json_equals_snapshot(self, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["list", "--json"]) == 0
        printed = json.loads(capsys.readouterr().out)
        committed = json.loads(
            (REPO_ROOT / "experiments_schema.json").read_text())
        assert printed == committed


class TestParamValidation:
    def test_int_param(self):
        p = Param("seed", "int", default=3, minimum=0)
        assert p.validate(5) == 5
        for bad in (True, 1.5, "5", -1):
            with pytest.raises(AnalysisError):
                p.validate(bad)

    def test_float_param_coerces_int(self):
        p = Param("vdd", "float", default=2.5, minimum=0.1, maximum=5.0)
        assert p.validate(3) == 3.0 and isinstance(p.validate(3), float)
        for bad in ("x", 0.0, 6.0, True):
            with pytest.raises(AnalysisError):
                p.validate(bad)

    def test_floats_param_normalises_to_tuple(self):
        p = Param("duties", "floats", default=None, minimum=0.0,
                  maximum=1.0)
        assert p.validate([0, 1]) == (0.0, 1.0)
        assert p.validate(np.array([0.5])) == (0.5,)
        assert p.validate(None) is None  # default None = fidelity grid
        for bad in ("0.5", [], [1.5], [[0.2]], ["a"]):
            with pytest.raises(AnalysisError):
                p.validate(bad)

    def test_choices(self):
        p = Param("method", "str", default="auto",
                  choices=("auto", "loop"))
        assert p.validate("loop") == "loop"
        with pytest.raises(AnalysisError):
            p.validate("gpu")

    def test_unknown_type_rejected_at_declaration(self):
        with pytest.raises(AnalysisError):
            Param("x", "complex")

    def test_parse_cli_spellings(self):
        assert Param("seed", "int", default=0).parse("7") == 7
        assert Param("v", "float", default=0.0).parse("2.5") == 2.5
        assert Param("g", "floats", default=None).parse("0.1, 0.9,") \
            == (0.1, 0.9)
        with pytest.raises(AnalysisError):
            Param("seed", "int", default=0).parse("seven")


class TestRunConfig:
    def test_defaults_filled_and_canonical(self):
        explicit = RunConfig.build("ext_montecarlo", "fast",
                                   {"seed": 3, "method": "auto"})
        implicit = RunConfig.build("ext_montecarlo", "fast", {})
        assert explicit == implicit
        assert hash(explicit) == hash(implicit)
        assert explicit.key() == implicit.key()
        assert explicit.param_dict() == {"seed": 3, "method": "auto"}

    def test_key_depends_on_params_and_fidelity(self):
        base = RunConfig.build("ext_montecarlo")
        other_seed = RunConfig.build("ext_montecarlo", params={"seed": 4})
        paper = RunConfig.build("ext_montecarlo", "paper")
        assert len({base.key(), other_seed.key(), paper.key()}) == 3

    def test_normalisation_unifies_spellings(self):
        a = RunConfig.build("fig4", "fast", {"duties": [0.2, 0.8]})
        b = RunConfig.build("fig4", "fast", {"duties": (0.2, 0.8)})
        c = RunConfig.build("fig4", "fast",
                            {"duties": np.array([0.2, 0.8])})
        assert a == b == c

    def test_unknown_experiment_and_params(self):
        with pytest.raises(AnalysisError):
            RunConfig.build("fig99")
        with pytest.raises(AnalysisError):
            RunConfig.build("fig4", "fast", {"frequencies": [1e6]})

    def test_fidelity_validated_at_choke_point(self):
        with pytest.raises(AnalysisError):
            RunConfig.build("table1", "ultra")

    def test_fidelity_inside_params_rejected_not_ignored(self):
        with pytest.raises(AnalysisError, match="own argument"):
            RunConfig.build("fig4", "fast", {"fidelity": "paper"})

    def test_from_dict_round_trip(self):
        config = RunConfig.build("ext_yield", "fast", {"seed": 2})
        clone = RunConfig.from_dict(config.canonical_dict())
        assert clone == config

    def test_run_config_equals_run_experiment(self):
        config = RunConfig.build("ext_sensitivity")
        assert run_config(config).render() == \
            run_experiment("ext_sensitivity").render()


class TestFidelityChokePoint:
    """Every experiment rejects a bad fidelity identically (decorator)."""

    @pytest.mark.parametrize("experiment_id",
                             ["table1", "fig4", "ext_yield"])
    def test_via_registry(self, experiment_id):
        with pytest.raises(AnalysisError, match="unknown fidelity"):
            run_experiment(experiment_id, fidelity="ludicrous")

    def test_via_direct_module_call(self):
        from repro.experiments import (
            ext_sensitivity,
            fig6_fig7_supply,
            table1_parameters,
        )

        for runner in (table1_parameters.run, ext_sensitivity.run,
                       fig6_fig7_supply.run_fig6,
                       fig6_fig7_supply.run_fig7):
            with pytest.raises(AnalysisError, match="unknown fidelity"):
                runner("ludicrous")


class TestRunAllOverrides:
    def test_unknown_experiment_in_overrides(self):
        with pytest.raises(AnalysisError, match="unknown experiment"):
            run_all(overrides={"fig99": {"seed": 1}})

    def test_invalid_override_param_fails_before_running(self):
        with pytest.raises(AnalysisError):
            run_all(overrides={"ext_montecarlo": {"trials": 10}})

    def test_overrides_reach_target_experiment(self, monkeypatch):
        import dataclasses

        from repro.experiments import registry

        seen = {}
        spec = SPECS["ext_montecarlo"]
        original = spec.runner

        def spy(fidelity="fast", **kwargs):
            seen.update(kwargs, fidelity=fidelity)
            return original(fidelity=fidelity, **kwargs)

        spied = dataclasses.replace(spec, runner=spy)
        # Shrink the iterated registry to two experiments (cheap run)
        # and point the spec lookup at the spying runner.  Both views
        # normally alias one dict, hence the two patches.
        monkeypatch.setattr(registry, "SPECS",
                            {"table1": SPECS["table1"],
                             "ext_montecarlo": spied})
        monkeypatch.setitem(SPECS, "ext_montecarlo", spied)
        results = run_all(overrides={"ext_montecarlo": {"seed": 4}})
        assert set(results) == {"table1", "ext_montecarlo"}
        assert seen["fidelity"] == "fast"
        assert seen["seed"] == 4          # override applied
        assert seen["method"] == "auto"   # schema default filled


class TestJsonScalarRoundTrip:
    """Satellite: ``_json_scalar`` coercion pinned on its own."""

    def test_plain_scalars_pass_through(self):
        for value in (True, 3, 2.5, "text", None):
            assert _json_scalar(value) is value

    def test_numpy_scalars_coerce_to_python(self):
        assert _json_scalar(np.float64(1.25)) == 1.25
        assert isinstance(_json_scalar(np.float64(1.25)), float)
        assert _json_scalar(np.int32(7)) == 7
        assert isinstance(_json_scalar(np.int32(7)), int)
        assert _json_scalar(np.bool_(True)) is True

    def test_non_scalars_stringify(self):
        assert _json_scalar([1, 2]) == "[1, 2]"
        assert _json_scalar((0.5,)) == "(0.5,)"

    def test_result_round_trip_with_numpy_metrics(self):
        result = ExperimentResult(
            experiment_id="unit", title="metrics round trip",
            fidelity="fast",
            metrics={
                "np_float": np.float64(0.123456789),
                "np_int": np.int64(42),
                "np_bool": np.bool_(False),
                "plain": 1.5,
                "text": "ok",
                "non_scalar": [1, 2, 3],
            })
        clone = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone.metrics == {
            "np_float": 0.123456789, "np_int": 42, "np_bool": False,
            "plain": 1.5, "text": "ok", "non_scalar": "[1, 2, 3]",
        }
        assert clone.render() == result.render()


class TestCacheConfigKeys:
    def test_config_hit_replays_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = RunConfig.build("table1")
        assert cache.get_config(config) is None
        result = run_config(config, cache=cache)
        assert cache.path_for_config(config).exists()
        hit = cache.get_config(config)
        assert hit is not None
        assert hit.render() == result.render()

    def test_explicit_defaults_share_one_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment("ext_sensitivity", cache=cache)
        first = list(tmp_path.glob("ext_sensitivity/*.json"))
        assert len(first) == 1
        # Same computation spelled explicitly: no second entry.
        run_experiment("ext_sensitivity", fidelity="fast", cache=cache)
        assert list(tmp_path.glob("ext_sensitivity/*.json")) == first

    def test_legacy_kwargs_entry_still_hits(self, tmp_path):
        """Pre-RunConfig cache entries survive the key migration."""
        cache = ResultCache(tmp_path)
        result = run_experiment("table1")
        # Doctor the result so a replay is distinguishable from a
        # recompute, then store it under the *legacy* kwargs-hash key.
        result.notes.append("sentinel: written by the legacy writer")
        cache.put(result, {})
        replayed = run_experiment("table1", cache=cache)
        assert replayed.notes[-1] == \
            "sentinel: written by the legacy writer"
        # ... and the hit was promoted to the canonical key.
        config = RunConfig.build("table1")
        assert cache.path_for_config(config).exists()
        promoted = cache.get_config(config)
        assert promoted.render() == replayed.render()

    def test_legacy_entry_with_params_still_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment("ext_sensitivity")
        result.notes.append("sentinel: legacy params entry")
        cache.put(result, {"seed": 5})  # legacy raw-kwargs key
        # ext_sensitivity has no seed param; use one that does.
        result2 = run_experiment("ext_montecarlo")
        result2.notes.append("sentinel: legacy params entry")
        cache.put(result2, {"seed": 5})
        replayed = run_experiment("ext_montecarlo", seed=5, cache=cache)
        assert replayed.notes[-1] == "sentinel: legacy params entry"

    def test_config_miss_without_legacy_probe(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment("table1")
        cache.put(result, {})
        # No legacy_params -> the legacy path is not probed.
        assert cache.get_config(RunConfig.build("table1")) is None


class TestCliSchemaOptions:
    @pytest.mark.parametrize("experiment_id,flag", [
        ("fig4", "--duties"),
        ("ext_montecarlo", "--seed"),
        ("ext_montecarlo", "--method"),
        ("ext_yield", "--seed"),
        ("fig6", "--engine"),
    ])
    def test_help_shows_schema_derived_options(self, experiment_id, flag,
                                               capsys):
        from repro.__main__ import main as cli_main

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["run", experiment_id, "--help"])
        assert excinfo.value.code == 0
        assert flag in capsys.readouterr().out

    def test_run_with_schema_param(self, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["run", "ext_sensitivity", "--no-cache"]) == 0
        assert "ext_sensitivity" in capsys.readouterr().out

    def test_invalid_param_value_fails_at_parser(self, capsys):
        from repro.__main__ import main as cli_main

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["run", "ext_montecarlo", "--method", "gpu"])
        assert excinfo.value.code == 2
        assert "must be one of" in capsys.readouterr().err

    def test_unknown_param_fails_at_parser(self, capsys):
        from repro.__main__ import main as cli_main

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["run", "table1", "--duties", "0.5"])
        assert excinfo.value.code == 2

    def test_list_tag_filter(self, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["list", "--tag", "monte-carlo"]) == 0
        out = capsys.readouterr().out
        assert "ext_montecarlo" in out and "table1" not in out

    def test_all_set_override_rejected_when_invalid(self, capsys):
        from repro.__main__ import main as cli_main

        for bad in (["all", "--set", "nonsense"],
                    ["all", "--set", "fig99.seed=1"],
                    ["all", "--set", "ext_montecarlo.trials=9"],
                    ["all", "--set", "ext_montecarlo.seed=x"],
                    ["all", "--set", "fig4.fidelity=paper"]):
            with pytest.raises(SystemExit) as excinfo:
                cli_main(bad)
            assert excinfo.value.code == 2, bad
            capsys.readouterr()
