"""Performance-observability subsystem tests.

The contracts under test:

* the ``@benchmark`` registry rejects malformed specs (bad kind,
  wrong workload metric, non-positive repeats, duplicate ids) and
  resolves/filters like the ``@experiment`` registry;
* the runner samples workloads under the declared warmup/repeat
  policy (setup excluded), tracks min-of-repeats, extracts report
  metrics, and stamps every run with an environment fingerprint;
* perf runs round-trip through the SQLite store (headers, per-repeat
  samples, baseline flag, history series, age-based gc) without
  touching the results tables — a perf write never perturbs stored
  experiment payloads or the campaign aggregate document;
* the comparator applies per-benchmark relative noise bands in both
  metric directions and classifies new/missing entries;
* ``perf gate`` fails (exit != 0) on an injected slowdown in a hot
  ``_impl`` and names both the benchmark and the dominant span from
  the traced re-run;
* the CLI surface (``perf list|run|history|compare|gate``) and the
  dashboard ``/perf`` endpoint serve the same data.
"""

from __future__ import annotations

import importlib
import json
import time
import urllib.request
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    collect_results,
    results_document,
)
from repro.circuit import AnalysisError
from repro.experiments import RunConfig, run_config
from repro.perf import (
    BENCHMARKS,
    baseline_document,
    benchmark,
    compare_runs,
    environment_fingerprint,
    gate_run,
    load_baseline,
    run_benchmark,
    run_benchmarks,
    self_times,
    sparkline,
)
from repro.perf.registry import get_benchmark
from repro.store import CampaignDashboard, ResultStore


@pytest.fixture()
def scratch_registry():
    """Track benchmark ids registered inside a test; always clean up."""
    before = set(BENCHMARKS)
    yield None
    for bench_id in set(BENCHMARKS) - before:
        del BENCHMARKS[bench_id]


def _register_counting(bench_id: str, repeats: int = 4, warmup: int = 1,
                       **kwargs):
    calls = {"setup": 0, "run": 0}

    @benchmark(bench_id, title="counting workload", repeats=repeats,
               warmup=warmup, tags=("test",), **kwargs)
    def _workload(quick=False):
        calls["setup"] += 1

        def run():
            calls["run"] += 1
        return run

    return calls


class TestRegistry:
    def test_bad_specs_rejected(self, scratch_registry):
        with pytest.raises(AnalysisError, match="unknown kind"):
            benchmark("t.badkind", title="x", kind="sideways")
        with pytest.raises(AnalysisError, match="best_seconds"):
            benchmark("t.badmetric", title="x", kind="workload",
                      metric="speedup")
        with pytest.raises(AnalysisError, match="repeats"):
            benchmark("t.badrepeats", title="x", repeats=0)
        with pytest.raises(AnalysisError, match="noise"):
            benchmark("t.badnoise", title="x", noise=-0.1)

    def test_duplicate_id_rejected(self, scratch_registry):
        _register_counting("t.dup")
        with pytest.raises(AnalysisError, match="duplicate"):
            _register_counting("t.dup")

    def test_unknown_id_lists_known(self):
        with pytest.raises(AnalysisError, match="pss.shooting.adder"):
            get_benchmark("t.nope")

    def test_builtin_suite_registers_and_describes(self):
        spec = get_benchmark("mna.transient.ladder")
        assert spec.kind == "workload"
        assert spec.resolved_metric() == "best_seconds"
        doc = spec.describe()
        assert doc["id"] == "mna.transient.ladder"
        assert "fn" not in doc
        ratio = get_benchmark("exec.montecarlo.speedup")
        assert ratio.kind == "report"
        assert not ratio.lower_is_better


class TestRunner:
    def test_workload_policy_and_min(self, scratch_registry):
        calls = _register_counting("t.count", repeats=4, warmup=2)
        entry = run_benchmark(BENCHMARKS["t.count"])
        assert calls["setup"] == 1          # setup outside the timing
        assert calls["run"] == 6            # 2 warmup + 4 recorded
        assert len(entry["samples"]) == 4
        assert entry["value"] == min(entry["samples"])
        assert entry["metric"] == "best_seconds"

    def test_quick_and_explicit_repeats(self, scratch_registry):
        calls = _register_counting("t.quick", repeats=5, warmup=0)
        run_benchmark(BENCHMARKS["t.quick"], quick=True)
        assert calls["run"] == 3            # default quick_repeats
        calls["run"] = 0
        run_benchmark(BENCHMARKS["t.quick"], repeats=2)
        assert calls["run"] == 2

    def test_report_metric_extraction(self, scratch_registry):
        @benchmark("t.report", title="x", kind="report",
                   metric="speedup", unit="x", lower_is_better=False)
        def _report(quick=False):
            return {"speedup": 4.5, "noise": "ignored"}

        entry = run_benchmark(BENCHMARKS["t.report"])
        assert entry["value"] == 4.5
        assert entry["samples"] == [4.5]
        assert entry["payload"]["speedup"] == 4.5
        assert entry["wall_seconds"] >= 0

    def test_report_wall_seconds_when_metric_none(self, scratch_registry):
        @benchmark("t.wall", title="x", kind="report", metric=None)
        def _wall(quick=False):
            return {"anything": True}

        entry = run_benchmark(BENCHMARKS["t.wall"])
        assert entry["metric"] == "wall_seconds"
        assert entry["value"] > 0

    def test_malformed_benchmarks_raise(self, scratch_registry):
        @benchmark("t.notcallable", title="x")
        def _bad(quick=False):
            return 42

        with pytest.raises(AnalysisError, match="expected a callable"):
            run_benchmark(BENCHMARKS["t.notcallable"])

        @benchmark("t.badpayload", title="x", kind="report",
                   metric="missing")
        def _worse(quick=False):
            return {"other": 1}

        with pytest.raises(AnalysisError, match="expected a\\s+number"):
            run_benchmark(BENCHMARKS["t.badpayload"])

    def test_fingerprint_fields(self):
        stamp = environment_fingerprint(Path(__file__).parent.parent)
        assert set(stamp) == {"git_sha", "python", "numpy", "scipy",
                              "platform", "machine", "cpu_count"}
        assert stamp["python"].count(".") == 2
        assert stamp["cpu_count"] >= 1

    def test_run_benchmarks_document(self, scratch_registry):
        _register_counting("t.doc", repeats=2, warmup=0)
        doc = run_benchmarks(["t.doc"])
        assert doc["schema"] == 1
        assert not doc["quick"]
        assert [b["benchmark"] for b in doc["benchmarks"]] == ["t.doc"]
        with pytest.raises(AnalysisError, match="matched nothing"):
            run_benchmarks(tag="t.absent")


class TestPerfStore:
    def _record(self, store, value, *, bench="t.stored", quick=True,
                lower=True, samples=None):
        doc = {
            "schema": 1, "created_at": time.time(), "quick": quick,
            "fingerprint": {"git_sha": "f" * 40},
            "benchmarks": [{
                "benchmark": bench, "kind": "workload",
                "metric": "best_seconds", "unit": "s",
                "lower_is_better": lower, "noise": 0.5,
                "samples": samples if samples is not None else [value],
                "value": value,
            }],
        }
        return store.record_perf_run(doc)

    def test_round_trip_and_direction(self, tmp_path):
        store = ResultStore(tmp_path)
        run_id = self._record(store, 0.5, samples=[0.7, 0.5, 0.9])
        doc = store.perf_run(run_id)
        bench = doc["benchmarks"][0]
        assert bench["samples"] == [0.7, 0.5, 0.9]
        assert bench["value"] == 0.5            # min when lower-better
        assert doc["fingerprint"]["git_sha"] == "f" * 40
        hi = self._record(store, 3.0, bench="t.ratio", lower=False,
                          samples=[2.0, 3.0])
        assert store.perf_run(hi)["benchmarks"][0]["value"] == 3.0
        assert store.perf_run() is not None     # latest
        assert store.perf_run(999_999) is None

    def test_baseline_flag_and_previous(self, tmp_path):
        store = ResultStore(tmp_path)
        first = self._record(store, 1.0)
        second = self._record(store, 2.0)
        assert store.perf_baseline_run() is None
        store.set_perf_baseline(first)
        assert store.perf_baseline_run()["run_id"] == first
        store.set_perf_baseline(second)      # reflagging clears the old
        assert store.perf_baseline_run()["run_id"] == second
        assert store.previous_perf_run(second)["run_id"] == first
        assert store.previous_perf_run(first) is None
        with pytest.raises(AnalysisError, match="no stored perf run"):
            store.set_perf_baseline(12345)

    def test_history_series(self, tmp_path):
        store = ResultStore(tmp_path)
        for value in (1.0, 1.2, 0.8):
            self._record(store, value)
        history = store.perf_history("t.stored")
        points = history["t.stored"]
        assert [p["value"] for p in points] == [1.0, 1.2, 0.8]
        assert points[0]["run_id"] < points[-1]["run_id"]
        limited = store.perf_history("t.stored", limit=2)
        assert [p["value"] for p in limited["t.stored"]] == [1.2, 0.8]
        assert store.perf_history("t.absent") == {}

    def test_gc_age_based_retention(self, tmp_path):
        store = ResultStore(tmp_path)
        old = self._record(store, 1.0)
        keep = self._record(store, 2.0)
        flagged = self._record(store, 3.0)
        store.set_perf_baseline(flagged)
        ancient = time.time() - 40 * 86400
        with store._lock:
            store._conn.execute(
                "UPDATE perf_runs SET created_at = ? "
                "WHERE run_id IN (?, ?)", (ancient, old, flagged))
            store._conn.commit()
        dry = store.gc(dry_run=True, older_than_days=30)
        # The baseline run is immune however old it is.
        assert dry["perf_candidates"] == 1 and dry["perf_deleted"] == 0
        assert store.perf_run(old) is not None
        wet = store.gc(older_than_days=30)
        assert wet["perf_deleted"] == 1
        assert store.perf_run(old) is None
        assert store.perf_run(keep) is not None
        assert store.perf_run(flagged) is not None

    def test_gc_age_guard_spares_fresh_stale_rows(self, tmp_path):
        store = ResultStore(tmp_path)
        config = RunConfig.build("table1", "fast")
        store.put_config(run_config(config), config)
        with store._lock:
            store._conn.execute("UPDATE results SET stale = 1")
            store._conn.commit()
        # Stale but freshly written: an age-scoped gc keeps it...
        assert store.gc(older_than_days=30)["deleted"] == 0
        # ...an unscoped gc reclaims it as before.
        assert store.gc()["deleted"] == 1

    def test_perf_write_never_perturbs_results(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "perf-isolation",
            "experiment": "ext_montecarlo",
            "fidelity": "fast",
            "axes": [{"param": "seed",
                      "range": {"start": 0, "count": 2}}],
        })
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store).run()
        config = spec.expand()[0]
        report_before = json.dumps(
            results_document(spec, collect_results(spec, store)),
            indent=2, sort_keys=True)
        payload_before = store.get_config(config).render(charts=True)
        for _ in range(3):
            self._record(store, 0.123)
        store.set_perf_baseline(store.perf_run()["run_id"])
        report_after = json.dumps(
            results_document(spec, collect_results(spec, store)),
            indent=2, sort_keys=True)
        assert report_after == report_before
        assert store.get_config(config).render(charts=True) \
            == payload_before


class TestComparator:
    def _doc(self, value, *, bench="t.cmp", noise=0.5, lower=True):
        return {"schema": 1, "quick": True, "fingerprint": {},
                "benchmarks": [{
                    "benchmark": bench, "metric": "best_seconds",
                    "unit": "s", "lower_is_better": lower,
                    "noise": noise, "value": value,
                    "samples": [value]}]}

    def test_noise_band_lower_is_better(self):
        base = baseline_document(self._doc(1.0))
        ok = compare_runs(self._doc(1.4), base)[0]
        assert ok["status"] == "ok"
        bad = compare_runs(self._doc(1.6), base)[0]
        assert bad["status"] == "regression"
        assert bad["delta_pct"] == pytest.approx(60.0)
        good = compare_runs(self._doc(0.4), base)[0]
        assert good["status"] == "improvement"

    def test_noise_band_higher_is_better(self):
        base = baseline_document(self._doc(10.0, lower=False))
        assert compare_runs(self._doc(6.0, lower=False),
                            base)[0]["status"] == "ok"
        assert compare_runs(self._doc(4.0, lower=False),
                            base)[0]["status"] == "regression"
        assert compare_runs(self._doc(16.0, lower=False),
                            base)[0]["status"] == "improvement"

    def test_baseline_noise_overrides_current(self):
        base = baseline_document(self._doc(1.0, noise=2.0))
        row = compare_runs(self._doc(2.5, noise=0.1), base)[0]
        assert row["noise"] == 2.0
        assert row["status"] == "ok"

    def test_new_and_missing(self):
        base = baseline_document(self._doc(1.0, bench="t.gone"))
        rows = compare_runs(self._doc(1.0, bench="t.fresh"), base)
        assert {r["benchmark"]: r["status"] for r in rows} == \
            {"t.fresh": "new", "t.gone": "missing"}
        verdict = gate_run(self._doc(1.0, bench="t.fresh"), base,
                           attribute=False)
        assert verdict["ok"]                # missing warns, not fails
        assert [r["benchmark"] for r in verdict["missing"]] == ["t.gone"]

    def test_baseline_file_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline_document(self._doc(1.0))))
        doc = load_baseline(path)
        assert doc["benchmarks"][0]["benchmark"] == "t.cmp"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(AnalysisError, match="unexpected shape"):
            load_baseline(path)
        with pytest.raises(AnalysisError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")

    def test_self_times_subtract_children(self):
        events = [
            {"name": "outer", "id": 1, "parent": None, "dur": 1.0},
            {"name": "inner", "id": 2, "parent": 1, "dur": 0.7},
            {"name": "inner", "id": 3, "parent": 2, "dur": 0.2},
        ]
        folded = self_times(events)
        assert folded["outer"]["self_seconds"] == pytest.approx(0.3)
        assert folded["inner"]["self_seconds"] == pytest.approx(0.7)
        assert folded["inner"]["count"] == 2

    def test_sparkline(self):
        assert sparkline([1, 2, 3, 4]) == "▁▃▆█"
        assert sparkline([2, 2, 2]) == "▁▁▁"
        assert sparkline([]) == ""
        assert len(sparkline(range(100), width=10)) == 10


@pytest.fixture()
def slow_transient(monkeypatch):
    """Inject a deliberate slowdown into the hot MNA transient _impl.

    The package ``__init__`` rebinds the name ``transient`` to the
    function, so the module must come from importlib.
    """
    tr = importlib.import_module("repro.circuit.transient")
    real = tr._transient_impl

    def slowed(*args, **kwargs):
        time.sleep(0.02)
        return real(*args, **kwargs)

    monkeypatch.setattr(tr, "_transient_impl", slowed)
    return slowed


class TestGateEndToEnd:
    def test_gate_catches_injected_slowdown(self, tmp_path,
                                            slow_transient):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "schema": 1, "quick": True, "fingerprint": {}, "notes": "",
            "benchmarks": [{
                "benchmark": "mna.transient.ladder",
                "metric": "best_seconds", "unit": "s",
                "lower_is_better": True, "noise": 1.0, "value": 0.001,
            }]}))
        current = run_benchmarks(["mna.transient.ladder"], quick=True)
        verdict = gate_run(current, load_baseline(baseline_path),
                           quick=True)
        assert not verdict["ok"]
        (row,) = verdict["regressions"]
        assert row["benchmark"] == "mna.transient.ladder"
        assert row["ratio"] > 2.0           # ~20x with the sleep
        attribution = row["attribution"]
        assert attribution["dominant_span"] == "mna.transient"
        assert attribution["dominant_share"] > 0.5


class TestPerfCli:
    def _main(self, argv):
        from repro.__main__ import main as cli_main
        return cli_main(argv)

    def test_list(self, capsys):
        assert self._main(["perf", "list"]) == 0
        out = capsys.readouterr().out
        assert "pss.shooting.adder" in out
        assert self._main(["perf", "list", "--tag", "exec",
                           "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] >= 2
        assert all("exec" in b["tags"] for b in doc["benchmarks"])

    def test_run_history_compare_gate_cycle(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        base = ["--cache-dir", root]
        assert self._main(["perf", "run", "mna.transient.ladder",
                           "--quick", "--set-baseline"] + base) == 0
        capsys.readouterr()
        assert self._main(["perf", "run", "mna.transient.ladder",
                           "--quick"] + base) == 0
        capsys.readouterr()
        assert self._main(["perf", "history", "mna.transient.ladder",
                           "--json"] + base) == 0
        history = json.loads(capsys.readouterr().out)
        assert len(history["mna.transient.ladder"]) == 2
        assert self._main(["perf", "compare"] + base) == 0
        out = capsys.readouterr().out
        assert "run 2 vs" in out and "mna.transient.ladder" in out
        # Same tree, generous band: the gate passes against the
        # flagged store baseline.
        assert self._main(["perf", "gate"] + base) == 0
        assert "PASS" in capsys.readouterr().out

    def test_gate_fails_and_names_the_span(self, tmp_path, capsys,
                                           slow_transient):
        root = str(tmp_path / "cache")
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "schema": 1, "quick": True, "fingerprint": {}, "notes": "",
            "benchmarks": [{
                "benchmark": "mna.transient.ladder",
                "metric": "best_seconds", "unit": "s",
                "lower_is_better": True, "noise": 1.0, "value": 0.001,
            }]}))
        assert self._main(["perf", "run", "mna.transient.ladder",
                           "--quick", "--cache-dir", root]) == 0
        capsys.readouterr()
        code = self._main(["perf", "gate", "--baseline",
                           str(baseline_path), "--cache-dir", root])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "mna.transient.ladder" in out
        assert "dominant span: mna.transient" in out

    def test_run_errors(self, tmp_path, capsys):
        assert self._main(["perf", "run", "t.unknown", "--no-store",
                           "--cache-dir", str(tmp_path)]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
        assert self._main(["perf", "gate", "--cache-dir",
                           str(tmp_path / "empty")]) == 2
        assert "no stored perf run" in capsys.readouterr().err

    def test_baseline_out_export(self, tmp_path, capsys):
        out_path = tmp_path / "exported" / "baseline.json"
        assert self._main(["perf", "run", "mna.transient.ladder",
                           "--quick", "--no-store",
                           "--cache-dir", str(tmp_path),
                           "--baseline-out", str(out_path)]) == 0
        capsys.readouterr()
        doc = load_baseline(out_path)
        assert doc["quick"] is True
        assert doc["benchmarks"][0]["benchmark"] == \
            "mna.transient.ladder"

    def test_store_gc_older_than_cli(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert self._main(["perf", "run", "mna.transient.ladder",
                           "--quick", "--cache-dir", root]) == 0
        capsys.readouterr()
        store = ResultStore(tmp_path / "cache")
        with store._lock:
            store._conn.execute(
                "UPDATE perf_runs SET created_at = created_at "
                "- 90 * 86400")
            store._conn.commit()
        store.close()
        assert self._main(["store", "gc", "--cache-dir", root,
                           "--older-than", "30"]) == 0
        out = capsys.readouterr().out
        assert "deleted 1 perf run(s)" in out
        store = ResultStore(tmp_path / "cache")
        assert store.perf_run() is None


class TestPerfDashboard:
    def test_perf_endpoint_sparklines(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "perf-dash", "experiment": "ext_montecarlo",
            "fidelity": "fast",
            "axes": [{"param": "seed",
                      "range": {"start": 0, "count": 1}}],
        })
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store).run()
        recorder = TestPerfStore()
        for value in (1.0, 2.0, 1.5):
            recorder._record(store, value, bench="t.dash")
        with CampaignDashboard(spec, store) as board:
            with urllib.request.urlopen(board.url + "/perf",
                                        timeout=30) as response:
                doc = json.loads(response.read())
            with urllib.request.urlopen(board.url + "/",
                                        timeout=30) as response:
                index = response.read()
        assert b"/perf" in index
        (bench,) = doc["benchmarks"]
        assert bench["benchmark"] == "t.dash"
        assert bench["runs"] == 3
        assert bench["latest"] == 1.5
        assert bench["best"] == 1.0
        assert len(bench["sparkline"]) == 3
