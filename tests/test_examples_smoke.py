"""Smoke-run the example scripts (the fast ones) as subprocesses.

Examples are user-facing documentation; they must not rot.  The slower
harvester/design-space scripts are exercised indirectly through the
modules they call, and `reproduce_paper.py` through the registry tests.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Transcoding inverter" in out
    assert "54" in out
    assert "class 1" in out


def test_image_edge_filter():
    out = run_example("image_edge_filter.py")
    assert "Decision agreement" in out
    assert "100.0%" in out


def test_mlp_xor_pipeline():
    out = run_example("mlp_xor_pipeline.py")
    assert "solved with hidden-layer seed" in out
    assert out.count("OK") >= 4


def test_serving_pipeline():
    out = run_example("serving_pipeline.py")
    assert "serving pipeline complete" in out
    assert "match the in-process" in out
    assert out.count("OK") >= 5


def test_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3\n"""',
                                         '"""')), script.name
