"""The model-serving subsystem: artifacts, batch engine, batcher, HTTP.

Pins the three guarantees serving rests on:

* artifact round trips are loss-free (weights/bias/calibration exactly
  preserved, across schema versions — hypothesis-backed);
* the batched behavioural forward pass is bit-identical to the scalar
  path on arbitrary random models (hypothesis-backed), and the batched
  RC supply sweep matches the scalar switch-level engine;
* the micro-batcher and HTTP server deliver exactly the engine's
  answers under coalescing, bad input, and concurrency.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import wait

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.datasets import make_blobs
from repro.analysis.robustness import (
    accuracy_under_supply,
    pwm_accuracy_under_supply,
)
from repro.circuit import AnalysisError
from repro.core.behavioral import CalibrationModel
from repro.core.network import PwmMlp
from repro.core.perceptron import DifferentialPwmPerceptron
from repro.core.training import PerceptronTrainer
from repro.serve import (
    ARTIFACT_SCHEMA_VERSION,
    BatchInferenceEngine,
    MicroBatcher,
    ModelStore,
    PerceptronServer,
    deserialize_model,
    serialize_model,
)
from repro.serve.artifacts import artifact_hash, upgrade_artifact
from repro.serve.engine import model_n_features

ENGINE = BatchInferenceEngine()

signed_weights = st.lists(st.integers(min_value=-7, max_value=7),
                          min_size=1, max_size=6)
duty = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
coeffs = st.lists(st.floats(min_value=-0.5, max_value=1.5,
                            allow_nan=False, allow_infinity=False),
                  min_size=2, max_size=4)


def _perceptron(weights, bias, pos_cal=None, neg_cal=None):
    p = DifferentialPwmPerceptron(weights, bias=bias)
    if pos_cal is not None:
        p.pos_adder = p.pos_adder.with_calibration(CalibrationModel(pos_cal))
    if neg_cal is not None:
        p.neg_adder = p.neg_adder.with_calibration(CalibrationModel(neg_cal))
    return p


class TestArtifacts:
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(weights=signed_weights,
           bias=st.integers(min_value=-7, max_value=7),
           pos_cal=st.one_of(st.none(), coeffs),
           neg_cal=st.one_of(st.none(), coeffs))
    def test_perceptron_round_trip_exact(self, weights, bias, pos_cal,
                                         neg_cal):
        p = _perceptron(weights, bias, pos_cal, neg_cal)
        q = deserialize_model(serialize_model(p))
        assert q.weights == p.weights and q.bias == p.bias
        for bank in ("pos_adder", "neg_adder"):
            a = getattr(p, bank)._behavioral.calibration
            b = getattr(q, bank)._behavioral.calibration
            assert (a is None) == (b is None)
            if a is not None:
                assert b.coefficients == a.coefficients  # exact floats

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(weights=signed_weights,
           bias=st.integers(min_value=-7, max_value=7),
           cal=st.one_of(st.none(), coeffs))
    def test_schema_v1_round_trip_exact(self, weights, bias, cal):
        # A v1 document (flat calibration list shared by both banks)
        # must load into the same model as its v2 upgrade.
        p = _perceptron(weights, bias, cal, cal)
        doc = serialize_model(p)
        v1 = json.loads(json.dumps(doc))
        v1["schema"] = 1
        v1["calibration"] = None if cal is None else list(cal)
        v1["hash"] = artifact_hash(v1)
        q = deserialize_model(v1)
        assert q.weights == p.weights and q.bias == p.bias
        for bank in ("pos_adder", "neg_adder"):
            a = getattr(p, bank)._behavioral.calibration
            b = getattr(q, bank)._behavioral.calibration
            assert (a is None) == (b is None)
            if a is not None:
                assert b.coefficients == a.coefficients

    def test_mlp_round_trip_behaviour(self):
        data = make_blobs(n_per_class=15, n_features=2, separation=0.35,
                          spread=0.09, seed=7)
        mlp = PwmMlp(2, 4, seed=2)
        mlp.fit(data.X, data.y, epochs=30)
        again = deserialize_model(serialize_model(mlp))
        assert isinstance(again, PwmMlp)
        assert np.array_equal(ENGINE.predict_mlp(again, data.X),
                              ENGINE.predict_mlp(mlp, data.X))
        assert np.array_equal(ENGINE.hidden_features(again.hidden, data.X),
                              ENGINE.hidden_features(mlp.hidden, data.X))

    def test_calibration_artifact(self):
        cal = CalibrationModel([0.01, 0.9, 0.05])
        again = deserialize_model(serialize_model(cal))
        assert again.coefficients == cal.coefficients

    def test_untrained_mlp_rejected(self):
        with pytest.raises(AnalysisError, match="untrained"):
            serialize_model(PwmMlp(2, 3, seed=0))

    def test_unsupported_schema_rejected(self):
        doc = serialize_model(_perceptron([1, -2], 1))
        doc["schema"] = 99
        with pytest.raises(AnalysisError, match="schema"):
            upgrade_artifact(doc)

    def test_store_save_load_list(self, tmp_path):
        store = ModelStore(tmp_path)
        p = _perceptron([3, -1], -2, [0.0, 1.0])
        path = store.save("demo", p)
        assert path.exists()
        q = store.load("demo")
        assert q.weights == p.weights and q.bias == p.bias
        (meta,) = store.list()
        assert meta["name"] == "demo" and meta["kind"] == "perceptron"
        assert meta["schema"] == ARTIFACT_SCHEMA_VERSION
        assert meta["n_features"] == 2

    def test_store_rejects_tampering(self, tmp_path):
        store = ModelStore(tmp_path)
        path = store.save("demo", _perceptron([3, -1], -2))
        doc = json.loads(path.read_text())
        doc["weights"] = [7, 7]  # forge without restamping
        path.write_text(json.dumps(doc))
        with pytest.raises(AnalysisError, match="hash"):
            store.load("demo")
        # Stripping the stamp must not bypass the check on v2 docs.
        doc.pop("hash")
        path.write_text(json.dumps(doc))
        with pytest.raises(AnalysisError, match="hash"):
            store.load("demo")

    def test_store_rejects_bad_names_and_misses(self, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(AnalysisError):
            store.load("missing")
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(AnalysisError):
                store.path_for(bad)

    def test_store_overwrite_flag(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("demo", _perceptron([1], 0))
        with pytest.raises(AnalysisError, match="exists"):
            store.save("demo", _perceptron([2], 0), overwrite=False)


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(weights=signed_weights,
           bias=st.integers(min_value=-7, max_value=7),
           rows=st.integers(min_value=1, max_value=12),
           vdd=st.floats(min_value=0.6, max_value=5.0, allow_nan=False),
           seed=st.integers(min_value=0, max_value=2**16),
           pos_cal=st.one_of(st.none(), coeffs))
    def test_batched_forward_bit_identical(self, weights, bias, rows,
                                           vdd, seed, pos_cal):
        p = _perceptron(weights, bias, pos_cal)
        X = np.random.default_rng(seed).uniform(
            0.0, 1.0, (rows, len(weights)))
        margins = np.array([p.decide(x, vdd=vdd).v_out for x in X])
        preds = np.array([p.predict(x, vdd=vdd) for x in X])
        assert np.array_equal(ENGINE.margins(p, X, vdd=vdd), margins)
        assert np.array_equal(ENGINE.predict(p, X, vdd=vdd), preds)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           n_hidden=st.integers(min_value=1, max_value=9),
           rows=st.integers(min_value=1, max_value=8))
    def test_mlp_hidden_bit_identical(self, seed, n_hidden, rows):
        mlp = PwmMlp(3, n_hidden, seed=seed)
        X = np.random.default_rng(seed + 1).uniform(0.0, 1.0, (rows, 3))
        scalar = np.asarray([mlp.hidden.forward(x) for x in X])
        assert np.array_equal(
            ENGINE.hidden_features(mlp.hidden, X), scalar)

    def test_rc_supply_sweep_matches_scalar_engine(self):
        p = _perceptron([3, -2], 1)
        x = [0.7, 0.3]
        vdds = [0.9, 1.4, 2.5, 3.6]
        batched = ENGINE.predict_supply_sweep(p, x, vdds, engine="rc")
        scalar = np.array([p.predict(x, engine="rc", vdd=v)
                           for v in vdds])
        assert np.array_equal(batched, scalar)

    def test_pwm_accuracy_under_supply_matches_scalar(self):
        data = make_blobs(n_per_class=10, n_features=2, separation=0.35,
                          spread=0.09, seed=3)
        p = PerceptronTrainer(2, seed=3).fit(data.X, data.y,
                                             epochs=30).perceptron
        vdds = (0.8, 1.5, 2.5, 4.0)
        for engine in ("behavioral", "rc"):
            batched = pwm_accuracy_under_supply(p, data.X, data.y, vdds,
                                                engine=engine)
            scalar = accuracy_under_supply(
                lambda x, v: p.predict(x, engine=engine, vdd=v),
                data.X, data.y, vdds)
            assert [(b.condition, b.accuracy) for b in batched] == \
                [(s.condition, s.accuracy) for s in scalar]

    def test_per_row_vdd(self):
        p = _perceptron([3, -2], 1)
        X = np.array([[0.7, 0.3], [0.7, 0.3]])
        vdds = np.array([1.0, 3.0])
        batched = ENGINE.margins(p, X, vdd=vdds)
        scalar = [p.decide(X[i], vdd=vdds[i]).v_out for i in range(2)]
        assert np.array_equal(batched, np.array(scalar))

    def test_input_validation(self):
        p = _perceptron([1, -1], 0)
        with pytest.raises(AnalysisError, match="duty"):
            ENGINE.predict(p, [[0.5, 1.5]])
        with pytest.raises(AnalysisError, match="duty matrix"):
            ENGINE.predict(p, [[0.5, 0.5, 0.5]])
        for bad in (float("nan"), float("inf")):
            with pytest.raises(AnalysisError, match="finite"):
                ENGINE.predict(p, [[bad, 0.5]])
        with pytest.raises(AnalysisError, match="cannot serve"):
            ENGINE.predict_model(object(), [[0.5, 0.5]])

    def test_trainer_vectorized_matches_scalar(self):
        data = make_blobs(n_per_class=20, n_features=2, separation=0.3,
                          spread=0.12, seed=9)

        def sampler(s):
            rng = np.random.default_rng(s)
            return lambda: float(rng.uniform(1.2, 3.5))

        for make_kwargs in (lambda: {}, lambda: {"vdd": 1.4},
                            lambda: {"vdd_sampler": sampler(4)}):
            vec = PerceptronTrainer(2, seed=6).fit(
                data.X, data.y, epochs=25, **make_kwargs())
            ref = PerceptronTrainer(2, seed=6).fit(
                data.X, data.y, epochs=25, vectorized=False,
                **make_kwargs())
            assert len(vec.history) == len(ref.history)
            for a, b in zip(vec.history, ref.history):
                assert (a.errors, a.accuracy, a.weights, a.bias) == \
                    (b.errors, b.accuracy, b.weights, b.bias)
            assert vec.converged == ref.converged
            assert vec.perceptron.weights == ref.perceptron.weights
            assert vec.perceptron.bias == ref.perceptron.bias


class TestMicroBatcher:
    @staticmethod
    def _handler(p):
        def handler(features, vdds):
            supply = p.config.vdd if vdds is None else \
                np.where(np.isnan(vdds), p.config.vdd, vdds)
            return ENGINE.predict(p, features, vdd=supply)
        return handler

    def test_coalesces_and_preserves_row_ownership(self):
        p = _perceptron([3, -2], 1)
        rng = np.random.default_rng(0)
        X = rng.uniform(0.0, 1.0, (30, 2))
        with MicroBatcher(self._handler(p), max_batch=8,
                          max_latency=0.05) as batcher:
            futures = [batcher.submit(row) for row in X]
            wait(futures, timeout=10)
            got = np.concatenate([f.result() for f in futures])
        assert np.array_equal(got, ENGINE.predict(p, X))
        stats = batcher.stats.snapshot()
        assert stats["rows"] == 30
        assert stats["max_batch_rows"] <= 8
        assert stats["batches"] < 30  # actually coalesced

    def test_latency_flush_for_lone_request(self):
        p = _perceptron([3, -2], 1)
        with MicroBatcher(self._handler(p), max_batch=1024,
                          max_latency=0.01) as batcher:
            future = batcher.submit([0.5, 0.5])
            assert future.result(timeout=5).shape == (1,)

    def test_handler_errors_propagate(self):
        def broken(features, vdds):
            raise ValueError("boom")

        with MicroBatcher(broken, max_batch=4,
                          max_latency=0.001) as batcher:
            future = batcher.submit([0.5, 0.5])
            with pytest.raises(ValueError, match="boom"):
                future.result(timeout=5)

    def test_submit_after_stop_rejected(self):
        batcher = MicroBatcher(self._handler(_perceptron([1], 0)),
                               max_batch=4).start()
        batcher.stop()
        with pytest.raises(AnalysisError, match="not running"):
            batcher.submit([0.5])

    def test_bad_parameters(self):
        handler = self._handler(_perceptron([1], 0))
        with pytest.raises(AnalysisError):
            MicroBatcher(handler, max_batch=0)
        with pytest.raises(AnalysisError):
            MicroBatcher(handler, max_latency=-1.0)


@pytest.fixture(scope="class")
def serving_stack(request, tmp_path_factory):
    data = make_blobs(n_per_class=20, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=40).perceptron
    store = ModelStore(tmp_path_factory.mktemp("models"))
    store.save("demo", model)
    server = PerceptronServer(store, port=0, max_batch=16,
                              max_latency=0.002).start()
    request.cls.data = data
    request.cls.model = model
    request.cls.server = server
    yield
    server.close()


@pytest.mark.usefixtures("serving_stack")
class TestHttpServer:
    def _get(self, path):
        try:
            with urllib.request.urlopen(self.server.url + path,
                                        timeout=10) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def _post(self, path, payload):
        request = urllib.request.Request(
            self.server.url + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=10) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def test_healthz_and_models(self):
        status, body = self._get("/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body = self._get("/models")
        assert status == 200
        assert [m["name"] for m in body["models"]] == ["demo"]

    def test_predict_batch_matches_engine(self):
        X = self.data.X
        status, body = self._post("/predict",
                                  {"model": "demo",
                                   "inputs": X.tolist()})
        assert status == 200
        expected = ENGINE.predict(self.model, X)
        assert body["predictions"] == [int(v) for v in expected]
        assert body["count"] == len(X)
        margins = ENGINE.margins(self.model, X)
        assert np.allclose(body["margins"], margins)

    def test_predict_single_row_and_vdd(self):
        status, body = self._post(
            "/predict", {"model": "demo", "inputs": [0.2, 0.8],
                         "vdd": 1.2})
        assert status == 200 and body["count"] == 1
        expected = ENGINE.predict(self.model, [[0.2, 0.8]], vdd=1.2)
        assert body["predictions"] == [int(expected[0])]

    def test_unknown_model_404(self):
        status, body = self._post("/predict", {"model": "nope",
                                               "inputs": [[0.1, 0.2]]})
        assert status == 404 and "error" in body

    def test_malformed_requests_400(self):
        for payload in ({"inputs": [[0.1, 0.2]]},
                        {"model": "demo"},
                        {"model": "demo", "inputs": [[0.1]]},
                        {"model": "demo", "inputs": [[0.1, 2.0]]},
                        {"model": "demo", "inputs": [[float("nan"), 0.2]]},
                        {"model": "demo", "inputs": [[0.1, 0.2]],
                         "vdd": -1.0}):
            status, body = self._post("/predict", payload)
            assert status == 400, payload
            assert "error" in body

    def test_unknown_endpoint_404(self):
        assert self._get("/nope")[0] == 404
        # Unknown paths share one metrics label (bounded cardinality).
        self._get("/another-bogus-path")
        counters = self._get("/metrics")[1]["requests_total"]
        assert "/nope" not in counters and "unknown" in counters

    def test_metrics_counters(self):
        before = self._get("/metrics")[1]
        self._post("/predict", {"model": "demo",
                                "inputs": [[0.4, 0.6]]})
        after = self._get("/metrics")[1]
        assert after["requests_total"]["/predict"] == \
            before["requests_total"].get("/predict", 0) + 1
        assert after["predictions_total"] >= \
            before["predictions_total"] + 1
        assert "demo" in after["batchers"]
        assert after["batchers"]["demo"]["rows"] >= 1


@pytest.mark.usefixtures("serving_stack")
class TestExperimentEndpoints:
    """Experiments join models as a served, self-describing resource."""

    _get = TestHttpServer._get
    _post = TestHttpServer._post

    def test_experiments_index_serves_schemas(self):
        status, body = self._get("/experiments")
        assert status == 200
        assert body["count"] == len(body["experiments"]) >= 22
        by_id = {e["id"]: e for e in body["experiments"]}
        assert "ext_montecarlo" in by_id
        names = [p["name"] for p in by_id["ext_montecarlo"]["params"]]
        assert names == ["fidelity", "seed", "method"]

    def test_single_experiment_schema_and_404(self):
        status, body = self._get("/experiments/fig4")
        assert status == 200 and body["id"] == "fig4"
        assert any(p["name"] == "duties" for p in body["params"])
        status, body = self._get("/experiments/fig99")
        assert status == 404 and "error" in body

    def test_run_returns_rendered_equivalent_result(self):
        from repro.experiments import ExperimentResult, run_experiment

        status, body = self._post("/experiments/table1/run", {})
        assert status == 200
        assert body["experiment_id"] == "table1"
        assert body["config"]["fidelity"] == "fast"
        served = ExperimentResult.from_dict(body["result"])
        direct = run_experiment("table1", fidelity="fast")
        assert served.render() == direct.render()

    def test_run_with_params_and_memoisation(self):
        payload = {"params": {"seed": 21, "method": "vectorized"}}
        status, first = self._post("/experiments/ext_montecarlo/run",
                                   payload)
        assert status == 200 and first["cached"] is False
        assert first["config"]["params"]["seed"] == 21
        status, second = self._post("/experiments/ext_montecarlo/run",
                                    payload)
        assert status == 200 and second["cached"] is True
        assert second["result"] == first["result"]

    def test_run_validation_errors(self):
        cases = [
            ("/experiments/fig99/run", {}, 404),
            ("/experiments/ext_montecarlo/run",
             {"params": {"trials": 10}}, 400),
            ("/experiments/ext_montecarlo/run",
             {"params": {"seed": "x"}}, 400),
            ("/experiments/ext_montecarlo/run",
             {"fidelity": "paper"}, 400),
            ("/experiments/ext_montecarlo/run",
             {"bogus": 1}, 400),
            ("/experiments/ext_montecarlo/run",
             {"params": [1, 2]}, 400),
            # Falsy non-dict params are malformed too, not "defaults".
            ("/experiments/ext_montecarlo/run",
             {"params": 0}, 400),
            ("/experiments/ext_montecarlo/run",
             {"params": ""}, 400),
            # fidelity must ride at the top level, never inside params
            # (a silent drop here would ignore a requested fidelity).
            ("/experiments/ext_montecarlo/run",
             {"params": {"fidelity": "paper"}}, 400),
        ]
        for path, payload, expected in cases:
            status, body = self._post(path, payload)
            assert status == expected, (path, payload, body)
            assert "error" in body

    def test_experiment_memo_is_lru_bounded(self):
        server = self.server
        with server._experiments_lock:
            server._experiment_results.clear()
        original = server.experiment_memo_max
        server.experiment_memo_max = 2
        try:
            for seed in (1, 2, 3):
                self._post("/experiments/ext_sensitivity/run", {})
                self._post("/experiments/ext_montecarlo/run",
                           {"params": {"seed": seed}})
            with server._experiments_lock:
                assert len(server._experiment_results) == 2
        finally:
            server.experiment_memo_max = original

    def test_experiment_metrics_labels(self):
        self._get("/experiments")
        self._post("/experiments/table1/run", {})
        counters = self._get("/metrics")[1]["requests_total"]
        assert counters.get("/experiments", 0) >= 1
        assert counters.get("/experiments/run", 0) >= 1


class TestModelHotReload:
    def test_reexported_artifact_served_without_restart(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("m", _perceptron([3, 3], -3))
        with PerceptronServer(store, port=0) as server:
            first = server.get_model("m")
            assert server.handle_predict(
                {"model": "m", "inputs": [[0.9, 0.9]]}
            )["predictions"] == [1]
            # Re-export an inverted model under the same name: /predict
            # must pick it up (and rebuild the batcher) immediately.
            store.save("m", _perceptron([-3, -3], 3))
            assert server.handle_predict(
                {"model": "m", "inputs": [[0.9, 0.9]]}
            )["predictions"] == [0]
            assert server.get_model("m") is not first

    def test_nonfinite_vdd_rejected(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("m", _perceptron([3, 3], -3))
        with PerceptronServer(store, port=0) as server:
            for bad in (float("inf"), float("nan"), -1.0):
                with pytest.raises(AnalysisError, match="vdd"):
                    server.handle_predict({"model": "m",
                                           "inputs": [[0.5, 0.5]],
                                           "vdd": bad})


class TestServingCli:
    def test_export_predict_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        store = str(tmp_path / "store")
        assert cli_main(["export-model", "cli-demo", "--dataset", "blobs",
                         "--epochs", "40", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "exported perceptron model 'cli-demo'" in out
        assert "schema v3" in out
        assert cli_main(["predict", "cli-demo", "--input", "0.9,0.1",
                         "--input", "0.1,0.9", "--store", store]) == 0
        out = capsys.readouterr().out
        assert out.count("-> class") == 2

    def test_export_mlp(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        store = str(tmp_path / "store")
        assert cli_main(["export-model", "xor-demo", "--dataset", "xor",
                         "--hidden", "4", "--epochs", "20",
                         "--seed", "3", "--store", store]) == 0
        assert "exported mlp model" in capsys.readouterr().out
        assert cli_main(["predict", "xor-demo", "--input", "0.5,0.5",
                         "--store", store]) == 0
        assert "-> class" in capsys.readouterr().out

    def test_predict_input_validation(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        store = str(tmp_path / "store")
        assert cli_main(["export-model", "m", "--epochs", "5",
                         "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["predict", "m", "--input", "0.5",
                         "--store", store]) == 2
        assert "expects 2" in capsys.readouterr().err
        assert cli_main(["predict", "m", "--input", "a,b",
                         "--store", store]) == 2
        assert "non-numeric" in capsys.readouterr().err
