"""The telemetry subsystem: metrics, tracing, profiles, serving wiring.

Pins the guarantees observability rests on:

* instrumentation observes only — results are bit-identical with
  telemetry enabled or disabled, and run profiles never leak into the
  serialised (golden/cached) result encoding;
* the trace is structurally sound — nested spans carry correct
  parent/child links, export/load round-trips through JSONL, and tag
  cardinality stays bounded on real solver runs;
* the metrics registry renders valid Prometheus text exposition, and
  ``ServingMetrics`` snapshots are atomic across instruments under
  concurrent observers (the single-lock fix);
* the error surfaces (``resolve_solver``) name the offending
  experiment.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro import telemetry
from repro.circuit import AnalysisError
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Registry,
    validate_prometheus_text,
)
from repro.telemetry.trace import Tracer, load_jsonl, span_depths


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with telemetry disabled (global)."""
    telemetry.disable()
    yield
    telemetry.disable()


# -- metrics primitives ------------------------------------------------------


class TestMetrics:
    def test_counter_and_labels(self):
        reg = Registry()
        c = reg.counter("hits_total", "hits", labelnames=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 1
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1, kind="a")
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(wrong="x")

    def test_gauge(self):
        reg = Registry()
        g = reg.gauge("temp")
        g.set(3.5)
        g.inc(0.5)
        assert g.value() == 4.0

    def test_histogram_buckets(self):
        reg = Registry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.total_count() == 4
        assert h.total_sum() == pytest.approx(55.55)
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("bad", buckets=(1.0, 1.0))

    def test_registration_idempotent_but_typed(self):
        reg = Registry()
        a = reg.counter("x_total", "x")
        assert reg.counter("x_total") is a
        with pytest.raises(ValueError, match="different type"):
            reg.gauge("x_total")
        with pytest.raises(ValueError, match="different type"):
            reg.counter("x_total", labelnames=("k",))

    def test_flat_values(self):
        reg = Registry()
        reg.counter("n_total", labelnames=("k",)).inc(2, k="v")
        reg.histogram("h").observe(0.5)
        flat = reg.flat_values()
        assert flat['n_total{k="v"}'] == 2
        assert flat["h#count"] == 1
        assert flat["h#sum"] == 0.5

    def test_prometheus_text_validates(self):
        reg = Registry()
        reg.counter("repro_hits_total", "Hits.",
                    labelnames=("kind",)).inc(3, kind='we"ird')
        reg.gauge("repro_level", "Level.").set(2.5)
        h = reg.histogram("repro_latency_seconds", "Latency.")
        h.observe(0.002)
        h.observe(4.0)
        samples = validate_prometheus_text(reg.prometheus_text())
        by_name = {}
        for s in samples:
            by_name.setdefault(s["name"], []).append(s)
        assert by_name["repro_hits_total"][0]["labels"] == {"kind": 'we"ird'}
        # Cumulative buckets end at +Inf == _count.
        buckets = by_name["repro_latency_seconds_bucket"]
        assert buckets[-1]["labels"]["le"] == "+Inf"
        assert buckets[-1]["value"] == 2
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError, match="no # TYPE family"):
            validate_prometheus_text("orphan_metric 1\n")
        with pytest.raises(ValueError, match="malformed sample"):
            validate_prometheus_text(
                "# TYPE x counter\nx one\n")
        with pytest.raises(ValueError, match="missing \\+Inf"):
            validate_prometheus_text(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_count 1\nh_sum 0.5\n')


# -- tracing -----------------------------------------------------------------


class TestTracer:
    def test_nesting_and_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", {"k": 1}):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        target = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(target)) == 3
        events = load_jsonl(str(target))
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        outer = by_name["outer"][0]
        assert outer["parent"] is None
        assert all(e["parent"] == outer["id"] for e in by_name["inner"])
        depths = span_depths(events)
        assert depths[outer["id"]] == 1
        assert all(depths[e["id"]] == 2 for e in by_name["inner"])

    def test_exception_tags_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (event,) = tracer.events()
        assert event["tags"]["error"] == "RuntimeError"

    def test_bounded_buffer_counts_drops(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.events()) == 2
        assert tracer.dropped == 3

    def test_record_bypasses_the_span_stack(self):
        # The asyncio transport's stack-free path: connection and
        # request spans recorded by explicit parent id, with the
        # thread-local stack left untouched.
        tracer = Tracer()
        with tracer.span("ambient"):
            conn = tracer.record("conn", ts=1.0, dur=0.0,
                                 tags={"peer": "x"})
            child = tracer.record("req", ts=1.1, dur=0.2, parent=conn)
            assert tracer.current() is not None
            assert tracer.current().name == "ambient"
        events = {e["name"]: e for e in tracer.events()}
        # record() must not parent onto (or under) the ambient span.
        assert events["conn"]["parent"] is None
        assert events["req"]["parent"] == conn
        assert events["req"]["id"] == child
        assert events["conn"]["tags"] == {"peer": "x"}
        assert events["ambient"]["parent"] is None
        assert child > conn  # ids stay monotonic across both paths

    def test_threads_get_separate_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as sp:
                seen[name] = sp.parent_id

        with tracer.span("main-root"):
            t = threading.Thread(target=worker, args=("child-thread",))
            t.start()
            t.join()
        # The other thread's span must not parent onto this thread's.
        assert seen["child-thread"] is None


# -- zero perturbation + run profiles ---------------------------------------


class TestZeroPerturbation:
    def test_disabled_span_is_shared_noop(self):
        a = telemetry.span("x", k=1)
        b = telemetry.span("y")
        assert a is b  # no per-call allocation on the disabled path
        with a:
            a.set_tag("k", 2)

    def test_results_bit_identical_enabled_vs_disabled(self):
        from repro.experiments import RunConfig, run_config

        config = RunConfig.build("table2", "fast", {})
        baseline = run_config(config).to_dict()
        telemetry.enable()
        enabled = run_config(config).to_dict()
        assert enabled == baseline

    def test_profile_attached_but_never_serialised(self):
        from repro.experiments import RunConfig, run_config

        config = RunConfig.build("table2", "fast", {})
        assert run_config(config).profile is None  # disabled
        telemetry.enable()
        result = run_config(config)
        profile = result.profile
        assert profile["experiment_id"] == "table2"
        assert profile["fidelity"] == "fast"
        assert "adder.evaluate" in profile["spans"]
        assert profile["duration_seconds"] > 0
        # The serialised encoding (goldens, cache) must not carry it.
        assert "profile" not in result.to_dict()
        restored = type(result).from_dict(result.to_dict())
        assert restored.profile is None


class TestShootingTraceRoundTrip:
    def test_jacobian_batched_trace_nests_and_bounds_tags(self, tmp_path):
        from repro.circuit.batch_transient import shooting_jacobian_batched
        from repro.core.weighted_adder import AdderConfig, WeightedAdder

        rt = telemetry.enable()
        adder = WeightedAdder(AdderConfig())
        circuit = adder.build_circuit((0.2, 0.6, 0.8), (5, 6, 7))
        shooting_jacobian_batched(circuit, 1.0 / adder.config.frequency,
                                  observe=["out"], steps_per_period=20)
        target = tmp_path / "trace.jsonl"
        rt.export_trace(str(target))
        events = load_jsonl(str(target))
        by_id = {e["id"]: e for e in events}
        depths = span_depths(events)
        # pss.shooting_jacobian -> mna.transient.batch -> mna.newton:
        # at least three levels of real solver nesting.
        assert max(depths.values()) >= 3
        newtons = [e for e in events if e["name"] == "mna.newton"]
        assert newtons
        # Newton solves nest under a transient (batched Jacobian
        # columns or the scalar warmup/capture pass) or directly under
        # the shooting span (periodic-point solves); never float free.
        full_chains = 0
        for e in newtons:
            parent = by_id[e["parent"]]
            assert parent["name"] in ("mna.transient.batch",
                                      "mna.transient",
                                      "pss.shooting_jacobian")
            if parent["name"] == "mna.transient.batch":
                root = by_id[parent["parent"]]
                assert root["name"] == "pss.shooting_jacobian"
                assert root["parent"] is None
                full_chains += 1
        assert full_chains > 0
        for e in events:
            assert e["dur"] >= 0
            assert e["ts"] > 0
        # Bounded tag cardinality: a trace of thousands of events must
        # use a small, fixed tag vocabulary (no per-event unique keys).
        tag_keys = {k for e in events for k in e["tags"]}
        assert tag_keys <= {"analysis", "mode", "size", "points",
                            "circuit", "iterations", "steps", "method"}
        circuits = {e["tags"].get("circuit") for e in events
                    if "circuit" in e["tags"]}
        assert len(circuits) == 1


# -- error surfaces (resolve_solver names the experiment) --------------------


class TestResolveSolverErrors:
    def test_unknown_solver_names_experiment(self):
        from repro.exec.batch import resolve_solver

        with pytest.raises(AnalysisError,
                           match="experiment 'table2': .*'turbo'"):
            resolve_solver("turbo", engine_id="spice",
                           experiment_id="table2")

    def test_unknown_engine_names_experiment(self):
        from repro.exec.batch import resolve_solver

        with pytest.raises(AnalysisError,
                           match="experiment 'table2': unknown engine "
                                 "'nope'"):
            resolve_solver("auto", engine_id="nope",
                           experiment_id="table2")

    def test_wrong_level_names_experiment(self):
        from repro.exec.batch import resolve_solver

        with pytest.raises(AnalysisError,
                           match="experiment 'ext_robustness': solver "
                                 "'dense' only applies to "
                                 "transistor-level"):
            resolve_solver("dense", engine_id="rc",
                           experiment_id="ext_robustness")

    def test_without_experiment_stays_bare(self):
        from repro.exec.batch import resolve_solver

        with pytest.raises(AnalysisError, match="^solver 'dense'"):
            resolve_solver("dense", engine_id="behavioral")


# -- serving metrics: atomic snapshots + Prometheus endpoint -----------------


class TestServingMetricsAtomicity:
    def test_threaded_snapshot_invariants(self):
        from repro.serve.server import ServingMetrics

        metrics = ServingMetrics()
        n_threads, per_thread = 8, 200
        start = threading.Barrier(n_threads + 1)
        stop = threading.Event()

        def hammer():
            start.wait()
            for _ in range(per_thread):
                metrics.observe("/predict", 0.001, rows=1)

        threads = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()

        violations = []

        def scrape():
            while not stop.is_set():
                with metrics.registry.lock:
                    snap = metrics.snapshot()
                    hist = metrics.registry.get(
                        "repro_request_latency_seconds").total_count()
                n = sum(snap["requests_total"].values())
                # Atomic across instruments: every counted request has
                # its latency observation and its prediction row.
                if hist != n or snap["predictions_total"] != n:
                    violations.append((n, hist,
                                       snap["predictions_total"]))

        scraper = threading.Thread(target=scrape)
        scraper.start()
        start.wait()
        for t in threads:
            t.join()
        stop.set()
        scraper.join()
        assert violations == []
        final = metrics.snapshot()
        total = n_threads * per_thread
        assert final["requests_total"] == {"/predict": total}
        assert final["predictions_total"] == total
        assert final["errors_total"] == 0
        assert final["latency_ms_mean"] == pytest.approx(1.0)

    def test_snapshot_keys_unchanged(self):
        from repro.serve.server import ServingMetrics

        metrics = ServingMetrics()
        metrics.observe("/healthz", 0.002)
        snap = metrics.snapshot()
        assert sorted(snap) == ["errors_total", "latency_ms_max",
                                "latency_ms_mean", "predictions_total",
                                "requests_total", "uptime_seconds"]
        assert isinstance(snap["errors_total"], int)
        assert isinstance(snap["requests_total"]["/healthz"], int)


class TestMetricsEndpoint:
    def _server(self, tmp_path):
        from repro.serve.artifacts import ModelStore
        from repro.serve.server import PerceptronServer

        return PerceptronServer(ModelStore(tmp_path))

    def test_content_negotiation(self, tmp_path):
        with self._server(tmp_path) as server:
            url = server.url + "/metrics"
            urllib.request.urlopen(server.url + "/healthz").read()
            # Default: the JSON snapshot, unchanged shape.
            snap = json.load(urllib.request.urlopen(url))
            assert "requests_total" in snap and "batchers" in snap
            # Prometheus asks with Accept: text/plain.
            req = urllib.request.Request(
                url, headers={"Accept": "text/plain"})
            resp = urllib.request.urlopen(req)
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            samples = validate_prometheus_text(resp.read().decode())
            families = {s["family"] for s in samples}
            assert "repro_predict_latency_seconds" in families
            assert "repro_requests_total" in families
            assert "repro_request_latency_seconds" in families
            # ?format=prometheus forces the text view without headers.
            text = urllib.request.urlopen(
                url + "?format=prometheus").read().decode()
            validate_prometheus_text(text)

    def test_shared_registry_exposes_solver_counters(self, tmp_path):
        telemetry.enable()
        telemetry.count("repro_mna_newton_solves_total", 5)
        with self._server(tmp_path) as server:
            text = urllib.request.urlopen(
                server.url + "/metrics?format=prometheus").read().decode()
        samples = validate_prometheus_text(text)
        by_name = {s["name"]: s["value"] for s in samples}
        assert by_name["repro_mna_newton_solves_total"] == 5


class TestMicroBatcherFillRatio:
    def test_mean_fill_ratio(self):
        from repro.serve import MicroBatcher

        with MicroBatcher(lambda f, v: f[:, 0], max_batch=8,
                          max_latency=0.0) as batcher:
            batcher.submit(np.zeros((4, 2))).result(timeout=5)
        stats = batcher.stats.snapshot()
        assert stats["batches"] >= 1
        assert 0.0 < stats["mean_fill_ratio"] <= 1.0
        # One 4-row flush against max_batch=8 is half full.
        if stats["batches"] == 1:
            assert stats["mean_fill_ratio"] == 0.5


# -- CLI flags ---------------------------------------------------------------


class TestCliTelemetry:
    def test_run_with_trace_out(self, tmp_path, capsys):
        from repro.__main__ import main

        target = tmp_path / "trace.jsonl"
        assert main(["run", "table2", "--telemetry",
                     "--trace-out", str(target)]) == 0
        err = capsys.readouterr().err
        assert "telemetry: profile" in err
        assert f"trace events to {target}" in err
        events = load_jsonl(str(target))
        roots = [e for e in events if e["parent"] is None]
        assert [e["name"] for e in roots] == ["experiment"]
        assert roots[0]["tags"]["experiment"] == "table2"
