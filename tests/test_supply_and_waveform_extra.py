"""Remaining coverage: supply-profile composition, waveform edge cases,
and the op-point accessors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import (
    AnalysisError,
    Circuit,
    ConvergenceError,
    Resistor,
    Vdc,
    Waveform,
    operating_point,
)
from repro.signals import SupplyProfile, brownout, constant, sine_ripple


class TestSupplyComposition:
    def test_custom_profile_callable(self):
        p = SupplyProfile(lambda t: 2.0 + t * 1e3, name="linear")
        assert p(1e-3) == pytest.approx(3.0)
        assert p.name == "linear"

    def test_clamp_composes_with_any_profile(self):
        p = sine_ripple(2.5, 1.0, 1e3).clamped(v_min=2.0, v_max=3.0)
        samples = [p(t) for t in np.linspace(0, 2e-3, 400)]
        assert min(samples) >= 2.0 - 1e-12
        assert max(samples) <= 3.0 + 1e-12

    def test_breakpoints_exposed(self):
        p = brownout(2.5, 1.0, 1e-3, 2e-3)
        assert p.breakpoints == [1e-3, 2e-3]
        assert constant(2.5).breakpoints == []

    @given(st.floats(min_value=0.1, max_value=5.0),
           st.floats(min_value=0.0, max_value=1e-2))
    def test_constant_profile_is_constant(self, vdd, t):
        assert constant(vdd)(t) == vdd


class TestWaveformEdgeCases:
    def test_crossings_none_when_level_outside(self):
        w = Waveform([0, 1, 2], [0.0, 0.5, 0.0])
        assert len(w.crossings(2.0)) == 0

    def test_duty_cycle_degenerate_single_point(self):
        assert Waveform([1.0], [2.0]).duty_cycle(1.0) == 1.0
        assert Waveform([1.0], [0.5]).duty_cycle(1.0) == 0.0

    def test_slice_zero_width(self):
        w = Waveform([0, 1], [0, 1])
        s = w.slice(0.5, 0.5)
        assert s.average() == pytest.approx(0.5)

    def test_resample_outside_clamps(self):
        w = Waveform([0, 1], [0.0, 1.0])
        r = w.resample([-1.0, 2.0])
        assert list(r.y) == [0.0, 1.0]

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2,
                    max_size=30))
    def test_fold_preserves_mean(self, values):
        t = np.linspace(0.0, 1.0, len(values))
        w = Waveform(t, values)
        folded = w.fold(1.0, n_bins=10)
        # Folding over the full span with one period keeps the data's
        # general level (bin means average the same samples).
        assert min(values) - 1e-9 <= folded.average() <= max(values) + 1e-9


class TestOpPointAccessors:
    def test_branch_current_requires_branch(self):
        c = Circuit()
        c.add(Vdc("V1", "a", "0", 1.0))
        c.add(Resistor("R1", "a", "0", "1k"))
        op = operating_point(c)
        with pytest.raises(ConvergenceError):
            op.branch_current("R1")
        assert op.branch_current("V1") == pytest.approx(-1e-3, rel=1e-6)

    def test_ground_voltage_is_zero(self):
        c = Circuit()
        c.add(Vdc("V1", "a", "0", 1.0))
        c.add(Resistor("R1", "a", "0", "1k"))
        op = operating_point(c)
        assert op.voltage("0") == 0.0
        assert op.voltage("gnd") == 0.0

    def test_repr_contains_context(self):
        c = Circuit()
        c.add(Vdc("V1", "a", "0", 1.0))
        c.add(Resistor("R1", "a", "0", "1k"))
        assert "OpPoint" in repr(operating_point(c))
