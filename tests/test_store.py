"""Result store, query layer, watch/dashboard and alerts tests.

The contracts under test:

* :class:`ResultStore` honours the flat cache's get/put contract —
  store-backed campaign runs, resume and aggregate reports are
  byte-identical to flat-cache runs, corruption reads as a miss, and a
  schema-version mismatch fails loudly;
* ``store migrate`` ingests a flat cache verbatim (zero result diffs,
  payload text byte-identical) and marks rows no current-version probe
  can reach as stale for ``store gc``;
* :class:`StoreQuery` filters (SQL JSON1 or the Python fallback)
  return identical, deterministically-ordered rows, and
  marginalisation feeds the reporting layer;
* N concurrent writer processes lose no writes and agree with the flat
  cache's ground-truth ``campaign_status``;
* declarative alert rules parse/round-trip on the spec without
  changing its execution key, the engine fires each (rule, config)
  once, and webhook failures never raise;
* the dashboard serves /status /alerts /results /healthz over HTTP.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

from repro.campaigns import (
    AlertRule,
    CampaignRunner,
    CampaignSpec,
    campaign_status,
    collect_results,
    results_document,
)
from repro.circuit import AnalysisError
from repro.exec import ResultCache
from repro.experiments import RunConfig, run_config
from repro.store import (
    AlertEngine,
    CampaignDashboard,
    ResultStore,
    StoreQuery,
    evaluate_alerts,
    status_with_eta,
    watch,
)
from repro.store.watch import format_watch_line

REPO_ROOT = Path(__file__).resolve().parent.parent
YIELD_SPEC = REPO_ROOT / "examples" / "campaigns" / "montecarlo_yield.json"


def montecarlo_spec(count: int = 3, **extra) -> CampaignSpec:
    doc = {
        "name": "store-smoke",
        "experiment": "ext_montecarlo",
        "fidelity": "fast",
        "axes": [{"param": "seed", "range": {"start": 0, "count": count}}],
    }
    doc.update(extra)
    return CampaignSpec.from_dict(doc)


def _aggregate_text(spec: CampaignSpec, cache) -> str:
    document = results_document(spec, collect_results(spec, cache))
    return json.dumps(document, indent=2, sort_keys=True)


class TestResultStoreContract:
    def test_round_trip_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        config = RunConfig.build("ext_montecarlo", "fast", {"seed": 3})
        assert store.get_config(config) is None
        result = run_config(RunConfig.build("ext_montecarlo", "fast",
                                    {"seed": 3}))
        store.put_config(result, config)
        hit = store.get_config(config)
        assert hit is not None
        assert hit.render(charts=True) == result.render(charts=True)
        # Stable across repeated reads (same deserialisation path).
        assert store.get_config(config).render() == result.render()

    def test_legacy_kwargs_interface(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_config(RunConfig.build("table1", "fast"))
        store.put(result, {})
        hit = store.get("table1", "fast", {})
        assert hit is not None and hit.render() == result.render()
        assert store.counts()["by_kind"] == {"legacy": 1}

    def test_legacy_entry_promoted_to_canonical_key(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_config(RunConfig.build("ext_transistor_count", "fast"))
        store.put(result, {})
        config = RunConfig.build("ext_transistor_count", "fast")
        assert store.get_config(config) is None
        hit = store.get_config(config, legacy_params={})
        assert hit is not None and hit.render() == result.render()
        # Promotion wrote a canonical row; the next probe needs no
        # legacy fallback and the legacy row is left in place.
        assert store.get_config(config) is not None
        assert store.counts()["by_kind"] == \
            {"canonical": 1, "legacy": 1}

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        config = RunConfig.build("table1", "fast")
        result = run_config(RunConfig.build("table1", "fast"))
        entry = store.put_config(result, config)
        with store._lock:
            store._conn.execute(
                "UPDATE results SET payload = ? WHERE entry = ?",
                ('{"schema": 1, "result": {"experime', entry))
        assert store.get_config(config) is None

    def test_schema_mismatch_fails_loudly(self, tmp_path):
        store = ResultStore(tmp_path)
        with store._lock:
            store._conn.execute(
                "UPDATE store_meta SET value = '999' "
                "WHERE key = 'schema'")
        store.close()
        with pytest.raises(AnalysisError, match="schema 999"):
            ResultStore(tmp_path)

    def test_path_for_config_names_db_and_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        config = RunConfig.build("table1", "fast")
        where = store.path_for_config(config)
        assert str(store.db_path) in where
        assert "table1/fast-rc" in where

    def test_get_configs_aligns_with_serial_probes(self, tmp_path):
        spec = montecarlo_spec(4)
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store).run()
        configs = spec.expand()
        store.put_config(  # overwrite nothing, just ensure >0 rows
            store.get_config(configs[0]), configs[0])
        missing = RunConfig.build("ext_montecarlo", "fast", {"seed": 99})
        batch = store.get_configs(list(configs) + [missing])
        serial = [store.get_config(c) for c in configs] + [None]
        assert len(batch) == len(serial)
        for got, want in zip(batch, serial):
            if want is None:
                assert got is None
            else:
                assert got.render() == want.render()


class TestStoreCampaignIdentity:
    def test_store_backed_run_matches_flat_cache_bytes(self, tmp_path):
        spec = montecarlo_spec(3)
        flat = ResultCache(tmp_path / "flat")
        store = ResultStore(tmp_path / "store")
        CampaignRunner(spec, flat).run()
        CampaignRunner(spec, store).run()
        assert _aggregate_text(spec, store) == _aggregate_text(spec, flat)

    def test_store_is_the_resume_checkpoint(self, tmp_path):
        spec = montecarlo_spec(3)
        store = ResultStore(tmp_path)
        first = CampaignRunner(spec, store).run()
        assert (first.executed, first.skipped) == (3, 0)
        second = CampaignRunner(spec, store).run()
        assert (second.executed, second.skipped) == (0, 3)
        status = campaign_status(spec, store)
        assert (status["done"], status["missing"]) == (3, 0)


class TestMigrate:
    def test_migrate_is_byte_identical(self, tmp_path):
        spec = montecarlo_spec(3)
        flat = ResultCache(tmp_path / "flat")
        CampaignRunner(spec, flat).run()
        flat.put(run_config(RunConfig.build("table1", "fast")), {})
        store = ResultStore(tmp_path / "flat",
                            db_path=tmp_path / "migrated.sqlite")
        summary = store.migrate_from_cache(flat)
        assert summary["scanned"] == 4
        assert summary["migrated"] == 4
        assert summary["legacy"] == 1
        assert summary["skipped"] == 0
        # Zero result diffs on the aggregate document...
        assert _aggregate_text(spec, store) == _aggregate_text(spec, flat)
        # ...because the payload text is stored verbatim.
        for config in spec.expand():
            file_text = flat.path_for_config(config).read_text()
            entry = store._entry_for_config(config)
            assert store._payload_text(entry) == file_text

    def test_unreadable_files_are_skipped_not_raised(self, tmp_path):
        flat = ResultCache(tmp_path)
        flat.put(run_config(RunConfig.build("table1", "fast")), {})
        (flat.root / "table1" / "fast-deadbeef.json").write_text("{tor")
        (flat.root / "table1" / "fast-beef.json").write_bytes(b"\xff\xfe")
        store = ResultStore(tmp_path, db_path=tmp_path / "m.sqlite")
        summary = store.migrate_from_cache(flat)
        assert summary["scanned"] == 3
        assert summary["migrated"] == 1
        assert summary["skipped"] == 2

    def test_foreign_version_entries_go_stale_and_gc(self, tmp_path):
        spec = montecarlo_spec(1)
        flat = ResultCache(tmp_path)
        CampaignRunner(spec, flat).run()
        # Simulate an entry written by another package version: valid
        # payload under a canonical-looking name with the wrong hash.
        config = spec.expand()[0]
        real = flat.path_for_config(config)
        foreign = real.with_name("fast-rc" + "0" * 16 + ".json")
        foreign.write_text(real.read_text())
        store = ResultStore(tmp_path, db_path=tmp_path / "m.sqlite")
        summary = store.migrate_from_cache(flat)
        assert summary["migrated"] == 2
        assert summary["stale"] == 1
        # Stale rows never serve queries or probes...
        assert len(StoreQuery(store, "ext_montecarlo").rows()) == 1
        assert store.get_config(config) is not None
        # ...and gc reclaims them (dry run first, then for real).
        assert store.gc(dry_run=True) == \
            {"candidates": 1, "deleted": 0, "perf_candidates": 0,
             "perf_deleted": 0, "dry_run": True}
        assert store.gc()["deleted"] == 1
        assert store.counts()["stale"] == 0

    def test_gc_legacy_drops_kwargs_rows(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_config(RunConfig.build("table1", "fast"))
        store.put(result, {})
        store.put_config(result, RunConfig.build("table1", "fast"))
        assert store.gc(legacy=True)["deleted"] == 1
        assert store.counts()["by_kind"] == {"canonical": 1}


class TestStoreQuery:
    @pytest.fixture()
    def store(self, tmp_path):
        spec = montecarlo_spec(4)
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store).run()
        return store

    def test_where_filters_and_orders_rows(self, store):
        q = StoreQuery(store, "ext_montecarlo")
        assert len(q.rows()) == 4
        lt = q.where("seed", "<", 2).rows()
        assert sorted(r.params["seed"] for r in lt) == [0, 1]
        eq = q.where("seed", "=", 3).rows()
        assert [r.params["seed"] for r in eq] == [3]
        isin = q.where("seed", "in", [0, 3]).rows()
        assert sorted(r.params["seed"] for r in isin) == [0, 3]
        assert [r.entry for r in q.rows()] == \
            sorted(r.entry for r in q.rows())

    def test_python_fallback_matches_sql_path(self, store):
        q = StoreQuery(store, "ext_montecarlo").where("seed", ">=", 2)
        sql_rows = q.rows()
        store.has_json1 = False
        try:
            assert [r.entry for r in q.rows()] == \
                [r.entry for r in sql_rows]
        finally:
            store.has_json1 = True

    def test_bad_filters_rejected(self, store):
        q = StoreQuery(store, "ext_montecarlo")
        with pytest.raises(AnalysisError, match="invalid parameter"):
            q.where("seed; DROP TABLE results", "=", 1)
        with pytest.raises(AnalysisError, match="unknown filter"):
            q.where("seed", "~=", 1)
        with pytest.raises(AnalysisError, match="non-empty list"):
            q.where("seed", "in", [])
        with pytest.raises(AnalysisError, match="numbers or strings"):
            q.where("seed", "=", True)

    def test_table_and_tidy_shapes(self, store):
        q = StoreQuery(store, "ext_montecarlo").where("seed", "<", 2)
        table = q.table()
        assert table.headers[0] == "entry"
        assert "seed" in table.headers
        assert len(table.rows) == 2
        tidy = q.tidy()
        assert tidy["count"] == 2
        assert tidy["filters"] == [["seed", "<", 2]]
        assert all(set(row) == {"entry", "experiment", "fidelity",
                                "params", "metrics"}
                   for row in tidy["rows"])

    def test_marginalize_and_figure(self, store):
        q = StoreQuery(store, "ext_montecarlo")
        metric = q.metric_names()[0]
        points = q.marginalize(metric, "seed")
        assert [k for k, _ in points] == [0, 1, 2, 3]
        assert q.marginalize(metric, "seed", agg="count") == \
            [(s, 1.0) for s in (0, 1, 2, 3)]
        figure = q.figure(metric, "seed")
        assert [s.name for s in figure.series] == ["mean", "min", "max"]
        with pytest.raises(AnalysisError, match="unknown aggregation"):
            q.marginalize(metric, "seed", agg="median")
        with pytest.raises(AnalysisError, match="no numeric"):
            q.figure("no_such_metric", "seed")


class TestConcurrentWriters:
    N_PROCS = 4
    PER_PROC = 8

    _WORKER = """
import sys
from repro.experiments import RunConfig, run_config
from repro.store import ResultStore

root, worker = sys.argv[1], int(sys.argv[2])
store = ResultStore(root)
result = run_config(RunConfig.build("ext_montecarlo", "fast",
                                    {{"seed": 1000 + worker}}))
for k in range({per_proc}):
    seed = 1000 + worker * {per_proc} + k
    config = RunConfig.build("ext_montecarlo", "fast", {{"seed": seed}})
    store.put_config(result, config)
print(store.counts()["total"])
"""

    def test_hammering_one_store_loses_no_writes(self, tmp_path):
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        script = self._WORKER.format(per_proc=self.PER_PROC)
        procs = [subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path), str(i)],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE) for i in range(self.N_PROCS)]
        for proc in procs:
            _out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err.decode()
        store = ResultStore(tmp_path)
        expected = self.N_PROCS * self.PER_PROC
        assert store.counts()["total"] == expected
        # Every row is individually readable (no torn payloads).
        for seed in range(1000, 1000 + expected):
            config = RunConfig.build("ext_montecarlo", "fast",
                                     {"seed": seed})
            assert store.get_config(config) is not None

    def test_concurrent_shards_match_flat_ground_truth(self, tmp_path):
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        store_dir, flat_dir = tmp_path / "store", tmp_path / "flat"
        procs = [subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run",
             str(YIELD_SPEC), "--store", "--shard", f"{i}/2",
             "--cache-dir", str(store_dir)],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE) for i in (1, 2)]
        for proc in procs:
            _out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err.decode()
        serial = subprocess.run(
            [sys.executable, "-m", "repro", "campaign", "run",
             str(YIELD_SPEC), "--cache-dir", str(flat_dir)],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=300)
        assert serial.returncode == 0, serial.stderr
        spec = CampaignSpec.load(YIELD_SPEC)
        store_status = campaign_status(spec, ResultStore(store_dir),
                                       n_shards=2)
        flat_status = campaign_status(spec, ResultCache(flat_dir))
        assert store_status["missing"] == 0
        assert store_status["done"] == flat_status["done"]
        # The acceptance criterion: byte-identical aggregate reports.
        assert _aggregate_text(spec, ResultStore(store_dir)) == \
            _aggregate_text(spec, ResultCache(flat_dir))


class TestAlertRules:
    def test_from_dict_validation(self):
        rule = AlertRule.from_dict({"metric": "yield", "below": 0.9},
                                   "alerts[0]")
        assert rule.breached(0.5) == "below"
        assert rule.breached(0.95) is None
        assert rule.breached(None) is None
        both = AlertRule.from_dict(
            {"metric": "m", "below": 0.1, "above": 0.9}, "x")
        assert both.breached(0.95) == "above"
        for bad in ({"below": 1.0},                      # no metric
                    {"metric": "m"},                     # no threshold
                    {"metric": "m", "below": True},      # bool threshold
                    {"metric": "m", "below": 1, "nope": 2},
                    {"metric": "m", "below": 1, "webhook": 7}):
            with pytest.raises(AnalysisError):
                AlertRule.from_dict(bad, "alerts[0]")

    def test_spec_round_trips_and_key_ignores_alerts(self):
        plain = montecarlo_spec(2)
        alerting = montecarlo_spec(
            2, alerts=[{"metric": "yield", "below": 0.9,
                        "webhook": "http://example.invalid/hook"}])
        assert CampaignSpec.from_dict(alerting.describe()) == alerting
        assert "alerts" in alerting.describe()
        assert "alerts" not in plain.describe()
        # Observability config never invalidates shard manifests.
        assert alerting.key() == plain.key()

    def test_evaluate_and_engine_dedupe(self, tmp_path):
        spec = montecarlo_spec(
            2, alerts=[{"metric": "sigma_mV[row0]", "below": 1e6}])
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store).run()
        alerts = evaluate_alerts(spec, collect_results(spec, store))
        assert len(alerts) == 2
        assert all(a["direction"] == "below" for a in alerts)
        seen = []
        engine = AlertEngine(spec, store, hooks=[seen.append])
        first = engine.poll()
        assert len(first["fired"]) == 2 and len(seen) == 2
        second = engine.poll()
        assert len(second["alerts"]) == 2   # still breaching...
        assert second["fired"] == []        # ...but fired only once

    def test_webhook_delivery_and_failure_is_quiet(self, tmp_path,
                                                   capsys):
        received = []

        class Hook(BaseHTTPRequestHandler):
            def do_POST(self):
                size = int(self.headers["Content-Length"])
                received.append(json.loads(self.rfile.read(size)))
                self.send_response(204)
                self.end_headers()

            def log_message(self, fmt, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Hook)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        port = httpd.server_address[1]
        try:
            spec = montecarlo_spec(1, alerts=[
                {"metric": "sigma_mV[row0]", "below": 1e6,
                 "webhook": f"http://127.0.0.1:{port}/hook"},
                {"metric": "sigma_mV[row0]", "below": 1e6,
                 "webhook": "http://127.0.0.1:1/unreachable"},
            ])
            store = ResultStore(tmp_path)
            CampaignRunner(spec, store).run()
            engine = AlertEngine(spec, store, hooks=[])
            outcome = engine.poll()    # the dead webhook must not raise
            assert len(outcome["fired"]) == 2
            assert len(received) == 1
            assert received[0]["metric"] == "sigma_mV[row0]"
            assert "webhook" not in received[0]
            assert "hook failed" in capsys.readouterr().err
        finally:
            httpd.shutdown()
            httpd.server_close()


class TestWatchAndDashboard:
    def test_status_with_eta_and_watch_line(self, tmp_path):
        spec = montecarlo_spec(3)
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store, shard=(1, 2)).run()
        status = status_with_eta(spec, store)
        # The widest manifest partition drives the shard breakdown.
        assert len(status["shards"]) == 2
        eta = status["eta"]
        assert eta["fresh"] >= 1
        assert eta["mean_seconds_per_fresh"] > 0
        assert eta["eta_seconds"] is not None
        line = format_watch_line(status)
        assert "shard 1/2" in line and "eta ~" in line
        CampaignRunner(spec, store, shard=(2, 2)).run()
        done = status_with_eta(spec, store)
        assert done["missing"] == 0
        assert done["eta"]["eta_seconds"] == 0.0
        assert "complete" in format_watch_line(done)

    def test_eta_with_empty_manifests(self, tmp_path):
        # No shard has ever run: no manifests, no timings, no ETA —
        # the poll must still produce a complete, render-able document.
        spec = montecarlo_spec(3)
        store = ResultStore(tmp_path)
        status = status_with_eta(spec, store)
        assert status["missing"] == 3
        assert len(status["shards"]) == 1
        eta = status["eta"]
        assert eta["fresh"] == 0
        assert eta["mean_seconds_per_fresh"] is None
        assert eta["running_shards"] == 0
        assert eta["eta_seconds"] is None
        line = format_watch_line(status)
        assert "0/3 done (0.0%)" in line
        assert "eta" not in line and "complete" not in line

    def test_eta_with_zero_completed_shards(self, tmp_path):
        # Manifests exist (both shards started) but every config is
        # still pending: zero fresh completions must not divide by
        # zero, and the widest manifest partition still drives the
        # shard breakdown.
        from repro.campaigns.runner import _ShardManifest

        spec = montecarlo_spec(2)
        store = ResultStore(tmp_path)
        for index in (1, 2):
            _ShardManifest(spec, store.root, (index, 2),
                           total=2, in_shard=1)
        status = status_with_eta(spec, store)
        assert len(status["shards"]) == 2
        assert all(b["done"] == 0 for b in status["shards"])
        assert status["eta"]["fresh"] == 0
        assert status["eta"]["eta_seconds"] is None

    def test_watch_single_poll_incomplete(self, tmp_path, capsys):
        # --max-polls 1 on an incomplete campaign: exactly one status
        # line, the final document still reports the misses.
        spec = montecarlo_spec(3)
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store, shard=(1, 3)).run()
        final = watch(spec, store, interval=0.0, max_polls=1,
                      stream=sys.stdout)
        out = capsys.readouterr().out
        # Hash-based sharding ran some but not all of the 3 configs.
        assert 0 < final["missing"] < 3
        assert out.count("[watch") == 1

    def test_watch_polls_until_complete(self, tmp_path, capsys):
        spec = montecarlo_spec(
            2, alerts=[{"metric": "sigma_mV[row0]", "below": 1e6}])
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store).run()
        final = watch(spec, store, interval=0.0, max_polls=3,
                      stream=sys.stdout)
        out = capsys.readouterr().out
        assert final["missing"] == 0
        assert len(final["alerts"]) == 2
        assert out.count("[watch") == 1      # complete on the first poll
        assert out.count("ALERT sigma_mV[row0]") == 2

    def test_dashboard_serves_json_endpoints(self, tmp_path):
        spec = montecarlo_spec(
            2, alerts=[{"metric": "sigma_mV[row0]", "below": 1e6}])
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store).run()
        expected = results_document(spec, collect_results(spec, store))
        with CampaignDashboard(spec, store, hooks=[lambda a: None]) \
                as board:
            def fetch(endpoint):
                with urllib.request.urlopen(board.url + endpoint,
                                            timeout=30) as response:
                    return response.status, response.read()

            status, body = fetch("/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok",
                                        "campaign": spec.name}
            _, body = fetch("/status")
            doc = json.loads(body)
            assert (doc["done"], doc["missing"]) == (2, 0)
            assert doc["eta"]["eta_seconds"] == 0.0
            _, body = fetch("/alerts")
            doc = json.loads(body)
            assert len(doc["rules"]) == 1
            assert len(doc["alerts"]) == 2
            _, body = fetch("/results")
            assert json.loads(body) == expected
            _, body = fetch("/")
            assert b"campaign store-smoke" in body
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch("/nope")
            assert err.value.code == 404

    def test_dashboard_works_over_flat_cache_too(self, tmp_path):
        spec = montecarlo_spec(1)
        cache = ResultCache(tmp_path)
        CampaignRunner(spec, cache).run()
        with CampaignDashboard(spec, cache) as board:
            with urllib.request.urlopen(board.url + "/status",
                                        timeout=30) as response:
                assert json.loads(response.read())["done"] == 1


class TestStoreCli:
    def _main(self, argv):
        from repro.__main__ import main as cli_main
        return cli_main(argv)

    def test_store_flag_routes_campaign_through_sqlite(self, tmp_path,
                                                       capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(montecarlo_spec(2).describe()))
        root = tmp_path / "cache"
        assert self._main(["campaign", "run", str(spec_path),
                           "--cache-dir", str(root), "--store"]) == 0
        assert (root / "store.sqlite").exists()
        assert not list(root.glob("ext_montecarlo/*.json"))
        capsys.readouterr()
        assert self._main(["campaign", "status", str(spec_path),
                           "--cache-dir", str(root), "--store"]) == 0
        assert "2/2 configs done" in capsys.readouterr().out
        assert self._main(["campaign", "watch", str(spec_path),
                           "--cache-dir", str(root), "--store",
                           "--interval", "0", "--max-polls", "1",
                           "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["missing"] == 0

    def test_migrate_query_gc_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(montecarlo_spec(2).describe()))
        root = tmp_path / "cache"
        assert self._main(["campaign", "run", str(spec_path),
                           "--cache-dir", str(root)]) == 0
        capsys.readouterr()
        assert self._main(["store", "migrate",
                           "--cache-dir", str(root)]) == 0
        assert "2 migrated" in capsys.readouterr().out
        assert self._main(["store", "query", "ext_montecarlo",
                           "--cache-dir", str(root),
                           "--where", "seed", "<", "1", "--json"]) == 0
        tidy = json.loads(capsys.readouterr().out)
        assert tidy["count"] == 1
        assert tidy["rows"][0]["params"]["seed"] == 0
        assert self._main(["store", "query", "ext_montecarlo",
                           "--cache-dir", str(root),
                           "--figure", "sigma_mV[row0]", "seed"]) == 0
        assert "seed" in capsys.readouterr().out
        assert self._main(["store", "gc", "--cache-dir", str(root),
                           "--dry-run"]) == 0
        assert "would delete 0" in capsys.readouterr().out
