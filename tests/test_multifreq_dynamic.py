"""Multi-frequency adder inputs, modulated sources, dynamic supply."""

import numpy as np
import pytest

from repro.circuit import (
    AnalysisError,
    Circuit,
    ModulatedVoltage,
    PwmVoltage,
    Resistor,
    transient,
)
from repro.core import AdderConfig, WeightedAdder
from repro.core.weighted_adder import common_period
from repro.experiments import run_experiment


class TestCommonPeriod:
    def test_equal_frequencies(self):
        assert common_period([500e6, 500e6]) == pytest.approx(2e-9)

    def test_harmonic_set(self):
        assert common_period([250e6, 500e6, 1000e6]) == pytest.approx(4e-9)

    def test_non_harmonic_but_rational(self):
        # 125 MHz (8 ns) and 625 MHz (1.6 ns): common period 8 ns.
        assert common_period([125e6, 625e6]) == pytest.approx(8e-9)

    def test_irregular_ratio_rejected(self):
        # 333.334 MHz vs 500 MHz: the common period on the femtosecond
        # grid is ~1500x the fastest period — rejected by the guard.
        with pytest.raises(AnalysisError):
            common_period([500e6, 333.334e6])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            common_period([])

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            common_period([-1.0])


class TestMultiFrequencyAdder:
    def test_frequencies_length_checked(self):
        adder = WeightedAdder(AdderConfig())
        with pytest.raises(AnalysisError):
            adder.build_circuit([0.5] * 3, [7] * 3,
                                frequencies=[1e6, 2e6])

    def test_rc_engine_rejects_mixed_frequencies(self):
        adder = WeightedAdder(AdderConfig())
        with pytest.raises(AnalysisError):
            adder.evaluate([0.5] * 3, [7] * 3, engine="rc",
                           frequencies=[250e6, 500e6, 1000e6])

    def test_behavioral_ignores_frequencies(self):
        adder = WeightedAdder(AdderConfig())
        r = adder.evaluate([0.5] * 3, [7] * 3, engine="behavioral",
                           frequencies=[250e6, 500e6, 1000e6])
        assert r.value == pytest.approx(r.theoretical)

    def test_spice_mixed_frequencies_track_eq2(self):
        adder = WeightedAdder(AdderConfig())
        r = adder.evaluate([0.7, 0.8, 0.9], [7, 7, 7], engine="spice",
                           frequencies=[125e6, 250e6, 500e6],
                           steps_per_period=240)
        assert r.value == pytest.approx(r.theoretical, abs=0.08)

    def test_per_input_sources_created(self):
        adder = WeightedAdder(AdderConfig())
        c = adder.build_circuit([0.5] * 3, [7] * 3,
                                frequencies=[125e6, 250e6, 500e6])
        assert c.element("VIN0").frequency == pytest.approx(125e6)
        assert c.element("VIN2").frequency == pytest.approx(500e6)


class TestModulatedVoltage:
    def test_product_of_base_and_envelope(self):
        base = PwmVoltage("U", "x", "y", v_high=1.0, frequency=1e6,
                          duty=0.5, rise_fraction=0.001)
        c = Circuit()
        c.add(ModulatedVoltage("VM", "a", "0", base=base,
                               envelope=lambda t: 2.0 + 1e6 * t))
        c.add(Resistor("R1", "a", "0", "1k"))
        res = transient(c, tstop=4e-6, dt=2e-8)
        wave = res.node("a")
        # High level at t~0.2us is ~2.2, at t~3.2us is ~5.2.
        assert wave.value_at(0.25e-6) == pytest.approx(2.25, abs=0.1)
        assert wave.value_at(3.25e-6) == pytest.approx(5.25, abs=0.1)
        # Low phases stay at zero regardless of the envelope.
        assert wave.value_at(0.75e-6) == pytest.approx(0.0, abs=1e-6)

    def test_breakpoints_include_base_edges(self):
        base = PwmVoltage("U", "x", "y", v_high=1.0, frequency=1e6,
                          duty=0.5)
        src = ModulatedVoltage("VM", "a", "0", base=base,
                               envelope=lambda t: 1.0,
                               envelope_breakpoints=[3.3e-6])
        points = src.breakpoints(0.0, 4e-6)
        assert 3.3e-6 in points
        assert any(abs(p - 1e-6) < 1e-12 for p in points)


class TestDynamicSupplyExperiment:
    def test_ratio_flat_through_droop(self):
        res = run_experiment("ext_dynamic_supply", fidelity="fast")
        assert res.metrics["rail_droop_ratio"] > 1.6
        assert res.metrics["ratio_spread"] < 0.05

    def test_multifreq_experiment_spread(self):
        res = run_experiment("ext_multifreq", fidelity="fast")
        assert res.metrics["spread_upto_500MHz_mV"] < 30.0

    def test_full_system_fast(self):
        res = run_experiment("ext_full_system", fidelity="fast")
        assert res.metrics["mismatches"] == 0
