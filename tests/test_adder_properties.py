"""Property-based invariants of the adder and perceptron architecture.

These encode the *structure* of Eq. 2 and the differential design —
permutation symmetry, monotonicity, ratiometric scaling, negation
duality — across engines, using hypothesis to search the operand space.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    AdderConfig,
    DifferentialPwmPerceptron,
    WeightedAdder,
    eq2_output,
    max_weight,
)

duty_st = st.floats(min_value=0.0, max_value=1.0)
weight_st = st.integers(min_value=0, max_value=7)
operands_st = st.tuples(
    st.tuples(duty_st, duty_st, duty_st),
    st.tuples(weight_st, weight_st, weight_st))


@pytest.fixture(scope="module")
def adder():
    return WeightedAdder(AdderConfig())


class TestEq2Structure:
    @settings(max_examples=60)
    @given(operands_st)
    def test_permutation_invariance(self, operands):
        duties, weights = operands
        base = eq2_output(duties, weights, n_bits=3, vdd=2.5)
        perm = [2, 0, 1]
        shuffled = eq2_output([duties[i] for i in perm],
                              [weights[i] for i in perm],
                              n_bits=3, vdd=2.5)
        assert shuffled == pytest.approx(base, rel=1e-12)

    @settings(max_examples=60)
    @given(operands_st, st.integers(min_value=0, max_value=2),
           st.floats(min_value=0.01, max_value=0.3))
    def test_monotone_in_each_duty(self, operands, index, delta):
        duties, weights = operands
        assume(duties[index] + delta <= 1.0)
        lo = eq2_output(duties, weights, n_bits=3, vdd=2.5)
        bumped = list(duties)
        bumped[index] += delta
        hi = eq2_output(bumped, weights, n_bits=3, vdd=2.5)
        assert hi >= lo - 1e-12
        # Strictly increasing iff the weight is non-zero.
        if weights[index] > 0:
            assert hi > lo

    @settings(max_examples=60)
    @given(operands_st)
    def test_superposition(self, operands):
        """Eq. 2 is linear in the duty vector: the output of a sum of
        contributions equals the sum of single-input outputs."""
        duties, weights = operands
        total = eq2_output(duties, weights, n_bits=3, vdd=2.5)
        parts = sum(
            eq2_output([d if i == j else 0.0 for j, d in enumerate(duties)],
                       weights, n_bits=3, vdd=2.5)
            for i in range(3))
        assert parts == pytest.approx(total, rel=1e-9, abs=1e-12)

    @settings(max_examples=40)
    @given(operands_st, st.floats(min_value=0.5, max_value=5.0))
    def test_ratiometric_scaling(self, operands, vdd):
        duties, weights = operands
        ratio_a = eq2_output(duties, weights, n_bits=3, vdd=vdd) / vdd
        ratio_b = eq2_output(duties, weights, n_bits=3, vdd=2.5) / 2.5
        assert ratio_a == pytest.approx(ratio_b, rel=1e-12, abs=1e-15)


class TestRcEngineStructure:
    @settings(max_examples=25, deadline=None)
    @given(operands_st)
    def test_rc_permutation_invariance(self, operands):
        adder = WeightedAdder(AdderConfig())
        duties, weights = operands
        base = adder.evaluate(duties, weights, engine="rc").value
        perm = [1, 2, 0]
        shuffled = adder.evaluate([duties[i] for i in perm],
                                  [weights[i] for i in perm],
                                  engine="rc").value
        assert shuffled == pytest.approx(base, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(operands_st)
    def test_rc_power_non_negative_and_bounded(self, operands):
        adder = WeightedAdder(AdderConfig())
        duties, weights = operands
        result = adder.evaluate(duties, weights, engine="rc")
        assert result.power >= -1e-15
        # Upper bound: every cell shorted across the supply.
        g_max = sum(1.0 / leg.r_up
                    for leg in adder.rc_legs(duties, weights))
        assert result.power <= 2.5**2 * g_max

    @settings(max_examples=20, deadline=None)
    @given(st.tuples(duty_st, duty_st, duty_st))
    def test_zero_weights_give_zero_output(self, duties):
        adder = WeightedAdder(AdderConfig())
        result = adder.evaluate(list(duties), [0, 0, 0], engine="rc")
        assert result.value == pytest.approx(0.0, abs=1e-9)


class TestDifferentialDuality:
    @settings(max_examples=30, deadline=None)
    @given(st.tuples(duty_st, duty_st),
           st.tuples(st.integers(-7, 7), st.integers(-7, 7)),
           st.integers(-7, 7))
    def test_negation_flips_decision(self, duties, weights, bias):
        """Negating all weights and the bias flips every (off-boundary)
        decision — the architecture has no polarity preference."""
        p = DifferentialPwmPerceptron(list(weights), bias=bias)
        n = DifferentialPwmPerceptron([-w for w in weights], bias=-bias)
        ideal = p.ideal_sum(list(duties))
        assume(abs(ideal) > 0.05)  # stay off the decision boundary
        assert p.predict(list(duties)) != n.predict(list(duties))

    @settings(max_examples=30, deadline=None)
    @given(st.tuples(duty_st, duty_st),
           st.tuples(st.integers(-7, 7), st.integers(-7, 7)),
           st.integers(-7, 7),
           st.sampled_from([1.0, 1.8, 3.3]))
    def test_supply_invariance_property(self, duties, weights, bias, vdd):
        p = DifferentialPwmPerceptron(list(weights), bias=bias)
        ideal = p.ideal_sum(list(duties))
        assume(abs(ideal) > 0.05)
        assert p.predict(list(duties), vdd=vdd) == p.predict(list(duties))

    @settings(max_examples=30, deadline=None)
    @given(st.tuples(duty_st, duty_st),
           st.tuples(st.integers(-7, 7), st.integers(-7, 7)),
           st.integers(-7, 7))
    def test_behavioral_decision_matches_sign_rule(self, duties, weights,
                                                   bias):
        p = DifferentialPwmPerceptron(list(weights), bias=bias)
        ideal = p.ideal_sum(list(duties))
        assume(abs(ideal) > 0.05)
        assert p.predict(list(duties)) == int(ideal > 0)


class TestConfigArithmetic:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=8))
    def test_transistor_count_formula(self, k, n):
        assert AdderConfig(n_inputs=k, n_bits=n).transistor_count == 6 * k * n

    @given(st.integers(min_value=1, max_value=16))
    def test_max_weight_formula(self, n):
        assert max_weight(n) == 2**n - 1
