"""Equivalence and cache tests for the execution engine.

The contract under test: serial, process-parallel and vectorised
execution of the same campaign produce the same records —
bit-identical between serial and parallel (same scalar ops, different
processes), tolerance-identical for the vectorised path (same RNG
draws, numpy-reassociated float reductions) — and cache hits replay
results byte-identically.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import adder_monte_carlo, make_blobs, perceptron_yield
from repro.circuit import AnalysisError, run_sweep
from repro.core import AdderConfig, WeightedAdder
from repro.core.rc_model import RcBatchSolver, RcSwitchSolver, RcLeg
from repro.core.training import PerceptronTrainer
from repro.exec import (
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    derive_seed,
    get_executor,
    params_hash,
    use_executor,
)
from repro.exec.batch import (
    batch_adder_values,
    leg_resistance_arrays,
    sample_adder_mismatch,
)
from repro.experiments import run_experiment
from repro.tech.corners import MonteCarloSampler


def _double(x):
    """Top-level, hence picklable for the process pool."""
    return {"y": 2 * x}


class TestExecutors:
    def test_get_executor_mapping(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)
        assert get_executor(3).jobs == 3
        assert get_executor(-1).jobs >= 1

    def test_serial_and_process_map_agree(self):
        items = list(range(20))
        serial = SerialExecutor().map(_double, items)
        parallel = ProcessExecutor(2).map(_double, items)
        assert serial == parallel

    def test_process_pool_falls_back_on_closures(self):
        captured = 3
        result = ProcessExecutor(2).map(lambda v: v + captured, [1, 2])
        assert result == [4, 5]

    def test_use_executor_restores_default(self):
        from repro.exec import get_default_executor
        before = get_default_executor()
        with use_executor(ProcessExecutor(2)):
            assert get_default_executor().jobs == 2
        assert get_default_executor() is before

    def test_derive_seed_stable_and_decorrelated(self):
        assert derive_seed(None, 5) is None
        assert derive_seed(7, 3) == derive_seed(7, 3)
        seeds = {derive_seed(7, i) for i in range(100)}
        assert len(seeds) == 100


class TestSweepExecution:
    def test_serial_vs_parallel_records_identical(self):
        grid = {"x": list(range(8))}
        serial = run_sweep(_double, {"x": grid["x"]},
                           executor=SerialExecutor())
        parallel = run_sweep(_double, {"x": grid["x"]},
                             executor=ProcessExecutor(2))
        assert serial.records == parallel.records

    def test_per_point_seeds_are_injected_and_stable(self):
        def probe(x, seed):
            return {"seed_seen": seed}

        a = run_sweep(probe, {"x": [1, 2, 3]}, seed=11)
        b = run_sweep(probe, {"x": [1, 2, 3]}, seed=11,
                      executor=ProcessExecutor(2))
        assert a.column("seed_seen") == b.column("seed_seen")
        assert len(set(a.column("seed_seen"))) == 3


class TestMonteCarloEquivalence:
    DUTIES = [0.5, 0.7, 0.9]
    WEIGHTS = [7, 5, 3]

    def test_serial_vs_parallel_identical(self):
        adder = WeightedAdder(AdderConfig())
        serial = adder_monte_carlo(adder, self.DUTIES, self.WEIGHTS,
                                   n_trials=40, seed=3, method="loop")
        parallel = adder_monte_carlo(adder, self.DUTIES, self.WEIGHTS,
                                     n_trials=40, seed=3, method="loop",
                                     executor=ProcessExecutor(2))
        assert serial.errors == parallel.errors

    def test_loop_vs_vectorized_same_draws(self):
        adder = WeightedAdder(AdderConfig())
        loop = adder_monte_carlo(adder, self.DUTIES, self.WEIGHTS,
                                 n_trials=40, seed=3, method="loop")
        vec = adder_monte_carlo(adder, self.DUTIES, self.WEIGHTS,
                                n_trials=40, seed=3, method="vectorized")
        np.testing.assert_allclose(vec.errors, loop.errors,
                                   rtol=1e-9, atol=1e-15)

    def test_auto_is_vectorized(self):
        adder = WeightedAdder(AdderConfig())
        auto = adder_monte_carlo(adder, self.DUTIES, self.WEIGHTS,
                                 n_trials=10, seed=5)
        vec = adder_monte_carlo(adder, self.DUTIES, self.WEIGHTS,
                                n_trials=10, seed=5, method="vectorized")
        assert auto.errors == vec.errors

    def test_unknown_method_rejected(self):
        adder = WeightedAdder(AdderConfig())
        with pytest.raises(AnalysisError):
            adder_monte_carlo(adder, self.DUTIES, self.WEIGHTS,
                              n_trials=2, method="gpu")


class TestYieldEquivalence:
    @pytest.fixture(scope="class")
    def setup(self):
        data = make_blobs(n_per_class=8, n_features=2, separation=0.35,
                          spread=0.09, seed=13)
        trained = PerceptronTrainer(2, seed=13).fit(data.X, data.y,
                                                    epochs=40)
        return trained.perceptron, data

    @staticmethod
    def _sampler(seed):
        rng = np.random.default_rng(seed)
        return lambda: float(rng.uniform(1.2, 3.5))

    def test_loop_vs_vectorized_identical_records(self, setup):
        pwm, data = setup
        loop = perceptron_yield(pwm, data, n_parts=8, seed=13,
                                vdd_sampler=self._sampler(13),
                                method="loop")
        vec = perceptron_yield(pwm, data, n_parts=8, seed=13,
                               vdd_sampler=self._sampler(13),
                               method="vectorized")
        assert loop.accuracies == vec.accuracies
        assert loop.yield_fraction == vec.yield_fraction

    def test_serial_vs_parallel_identical(self, setup):
        pwm, data = setup
        serial = perceptron_yield(pwm, data, n_parts=6, seed=1,
                                  method="loop")
        parallel = perceptron_yield(pwm, data, n_parts=6, seed=1,
                                    method="loop",
                                    executor=ProcessExecutor(2))
        assert serial.accuracies == parallel.accuracies


class TestBatchSolver:
    def test_batch_matches_scalar_solver(self):
        legs = [RcLeg(r_up=1e3 * (i + 1), r_down=2e3 * (i + 1),
                      duty=d, phase=p, v_up=2.5)
                for i, (d, p) in enumerate([(0.3, 0.0), (0.6, 0.25),
                                            (1.0, 0.0), (0.0, 0.0)])]
        scalar = RcSwitchSolver(legs, cout=10e-12, period=2e-9,
                                vdd=2.5).solve()
        batch = RcBatchSolver(
            duty=[l.duty for l in legs], phase=[l.phase for l in legs],
            r_up=[[l.r_up for l in legs]], r_down=[[l.r_down for l in legs]],
            v_up=2.5, cout=10e-12, period=2e-9).solve()
        np.testing.assert_allclose(batch.average_voltage(),
                                   [scalar.average_voltage()], rtol=1e-12)
        np.testing.assert_allclose(batch.ripple(), [scalar.ripple()],
                                   rtol=1e-9)
        np.testing.assert_allclose(batch.supply_power(),
                                   [scalar.supply_power()], rtol=1e-12)

    def test_batch_adder_matches_evaluate(self):
        cfg = AdderConfig()
        adder = WeightedAdder(cfg)
        duties, weights = [0.4, 0.8, 0.1], [7, 2, 5]
        scalar = adder.evaluate(duties, weights, engine="rc")
        r_up, r_down = leg_resistance_arrays(cfg, None, cfg.vdd, batch=3)
        values = batch_adder_values(cfg, duties, weights, r_up, r_down,
                                    cfg.vdd)
        np.testing.assert_allclose(values.value,
                                   [scalar.value] * 3, rtol=1e-12)
        np.testing.assert_allclose(values.power,
                                   [scalar.power] * 3, rtol=1e-12)

    def test_sample_batch_matches_sequential_draws(self):
        cfg = AdderConfig()
        batch_sampler = MonteCarloSampler(seed=9)
        seq_sampler = MonteCarloSampler(seed=9)
        mismatch, = sample_adder_mismatch(batch_sampler, cfg, n_trials=2)
        for trial in range(2):
            for i in range(cfg.n_inputs):
                for b in range(cfg.n_bits):
                    design = cfg.cell.scaled(float(1 << b))
                    flat = i * cfg.n_bits + b
                    nm = seq_sampler.sample(design.wn, design.length)
                    pm = seq_sampler.sample(design.wp, design.length)
                    assert mismatch.delta_vt_n[trial, flat] == nm.delta_vt
                    assert mismatch.kp_scale_n[trial, flat] == nm.kp_scale
                    assert mismatch.delta_vt_p[trial, flat] == pm.delta_vt
                    assert mismatch.kp_scale_p[trial, flat] == pm.kp_scale


class TestResultCache:
    def test_miss_then_hit_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("table1", "fast", {}) is None
        result = run_experiment("table1", fidelity="fast")
        cache.put(result, {})
        hit = cache.get("table1", "fast", {})
        assert hit is not None
        assert hit.render(charts=True) == result.render(charts=True)
        # Byte-identical on the second hit too (stable deserialisation).
        assert (cache.get("table1", "fast", {}).render()
                == result.render())

    def test_run_experiment_uses_cache(self, tmp_path):
        from repro.experiments import RunConfig

        cache = ResultCache(tmp_path)
        first = run_experiment("ext_transistor_count", fidelity="fast",
                               cache=cache)
        # Entries are written under the canonical RunConfig key (the
        # legacy kwargs-hash path remains read-compatible).
        entry = cache.path_for_config(
            RunConfig.build("ext_transistor_count", "fast"))
        assert entry.exists()
        # Corrupt-proof: a second run returns the cached copy.
        second = run_experiment("ext_transistor_count", fidelity="fast",
                                cache=cache)
        assert second.render() == first.render()

    def test_params_change_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.path_for("x", "fast", {"seed": 1})
        b = cache.path_for("x", "fast", {"seed": 2})
        c = cache.path_for("x", "paper", {"seed": 1})
        assert len({a, b, c}) == 3
        assert params_hash({"b": 1, "a": 2}) == params_hash({"a": 2, "b": 1})

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment("table1", fidelity="fast")
        path = cache.put(result, {})
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        assert cache.get("table1", "fast", {}) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(run_experiment("table1", fidelity="fast"), {})
        assert cache.clear() == 1
        assert cache.get("table1", "fast", {}) is None

    def test_legacy_entry_promoted_to_canonical_key(self, tmp_path):
        from repro.experiments import RunConfig

        cache = ResultCache(tmp_path)
        result = run_experiment("ext_transistor_count", fidelity="fast")
        legacy_path = cache.put(result, {})  # kwargs-hash generation
        config = RunConfig.build("ext_transistor_count", "fast")
        canonical = cache.path_for_config(config)
        assert canonical != legacy_path
        assert not canonical.exists()
        # Canonical probe alone misses; with the legacy kwargs it hits
        # and re-writes the entry under the canonical key.
        assert cache.get_config(config) is None
        hit = cache.get_config(config, legacy_params={})
        assert hit is not None
        assert hit.render() == result.render()
        assert canonical.exists()
        # The promoted entry now serves without the legacy fallback,
        # byte-identically; the old file is left untouched.
        rehit = cache.get_config(config)
        assert rehit is not None
        assert rehit.render() == result.render()
        assert legacy_path.exists()

    def test_legacy_miss_without_params_stays_a_miss(self, tmp_path):
        from repro.experiments import RunConfig

        cache = ResultCache(tmp_path)
        result = run_experiment("ext_transistor_count", fidelity="fast")
        cache.put(result, {"phantom": 1})  # different legacy kwargs
        config = RunConfig.build("ext_transistor_count", "fast")
        assert cache.get_config(config, legacy_params={}) is None
        assert not cache.path_for_config(config).exists()


class TestCliFlags:
    def test_no_cache_and_jobs_flags_accepted(self, capsys, tmp_path):
        from repro.__main__ import main as cli_main
        assert cli_main(["run", "table1", "--no-cache", "--jobs", "1"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_cache_dir_flag_populates_cache(self, capsys, tmp_path):
        from repro.__main__ import main as cli_main
        cache_dir = tmp_path / "cache"
        assert cli_main(["run", "table1", "--cache-dir",
                         str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert list(cache_dir.glob("table1/fast-*.json"))
        assert cli_main(["run", "table1", "--cache-dir",
                         str(cache_dir)]) == 0
        assert capsys.readouterr().out == first
