"""Comparators and the two perceptron architectures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import AnalysisError
from repro.core import (
    AbsoluteComparator,
    AdderConfig,
    DifferentialComparator,
    DifferentialPwmPerceptron,
    PwmPerceptron,
    RatiometricComparator,
)


class TestComparators:
    def test_ratiometric_tracks_supply(self):
        comp = RatiometricComparator(threshold_ratio=0.5)
        assert comp.compare(1.5, 2.5)        # 1.5 > 1.25
        assert not comp.compare(1.5, 4.0)    # 1.5 < 2.0

    def test_ratiometric_validation(self):
        with pytest.raises(AnalysisError):
            RatiometricComparator(threshold_ratio=1.5)
        comp = RatiometricComparator(threshold_ratio=0.5)
        with pytest.raises(AnalysisError):
            comp.compare(1.0, 0.0)

    def test_absolute_ignores_supply(self):
        comp = AbsoluteComparator(reference=1.0)
        assert comp.compare(1.5, 2.5)
        assert comp.compare(1.5, 5.0)

    def test_absolute_fails_when_reference_above_rail(self):
        comp = AbsoluteComparator(reference=1.5)
        assert not comp.compare(1.4, 1.2)   # stuck low

    def test_differential(self):
        comp = DifferentialComparator()
        assert comp.compare(1.0, 0.5)
        assert not comp.compare(0.5, 1.0)

    def test_hysteresis_widens_toggle_points(self):
        comp = DifferentialComparator(hysteresis=0.2)
        assert not comp.compare(0.05, 0.0)   # below +0.1 band from low
        comp2 = DifferentialComparator(hysteresis=0.2)
        assert comp2.compare(0.15, 0.0)
        assert comp2.compare(-0.05, 0.0)     # stays high until -0.1


class TestPwmPerceptron:
    def test_fires_above_theta(self):
        # sum(DC*W): [1,1]x[7,7] at DC=0.9 -> 12.6 > theta=7
        p = PwmPerceptron([7, 7], theta=7.0)
        assert p.predict([0.9, 0.9]) == 1
        assert p.predict([0.1, 0.1]) == 0

    def test_decision_margin_sign(self):
        p = PwmPerceptron([7, 7], theta=7.0)
        d_hi = p.decide([0.9, 0.9])
        d_lo = p.decide([0.1, 0.1])
        assert d_hi.margin > 0 > d_lo.margin

    def test_bias_channel(self):
        # With a large bias, even zero inputs fire for small theta.
        p = PwmPerceptron([1, 1], theta=1.0, bias=7)
        assert p.predict([0.0, 0.0]) == 1

    def test_ratiometric_invariance_across_vdd(self):
        p = PwmPerceptron([7, 3], theta=4.0)
        x = [0.6, 0.4]
        base = p.predict(x)
        for vdd in (1.0, 2.0, 4.0):
            assert p.predict(x, vdd=vdd) == base

    def test_weight_validation(self):
        with pytest.raises(AnalysisError):
            PwmPerceptron([8, 0], theta=1.0)
        with pytest.raises(AnalysisError):
            PwmPerceptron([], theta=1.0)

    def test_input_length_enforced(self):
        p = PwmPerceptron([7, 7], theta=7.0)
        with pytest.raises(AnalysisError):
            p.predict([0.5])

    def test_ideal_sum(self):
        p = PwmPerceptron([2, 4], theta=1.0, bias=3)
        assert p.ideal_sum([0.5, 0.5]) == pytest.approx(0.5 * 2 + 0.5 * 4 + 3)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=2,
                    max_size=2))
    def test_behavioral_decision_equals_ideal_rule(self, duties):
        p = PwmPerceptron([5, 3], theta=3.0)
        expected = int(p.ideal_sum(duties) > 3.0)
        # Behavioral engine is exact Eq.2, so decisions must agree except
        # exactly on the boundary.
        if abs(p.ideal_sum(duties) - 3.0) > 1e-6:
            assert p.predict(duties) == expected


class TestDifferentialPerceptron:
    def test_signed_weights(self):
        p = DifferentialPwmPerceptron([7, -7], bias=0)
        assert p.predict([0.9, 0.1]) == 1
        assert p.predict([0.1, 0.9]) == 0

    def test_bias_shifts_boundary(self):
        p_neg = DifferentialPwmPerceptron([7, 7], bias=-7)
        p_pos = DifferentialPwmPerceptron([7, 7], bias=7)
        x = [0.2, 0.2]
        assert p_pos.predict(x) == 1
        assert p_neg.predict(x) == 0

    def test_supply_invariance(self):
        p = DifferentialPwmPerceptron([5, -3], bias=1)
        for x in ([0.3, 0.9], [0.8, 0.2], [0.5, 0.5]):
            base = p.predict(x)
            for vdd in (1.0, 3.0, 5.0):
                assert p.predict(x, vdd=vdd) == base

    def test_rc_engine_agrees_with_behavioral_off_boundary(self):
        p = DifferentialPwmPerceptron([6, -4], bias=1)
        for x in ([0.9, 0.1], [0.1, 0.9], [0.2, 0.3]):
            if abs(p.ideal_sum(x)) > 0.5:
                assert p.predict(x, engine="rc") == p.predict(x)

    def test_set_weights_validates_length(self):
        p = DifferentialPwmPerceptron([1, 2])
        with pytest.raises(AnalysisError):
            p.set_weights([1, 2, 3], 0)

    def test_transistor_count(self):
        p = DifferentialPwmPerceptron([1, 2], bias=0)
        # Two banks x (2 features + bias) channels x 3 bits x 6 T.
        assert p.transistor_count == 2 * 3 * 3 * 6

    def test_ideal_sum_signed(self):
        p = DifferentialPwmPerceptron([3, -2], bias=-1)
        assert p.ideal_sum([1.0, 1.0]) == pytest.approx(0.0)
