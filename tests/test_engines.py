"""Engine registry, batched MNA solver, and cross-layer engine routing."""

import numpy as np
import pytest

from repro.circuit import (
    AnalysisError,
    BatchTransientSolver,
    Capacitor,
    Circuit,
    ConvergenceError,
    Inductor,
    PwmVoltage,
    Resistor,
    Vdc,
    shooting,
    shooting_batch,
    transient,
)
from repro.core.cells import CellDesign, build_transcoding_inverter_bench
from repro.engines import (
    CellStimulus,
    EngineCapabilities,
    consistency_report,
    describe,
    engine_ids,
    get_engine,
    require_capability,
)
from repro.exec.batch import resolve_monte_carlo_method

PERIOD = 1.0 / 500e6
FAST_VDD = (1.0, 2.5, 4.0)


def cell_bench(vdd: float, duty: float = 0.5) -> Circuit:
    return build_transcoding_inverter_bench(
        duty, vdd=vdd, frequency=500e6, cout=1e-12, rout=100e3,
        input_amplitude=vdd)


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_three_engines_registered(self):
        assert engine_ids() == ["behavioral", "rc", "spice"]

    def test_get_engine_is_singleton(self):
        assert get_engine("rc") is get_engine("rc")

    def test_partial_submodule_import_still_fills_registry(self):
        # Regression: importing one engine module directly must not
        # leave the registry permanently partial for this process.
        import os
        import subprocess
        import sys

        code = ("import repro.engines.rc\n"
                "from repro.engines import engine_ids\n"
                "print(engine_ids())\n")
        env = {**os.environ,
               "PYTHONPATH": "src" + os.pathsep
               + os.environ.get("PYTHONPATH", "")}
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True,
            text=True, env=env, check=True).stdout
        assert "behavioral" in out and "spice" in out

    def test_unknown_engine_message_is_the_single_validation_point(self):
        # The regression pinned by the SWEEP_ENGINES dedup: every
        # surface fails through get_engine with the registry's help.
        with pytest.raises(AnalysisError, match=r"unknown engine 'warp'; "
                           r"registered engines: behavioral, rc, spice"):
            get_engine("warp")

    def test_direct_experiment_call_fails_via_registry(self):
        from repro.experiments.fig6_fig7_supply import run_fig6

        with pytest.raises(AnalysisError,
                           match="registered engines: behavioral, rc"):
            run_fig6(engine="warp")

    def test_param_choices_come_from_registry(self):
        from repro.experiments import get_spec

        for eid in ("fig6", "fig7", "ext_robustness",
                    "ext_dynamic_supply"):
            choices = get_spec(eid).param("engine").choices
            assert choices == tuple(engine_ids())

    def test_describe_document(self):
        doc = describe()
        assert doc["count"] == 3
        by_id = {e["id"]: e for e in doc["engines"]}
        assert by_id["spice"]["capabilities"]["level"] == "transistor"
        assert by_id["behavioral"]["capabilities"]["cost_rank"] == 1
        assert describe("rc")["id"] == "rc"

    def test_require_capability(self):
        assert require_capability("rc", "serving_margins") \
            is get_engine("rc")
        # spice gained serving_margins with the transistor-level
        # /predict path; live supply ramps remain spice-only.
        assert require_capability("spice", "serving_margins") \
            is get_engine("spice")
        with pytest.raises(
                AnalysisError,
                match="engine 'behavioral' does not support "
                      "dynamic_supply"):
            require_capability("behavioral", "dynamic_supply")

    def test_require_capability_names_experiment(self):
        with pytest.raises(
                AnalysisError,
                match="experiment 'ext_foo': engine 'rc' does not "
                      "support dynamic_supply for live ramps"):
            require_capability("rc", "dynamic_supply",
                               context="live ramps",
                               experiment_id="ext_foo")

    def test_capabilities_are_frozen(self):
        caps = get_engine("rc").capabilities()
        assert isinstance(caps, EngineCapabilities)
        with pytest.raises(Exception):
            caps.cost_rank = 99


class TestStimulusValidation:
    def test_duty_bounds(self):
        with pytest.raises(AnalysisError):
            CellStimulus(duty=1.2)

    def test_positive_quantities(self):
        with pytest.raises(AnalysisError):
            CellStimulus(duty=0.5, vdd=-1.0)
        with pytest.raises(AnalysisError):
            CellStimulus(duty=0.5, rout=0.0)

    def test_empty_sweep_rejected(self):
        eng = get_engine("behavioral")
        with pytest.raises(AnalysisError):
            eng.sweep_supply(CellDesign(), CellStimulus(duty=0.5), [])

    def test_trials_rejected(self):
        eng = get_engine("behavioral")
        with pytest.raises(AnalysisError):
            eng.monte_carlo(CellDesign(), CellStimulus(duty=0.5), 0)


# -- engine equivalence -----------------------------------------------------


class TestEngineEquivalence:
    def test_behavioral_is_ideal_transcoding(self):
        eng = get_engine("behavioral")
        stim = CellStimulus(duty=0.3)
        assert eng.evaluate(CellDesign(), stim) == pytest.approx(
            2.5 * 0.7)
        sweep = eng.sweep_supply(CellDesign(), stim, FAST_VDD)
        assert np.allclose(sweep, np.asarray(FAST_VDD) * 0.7)

    def test_rc_engine_matches_legacy_supply_sweep(self):
        from repro.experiments.fig6_fig7_supply import (
            DUTIES,
            supply_sweep_rc_batch,
        )

        legacy = supply_sweep_rc_batch(DUTIES, FAST_VDD)
        rc = get_engine("rc")
        for duty in DUTIES:
            new = rc.sweep_supply(
                CellDesign(),
                CellStimulus(duty=duty, rout=100e3), FAST_VDD)
            assert np.array_equal(
                np.array([p[1] for p in legacy[duty]]), new)

    def test_spice_batched_sweep_equals_scalar_loop(self):
        spice = get_engine("spice")
        stim = CellStimulus(duty=0.5, rout=100e3)
        batched = spice.sweep_supply(CellDesign(), stim, FAST_VDD,
                                     steps_per_period=60)
        scalar = spice.sweep_supply(CellDesign(), stim, FAST_VDD,
                                    steps_per_period=60, batched=False)
        assert np.array_equal(batched, scalar)

    def test_jobs_executor_selects_per_point_loop(self):
        # Regression: with a multi-worker session executor installed
        # (the CLI's --jobs N), the spice sweep auto-selects the
        # executor-parallel per-point loop — same values either way.
        from repro.exec.executor import ProcessExecutor, use_executor

        spice = get_engine("spice")
        stim = CellStimulus(duty=0.5, rout=100e3)
        batched = spice.sweep_supply(CellDesign(), stim, FAST_VDD,
                                     steps_per_period=60)
        with use_executor(ProcessExecutor(2)):
            pooled = spice.sweep_supply(CellDesign(), stim, FAST_VDD,
                                        steps_per_period=60)
        assert np.array_equal(batched, pooled)

    def test_engines_agree_on_shared_points(self):
        report = consistency_report(duties=(0.5,), vdd_values=(2.5,),
                                    steps_per_period=60)
        # The ladder: rc within ~15 mV of ideal, spice within ~60 mV.
        assert report.divergence("rc", "behavioral") < 0.02
        assert report.divergence("spice", "behavioral") < 0.06

    def test_monte_carlo_determinism_and_mismatch(self):
        stim = CellStimulus(duty=0.5, rout=100e3)
        rc = get_engine("rc")
        a = rc.monte_carlo(CellDesign(), stim, 8, seed=3)
        b = rc.monte_carlo(CellDesign(), stim, 8, seed=3)
        assert np.array_equal(a, b)
        assert np.std(a) > 0          # mismatch moves the output
        beh = get_engine("behavioral").monte_carlo(
            CellDesign(), stim, 8, seed=3)
        assert np.ptp(beh) == 0.0     # ideal math cannot see mismatch

    def test_spice_monte_carlo_batches(self):
        stim = CellStimulus(duty=0.5, rout=100e3)
        values = get_engine("spice").monte_carlo(
            CellDesign(), stim, 3, seed=5, steps_per_period=50)
        assert values.shape == (3,)
        assert np.std(values) > 0


# -- batched transient / shooting ------------------------------------------


class TestBatchTransient:
    def test_linear_rc_batch_matches_scalar(self):
        def make(v):
            c = Circuit("rc")
            c.add(Vdc("V1", "in", "0", v))
            c.add(Resistor("R1", "in", "out", "1k"))
            c.add(Capacitor("C1", "out", "0", "1u"))
            return c

        scal = [transient(make(v), 5e-3, 1e-5, ic={"out": 0.0})
                for v in (1.0, 2.0)]
        bat = BatchTransientSolver([make(v) for v in (1.0, 2.0)]).run(
            5e-3, 1e-5, x0=np.stack([s.X[0] for s in scal]))
        for p, s in enumerate(scal):
            assert np.array_equal(bat.X[:, p, :], s.X)

    def test_cell_bench_batch_is_bit_identical(self):
        vdds = (1.0, 2.5, 4.0)
        scal = [transient(cell_bench(v), PERIOD, PERIOD / 60)
                for v in vdds]
        bat = BatchTransientSolver(
            [cell_bench(v) for v in vdds]).run(PERIOD, PERIOD / 60)
        assert np.array_equal(bat.t, scal[0].t)
        for p, s in enumerate(scal):
            assert np.array_equal(bat.X[:, p, :], s.X)

    def test_point_view_is_a_transient_result(self):
        bat = BatchTransientSolver(
            [cell_bench(v) for v in (1.0, 2.0)]).run(PERIOD, PERIOD / 50)
        wave = bat.point(1).node("out")
        assert len(wave) == len(bat.t)

    def test_structure_mismatch_rejected(self):
        a = cell_bench(1.0)
        b = Circuit("other")
        b.add(Vdc("V1", "x", "0", 1.0))
        b.add(Resistor("R1", "x", "0", "1k"))
        with pytest.raises(AnalysisError, match="share element structure"):
            BatchTransientSolver([a, b])

    def test_timing_mismatch_rejected(self):
        # Same structure, different duty -> different breakpoints.
        with pytest.raises(AnalysisError, match="share source timing"):
            BatchTransientSolver(
                [cell_bench(2.5, duty=0.3),
                 cell_bench(2.5, duty=0.7)]).run(PERIOD, PERIOD / 50)

    def test_inductor_rejected(self):
        def make():
            c = Circuit("rl")
            c.add(Vdc("V1", "in", "0", 1.0))
            c.add(Inductor("L1", "in", "out", "1u"))
            c.add(Resistor("R1", "out", "0", "1k"))
            return c

        with pytest.raises(AnalysisError, match="inductors"):
            BatchTransientSolver([make(), make()])

    def test_empty_batch_rejected(self):
        with pytest.raises(AnalysisError):
            BatchTransientSolver([])

    def test_capacitor_free_batch_runs(self):
        # Regression: a purely resistive batch must integrate, not
        # trip over uninitialised capacitor state.
        def make(v):
            c = Circuit("divider")
            c.add(Vdc("V1", "in", "0", v))
            c.add(Resistor("R1", "in", "out", "1k"))
            c.add(Resistor("R2", "out", "0", "1k"))
            return c

        bat = BatchTransientSolver([make(v) for v in (1.0, 2.0)]).run(
            1e-6, 1e-7)
        assert np.allclose(bat.node("out")[-1], [0.5, 1.0])

    def test_bad_x0_shape_rejected(self):
        solver = BatchTransientSolver([cell_bench(1.0)])
        with pytest.raises(AnalysisError, match="x0 must be"):
            solver.run(PERIOD, PERIOD / 50, x0=np.zeros((3, 3)))


class TestShootingBatch:
    def test_matches_scalar_shooting_bitwise(self):
        vdds = (1.0, 2.5, 4.0)
        scal = np.array([
            shooting(cell_bench(v), PERIOD, observe=["out"],
                     steps_per_period=60).average("out") for v in vdds])
        batch = shooting_batch([cell_bench(v) for v in vdds], PERIOD,
                               observe=["out"], steps_per_period=60)
        assert np.array_equal(scal, batch.averages("out"))
        assert batch.n_points == 3

    def test_point_recovers_scalar_result_object(self):
        batch = shooting_batch([cell_bench(2.5)], PERIOD,
                               observe=["out"], steps_per_period=60)
        pss = batch.point(0)
        assert pss.average("out") == batch.averages("out")[0]
        assert pss.iterations >= 1

    def test_max_iterations_respected(self):
        with pytest.raises(ConvergenceError, match="did not converge"):
            shooting_batch([cell_bench(2.5)], PERIOD, observe=["out"],
                           steps_per_period=50, max_iterations=1,
                           tol=0.0, warmup_periods=0)

    def test_needs_observed_node(self):
        c = Circuit("r_only")
        c.add(PwmVoltage("V1", "in", "0", v_high=1.0, frequency=1e6,
                         duty=0.5))
        c.add(Resistor("R1", "in", "0", "1k"))
        with pytest.raises(AnalysisError, match="observed node"):
            shooting_batch([c], 1e-6)


# -- capability-driven dispatch across layers -------------------------------


class TestCapabilityDispatch:
    def test_monte_carlo_method_resolution(self):
        assert resolve_monte_carlo_method("auto", engine_id="rc") == \
            "vectorized"
        assert resolve_monte_carlo_method("loop", engine_id="rc") == "loop"
        with pytest.raises(AnalysisError, match="unknown method"):
            resolve_monte_carlo_method("turbo")
        with pytest.raises(AnalysisError, match="unknown engine"):
            resolve_monte_carlo_method("auto", engine_id="warp")

    def test_dynamic_supply_requires_capability(self):
        from repro.experiments.ext_dynamic_supply import run

        with pytest.raises(AnalysisError,
                           match="does not support dynamic_supply"):
            run(engine="rc")

    def test_robustness_validates_engine_at_gate(self):
        # Every registered engine now serves margins (spice included),
        # so the gate's remaining job is id validation with the
        # registry's help text.
        from repro.experiments.ext_robustness import run

        with pytest.raises(AnalysisError, match="unknown engine 'warp'"):
            run(engine="warp")

    def test_run_config_validates_engine_at_choke_point(self):
        from repro.experiments import RunConfig

        with pytest.raises(AnalysisError, match="must be one of"):
            RunConfig.build("fig6", "fast", {"engine": "warp"})
        config = RunConfig.build("fig6", "fast", {"engine": "rc"})
        assert config.param_dict()["engine"] == "rc"


# -- serving engine knob ----------------------------------------------------


class TestServingEngineKnob:
    @pytest.fixture(scope="class")
    def model(self):
        from repro.analysis.datasets import make_blobs
        from repro.core.training import PerceptronTrainer

        data = make_blobs(n_per_class=10, n_features=2, separation=0.35,
                          spread=0.09, seed=7)
        trainer = PerceptronTrainer(2, seed=7)
        return trainer.fit(data.X, data.y, epochs=30).perceptron, data

    def test_rc_margins_agree_with_rc_supply_sweep(self, model):
        from repro.serve.engine import BatchInferenceEngine

        perceptron, data = model
        engine = BatchInferenceEngine()
        x = data.X[0]
        vdds = [1.5, 2.5, 3.5]
        sweep_preds = engine.predict_supply_sweep(perceptron, x, vdds,
                                                  engine="rc")
        margins = np.array([
            engine.model_margins(perceptron, [list(x)], vdd=v,
                                 engine="rc")[0] for v in vdds])
        assert np.array_equal(
            (margins > perceptron.comparator.offset).astype(int),
            sweep_preds)

    def test_rc_and_behavioral_predictions_agree_on_blobs(self, model):
        from repro.serve.engine import BatchInferenceEngine

        perceptron, data = model
        engine = BatchInferenceEngine()
        beh = engine.model_margins(perceptron, data.X)
        rc = engine.model_margins(perceptron, data.X, engine="rc")
        offset = perceptron.comparator.offset
        assert np.array_equal(beh > offset, rc > offset)

    def test_spice_margins_served(self, model):
        from repro.serve.engine import BatchInferenceEngine

        perceptron, _ = model
        engine = BatchInferenceEngine()
        row = [[0.9, 0.2]]
        spice = engine.model_margins(perceptron, row, engine="spice")
        beh = engine.model_margins(perceptron, row)
        assert spice.shape == (1,) and np.isfinite(spice).all()
        # Same physics, higher fidelity: the transistor margin tracks
        # the behavioural one to tens of millivolts on this model.
        assert abs(spice[0] - beh[0]) < 0.05


# -- consistency harness ----------------------------------------------------


class TestConsistencyHarness:
    def test_report_shape_and_document(self):
        report = consistency_report(duties=(0.25, 0.75),
                                    vdd_values=(1.0, 2.5),
                                    steps_per_period=50)
        assert set(report.outputs) == {"behavioral", "rc", "spice"}
        assert report.outputs["rc"].shape == (2, 2)
        doc = report.to_dict()
        assert set(doc["pairwise_divergence_V"]) == {
            "rc_vs_behavioral", "spice_vs_behavioral", "spice_vs_rc"}
        assert doc["duties"] == [0.25, 0.75]

    def test_unknown_engine_in_divergence(self):
        report = consistency_report(duties=(0.5,), vdd_values=(2.5,),
                                    engines=("behavioral", "rc"))
        with pytest.raises(AnalysisError, match="not in this report"):
            report.divergence("behavioral", "spice")

    def test_empty_grid_rejected(self):
        with pytest.raises(AnalysisError):
            consistency_report(duties=(), vdd_values=(2.5,))


# -- CLI surface ------------------------------------------------------------


class TestCli:
    def test_list_engines(self, capsys):
        from repro.__main__ import main

        assert main(["list", "--engines"]) == 0
        out = capsys.readouterr().out
        for eid in ("behavioral", "rc", "spice"):
            assert eid in out

    def test_list_engines_json(self, capsys):
        import json

        from repro.__main__ import main

        assert main(["list", "--engines", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 3

    def test_run_fig6_engine_rc(self, capsys):
        from repro.__main__ import main

        assert main(["run", "fig6", "--engine", "rc", "--no-charts",
                     "--no-cache"]) == 0
        assert "fig6" in capsys.readouterr().out
