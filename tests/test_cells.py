"""Cell netlist builders and binary-weighted sizing."""

import pytest

from repro.circuit import Circuit, NetlistError, Vdc, operating_point
from repro.core import (
    CellDesign,
    and_cell_subckt,
    build_transcoding_inverter_bench,
    inverter_subckt,
    nand2_subckt,
)
from repro.tech import TABLE1_SIZING


class TestCellDesign:
    def test_defaults_match_table1(self):
        d = CellDesign()
        assert d.nmos_width == TABLE1_SIZING.nmos_width
        assert d.rout == TABLE1_SIZING.rout

    def test_scaling_rule(self):
        d = CellDesign()
        x4 = d.scaled(4.0)
        assert x4.wn == pytest.approx(4 * d.wn)
        assert x4.wp == pytest.approx(4 * d.wp)
        assert x4.rout_eff == pytest.approx(d.rout_eff / 4)

    def test_scaling_composes(self):
        d = CellDesign().scaled(2.0).scaled(2.0)
        assert d.scale == 4.0

    def test_bad_scale(self):
        with pytest.raises(NetlistError):
            CellDesign(scale=0.0)

    def test_pull_resistances_scale_inverse(self):
        d = CellDesign()
        x2 = d.scaled(2.0)
        assert d.pull_up_resistance(2.5) == pytest.approx(
            2 * x2.pull_up_resistance(2.5), rel=1e-6)

    def test_pull_up_dominated_by_rout(self):
        d = CellDesign()
        assert d.pull_up_resistance(2.5) == pytest.approx(d.rout, rel=0.15)


class TestSubcircuits:
    def test_inverter_logic(self):
        c = Circuit()
        c.add(Vdc("VDD", "vdd", "0", 2.5))
        c.add(Vdc("VIN", "in", "0", 0.0))
        c.instantiate(inverter_subckt(CellDesign()), "X1",
                      {"in": "in", "out": "out", "vdd": "vdd"})
        assert operating_point(c).voltage("out") == pytest.approx(2.5,
                                                                  abs=0.01)

    @pytest.mark.parametrize("a,b,expected", [
        (0.0, 0.0, 2.5), (0.0, 2.5, 2.5), (2.5, 0.0, 2.5), (2.5, 2.5, 0.0),
    ])
    def test_nand_truth_table(self, a, b, expected):
        c = Circuit()
        c.add(Vdc("VDD", "vdd", "0", 2.5))
        c.add(Vdc("VA", "a", "0", a))
        c.add(Vdc("VB", "b", "0", b))
        c.instantiate(nand2_subckt(CellDesign()), "X1",
                      {"a": "a", "b": "b", "y": "y", "vdd": "vdd"})
        assert operating_point(c).voltage("y") == pytest.approx(expected,
                                                                abs=0.05)

    @pytest.mark.parametrize("pwm,w,expected", [
        (0.0, 0.0, 0.0), (0.0, 2.5, 0.0), (2.5, 0.0, 0.0), (2.5, 2.5, 2.5),
    ])
    def test_and_cell_truth_table(self, pwm, w, expected):
        c = Circuit()
        c.add(Vdc("VDD", "vdd", "0", 2.5))
        c.add(Vdc("VP", "p", "0", pwm))
        c.add(Vdc("VW", "w", "0", w))
        c.instantiate(and_cell_subckt(CellDesign()), "X1",
                      {"pwm": "p", "w": "w", "out": "out", "vdd": "vdd"})
        # DC: the output resistor carries no current, so out = AND value.
        assert operating_point(c).voltage("out") == pytest.approx(expected,
                                                                  abs=0.05)

    def test_and_cell_has_six_transistors(self):
        c = Circuit()
        c.add(Vdc("VDD", "vdd", "0", 2.5))
        c.add(Vdc("VP", "p", "0", 0.0))
        c.add(Vdc("VW", "w", "0", 0.0))
        c.instantiate(and_cell_subckt(CellDesign()), "X1",
                      {"pwm": "p", "w": "w", "out": "out", "vdd": "vdd"})
        assert c.stats()["transistors"] == 6

    def test_bench_builder_rout_override(self):
        bench = build_transcoding_inverter_bench(0.5, rout=5e3)
        rout = bench.element("X1.ROUT")
        assert rout.resistance == pytest.approx(5e3)

    def test_bench_uses_supply_as_default_amplitude(self):
        bench = build_transcoding_inverter_bench(0.5, vdd=3.0)
        vin = bench.element("VIN")
        assert vin.v_high == pytest.approx(3.0)
