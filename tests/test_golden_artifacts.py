"""Golden-artifact regression suite.

Every registered experiment runs at ``fidelity="fast"`` and its full
output — tables, figure series, metrics, notes — is compared against a
committed fixture under ``tests/golden/``.  This pins the numerical
behaviour of the whole reproduction: refactors of the execution engine
(vectorisation, parallelism, caching) cannot silently drift the numbers
that back ``benchmarks/artifacts/*``.

Float comparisons are tolerance-based (``rel=1e-6``) so harmless
last-ulp changes (e.g. numpy reassociation in the vectorised
Monte-Carlo path) pass while real regressions fail.

Regenerate fixtures after an *intentional* change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_artifacts.py
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.experiments import REGISTRY, run_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"

REL_TOL = 1e-6
ABS_TOL = 1e-9


def _float(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _assert_cell(actual, expected, where: str) -> None:
    fa, fe = _float(actual), _float(expected)
    if fa is not None and fe is not None:
        assert math.isclose(fa, fe, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
            f"{where}: {actual!r} != {expected!r}")
    else:
        assert str(actual) == str(expected), (
            f"{where}: {actual!r} != {expected!r}")


def _assert_table(actual: dict, expected: dict, where: str) -> None:
    assert actual["headers"] == expected["headers"], f"{where}: headers"
    assert actual["title"] == expected["title"], f"{where}: title"
    assert len(actual["rows"]) == len(expected["rows"]), f"{where}: row count"
    for i, (arow, erow) in enumerate(zip(actual["rows"], expected["rows"])):
        assert len(arow) == len(erow), f"{where} row {i}: cell count"
        for j, (a, e) in enumerate(zip(arow, erow)):
            _assert_cell(a, e, f"{where} row {i} col {j}")


def _assert_figure(actual: dict, expected: dict, where: str) -> None:
    assert actual["figure_id"] == expected["figure_id"], where
    names_a = [s["name"] for s in actual["series"]]
    names_e = [s["name"] for s in expected["series"]]
    assert names_a == names_e, f"{where}: series names"
    for sa, se in zip(actual["series"], expected["series"]):
        w = f"{where} series {sa['name']!r}"
        assert len(sa["x"]) == len(se["x"]), f"{w}: x length"
        for a, e in zip(sa["x"], se["x"]):
            _assert_cell(a, e, f"{w} x")
        for a, e in zip(sa["y"], se["y"]):
            _assert_cell(a, e, f"{w} y")


@pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
def test_golden_artifact(experiment_id: str):
    result = run_experiment(experiment_id, fidelity="fast")
    payload = result.to_dict()
    path = GOLDEN_DIR / f"{experiment_id}.json"

    if UPDATE:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"golden fixture updated: {path.name}")

    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        "REPRO_UPDATE_GOLDEN=1")
    expected = json.loads(path.read_text())

    assert payload["experiment_id"] == expected["experiment_id"]
    assert payload["fidelity"] == expected["fidelity"]
    assert payload["title"] == expected["title"]

    assert (payload["table"] is None) == (expected["table"] is None)
    if payload["table"] is not None:
        _assert_table(payload["table"], expected["table"],
                      f"{experiment_id}.table")
    assert len(payload["extra_tables"]) == len(expected["extra_tables"])
    for k, (a, e) in enumerate(zip(payload["extra_tables"],
                                   expected["extra_tables"])):
        _assert_table(a, e, f"{experiment_id}.extra_tables[{k}]")

    assert len(payload["figures"]) == len(expected["figures"])
    for a, e in zip(payload["figures"], expected["figures"]):
        _assert_figure(a, e, f"{experiment_id}.figures")

    assert set(payload["metrics"]) == set(expected["metrics"]), (
        f"{experiment_id}: metric keys changed")
    for key, e in expected["metrics"].items():
        _assert_cell(payload["metrics"][key], e,
                     f"{experiment_id}.metrics[{key}]")

    assert payload["notes"] == expected["notes"]
