"""Waveform container and measurements."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import AnalysisError, Waveform, concatenate


def ramp(n=11, t1=1.0):
    t = np.linspace(0.0, t1, n)
    return Waveform(t, t.copy(), "ramp")


class TestConstruction:
    def test_basic(self):
        w = Waveform([0, 1, 2], [1, 2, 3])
        assert len(w) == 3
        assert w.duration == 2.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            Waveform([0, 1], [1])

    def test_rejects_decreasing_time(self):
        with pytest.raises(AnalysisError):
            Waveform([0, 2, 1], [0, 0, 0])

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            Waveform([], [])

    def test_rejects_2d(self):
        with pytest.raises(AnalysisError):
            Waveform([[0, 1]], [[1, 2]])

    def test_views_are_readonly(self):
        w = ramp()
        with pytest.raises(ValueError):
            w.t[0] = 5.0
        with pytest.raises(ValueError):
            w.y[0] = 5.0


class TestReductions:
    def test_average_of_ramp(self):
        assert ramp().average() == pytest.approx(0.5)

    def test_rms_of_constant(self):
        w = Waveform([0, 1], [2.0, 2.0])
        assert w.rms() == pytest.approx(2.0)

    def test_rms_of_ramp(self):
        # integral of t^2 over [0,1] = 1/3
        assert ramp(1001).rms() == pytest.approx(np.sqrt(1 / 3), rel=1e-4)

    def test_peak_to_peak(self):
        w = Waveform([0, 1, 2], [1.0, -1.0, 0.5])
        assert w.peak_to_peak() == pytest.approx(2.0)

    def test_single_sample_average(self):
        w = Waveform([1.0], [3.0])
        assert w.average() == 3.0
        assert w.rms() == 3.0

    def test_average_respects_nonuniform_sampling(self):
        # y=0 for a long time, y=1 briefly: mean must be time-weighted.
        w = Waveform([0.0, 9.0, 10.0], [0.0, 0.0, 1.0])
        assert w.average() == pytest.approx(0.05)

    def test_integral(self):
        assert ramp().integral() == pytest.approx(0.5)


class TestSampling:
    def test_value_at_interpolates(self):
        assert ramp().value_at(0.35) == pytest.approx(0.35)

    def test_value_at_clamps(self):
        assert ramp().value_at(99.0) == pytest.approx(1.0)

    def test_slice_endpoints_interpolated(self):
        s = ramp().slice(0.25, 0.75)
        assert s.t[0] == pytest.approx(0.25)
        assert s.t[-1] == pytest.approx(0.75)
        assert s.average() == pytest.approx(0.5)

    def test_slice_rejects_reversed(self):
        with pytest.raises(AnalysisError):
            ramp().slice(0.9, 0.1)

    def test_resample(self):
        r = ramp().resample([0.0, 0.5, 1.0])
        assert list(r.y) == pytest.approx([0.0, 0.5, 1.0])


class TestEvents:
    def square(self):
        # 0 for [0,1), 1 for [1,2), 0 for [2,3)
        t = [0, 1, 1, 2, 2, 3]
        y = [0, 0, 1, 1, 0, 0]
        return Waveform(t, y)

    def test_crossings_rise_fall(self):
        w = Waveform([0, 1, 2, 3], [0, 1, 0, 1])
        rises = w.crossings(0.5, "rise")
        falls = w.crossings(0.5, "fall")
        assert list(rises) == pytest.approx([0.5, 2.5])
        assert list(falls) == pytest.approx([1.5])

    def test_duty_cycle_square(self):
        assert self.square().duty_cycle(0.5) == pytest.approx(1 / 3)

    def test_duty_cycle_triangle(self):
        w = Waveform([0, 1, 2], [0, 1, 0])
        assert w.duty_cycle(0.5) == pytest.approx(0.5)

    def test_settling_time(self):
        t = np.linspace(0, 5, 501)
        y = 1 - np.exp(-t)
        w = Waveform(t, y)
        ts = w.settling_time(1.0, 0.05)
        assert ts == pytest.approx(-np.log(0.05), abs=0.02)

    def test_settling_never(self):
        w = Waveform([0, 1], [0, 0])
        assert w.settling_time(1.0, 0.1) == np.inf


class TestArithmetic:
    def test_add_scalar(self):
        assert (ramp() + 1.0).average() == pytest.approx(1.5)

    def test_sub_waveforms_different_grids(self):
        a = Waveform([0, 1], [0, 1])
        b = Waveform([0, 0.5, 1], [0, 0.25, 1])
        d = a - b
        assert d.value_at(0.5) == pytest.approx(0.25)

    def test_mul_and_neg(self):
        w = ramp() * 2.0
        assert w.maximum() == pytest.approx(2.0)
        assert (-w).minimum() == pytest.approx(-2.0)

    def test_abs(self):
        w = Waveform([0, 1], [-2.0, 2.0]).abs()
        assert w.minimum() == pytest.approx(2.0)


class TestConcatenate:
    def test_merges_duplicate_boundary(self):
        a = Waveform([0, 1], [0, 1])
        b = Waveform([1, 2], [1, 0])
        c = concatenate([a, b])
        assert len(c) == 3
        assert c.duration == 2.0

    def test_rejects_overlap(self):
        a = Waveform([0, 1], [0, 1])
        b = Waveform([0.5, 2], [0, 0])
        with pytest.raises(AnalysisError):
            concatenate([a, b])

    def test_rejects_empty_list(self):
        with pytest.raises(AnalysisError):
            concatenate([])


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2,
                max_size=50))
def test_average_bounded_by_extremes(values):
    t = np.arange(len(values), dtype=float)
    w = Waveform(t, values)
    assert min(values) - 1e-9 <= w.average() <= max(values) + 1e-9


@given(st.integers(min_value=2, max_value=40),
       st.floats(min_value=0.1, max_value=10))
def test_rms_at_least_abs_average(n, span):
    t = np.linspace(0, span, n)
    rng = np.random.default_rng(n)
    y = rng.normal(size=n)
    w = Waveform(t, y)
    assert w.rms() >= abs(w.average()) - 1e-12
