"""Tables, figures, ASCII charts and export."""

import json

import pytest

from repro.circuit import AnalysisError
from repro.reporting import (
    FigureData,
    Table,
    figure_to_csv,
    figure_to_json,
    load_figure_json,
    table_to_csv,
)


def sample_figure() -> FigureData:
    fig = FigureData("figX", "test figure", "x", "y")
    fig.add_series("a", [0, 1, 2], [0.0, 1.0, 4.0])
    fig.add_series("b", [0, 1, 2], [4.0, 1.0, 0.0])
    return fig


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="T")
        t.add_row("alpha", 1.5)
        t.add_row("b", 20.25)
        text = t.render()
        assert "T" in text
        assert "alpha" in text
        assert "20.250" in text  # default .3f

    def test_row_width_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(AnalysisError):
            t.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(AnalysisError):
            Table([])

    def test_markdown(self):
        t = Table(["a"], title="M")
        t.add_row(True)
        md = t.markdown()
        assert "| a |" in md
        assert "| yes |" in md

    def test_float_format_respected(self):
        t = Table(["v"], float_format=".1f")
        t.add_row(3.14159)
        assert "3.1" in t.render()


class TestFigure:
    def test_series_validation(self):
        fig = FigureData("f", "t", "x", "y")
        with pytest.raises(AnalysisError):
            fig.add_series("bad", [1, 2], [1])

    def test_get_series(self):
        fig = sample_figure()
        assert fig.get("a").y[-1] == 4.0
        with pytest.raises(AnalysisError):
            fig.get("zzz")

    def test_as_table_unions_grids(self):
        fig = FigureData("f", "t", "x", "y")
        fig.add_series("a", [0, 2], [1.0, 2.0])
        fig.add_series("b", [1], [5.0])
        table = fig.as_table()
        assert len(table.rows) == 3

    def test_ascii_chart_contains_markers_and_legend(self):
        text = sample_figure().render_ascii(width=40, height=10)
        assert "*" in text and "o" in text
        assert "*=a" in text and "o=b" in text

    def test_ascii_chart_log_x(self):
        fig = FigureData("f", "t", "freq", "v", log_x=True)
        fig.add_series("s", [1e6, 1e9], [1.0, 1.0])
        assert "log10" in fig.render_ascii(width=30, height=5)

    def test_empty_figure_cannot_render(self):
        with pytest.raises(AnalysisError):
            FigureData("f", "t", "x", "y").render_ascii()


class TestExport:
    def test_table_csv_roundtrip(self, tmp_path):
        t = Table(["x", "y"])
        t.add_row(1.0, 2.0)
        path = table_to_csv(t, tmp_path / "t.csv")
        content = path.read_text().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1.000,2.000"

    def test_figure_csv(self, tmp_path):
        path = figure_to_csv(sample_figure(), tmp_path / "f.csv")
        assert path.exists()
        assert "a" in path.read_text()

    def test_figure_json_roundtrip(self, tmp_path):
        fig = sample_figure()
        path = figure_to_json(fig, tmp_path / "f.json")
        loaded = load_figure_json(path)
        assert loaded.figure_id == fig.figure_id
        assert loaded.get("a").y == fig.get("a").y

    def test_malformed_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"title": "no id"}))
        with pytest.raises(AnalysisError):
            load_figure_json(bad)
