"""Ramp re-encoder, bit-serial MAC baseline and parametric yield."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import make_blobs, perceptron_yield
from repro.circuit import AnalysisError
from repro.core import (
    DifferentialPwmPerceptron,
    PerceptronTrainer,
    RampReencoder,
    ReencoderDesign,
    reencode_ratiometric,
)
from repro.digital import DigitalPerceptron, SerialMacPerceptron


class TestRampReencoder:
    def test_ideal_encoding_is_ratiometric(self):
        enc = RampReencoder()
        for vdd in (1.5, 2.5, 4.0):
            assert enc.encode(0.5 * vdd, vdd) == pytest.approx(0.5,
                                                               abs=0.002)
            assert enc.encode(0.25 * vdd, vdd) == pytest.approx(0.25,
                                                                abs=0.002)

    def test_clipping_at_rails(self):
        enc = RampReencoder()
        assert enc.encode(-0.5, 2.5) == 0.0
        assert enc.encode(3.5, 2.5) == 1.0

    def test_offset_shifts_duty(self):
        enc = RampReencoder(ReencoderDesign(comparator_offset=0.25))
        assert enc.encode(1.0, 2.5) == pytest.approx(0.5, abs=0.002)

    def test_nonlinear_ramp_bends_transfer(self):
        lin = RampReencoder()
        bent = RampReencoder(ReencoderDesign(ramp_nonlinearity=0.5))
        # A nonlinear (concave) ramp crosses the input earlier/later.
        assert bent.encode(1.25, 2.5) != pytest.approx(
            lin.encode(1.25, 2.5), abs=0.01)

    def test_output_waveform_duty(self):
        enc = RampReencoder()
        wave = enc.output_waveform(1.0, 2.5, n_periods=4)
        assert wave.duty_cycle(1.25) == pytest.approx(0.4, abs=0.01)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ReencoderDesign(frequency=0.0)
        with pytest.raises(AnalysisError):
            RampReencoder().encode(1.0, 0.0)

    @settings(max_examples=40)
    @given(st.floats(min_value=0, max_value=2.5),
           st.floats(min_value=0.5, max_value=5.0))
    def test_matches_ideal_ratiometric(self, v, vdd):
        enc = RampReencoder()
        assert enc.encode(v, vdd) == pytest.approx(
            reencode_ratiometric(v, vdd), abs=0.002)


class TestSerialMac:
    def test_functionally_identical_to_parallel(self):
        weights = [7, 3, 5]
        serial = SerialMacPerceptron(weights, theta=8.0)
        parallel = DigitalPerceptron(weights, theta=8.0)
        rng = np.random.default_rng(0)
        for _ in range(25):
            x = rng.uniform(0, 1, 3)
            assert serial.weighted_sum(x) == parallel.weighted_sum(x)
            assert serial.predict(x) == parallel.predict(x)

    def test_smaller_than_parallel(self):
        weights = [7, 7, 7]
        serial = SerialMacPerceptron(weights, theta=10.0, input_bits=8)
        parallel = DigitalPerceptron(weights, theta=10.0, input_bits=8)
        assert serial.transistor_count < parallel.transistor_count / 2

    def test_still_larger_than_pwm_adder(self):
        serial = SerialMacPerceptron([7, 7, 7], theta=10.0, input_bits=8)
        assert serial.transistor_count > 5 * 54

    def test_latency_scales_with_bits(self):
        s8 = SerialMacPerceptron([7] * 3, theta=10.0, input_bits=8)
        s4 = SerialMacPerceptron([7] * 3, theta=10.0, input_bits=4)
        assert s8.cycles_per_classification() == 24
        assert s4.cycles_per_classification() == 12
        assert s8.latency(2.5) > s4.latency(2.5)

    def test_energy_accumulates_over_cycles(self):
        serial = SerialMacPerceptron([7] * 3, theta=10.0)
        assert serial.energy_per_classification(2.5) == pytest.approx(
            serial.cost().energy_per_op(2.5) *
            serial.cycles_per_classification())

    def test_fails_below_logic_voltage(self):
        serial = SerialMacPerceptron([7] * 3, theta=1.0)
        assert serial.predict([0.9] * 3, vdd=0.5) == 0

    def test_weight_validation(self):
        with pytest.raises(AnalysisError):
            SerialMacPerceptron([8], theta=0.0, n_bits=3)


class TestYield:
    @pytest.fixture(scope="class")
    def trained(self):
        data = make_blobs(n_per_class=12, separation=0.4, spread=0.07,
                          seed=4)
        trainer = PerceptronTrainer(2, seed=4)
        return trainer.fit(data.X, data.y, epochs=50).perceptron, data

    def test_nominal_supply_yield_is_high(self, trained):
        perceptron, data = trained
        result = perceptron_yield(perceptron, data, n_parts=6, seed=1)
        assert result.yield_fraction >= 0.8
        assert result.mean_accuracy >= 0.9
        assert len(result.accuracies) == 6

    def test_varying_supply_keeps_yield(self, trained):
        perceptron, data = trained
        rng = np.random.default_rng(2)
        result = perceptron_yield(
            perceptron, data, n_parts=5,
            vdd_sampler=lambda: float(rng.uniform(1.5, 3.5)), seed=2)
        assert result.yield_fraction >= 0.8

    def test_validation(self, trained):
        perceptron, data = trained
        with pytest.raises(AnalysisError):
            perceptron_yield(perceptron, data, n_parts=0)
        with pytest.raises(AnalysisError):
            perceptron_yield(perceptron, data, accuracy_threshold=0.0)
