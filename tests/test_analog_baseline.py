"""Current-mode amplitude-coded baseline: exact at nominal, drifts off it."""

import pytest

from repro.analog_baseline import CurrentModePerceptron, CurrentModeSpec
from repro.circuit import AnalysisError


class TestSpec:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            CurrentModeSpec(v_nominal=0.0)
        with pytest.raises(AnalysisError):
            CurrentModeSpec(reference_fraction=1.0)


class TestCurrentMode:
    def test_exact_at_nominal(self):
        p = CurrentModePerceptron([2.0, 3.0], theta=2.0)
        assert p.predict([0.9, 0.9]) == 1     # 4.5 > 2
        assert p.predict([0.1, 0.1]) == 0     # 0.5 < 2

    def test_gain_collapses_below_headroom(self):
        p = CurrentModePerceptron([1.0], theta=0.1)
        assert p.gain(0.9) == 0.0
        assert p.gain(2.5) == 1.0
        assert 0.0 < p.gain(1.7) < 1.0

    def test_misclassifies_under_droop(self):
        # A sample comfortably above threshold at nominal flips when the
        # supply halves - the non-elastic failure.
        p = CurrentModePerceptron([2.0, 2.0], theta=2.0)
        x = [0.7, 0.7]  # nominal sum 2.8 > 2
        assert p.predict(x) == 1
        assert p.predict(x, vdd=1.4) == 0

    def test_decision_drift_grows_as_supply_drops(self):
        p = CurrentModePerceptron([1.0], theta=0.5)
        assert p.decision_drift(2.5) == pytest.approx(1.0)
        assert p.decision_drift(1.8) > 1.2
        assert p.decision_drift(0.9) == float("inf")

    def test_input_validation(self):
        p = CurrentModePerceptron([1.0], theta=0.5)
        with pytest.raises(AnalysisError):
            p.predict([1.5])
        with pytest.raises(AnalysisError):
            p.analog_sum([0.5, 0.5], 2.5)

    def test_negative_mirror_rejected(self):
        with pytest.raises(AnalysisError):
            CurrentModePerceptron([-1.0], theta=0.5)
