"""Small-signal AC analysis against closed-form transfer functions."""

import numpy as np
import pytest

from repro.circuit import (
    AnalysisError,
    Capacitor,
    Circuit,
    Idc,
    Inductor,
    Mosfet,
    Resistor,
    Vdc,
    ac_analysis,
)
from repro.tech import NMOS_UMC65, PMOS_UMC65


def rc_lowpass(r=1e3, c=1e-9) -> Circuit:
    ckt = Circuit("rc_lp")
    ckt.add(Vdc("VIN", "in", "0", 0.0))
    ckt.add(Resistor("R1", "in", "out", r))
    ckt.add(Capacitor("C1", "out", "0", c))
    return ckt


class TestRcLowpass:
    def test_matches_analytic_magnitude(self):
        r, c = 1e3, 1e-9
        freqs = np.logspace(3, 8, 30)
        result = ac_analysis(rc_lowpass(r, c), freqs, stimulus="VIN",
                             output="out")
        for point in result.points:
            expected = 1.0 / abs(1 + 2j * np.pi * point.frequency * r * c)
            assert point.magnitude == pytest.approx(expected, rel=1e-6)

    def test_corner_frequency(self):
        r, c = 1e3, 1e-9
        freqs = np.logspace(3, 8, 60)
        result = ac_analysis(rc_lowpass(r, c), freqs, stimulus="VIN",
                             output="out")
        f3db = 1 / (2 * np.pi * r * c)
        assert result.corner_frequency() == pytest.approx(f3db, rel=0.05)

    def test_phase_at_corner_is_minus_45(self):
        r, c = 1e3, 1e-9
        f3db = 1 / (2 * np.pi * r * c)
        result = ac_analysis(rc_lowpass(r, c), [f3db], stimulus="VIN",
                             output="out")
        assert result.points[0].phase_deg == pytest.approx(-45.0, abs=0.5)

    def test_flat_response_has_no_corner(self):
        ckt = Circuit()
        ckt.add(Vdc("VIN", "in", "0", 0.0))
        ckt.add(Resistor("R1", "in", "out", "1k"))
        ckt.add(Resistor("R2", "out", "0", "1k"))
        result = ac_analysis(ckt, np.logspace(3, 9, 10), stimulus="VIN",
                             output="out")
        assert result.corner_frequency() == float("inf")
        assert result.points[0].magnitude == pytest.approx(0.5, rel=1e-6)


class TestRlc:
    def test_lc_resonance_peak(self):
        # Q = sqrt(L/C)/R = 31.6/3 ~ 10.5: a clear resonance peak.
        ckt = Circuit()
        ckt.add(Vdc("VIN", "in", "0", 0.0))
        ckt.add(Resistor("R1", "in", "mid", "3"))
        ckt.add(Inductor("L1", "mid", "out", "1u"))
        ckt.add(Capacitor("C1", "out", "0", "1n"))
        f0 = 1 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
        freqs = np.logspace(np.log10(f0) - 1, np.log10(f0) + 1, 201)
        result = ac_analysis(ckt, freqs, stimulus="VIN", output="out")
        peak_f = result.frequencies[int(np.argmax(result.magnitudes))]
        assert peak_f == pytest.approx(f0, rel=0.05)
        q = np.sqrt(1e-6 / 1e-9) / 3.0
        assert result.magnitudes.max() == pytest.approx(q, rel=0.1)

    def test_series_rlc_magnitude_at_resonance(self):
        # At resonance ZL + ZC cancel: |H| = 1/(omega0 * R * C) exactly.
        ckt = Circuit()
        ckt.add(Vdc("VIN", "in", "0", 0.0))
        ckt.add(Resistor("R1", "in", "mid", "100"))
        ckt.add(Inductor("L1", "mid", "out", "1u"))
        ckt.add(Capacitor("C1", "out", "0", "1n"))
        f0 = 1 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
        result = ac_analysis(ckt, [f0], stimulus="VIN", output="out")
        expected = 1 / (2 * np.pi * f0 * 100 * 1e-9)
        assert result.points[0].magnitude == pytest.approx(expected,
                                                           rel=1e-6)


class TestLinearisedMosfet:
    def make_common_source(self):
        """Common-source amplifier: gain ~ -gm * (Rload || rds)."""
        ckt = Circuit("cs_amp")
        ckt.add(Vdc("VDD", "vdd", "0", 2.5))
        ckt.add(Vdc("VIN", "in", "0", 1.0))   # bias into saturation
        ckt.add(Resistor("RL", "vdd", "out", "20k"))
        ckt.add(Mosfet("M1", "out", "in", "0", model=NMOS_UMC65,
                       w="3.2u", l="1.2u", include_caps=False))
        return ckt

    def test_low_frequency_gain_matches_gm(self):
        from repro.circuit import operating_point
        from repro.tech import ids_full
        ckt = self.make_common_source()
        op = operating_point(ckt)
        vout = op.voltage("out")
        _ids, gm, gds = ids_full(vout, 1.0, 0.0, NMOS_UMC65, 3.2e-6, 1.2e-6)
        expected = gm / (1 / 20e3 + gds)
        result = ac_analysis(ckt, [1e3], stimulus="VIN", output="out")
        assert result.points[0].magnitude == pytest.approx(expected,
                                                           rel=0.01)
        # Inverting stage: phase ~ 180 degrees.
        assert abs(result.points[0].phase_deg) == pytest.approx(180.0,
                                                                abs=1.0)

    def test_gate_caps_roll_off_the_gain(self):
        ckt = Circuit("cs_amp_c")
        ckt.add(Vdc("VDD", "vdd", "0", 2.5))
        ckt.add(Vdc("VIN", "in", "0", 1.0))
        ckt.add(Resistor("RL", "vdd", "out", "20k"))
        ckt.add(Mosfet("M1", "out", "in", "0", model=NMOS_UMC65,
                       w="3.2u", l="1.2u"))
        ckt.add(Capacitor("CL", "out", "0", "1p"))
        freqs = np.logspace(4, 10, 40)
        result = ac_analysis(ckt, freqs, stimulus="VIN", output="out")
        assert result.magnitudes[-1] < 0.2 * result.magnitudes[0]


class TestTranscodingCellAc:
    def test_averaging_corner_is_1_over_2piRC(self):
        """The Fig. 2 cell's output pole sits at 1/(2*pi*Rout*Cout) —
        the quantity that sets how fast the perceptron output settles."""
        from tests.conftest import make_transcoding_inverter
        ckt = make_transcoding_inverter(0.5)
        # Probe from the supply: the output node's dominant pole still
        # appears in the transfer.
        freqs = np.logspace(3, 9, 60)
        result = ac_analysis(ckt, freqs, stimulus="VDD", output="out")
        f_pole = result.corner_frequency()
        f_rc = 1 / (2 * np.pi * 100e3 * 1e-12)
        assert f_pole == pytest.approx(f_rc, rel=0.5)


class TestValidation:
    def test_needs_positive_frequencies(self):
        with pytest.raises(AnalysisError):
            ac_analysis(rc_lowpass(), [0.0], stimulus="VIN", output="out")

    def test_stimulus_must_be_voltage_source(self):
        ckt = rc_lowpass()
        ckt.add(Idc("I1", "0", "out", 0.0))
        with pytest.raises(AnalysisError):
            ac_analysis(ckt, [1e3], stimulus="I1", output="out")

    def test_cannot_probe_ground(self):
        with pytest.raises(AnalysisError):
            ac_analysis(rc_lowpass(), [1e3], stimulus="VIN", output="0")
