"""Executable summary of every claim the paper makes, claim by claim.

Each test quotes the paper and checks the corresponding measurement at
fast fidelity — the machine-checkable version of EXPERIMENTS.md.
(The benchmarks re-verify these at paper fidelity.)
"""

import numpy as np
import pytest

from repro.circuit import shooting
from repro.core import AdderConfig, WeightedAdder, eq2_output
from repro.experiments import run_experiment
from tests.conftest import make_transcoding_inverter


class TestSectionII:
    """Claims from the proposed-approach section."""

    def test_average_output_inverse_to_duty(self):
        """'the average voltage on its output is inversely proportional
        to the duty cycle of the input clock'"""
        outputs = []
        for duty in (0.2, 0.5, 0.8):
            pss = shooting(make_transcoding_inverter(duty), 2e-9,
                           steps_per_period=80)
            outputs.append(pss.average("out"))
        assert outputs[0] > outputs[1] > outputs[2]
        # Inverse-linear: Vout ~ Vdd*(1-D).
        for duty, vout in zip((0.2, 0.5, 0.8), outputs):
            assert vout == pytest.approx(2.5 * (1 - duty), abs=0.12)

    def test_connecting_outputs_averages_duties(self):
        """'if we connect the outputs of several cells, the resulting
        output voltage will be inversely proportional to the average
        value of the inputs duty cycle' — via the adder with equal
        weights."""
        adder = WeightedAdder(AdderConfig())
        r = adder.evaluate([0.2, 0.5, 0.8], [7, 7, 7], engine="rc")
        expected = adder.evaluate([0.5, 0.5, 0.5], [7, 7, 7], engine="rc")
        assert r.value == pytest.approx(expected.value, abs=0.02)

    def test_eq2_bounds_and_structure(self):
        """Eq. 2: normalisation by k*(2^n - 1)."""
        assert eq2_output([1.0] * 3, [7] * 3, n_bits=3, vdd=2.5) == \
            pytest.approx(2.5)
        assert eq2_output([0.5] * 3, [7] * 3, n_bits=3, vdd=2.5) == \
            pytest.approx(1.25)

    def test_one_gate_per_bit_per_input(self):
        """'the proposed approach uses only one gate ... per bit for
        every input. Thus, for the 3x3 weighted adder we used only 54
        transistors'"""
        adder = WeightedAdder(AdderConfig())
        circuit = adder.build_circuit([0.5] * 3, [7] * 3)
        assert circuit.stats()["transistors"] == 54


class TestSectionIII:
    """Claims from the experimental-results section."""

    def test_fig4_large_resistor_brings_linearity(self):
        """'In the case of the large output resistor ... the output
        function becomes purely linear.'"""
        res = run_experiment("fig4", fidelity="fast")
        assert res.metrics["r2[100kOhm]"] > 0.999
        assert res.metrics["r2[No load]"] < res.metrics["r2[100kOhm]"]

    def test_fig5_frequency_resilience(self):
        """'the values of Vout are almost the same for a wide range of
        frequencies'"""
        res = run_experiment("fig5", fidelity="fast")
        assert max(res.metrics[f"flatness[DC={d}%]"]
                   for d in (25, 50, 75)) < 0.10

    def test_fig6_absolute_value_unreliable(self):
        """'the output voltage grows almost linearly with increased Vdd
        ... the absolute value of the output voltage does not bear any
        reliable information'"""
        res = run_experiment("fig6", fidelity="fast")
        fig = res.figure("fig6")
        s = fig.get("DC=50%")
        assert s.y[-1] > 1.4 * s.y[0]  # grows strongly with Vdd

    def test_fig7_ratio_stable_from_1V(self):
        """'Starting from 1 - 1.5V the relationship of the Vout to Vdd
        remains the same for different duty cycles'"""
        res = run_experiment("fig7", fidelity="fast")
        for d in (25, 50, 75):
            assert res.metrics[f"usable_from[DC={d}%]"] <= 1.5

    def test_table2_simulation_corresponds_to_theory(self):
        """'The simulations results correspond to the theoretical ones,
        however, the relative error is quite large, especially for the
        lower output voltages.'"""
        res = run_experiment("table2", fidelity="fast")
        assert res.metrics["worst_abs_error"] < 0.15
        # Relative error indeed worst at low outputs.
        rel_low = abs(res.metrics["row1_simulated"] -
                      res.metrics["row1_theory"]) / res.metrics["row1_theory"]
        rel_high = abs(res.metrics["row0_simulated"] -
                       res.metrics["row0_theory"]) / res.metrics["row0_theory"]
        assert rel_low > rel_high

    def test_table2_frequency_remark(self):
        """'simulations have been conducted with various input
        frequencies ... did not have any effect on the results'"""
        res = run_experiment("ext_multifreq", fidelity="fast")
        assert res.metrics["spread_upto_500MHz_mV"] < 30.0

    def test_fig8_power_range(self):
        """Fig. 8: average power in the hundreds of microwatts."""
        res = run_experiment("fig8", fidelity="fast")
        assert 50 < res.metrics["power_at_min_freq_uW"] < 2000


class TestSectionIV:
    """Claims from the conclusion."""

    def test_power_elasticity_and_robustness(self):
        """'the perceptron shows a high degree of power elasticity and
        robustness under these variations'"""
        res = run_experiment("ext_robustness", fidelity="fast")
        assert res.metrics["min_accuracy[PWM (this work)]"] == 1.0

    def test_significantly_fewer_transistors_than_digital(self):
        """'significantly reduces the logic utilization'"""
        res = run_experiment("ext_transistor_count", fidelity="fast")
        # Every digital variant in the table is >10x the PWM count.
        for row in res.table.rows:
            if "digital" in row[0]:
                assert "x" in row[3]
                assert float(row[3].rstrip("x")) > 10.0

    def test_complements_kessels_generator(self):
        """'would nicely complement a power-elastic PWM signal generator
        based on a self-timed loadable modulo N counter'"""
        res = run_experiment("ext_kessels", fidelity="fast")
        assert res.metrics["worst_duty_error"] < 0.01
