"""PWM specs, encoding and quantisation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import AnalysisError, Circuit, Resistor, transient
from repro.signals import (
    PwmSpec,
    decode_duty,
    encode_duty,
    encode_features,
    quantize_duty,
)


class TestPwmSpec:
    def test_defaults_and_average(self):
        spec = PwmSpec(duty=0.4)
        assert spec.period == pytest.approx(2e-9)
        assert spec.average == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            PwmSpec(duty=1.2)
        with pytest.raises(AnalysisError):
            PwmSpec(duty=0.5, frequency=0.0)
        with pytest.raises(AnalysisError):
            PwmSpec(duty=0.5, phase=1.5)
        with pytest.raises(AnalysisError):
            PwmSpec(duty=0.5, v_high=0.0, v_low=1.0)

    def test_with_methods_are_pure(self):
        spec = PwmSpec(duty=0.25)
        other = spec.with_duty(0.75).with_frequency("1GHz")
        assert spec.duty == 0.25
        assert other.duty == 0.75
        assert other.frequency == 1e9

    def test_sampled_duty_matches(self):
        spec = PwmSpec(duty=0.3, frequency=1e6, v_high=1.0)
        wave = spec.sample(4e-6, points_per_period=256)
        assert wave.duty_cycle(0.5) == pytest.approx(0.3, abs=0.01)
        assert wave.average() == pytest.approx(0.3, abs=0.01)

    def test_to_source_duty_in_circuit(self):
        spec = PwmSpec(duty=0.6, frequency=1e6, v_high=2.0)
        c = Circuit()
        c.add(spec.to_source("V1", "a"))
        c.add(Resistor("R1", "a", "0", "1k"))
        res = transient(c, tstop=3e-6, dt=2e-8)
        assert res.node("a").duty_cycle(1.0) == pytest.approx(0.6, abs=0.01)

    @given(st.floats(min_value=0, max_value=1))
    def test_any_duty_constructs(self, duty):
        spec = PwmSpec(duty=duty)
        assert 0.0 <= spec.average <= spec.v_high


class TestEncoding:
    def test_encode_identity_on_unit_range(self):
        assert encode_duty(0.3) == pytest.approx(0.3)

    def test_encode_custom_range(self):
        assert encode_duty(5.0, 0.0, 10.0) == pytest.approx(0.5)

    def test_encode_clamps(self):
        assert encode_duty(-1.0) == 0.0
        assert encode_duty(2.0) == 1.0

    def test_decode_inverts(self):
        assert decode_duty(encode_duty(7.0, 2.0, 12.0), 2.0, 12.0) == \
            pytest.approx(7.0)

    def test_bad_range(self):
        with pytest.raises(AnalysisError):
            encode_duty(0.5, 1.0, 1.0)
        with pytest.raises(AnalysisError):
            decode_duty(0.5, 2.0, 1.0)

    @given(st.floats(min_value=-5, max_value=5),
           st.floats(min_value=-3, max_value=3),
           st.floats(min_value=0.1, max_value=4))
    def test_roundtrip_within_range(self, value, lo, width):
        hi = lo + width
        clipped = min(max(value, lo), hi)
        assert decode_duty(encode_duty(value, lo, hi), lo, hi) == \
            pytest.approx(clipped, abs=1e-9)


class TestQuantize:
    def test_grid(self):
        assert quantize_duty(0.33, 4) == pytest.approx(0.25)
        assert quantize_duty(0.40, 4) == pytest.approx(0.5)

    def test_bad_steps(self):
        with pytest.raises(AnalysisError):
            quantize_duty(0.5, 0)

    @given(st.floats(min_value=0, max_value=1), st.integers(1, 64))
    def test_quantisation_error_bounded(self, duty, steps):
        q = quantize_duty(duty, steps)
        assert abs(q - duty) <= 0.5 / steps + 1e-12
        assert 0.0 <= q <= 1.0

    def test_encode_features_with_steps(self):
        duties = encode_features([0.1, 0.52, 0.9], steps=10)
        assert duties == [0.1, 0.5, 0.9]
