"""Typed queries over the result store: axis filters, marginals, export.

A campaign writes one row per finished config; analysis wants slices —
"every config where ``vdd < 0.7``", "yield vs seed, marginalised over
supply".  :class:`StoreQuery` is a small immutable builder over
:class:`~repro.store.db.ResultStore` rows:

>>> q = StoreQuery(store, "ext_yield").where("seed", "<", 100)
>>> q.rows()                     # doctest: +SKIP
>>> q.table().render()           # doctest: +SKIP
>>> q.marginalize("yield", "seed")          # doctest: +SKIP
>>> q.figure("yield", "seed").render_ascii()  # doctest: +SKIP

Filters compile to SQL against the JSON1 ``params`` column with an
expression index created on demand per filtered parameter, so the
common "one axis filter over a big store" query never scans the table
— the win :mod:`benchmarks.bench_store` measures against the flat
cache's full directory scan.  On sqlite builds without JSON1 the same
filters evaluate in Python over the base row set (slower, identical
answers).

``campaigns/results.py`` routes its bulk collection through the store
(:meth:`ResultStore.get_configs`) and :mod:`repro.reporting` consumes
the tables/figures built here — campaign-level metric-vs-axis figures
without re-running anything.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..circuit.exceptions import AnalysisError
from ..reporting.figures import FigureData
from ..reporting.tables import Table
from .db import _PARAM_RE, ResultStore

#: Comparison operators a filter may use, with their Python semantics.
OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}

#: SQL spelling per operator (``in`` expands its own placeholder list).
_SQL_OPS = {"=": "=", "==": "=", "!=": "!=", "<": "<", "<=": "<=",
            ">": ">", ">=": ">="}


@dataclass(frozen=True)
class StoreRow:
    """One stored result, decoded to what analysis consumes."""

    entry: str
    experiment: str
    fidelity: str
    params: Dict[str, Any]
    metrics: Dict[str, Any]


def _check_filter(param: str, op: str, value: Any) -> None:
    if not _PARAM_RE.match(param):
        raise AnalysisError(f"invalid parameter name {param!r} in filter")
    if op not in OPS:
        raise AnalysisError(
            f"unknown filter operator {op!r}; allowed: {sorted(OPS)}")
    if op == "in":
        if not isinstance(value, (list, tuple)) or not value:
            raise AnalysisError(
                "'in' filters take a non-empty list of values")
        for v in value:
            _check_scalar(param, v)
    else:
        _check_scalar(param, value)


def _check_scalar(param: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise AnalysisError(
            f"filter on {param!r}: values must be numbers or strings, "
            f"got {value!r} (grid-valued params cannot be compared)")


class StoreQuery:
    """Immutable query builder; every refinement returns a new query."""

    def __init__(self, store: ResultStore, experiment: Optional[str] = None,
                 *, fidelity: Optional[str] = None,
                 engine: Optional[str] = None,
                 filters: Tuple[Tuple[str, str, Any], ...] = ()):
        self.store = store
        self.experiment = experiment
        self.fidelity = fidelity
        self.engine = engine
        self.filters = filters

    def where(self, param: str, op: str, value: Any) -> "StoreQuery":
        """Add one axis-parameter filter (validated immediately)."""
        _check_filter(param, op, value)
        frozen = tuple(value) if isinstance(value, list) else value
        return StoreQuery(self.store, self.experiment,
                          fidelity=self.fidelity, engine=self.engine,
                          filters=self.filters + ((param, op, frozen),))

    # -- execution ----------------------------------------------------------

    def _base_clause(self) -> Tuple[List[str], List[Any]]:
        clauses = ["kind = 'canonical'", "stale = 0"]
        args: List[Any] = []
        if self.experiment is not None:
            clauses.append("experiment = ?")
            args.append(self.experiment)
        if self.fidelity is not None:
            clauses.append("fidelity = ?")
            args.append(self.fidelity)
        if self.engine is not None:
            clauses.append("engine = ?")
            args.append(self.engine)
        return clauses, args

    def rows(self) -> List[StoreRow]:
        """Matching rows, deterministically ordered by entry key."""
        clauses, args = self._base_clause()
        sql_filters = self.filters if self.store.has_json1 else ()
        for param, op, value in sql_filters:
            self.store.ensure_param_index(param)
            path = f"json_extract(params, '$.{param}')"
            if op == "in":
                marks = ",".join("?" * len(value))
                clauses.append(f"{path} IN ({marks})")
                args.extend(value)
            else:
                clauses.append(f"{path} {_SQL_OPS[op]} ?")
                args.append(value)
        with telemetry.span("store.query",
                            experiment=self.experiment or "*"):
            raw = self.store.select_rows(" AND ".join(clauses),
                                         tuple(args))
            telemetry.count("repro_store_queries_total")
            out = []
            for entry, experiment, fidelity, params_text, payload in raw:
                params = json.loads(params_text)
                if not self.store.has_json1 and \
                        not self._matches(params):
                    continue
                doc = json.loads(payload)
                metrics = doc.get("result", {}).get("metrics", {})
                out.append(StoreRow(entry=entry, experiment=experiment,
                                    fidelity=fidelity, params=params,
                                    metrics=metrics))
        return out

    def _matches(self, params: Dict[str, Any]) -> bool:
        for param, op, value in self.filters:
            if param not in params:
                return False
            try:
                if not OPS[op](params[param], value):
                    return False
            except TypeError:
                return False
        return True

    # -- views --------------------------------------------------------------

    def metric_names(self, rows: Optional[List[StoreRow]] = None
                     ) -> List[str]:
        rows = self.rows() if rows is None else rows
        names: "set[str]" = set()
        for row in rows:
            names.update(row.metrics)
        return sorted(names)

    def param_names(self, rows: Optional[List[StoreRow]] = None
                    ) -> List[str]:
        rows = self.rows() if rows is None else rows
        names: "set[str]" = set()
        for row in rows:
            names.update(row.params)
        return sorted(names)

    def table(self, metrics: Optional[Sequence[str]] = None) -> Table:
        """Tidy table: one row per stored config, metrics as columns."""
        rows = self.rows()
        params = self.param_names(rows)
        metric_cols = list(metrics) if metrics is not None \
            else self.metric_names(rows)
        what = self.experiment or "all experiments"
        table = Table(["entry", *params, *metric_cols],
                      title=f"store query: {what} — {len(rows)} row(s)",
                      float_format=".6g")
        for row in rows:
            table.add_row(
                row.entry.rpartition("/")[2][:24],
                *[_cell(row.params.get(p)) for p in params],
                *[row.metrics.get(m, "") for m in metric_cols])
        return table

    def tidy(self) -> Dict[str, Any]:
        """Deterministic machine-readable export (the tidy document)."""
        rows = self.rows()
        return {
            "experiment": self.experiment,
            "fidelity": self.fidelity,
            "engine": self.engine,
            "filters": [[p, op, list(v) if isinstance(v, tuple) else v]
                        for p, op, v in self.filters],
            "params": self.param_names(rows),
            "metrics": self.metric_names(rows),
            "count": len(rows),
            "rows": [{"entry": row.entry,
                      "experiment": row.experiment,
                      "fidelity": row.fidelity,
                      "params": row.params,
                      "metrics": row.metrics} for row in rows],
        }

    # -- marginalisation ----------------------------------------------------

    def marginalize(self, metric: str, axis: str, agg: str = "mean"
                    ) -> List[Tuple[Any, float]]:
        """Aggregate one metric along one axis parameter.

        Groups matching rows by their ``axis`` value and collapses
        every other varied parameter with ``agg`` (``mean`` / ``min``
        / ``max`` / ``sum`` / ``count``) — the campaign-level
        "metric vs axis" curve.  Rows missing the metric or the axis
        are skipped.  Returns ``(axis value, aggregate)`` pairs sorted
        by axis value.
        """
        reducers: Dict[str, Callable[[List[float]], float]] = {
            "mean": lambda vs: sum(vs) / len(vs),
            "min": min, "max": max, "sum": sum,
            "count": lambda vs: float(len(vs)),
        }
        if agg not in reducers:
            raise AnalysisError(
                f"unknown aggregation {agg!r}; allowed: "
                f"{sorted(reducers)}")
        groups: Dict[Any, List[float]] = {}
        for row in self.rows():
            key = row.params.get(axis)
            value = row.metrics.get(metric)
            if key is None or not isinstance(value, (int, float)) \
                    or isinstance(value, bool) \
                    or not math.isfinite(float(value)):
                continue
            if isinstance(key, list):
                continue  # grid-valued axes have no scalar ordering
            groups.setdefault(key, []).append(float(value))
        return [(key, reducers[agg](values))
                for key, values in sorted(groups.items())]

    def figure(self, metric: str, axis: str,
               aggs: Sequence[str] = ("mean", "min", "max")
               ) -> FigureData:
        """Metric-vs-axis :class:`FigureData` (one series per agg)."""
        figure = FigureData(
            figure_id=f"store_{self.experiment or 'all'}_{metric}"
                      f"_vs_{axis}",
            title=f"{metric} vs {axis}"
                  + (f" ({self.experiment})" if self.experiment else ""),
            x_label=axis, y_label=metric)
        for agg in aggs:
            points = self.marginalize(metric, axis, agg=agg)
            numeric = [(k, v) for k, v in points
                       if isinstance(k, (int, float))
                       and not isinstance(k, bool)]
            if not numeric:
                continue
            figure.add_series(agg, [k for k, _ in numeric],
                              [v for _, v in numeric])
        if not figure.series:
            raise AnalysisError(
                f"no numeric ({axis}, {metric}) points in the store for "
                "this query — check the axis/metric names")
        return figure


def _cell(value: Any) -> Any:
    if isinstance(value, list):
        return ",".join(f"{v:g}" if isinstance(v, float) else str(v)
                        for v in value)
    return "" if value is None else value
