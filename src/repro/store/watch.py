"""Live campaign status: poll the store, report progress and ETA.

``python -m repro campaign watch SPEC.json`` sits in a loop over the
campaign's ground truth (cache/store probes via
:func:`~repro.campaigns.runner.campaign_status`) plus the advisory
shard manifests, printing one status line per poll::

    [watch montecarlo-yield] 4/6 done (66.7%) | shard 1/2: 2/3 |
        shard 2/2: 2/3 | eta ~3.1s

The ETA comes from the manifests' per-config timings
(:func:`~repro.campaigns.runner.shard_timings`): mean seconds per
fresh execution, scaled by the remaining misses and divided across the
shards still running.  It is advisory, exactly like the manifests it
is derived from — the loop's stop condition (``missing == 0``) reads
only the store.

Declared alert rules (the spec's ``"alerts"`` list) are evaluated on
every poll through the same engine the dashboard uses
(:mod:`repro.store.dashboard`); newly-fired alerts print inline, so an
overnight ``watch`` in a terminal doubles as a threshold monitor.

Works identically over a flat :class:`~repro.exec.cache.ResultCache`
and a :class:`~repro.store.db.ResultStore` — both satisfy the probe
contract.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..campaigns.runner import campaign_status
from ..campaigns.spec import CampaignSpec


def status_with_eta(spec: CampaignSpec, cache) -> Dict[str, Any]:
    """One watch poll: the status document plus an ``eta`` section.

    ``cache`` is any object with the probe contract (``get_config`` +
    ``root``).  The shard breakdown follows the widest partition any
    manifest recorded (a 2-shard run reports 2 buckets even when
    watched from a third machine); with no manifests it is 1.
    """
    n_shards = 1
    probe = campaign_status(spec, cache, n_shards=1, with_telemetry=True)
    for doc in probe["manifests"]:
        shard = doc.get("shard")
        if isinstance(shard, (list, tuple)) and len(shard) == 2 \
                and isinstance(shard[1], int) and shard[1] > n_shards:
            n_shards = shard[1]
    status = probe if n_shards == 1 else campaign_status(
        spec, cache, n_shards=n_shards, with_telemetry=True)
    status["eta"] = _eta(status)
    return status


def _eta(status: Dict[str, Any]) -> Dict[str, Any]:
    timings: List[Dict[str, Any]] = status.get("telemetry", [])
    fresh = sum(t.get("fresh", 0) for t in timings)
    fresh_seconds = sum(float(t.get("fresh_seconds", 0.0))
                        for t in timings)
    running = sum(1 for t in timings if t.get("status") == "running")
    missing = status["missing"]
    mean = fresh_seconds / fresh if fresh else None
    eta_seconds: Optional[float] = None
    if missing == 0:
        eta_seconds = 0.0
    elif mean is not None:
        # Remaining misses split over the shards still executing; a
        # finished (or never-started) campaign has no running shard,
        # in which case assume one resumes.
        eta_seconds = round(missing * mean / max(running, 1), 3)
    return {
        "fresh": fresh,
        "mean_seconds_per_fresh": round(mean, 6) if mean else None,
        "running_shards": running,
        "eta_seconds": eta_seconds,
    }


def format_watch_line(status: Dict[str, Any]) -> str:
    """The one-line terminal rendering of a watch poll."""
    total = status["total"] or 1
    parts = [f"[watch {status['campaign']}] {status['done']}/"
             f"{status['total']} done "
             f"({100.0 * status['done'] / total:.1f}%)"]
    for bucket in status["shards"]:
        if len(status["shards"]) > 1:
            parts.append(f"shard {bucket['shard']}: "
                         f"{bucket['done']}/{bucket['total']}")
    eta = status.get("eta", {}).get("eta_seconds")
    if status["missing"] == 0:
        parts.append("complete")
    elif eta is not None:
        parts.append(f"eta ~{eta:.1f}s")
    return " | ".join(parts)


def watch(spec: CampaignSpec, cache, *, interval: float = 2.0,
          max_polls: Optional[int] = None, stream=None,
          until_complete: bool = True) -> Dict[str, Any]:
    """Poll until the campaign completes (or ``max_polls`` is spent).

    Prints one :func:`format_watch_line` per poll to ``stream``
    (default stderr) and, when the spec declares alert rules, any
    newly-fired alerts.  Returns the final status document (with
    ``eta`` and, when rules exist, ``alerts``).
    """
    from .dashboard import AlertEngine

    if interval < 0:
        interval = 0.0
    out = stream if stream is not None else sys.stderr
    # hooks=[]: watch prints its own ALERT lines below (webhooks on
    # the rules still deliver through the engine).
    engine = AlertEngine(spec, cache, hooks=[]) if spec.alerts else None
    polls = 0
    while True:
        status = status_with_eta(spec, cache)
        telemetry.count("repro_store_watch_polls_total")
        polls += 1
        print(format_watch_line(status), file=out)
        if engine is not None:
            outcome = engine.poll()
            status["alerts"] = outcome["alerts"]
            for alert in outcome["fired"]:
                print(f"  ALERT {alert['metric']} {alert['direction']} "
                      f"{alert['threshold']:g}: {alert['value']:g} "
                      f"({alert['label']})", file=out)
        done = until_complete and status["missing"] == 0
        exhausted = max_polls is not None and polls >= max_polls
        if done or exhausted:
            return status
        time.sleep(interval)
