"""Persistent results store + live campaign dashboard.

The flat JSON :class:`~repro.exec.cache.ResultCache` stays the default
execution checkpoint; this package adds an *opt-in* SQLite backend and
the observability layer on top of it:

* :mod:`repro.store.db` — :class:`ResultStore`, a single-file
  WAL-mode SQLite store with the cache's exact ``get_config`` /
  ``put_config`` contract (concurrent shard writers, schema-versioned,
  indexed by experiment/fidelity/engine/config hash) plus a one-shot
  byte-identical migration from an existing flat cache;
* :mod:`repro.store.query` — :class:`StoreQuery`, typed filters over
  the JSON1 ``params`` column, axis marginalisation and tidy export
  feeding :mod:`repro.reporting`;
* :mod:`repro.store.watch` — ``repro campaign watch``: live progress
  lines with per-shard ETA from the manifests;
* :mod:`repro.store.dashboard` — :class:`CampaignDashboard`, a stdlib
  HTTP dashboard (JSON endpoints) and the edge-triggered
  :class:`AlertEngine` for declarative threshold rules.

CLI surfaces: ``campaign run --store``, ``campaign watch``,
``campaign dashboard``, and ``store migrate | query | gc``.
"""

from .dashboard import (
    AlertEngine,
    CampaignDashboard,
    evaluate_alerts,
    log_hook,
)
from .db import (
    STORE_DB_NAME,
    STORE_SCHEMA_VERSION,
    ResultStore,
    default_store_path,
)
from .query import OPS, StoreQuery, StoreRow
from .watch import format_watch_line, status_with_eta, watch

__all__ = [
    "ResultStore", "StoreQuery", "StoreRow", "OPS",
    "STORE_DB_NAME", "STORE_SCHEMA_VERSION", "default_store_path",
    "AlertEngine", "CampaignDashboard", "evaluate_alerts", "log_hook",
    "format_watch_line", "status_with_eta", "watch",
]
