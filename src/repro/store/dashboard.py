"""Campaign dashboard: JSON endpoints over a live store, plus alerts.

A tiny stdlib HTTP server (the :mod:`repro.serve.server` pattern —
``ThreadingHTTPServer`` + a handler bound to one server object) that
watches one campaign while its shards run elsewhere:

``GET /healthz``
    Liveness: ``{"status": "ok", "campaign": <name>}``.
``GET /status``
    The live status document — ground-truth done/missing counts from
    the store, per-shard progress from the manifests, and the watch
    layer's ETA (:func:`repro.store.watch.status_with_eta`).
``GET /alerts``
    Evaluates the spec's declarative threshold rules against every
    finished config and returns ``{"rules", "alerts", "fired"}``;
    newly-breached (rule, config) pairs fire the engine's hooks
    exactly once per server lifetime (log line, optional webhook).
``GET /results``
    The aggregate tidy results document
    (:func:`repro.campaigns.results.results_document`) for everything
    finished so far — no re-running.
``GET /perf``
    Per-benchmark performance history out of the store's
    ``perf_runs``/``perf_samples`` tables (:mod:`repro.perf`), each
    series rendered as a unicode sparkline plus its latest/best
    values.  Serving from a flat cache (no perf tables) returns an
    empty benchmark list with a note instead of an error.
``GET /``
    A minimal HTML index linking the endpoints (auto-refreshing
    status summary; deliberately no JS framework, no assets).

Alert rules come from the campaign spec::

    "alerts": [{"metric": "yield", "below": 0.9},
               {"metric": "accuracy", "below": 0.8,
                "webhook": "http://hooks.internal/campaign"}]

The engine is deliberately *edge-triggered*: an alert fires once per
(rule, config) pair when it first breaches, so a dashboard polled
every second does not re-deliver the same webhook forever.  Hook
failures (unreachable webhook) are counted and logged, never raised —
observability must not take down the campaign it observes.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .. import telemetry
from ..campaigns.results import collect_results, results_document
from ..campaigns.spec import CampaignSpec
from ..perf.harness import sparkline
from .watch import status_with_eta

#: An alert hook: called once per newly-fired alert document.
AlertHook = Callable[[Dict[str, Any]], None]


def evaluate_alerts(spec: CampaignSpec,
                    collected) -> List[Dict[str, Any]]:
    """Every (rule, finished config) breach, as plain documents.

    ``collected`` is the :func:`collect_results` row list; configs
    without a stored result are skipped (they cannot breach yet).
    Pure and stateless — the edge-triggering lives in
    :class:`AlertEngine`.
    """
    alerts = []
    for index, rule in enumerate(spec.alerts):
        threshold = rule.below if rule.below is not None else rule.above
        for position, config, result in collected:
            if result is None:
                continue
            value = result.metrics.get(rule.metric)
            direction = rule.breached(value)
            if direction is None:
                continue
            alerts.append({
                "campaign": spec.name,
                "rule_index": index,
                "metric": rule.metric,
                "direction": direction,
                "threshold": rule.below if direction == "below"
                else rule.above,
                "value": float(value),
                "position": position,
                "config_key": config.key(),
                "label": config.label(),
                "webhook": rule.webhook,
            })
    return alerts


def log_hook(stream=None) -> AlertHook:
    """An :data:`AlertHook` printing one line per alert (default
    stderr)."""
    def hook(alert: Dict[str, Any]) -> None:
        out = stream if stream is not None else sys.stderr
        print(f"[alert {alert['campaign']}] {alert['metric']} "
              f"{alert['direction']} {alert['threshold']:g}: "
              f"{alert['value']:g} ({alert['label']})", file=out)
    return hook


class AlertEngine:
    """Edge-triggered evaluation of a spec's alert rules.

    :meth:`poll` re-collects the campaign's finished results, finds
    every breach, and fires hooks (plus each rule's webhook) for the
    (rule, config) pairs not seen before.  Thread-safe: the dashboard
    serves ``/alerts`` from concurrent request threads.
    """

    def __init__(self, spec: CampaignSpec, cache, *,
                 hooks: Optional[List[AlertHook]] = None,
                 webhook_timeout: float = 5.0):
        self.spec = spec
        self.cache = cache
        self.hooks: List[AlertHook] = \
            list(hooks) if hooks is not None else [log_hook()]
        self.webhook_timeout = webhook_timeout
        self._fired: Set[Tuple[int, str]] = set()
        self._lock = threading.Lock()

    def poll(self) -> Dict[str, Any]:
        """Evaluate now; returns ``{"alerts": all, "fired": new}``."""
        collected = collect_results(self.spec, self.cache)
        alerts = evaluate_alerts(self.spec, collected)
        fresh = []
        with self._lock:
            for alert in alerts:
                key = (alert["rule_index"], alert["config_key"])
                if key not in self._fired:
                    self._fired.add(key)
                    fresh.append(alert)
        for alert in fresh:
            telemetry.count("repro_store_alerts_fired_total",
                            metric=alert["metric"])
            for hook in self.hooks:
                self._guarded(hook, alert)
            if alert["webhook"]:
                self._guarded(self._deliver_webhook, alert)
        return {"alerts": alerts, "fired": fresh}

    def _deliver_webhook(self, alert: Dict[str, Any]) -> None:
        body = json.dumps(
            {k: v for k, v in alert.items() if k != "webhook"}
        ).encode("utf-8")
        request = urllib.request.Request(
            alert["webhook"], data=body, method="POST",
            headers={"Content-Type": "application/json"})
        urllib.request.urlopen(request, timeout=self.webhook_timeout)

    def _guarded(self, fn: Callable[[Dict[str, Any]], None],
                 alert: Dict[str, Any]) -> None:
        try:
            fn(alert)
        except Exception as exc:
            telemetry.count("repro_store_alert_hook_errors_total")
            print(f"[alert {self.spec.name}] hook failed: "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)


_INDEX_HTML = """<!doctype html>
<html><head><meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>repro campaign {name}</title></head>
<body style="font-family: monospace; margin: 2em">
<h1>campaign {name}</h1>
<p>{experiment} [{fidelity}] &mdash; {done}/{total} configs done,
{alerts} alert rule(s)</p>
<ul>
<li><a href="/status">/status</a> &mdash; live progress + per-shard ETA</li>
<li><a href="/alerts">/alerts</a> &mdash; threshold rule evaluation</li>
<li><a href="/results">/results</a> &mdash; aggregate tidy results</li>
<li><a href="/perf">/perf</a> &mdash; benchmark history sparklines</li>
<li><a href="/healthz">/healthz</a></li>
</ul>
<p>(auto-refreshes every 5 s)</p>
</body></html>
"""


class CampaignDashboard:
    """One campaign's live HTTP dashboard over a store (or flat cache).

    Use as a context manager (tests) or via :meth:`run` (CLI);
    ``port=0`` binds a free port, read back from :attr:`port`.
    """

    def __init__(self, spec: CampaignSpec, cache, *,
                 host: str = "127.0.0.1", port: int = 0,
                 hooks: Optional[List[AlertHook]] = None):
        self.spec = spec
        self.cache = cache
        self.alert_engine = AlertEngine(spec, cache, hooks=hooks)
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- endpoint payloads (transport-independent) -------------------------

    def status_payload(self) -> Dict[str, Any]:
        return status_with_eta(self.spec, self.cache)

    def alerts_payload(self) -> Dict[str, Any]:
        outcome = self.alert_engine.poll()
        return {
            "campaign": self.spec.name,
            "rules": [rule.describe() for rule in self.spec.alerts],
            "alerts": outcome["alerts"],
            "fired": outcome["fired"],
        }

    def results_payload(self) -> Dict[str, Any]:
        return results_document(
            self.spec, collect_results(self.spec, self.cache))

    def perf_payload(self, limit: int = 40) -> Dict[str, Any]:
        history_fn = getattr(self.cache, "perf_history", None)
        if history_fn is None:
            return {"campaign": self.spec.name, "benchmarks": [],
                    "note": "perf history needs the SQLite store "
                            "(campaign dashboard --store)"}
        history = history_fn(limit=limit)
        benchmarks = []
        for name in sorted(history):
            points = history[name]
            values = [p["value"] for p in points]
            lower = points[-1]["lower_is_better"]
            benchmarks.append({
                "benchmark": name,
                "unit": points[-1]["unit"],
                "lower_is_better": lower,
                "runs": len(points),
                "latest": values[-1],
                "best": min(values) if lower else max(values),
                "sparkline": sparkline(values),
                "history": points,
            })
        return {"campaign": self.spec.name, "benchmarks": benchmarks}

    def index_html(self) -> str:
        status = status_with_eta(self.spec, self.cache)
        return _INDEX_HTML.format(
            name=self.spec.name, experiment=self.spec.experiment_id,
            fidelity=self.spec.fidelity, done=status["done"],
            total=status["total"], alerts=len(self.spec.alerts))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CampaignDashboard":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever, daemon=True,
                name="repro-dashboard")
            self._thread.start()
        return self

    def run(self) -> None:
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CampaignDashboard":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def _make_handler(dashboard: "CampaignDashboard"):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # quiet by default
            pass

        def _reply(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply_html(self, text: str) -> None:
            body = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _observed(self, endpoint: str, fn) -> None:
            t0 = time.perf_counter()
            try:
                self._reply(200, fn())
            except Exception as exc:
                self._reply(500,
                            {"error": f"{type(exc).__name__}: {exc}"})
            finally:
                rt = telemetry.active()
                if rt is not None:
                    rt.count("repro_dashboard_requests_total",
                             endpoint=endpoint)
                    rt.observe("repro_dashboard_latency_seconds",
                               time.perf_counter() - t0,
                               endpoint=endpoint)

        def do_GET(self) -> None:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/":
                try:
                    self._reply_html(dashboard.index_html())
                except Exception as exc:
                    self._reply(500,
                                {"error": f"{type(exc).__name__}: {exc}"})
                return
            if path == "/healthz":
                self._observed("/healthz", lambda: {
                    "status": "ok", "campaign": dashboard.spec.name})
            elif path == "/status":
                self._observed("/status", dashboard.status_payload)
            elif path == "/alerts":
                self._observed("/alerts", dashboard.alerts_payload)
            elif path == "/results":
                self._observed("/results", dashboard.results_payload)
            elif path == "/perf":
                self._observed("/perf", dashboard.perf_payload)
            else:
                self._reply(404,
                            {"error": f"unknown endpoint {self.path}"})

    return Handler
