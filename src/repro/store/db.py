"""SQLite-backed persistent result store for campaigns at scale.

The flat-JSON :class:`~repro.exec.cache.ResultCache` is perfect for one
machine resuming one campaign, but it cannot answer indexed queries
("every config where ``vdd < 0.7``") without opening every file, and a
fleet of shard processes hammering one directory gives the filesystem
all the coordination work.  :class:`ResultStore` promotes the cache to
a single SQLite database:

* **same contract** — ``get_config`` / ``put_config`` (and the legacy
  kwargs-keyed ``get`` / ``put``) mirror :class:`ResultCache` exactly,
  so the campaign runner, ``run_config`` and ``campaign_status`` take a
  store anywhere they take a cache.  Entries are keyed by the *same*
  version-folded canonical hash the flat cache uses for file names, so
  a store-backed run resolves exactly the configs a flat run would.
* **concurrent writers** — WAL journal mode plus a busy timeout: N
  shard processes (or machines on a shared filesystem) insert rows
  with last-full-write-wins semantics, the database's analogue of the
  flat cache's ``os.replace`` rule.
* **indexed queries** — ``experiment`` / ``fidelity`` / ``engine`` /
  ``config_key`` are real indexed columns, and ``params`` holds the
  canonical parameter JSON so :mod:`repro.store.query` can filter on
  any axis parameter via JSON1 (``json_extract``), with expression
  indexes created on demand per queried parameter.
* **schema-versioned** — a ``store_meta`` table pins
  :data:`STORE_SCHEMA_VERSION`; opening a database written by a
  different layout fails loudly instead of misreading rows.
* **migration** — :meth:`ResultStore.migrate_from_cache` ingests an
  existing flat-JSON cache byte-identically (the payload text is
  stored verbatim), so years of cached paper-fidelity runs become
  queryable without re-running anything.

The store is opt-in (``campaign run --store``); the flat cache stays
the default.  Result payloads round-trip through the same JSON
encoding as the flat cache, so a 2-shard store-backed campaign report
is byte-identical to the serial flat-cache report — pinned by tests
and the ``store-smoke`` CI job.
"""

from __future__ import annotations

import json
import re
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .. import telemetry
from ..circuit.exceptions import AnalysisError
from ..exec.cache import CACHE_SCHEMA_VERSION, ResultCache, default_cache_dir

#: Bump when the table layout below changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: Database file name inside a cache root (``campaign run --store``).
STORE_DB_NAME = "store.sqlite"

PathLike = Union[str, Path]

#: Parameter names are schema-validated identifiers; anything else must
#: never reach SQL (index names, json paths).
_PARAM_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    entry       TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    fidelity    TEXT NOT NULL,
    config_key  TEXT,
    engine      TEXT,
    kind        TEXT NOT NULL DEFAULT 'canonical',
    stale       INTEGER NOT NULL DEFAULT 0,
    params      TEXT NOT NULL,
    payload     TEXT NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_experiment
    ON results(experiment, fidelity);
CREATE INDEX IF NOT EXISTS idx_results_engine ON results(engine);
CREATE INDEX IF NOT EXISTS idx_results_config_key ON results(config_key);
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def default_store_path(root: Optional[PathLike] = None) -> Path:
    """Database path for a cache root (default root when ``None``)."""
    base = Path(root) if root is not None else default_cache_dir()
    return base / STORE_DB_NAME


class ResultStore:
    """Drop-in, SQLite-backed sibling of :class:`ResultCache`.

    ``root`` is the campaign working directory (shard manifests live
    under it, exactly as for a flat cache); the database defaults to
    ``<root>/store.sqlite`` (:data:`STORE_DB_NAME`).  One instance owns
    one connection, shared across threads behind a lock; concurrent
    *processes* each open their own instance — WAL mode serialises
    their writes.

    >>> store = ResultStore("/tmp/repro-store-doctest")
    >>> store.get("table1", "fast", {}) is None
    True
    """

    def __init__(self, root: PathLike, *, db_path: Optional[PathLike] = None,
                 timeout: float = 30.0):
        self.root = Path(root)
        self.db_path = (Path(db_path) if db_path is not None
                        else self.root / STORE_DB_NAME)
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        #: Flat-cache twin used purely to compute entry keys: the store
        #: shares the cache's version-folded hash so both backends
        #: resolve the same configs.
        self._keys = ResultCache(self.root)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.db_path), timeout=timeout,
                                     isolation_level=None,
                                     check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        self._init_schema()
        self.has_json1 = self._probe_json1()

    # -- lifecycle ----------------------------------------------------------

    def _init_schema(self) -> None:
        with self._lock:
            self._conn.executescript(_SCHEMA_SQL)
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT OR IGNORE INTO store_meta(key, value) "
                    "VALUES ('schema', ?), ('created_at', ?)",
                    (str(STORE_SCHEMA_VERSION), repr(time.time())))
                row = self._conn.execute(
                    "SELECT value FROM store_meta WHERE key = 'schema'"
                ).fetchone()
            if row[0] != str(STORE_SCHEMA_VERSION):
                raise AnalysisError(
                    f"result store {self.db_path} has schema {row[0]}, "
                    f"this build expects {STORE_SCHEMA_VERSION}; migrate "
                    "it (store migrate from a flat cache) or move it "
                    "aside")

    def _probe_json1(self) -> bool:
        try:
            self._conn.execute("SELECT json_extract('{}', '$.x')")
            return True
        except sqlite3.OperationalError:
            return False

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<ResultStore db={str(self.db_path)!r}>"

    # -- key computation (shared with the flat cache) -----------------------

    def _entry_for_config(self, config) -> str:
        path = self._keys.path_for_config(config)
        return path.relative_to(self.root).as_posix()

    def _entry_for_params(self, experiment_id: str, fidelity: str,
                          params: Optional[Dict[str, Any]]) -> str:
        path = self._keys.path_for(experiment_id, fidelity, params)
        return path.relative_to(self.root).as_posix()

    def path_for_config(self, config) -> str:
        """Human-readable location of a config's entry (CLI notices)."""
        return f"{self.db_path}#{self._entry_for_config(config)}"

    # -- decode (mirrors ResultCache._load misses-not-exceptions rule) ------

    def _decode(self, text: Optional[str]):
        from ..experiments.base import ExperimentResult

        if text is None:
            return None
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("schema") != CACHE_SCHEMA_VERSION \
                or not isinstance(payload.get("result"), dict):
            return None
        try:
            return ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError,
                AnalysisError):
            return None

    def _payload_text(self, entry: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE entry = ?",
                (entry,)).fetchone()
        return row[0] if row is not None else None

    # -- RunConfig-keyed interface (the campaign contract) ------------------

    def get_config(self, config, *,
                   legacy_params: Optional[Dict[str, Any]] = None):
        """Stored result for a RunConfig, or ``None`` on miss.

        Mirrors :meth:`ResultCache.get_config` including the legacy
        kwargs-hash probe-and-promote path.
        """
        result = self._decode(self._payload_text(
            self._entry_for_config(config)))
        if result is not None or legacy_params is None:
            telemetry.count(
                "repro_store_lookups_total",
                result="hit" if result is not None else "miss")
            return result
        legacy_entry = self._entry_for_params(
            config.experiment_id, config.fidelity, legacy_params)
        legacy = self._decode(self._payload_text(legacy_entry))
        telemetry.count(
            "repro_store_lookups_total",
            result="hit" if legacy is not None else "miss")
        if legacy is not None:
            self.put_config(legacy, config)
            telemetry.count("repro_store_promotions_total")
        return legacy

    def get_configs(self, configs: Iterable[Any]) -> List[Any]:
        """Batched :meth:`get_config` (one ``IN`` query per 400 configs).

        Returns results aligned with ``configs`` (``None`` per miss) —
        the fast path :func:`repro.campaigns.results.collect_results`
        routes through instead of one round trip per config.
        """
        configs = list(configs)
        entries = [self._entry_for_config(c) for c in configs]
        payloads: Dict[str, str] = {}
        with self._lock:
            for i in range(0, len(entries), 400):
                chunk = entries[i:i + 400]
                marks = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT entry, payload FROM results "
                    f"WHERE entry IN ({marks})", chunk).fetchall()
                payloads.update(rows)
        results = [self._decode(payloads.get(entry)) for entry in entries]
        rt = telemetry.active()
        if rt is not None:
            hits = sum(1 for r in results if r is not None)
            if hits:
                rt.count("repro_store_lookups_total", hits, result="hit")
            if len(results) - hits:
                rt.count("repro_store_lookups_total", len(results) - hits,
                         result="miss")
        return results

    def put_config(self, result, config) -> str:
        """Store a result under the config's canonical key."""
        params = config.canonical_dict()["params"]
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "params": params,
            "result": result.to_dict(),
        }
        entry = self._entry_for_config(config)
        self._write_row(
            entry=entry, experiment=config.experiment_id,
            fidelity=config.fidelity, config_key=config.key(),
            engine=self._engine_of(params), kind="canonical", stale=0,
            params_text=_canonical_json(params),
            payload_text=json.dumps(payload))
        telemetry.count("repro_store_writes_total", kind="canonical")
        return entry

    # -- legacy kwargs-keyed interface --------------------------------------

    def get(self, experiment_id: str, fidelity: str,
            params: Optional[Dict[str, Any]] = None):
        """Stored result under the legacy kwargs key, or ``None``."""
        return self._decode(self._payload_text(
            self._entry_for_params(experiment_id, fidelity, params)))

    def put(self, result, params: Optional[Dict[str, Any]] = None) -> str:
        """Store a result under the legacy kwargs key."""
        params_doc = {k: repr(v) for k, v in sorted((params or {}).items())}
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "params": params_doc,
            "result": result.to_dict(),
        }
        entry = self._entry_for_params(result.experiment_id,
                                       result.fidelity, params)
        self._write_row(
            entry=entry, experiment=result.experiment_id,
            fidelity=result.fidelity, config_key=None, engine=None,
            kind="legacy", stale=0,
            params_text=_canonical_json(params_doc),
            payload_text=json.dumps(payload))
        telemetry.count("repro_store_writes_total", kind="legacy")
        return entry

    def _write_row(self, *, entry: str, experiment: str, fidelity: str,
                   config_key: Optional[str], engine: Optional[str],
                   kind: str, stale: int, params_text: str,
                   payload_text: str) -> None:
        # INSERT OR REPLACE in autocommit mode: one atomic statement,
        # last full write wins — the WAL analogue of os.replace.
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(entry, experiment, fidelity, config_key, engine, kind, "
                " stale, params, payload, updated_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (entry, experiment, fidelity, config_key, engine, kind,
                 stale, params_text, payload_text, time.time()))

    @staticmethod
    def _engine_of(params: Dict[str, Any]) -> Optional[str]:
        engine = params.get("engine")
        return engine if isinstance(engine, str) else None

    # -- migration ----------------------------------------------------------

    def migrate_from_cache(self, cache: ResultCache) -> Dict[str, Any]:
        """Ingest every readable flat-cache entry, byte-identically.

        The payload file text is stored verbatim (no re-encoding), so a
        migrated entry deserialises to exactly the result the flat
        cache held.  Canonical (``rc``-keyed) entries are re-keyed from
        their embedded params to fill the indexed ``config_key`` /
        ``engine`` columns; entries whose recomputed current-version
        key no longer matches their file name (written by an older
        package version) are kept but marked ``stale`` — ``store gc``
        reclaims them.  Unreadable or wrong-shape files are skipped,
        never raised: migration must not be taken down by the torn
        writes the cache itself tolerates.
        """
        summary = {"scanned": 0, "migrated": 0, "legacy": 0,
                   "stale": 0, "skipped": 0}
        with telemetry.span("store.migrate", source=str(cache.root)):
            with self._lock:
                self._conn.execute("BEGIN")
                try:
                    for path in sorted(cache.root.glob("*/*.json")):
                        summary["scanned"] += 1
                        if self._migrate_one(cache, path, summary):
                            summary["migrated"] += 1
                        else:
                            summary["skipped"] += 1
                    self._conn.execute("COMMIT")
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
        rt = telemetry.active()
        if rt is not None and summary["migrated"]:
            rt.count("repro_store_migrated_total", summary["migrated"])
        return summary

    def _migrate_one(self, cache: ResultCache, path: Path,
                     summary: Dict[str, Any]) -> bool:
        try:
            text = path.read_text()
            payload = json.loads(text)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        if not isinstance(payload, dict) \
                or payload.get("schema") != CACHE_SCHEMA_VERSION \
                or not isinstance(payload.get("result"), dict) \
                or not isinstance(payload.get("params"), dict):
            return False
        entry = path.relative_to(cache.root).as_posix()
        experiment = path.parent.name
        fidelity = path.stem.partition("-")[0]
        params = payload["params"]
        canonical = path.stem.partition("-")[2].startswith("rc")
        config_key = engine = None
        stale = 0
        if canonical:
            config = self._rebuild_config(experiment, fidelity, params)
            if config is not None:
                config_key = config.key()
                engine = self._engine_of(params)
                if self._entry_for_config(config) != entry:
                    stale = 1  # written by another package version
            else:
                stale = 1      # params no longer validate (schema drift)
        summary["stale"] += stale
        if not canonical:
            summary["legacy"] += 1
        self._write_row(
            entry=entry, experiment=experiment, fidelity=fidelity,
            config_key=config_key, engine=engine,
            kind="canonical" if canonical else "legacy", stale=stale,
            params_text=_canonical_json(params), payload_text=text)
        return True

    @staticmethod
    def _rebuild_config(experiment: str, fidelity: str,
                        params: Dict[str, Any]):
        from ..experiments.spec import RunConfig

        try:
            return RunConfig.build(experiment, fidelity, params)
        except AnalysisError:
            return None

    # -- maintenance --------------------------------------------------------

    def gc(self, *, legacy: bool = False,
           dry_run: bool = False) -> Dict[str, Any]:
        """Reclaim rows no current-version probe can ever hit.

        Deletes ``stale`` rows (entries whose version-folded key no
        longer matches their content — old package versions, drifted
        schemas); ``legacy=True`` additionally drops every
        kwargs-keyed row (the pre-RunConfig generation).  ``dry_run``
        reports without deleting.  The database is compacted
        (``VACUUM``) after a real collection.
        """
        clauses = ["stale != 0"]
        if legacy:
            clauses.append("kind = 'legacy'")
        predicate = " OR ".join(clauses)
        with telemetry.span("store.gc", dry_run=dry_run):
            with self._lock:
                doomed = self._conn.execute(
                    f"SELECT COUNT(*) FROM results WHERE {predicate}"
                ).fetchone()[0]
                if not dry_run and doomed:
                    self._conn.execute(
                        f"DELETE FROM results WHERE {predicate}")
                    self._conn.execute("VACUUM")
        if not dry_run and doomed:
            telemetry.count("repro_store_gc_deleted_total", doomed)
        return {"candidates": int(doomed),
                "deleted": 0 if dry_run else int(doomed),
                "dry_run": dry_run}

    def counts(self) -> Dict[str, Any]:
        """Row totals (overall / per experiment / per kind)."""
        with self._lock:
            total = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]
            by_experiment = dict(self._conn.execute(
                "SELECT experiment, COUNT(*) FROM results "
                "GROUP BY experiment ORDER BY experiment").fetchall())
            by_kind = dict(self._conn.execute(
                "SELECT kind, COUNT(*) FROM results GROUP BY kind"
            ).fetchall())
            stale = self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE stale != 0"
            ).fetchone()[0]
        return {"total": int(total), "by_experiment": by_experiment,
                "by_kind": by_kind, "stale": int(stale)}

    def ensure_param_index(self, param: str) -> bool:
        """Expression index over one params field (idempotent).

        Created lazily by the query layer per filtered parameter, so
        axis filters (``where("vdd", "<", 0.7)``) run off an index
        instead of extracting JSON per row.  Returns ``False`` when the
        sqlite build lacks JSON1 (queries then filter in Python).
        """
        if not _PARAM_RE.match(param):
            raise AnalysisError(
                f"invalid parameter name {param!r} for an index")
        if not self.has_json1:
            return False
        with self._lock:
            self._conn.execute(
                f"CREATE INDEX IF NOT EXISTS idx_param_{param} "
                f"ON results(json_extract(params, '$.{param}'))")
        return True

    # -- raw row access (query layer) ---------------------------------------

    def select_rows(self, where_sql: str, args: Tuple[Any, ...]
                    ) -> List[Tuple[str, str, str, str, str]]:
        """``(entry, experiment, fidelity, params, payload)`` rows
        matching a prepared WHERE clause (query-layer plumbing)."""
        sql = ("SELECT entry, experiment, fidelity, params, payload "
               "FROM results")
        if where_sql:
            sql += f" WHERE {where_sql}"
        sql += " ORDER BY entry"
        with self._lock:
            return self._conn.execute(sql, args).fetchall()


def _canonical_json(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))
