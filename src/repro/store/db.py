"""SQLite-backed persistent result store for campaigns at scale.

The flat-JSON :class:`~repro.exec.cache.ResultCache` is perfect for one
machine resuming one campaign, but it cannot answer indexed queries
("every config where ``vdd < 0.7``") without opening every file, and a
fleet of shard processes hammering one directory gives the filesystem
all the coordination work.  :class:`ResultStore` promotes the cache to
a single SQLite database:

* **same contract** — ``get_config`` / ``put_config`` (and the legacy
  kwargs-keyed ``get`` / ``put``) mirror :class:`ResultCache` exactly,
  so the campaign runner, ``run_config`` and ``campaign_status`` take a
  store anywhere they take a cache.  Entries are keyed by the *same*
  version-folded canonical hash the flat cache uses for file names, so
  a store-backed run resolves exactly the configs a flat run would.
* **concurrent writers** — WAL journal mode plus a busy timeout: N
  shard processes (or machines on a shared filesystem) insert rows
  with last-full-write-wins semantics, the database's analogue of the
  flat cache's ``os.replace`` rule.
* **indexed queries** — ``experiment`` / ``fidelity`` / ``engine`` /
  ``config_key`` are real indexed columns, and ``params`` holds the
  canonical parameter JSON so :mod:`repro.store.query` can filter on
  any axis parameter via JSON1 (``json_extract``), with expression
  indexes created on demand per queried parameter.
* **schema-versioned** — a ``store_meta`` table pins
  :data:`STORE_SCHEMA_VERSION`; opening a database written by a
  different layout fails loudly instead of misreading rows.
* **migration** — :meth:`ResultStore.migrate_from_cache` ingests an
  existing flat-JSON cache byte-identically (the payload text is
  stored verbatim), so years of cached paper-fidelity runs become
  queryable without re-running anything.

The store is opt-in (``campaign run --store``); the flat cache stays
the default.  Result payloads round-trip through the same JSON
encoding as the flat cache, so a 2-shard store-backed campaign report
is byte-identical to the serial flat-cache report — pinned by tests
and the ``store-smoke`` CI job.
"""

from __future__ import annotations

import json
import re
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .. import telemetry
from ..circuit.exceptions import AnalysisError
from ..exec.cache import CACHE_SCHEMA_VERSION, ResultCache, default_cache_dir

#: Bump when the table layout below changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: Database file name inside a cache root (``campaign run --store``).
STORE_DB_NAME = "store.sqlite"

PathLike = Union[str, Path]

#: Parameter names are schema-validated identifiers; anything else must
#: never reach SQL (index names, json paths).
_PARAM_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    entry       TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    fidelity    TEXT NOT NULL,
    config_key  TEXT,
    engine      TEXT,
    kind        TEXT NOT NULL DEFAULT 'canonical',
    stale       INTEGER NOT NULL DEFAULT 0,
    params      TEXT NOT NULL,
    payload     TEXT NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_experiment
    ON results(experiment, fidelity);
CREATE INDEX IF NOT EXISTS idx_results_engine ON results(engine);
CREATE INDEX IF NOT EXISTS idx_results_config_key ON results(config_key);
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
-- Performance history (repro.perf).  Additive tables: older builds
-- simply never touch them, so STORE_SCHEMA_VERSION stays at 1 and
-- existing databases gain them on first open by a perf-aware build.
CREATE TABLE IF NOT EXISTS perf_runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at  REAL NOT NULL,
    quick       INTEGER NOT NULL DEFAULT 0,
    baseline    INTEGER NOT NULL DEFAULT 0,
    fingerprint TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS perf_samples (
    run_id          INTEGER NOT NULL,
    benchmark       TEXT NOT NULL,
    metric          TEXT NOT NULL,
    unit            TEXT,
    lower_is_better INTEGER NOT NULL DEFAULT 1,
    kind            TEXT NOT NULL DEFAULT 'workload',
    noise           REAL,
    repeat          INTEGER NOT NULL,
    value           REAL NOT NULL,
    PRIMARY KEY (run_id, benchmark, repeat)
);
CREATE INDEX IF NOT EXISTS idx_perf_samples_benchmark
    ON perf_samples(benchmark, run_id);
"""


def default_store_path(root: Optional[PathLike] = None) -> Path:
    """Database path for a cache root (default root when ``None``)."""
    base = Path(root) if root is not None else default_cache_dir()
    return base / STORE_DB_NAME


class ResultStore:
    """Drop-in, SQLite-backed sibling of :class:`ResultCache`.

    ``root`` is the campaign working directory (shard manifests live
    under it, exactly as for a flat cache); the database defaults to
    ``<root>/store.sqlite`` (:data:`STORE_DB_NAME`).  One instance owns
    one connection, shared across threads behind a lock; concurrent
    *processes* each open their own instance — WAL mode serialises
    their writes.

    >>> store = ResultStore("/tmp/repro-store-doctest")
    >>> store.get("table1", "fast", {}) is None
    True
    """

    def __init__(self, root: PathLike, *, db_path: Optional[PathLike] = None,
                 timeout: float = 30.0):
        self.root = Path(root)
        self.db_path = (Path(db_path) if db_path is not None
                        else self.root / STORE_DB_NAME)
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        #: Flat-cache twin used purely to compute entry keys: the store
        #: shares the cache's version-folded hash so both backends
        #: resolve the same configs.
        self._keys = ResultCache(self.root)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.db_path), timeout=timeout,
                                     isolation_level=None,
                                     check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        self._init_schema()
        self.has_json1 = self._probe_json1()

    # -- lifecycle ----------------------------------------------------------

    def _init_schema(self) -> None:
        with self._lock:
            self._conn.executescript(_SCHEMA_SQL)
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT OR IGNORE INTO store_meta(key, value) "
                    "VALUES ('schema', ?), ('created_at', ?)",
                    (str(STORE_SCHEMA_VERSION), repr(time.time())))
                row = self._conn.execute(
                    "SELECT value FROM store_meta WHERE key = 'schema'"
                ).fetchone()
            if row[0] != str(STORE_SCHEMA_VERSION):
                raise AnalysisError(
                    f"result store {self.db_path} has schema {row[0]}, "
                    f"this build expects {STORE_SCHEMA_VERSION}; migrate "
                    "it (store migrate from a flat cache) or move it "
                    "aside")

    def _probe_json1(self) -> bool:
        try:
            self._conn.execute("SELECT json_extract('{}', '$.x')")
            return True
        except sqlite3.OperationalError:
            return False

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<ResultStore db={str(self.db_path)!r}>"

    # -- key computation (shared with the flat cache) -----------------------

    def _entry_for_config(self, config) -> str:
        path = self._keys.path_for_config(config)
        return path.relative_to(self.root).as_posix()

    def _entry_for_params(self, experiment_id: str, fidelity: str,
                          params: Optional[Dict[str, Any]]) -> str:
        path = self._keys.path_for(experiment_id, fidelity, params)
        return path.relative_to(self.root).as_posix()

    def path_for_config(self, config) -> str:
        """Human-readable location of a config's entry (CLI notices)."""
        return f"{self.db_path}#{self._entry_for_config(config)}"

    # -- decode (mirrors ResultCache._load misses-not-exceptions rule) ------

    def _decode(self, text: Optional[str]):
        from ..experiments.base import ExperimentResult

        if text is None:
            return None
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("schema") != CACHE_SCHEMA_VERSION \
                or not isinstance(payload.get("result"), dict):
            return None
        try:
            return ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError,
                AnalysisError):
            return None

    def _payload_text(self, entry: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE entry = ?",
                (entry,)).fetchone()
        return row[0] if row is not None else None

    # -- RunConfig-keyed interface (the campaign contract) ------------------

    def get_config(self, config, *,
                   legacy_params: Optional[Dict[str, Any]] = None):
        """Stored result for a RunConfig, or ``None`` on miss.

        Mirrors :meth:`ResultCache.get_config` including the legacy
        kwargs-hash probe-and-promote path.
        """
        result = self._decode(self._payload_text(
            self._entry_for_config(config)))
        if result is not None or legacy_params is None:
            telemetry.count(
                "repro_store_lookups_total",
                result="hit" if result is not None else "miss")
            return result
        legacy_entry = self._entry_for_params(
            config.experiment_id, config.fidelity, legacy_params)
        legacy = self._decode(self._payload_text(legacy_entry))
        telemetry.count(
            "repro_store_lookups_total",
            result="hit" if legacy is not None else "miss")
        if legacy is not None:
            self.put_config(legacy, config)
            telemetry.count("repro_store_promotions_total")
        return legacy

    def get_configs(self, configs: Iterable[Any]) -> List[Any]:
        """Batched :meth:`get_config` (one ``IN`` query per 400 configs).

        Returns results aligned with ``configs`` (``None`` per miss) —
        the fast path :func:`repro.campaigns.results.collect_results`
        routes through instead of one round trip per config.
        """
        configs = list(configs)
        entries = [self._entry_for_config(c) for c in configs]
        payloads: Dict[str, str] = {}
        with self._lock:
            for i in range(0, len(entries), 400):
                chunk = entries[i:i + 400]
                marks = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT entry, payload FROM results "
                    f"WHERE entry IN ({marks})", chunk).fetchall()
                payloads.update(rows)
        results = [self._decode(payloads.get(entry)) for entry in entries]
        rt = telemetry.active()
        if rt is not None:
            hits = sum(1 for r in results if r is not None)
            if hits:
                rt.count("repro_store_lookups_total", hits, result="hit")
            if len(results) - hits:
                rt.count("repro_store_lookups_total", len(results) - hits,
                         result="miss")
        return results

    def put_config(self, result, config) -> str:
        """Store a result under the config's canonical key."""
        params = config.canonical_dict()["params"]
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "params": params,
            "result": result.to_dict(),
        }
        entry = self._entry_for_config(config)
        self._write_row(
            entry=entry, experiment=config.experiment_id,
            fidelity=config.fidelity, config_key=config.key(),
            engine=self._engine_of(params), kind="canonical", stale=0,
            params_text=_canonical_json(params),
            payload_text=json.dumps(payload))
        telemetry.count("repro_store_writes_total", kind="canonical")
        return entry

    # -- legacy kwargs-keyed interface --------------------------------------

    def get(self, experiment_id: str, fidelity: str,
            params: Optional[Dict[str, Any]] = None):
        """Stored result under the legacy kwargs key, or ``None``."""
        return self._decode(self._payload_text(
            self._entry_for_params(experiment_id, fidelity, params)))

    def put(self, result, params: Optional[Dict[str, Any]] = None) -> str:
        """Store a result under the legacy kwargs key."""
        params_doc = {k: repr(v) for k, v in sorted((params or {}).items())}
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "params": params_doc,
            "result": result.to_dict(),
        }
        entry = self._entry_for_params(result.experiment_id,
                                       result.fidelity, params)
        self._write_row(
            entry=entry, experiment=result.experiment_id,
            fidelity=result.fidelity, config_key=None, engine=None,
            kind="legacy", stale=0,
            params_text=_canonical_json(params_doc),
            payload_text=json.dumps(payload))
        telemetry.count("repro_store_writes_total", kind="legacy")
        return entry

    def _write_row(self, *, entry: str, experiment: str, fidelity: str,
                   config_key: Optional[str], engine: Optional[str],
                   kind: str, stale: int, params_text: str,
                   payload_text: str) -> None:
        # INSERT OR REPLACE in autocommit mode: one atomic statement,
        # last full write wins — the WAL analogue of os.replace.
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(entry, experiment, fidelity, config_key, engine, kind, "
                " stale, params, payload, updated_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (entry, experiment, fidelity, config_key, engine, kind,
                 stale, params_text, payload_text, time.time()))

    @staticmethod
    def _engine_of(params: Dict[str, Any]) -> Optional[str]:
        engine = params.get("engine")
        return engine if isinstance(engine, str) else None

    # -- migration ----------------------------------------------------------

    def migrate_from_cache(self, cache: ResultCache) -> Dict[str, Any]:
        """Ingest every readable flat-cache entry, byte-identically.

        The payload file text is stored verbatim (no re-encoding), so a
        migrated entry deserialises to exactly the result the flat
        cache held.  Canonical (``rc``-keyed) entries are re-keyed from
        their embedded params to fill the indexed ``config_key`` /
        ``engine`` columns; entries whose recomputed current-version
        key no longer matches their file name (written by an older
        package version) are kept but marked ``stale`` — ``store gc``
        reclaims them.  Unreadable or wrong-shape files are skipped,
        never raised: migration must not be taken down by the torn
        writes the cache itself tolerates.
        """
        summary = {"scanned": 0, "migrated": 0, "legacy": 0,
                   "stale": 0, "skipped": 0}
        with telemetry.span("store.migrate", source=str(cache.root)):
            with self._lock:
                self._conn.execute("BEGIN")
                try:
                    for path in sorted(cache.root.glob("*/*.json")):
                        summary["scanned"] += 1
                        if self._migrate_one(cache, path, summary):
                            summary["migrated"] += 1
                        else:
                            summary["skipped"] += 1
                    self._conn.execute("COMMIT")
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
        rt = telemetry.active()
        if rt is not None and summary["migrated"]:
            rt.count("repro_store_migrated_total", summary["migrated"])
        return summary

    def _migrate_one(self, cache: ResultCache, path: Path,
                     summary: Dict[str, Any]) -> bool:
        try:
            text = path.read_text()
            payload = json.loads(text)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        if not isinstance(payload, dict) \
                or payload.get("schema") != CACHE_SCHEMA_VERSION \
                or not isinstance(payload.get("result"), dict) \
                or not isinstance(payload.get("params"), dict):
            return False
        entry = path.relative_to(cache.root).as_posix()
        experiment = path.parent.name
        fidelity = path.stem.partition("-")[0]
        params = payload["params"]
        canonical = path.stem.partition("-")[2].startswith("rc")
        config_key = engine = None
        stale = 0
        if canonical:
            config = self._rebuild_config(experiment, fidelity, params)
            if config is not None:
                config_key = config.key()
                engine = self._engine_of(params)
                if self._entry_for_config(config) != entry:
                    stale = 1  # written by another package version
            else:
                stale = 1      # params no longer validate (schema drift)
        summary["stale"] += stale
        if not canonical:
            summary["legacy"] += 1
        self._write_row(
            entry=entry, experiment=experiment, fidelity=fidelity,
            config_key=config_key, engine=engine,
            kind="canonical" if canonical else "legacy", stale=stale,
            params_text=_canonical_json(params), payload_text=text)
        return True

    @staticmethod
    def _rebuild_config(experiment: str, fidelity: str,
                        params: Dict[str, Any]):
        from ..experiments.spec import RunConfig

        try:
            return RunConfig.build(experiment, fidelity, params)
        except AnalysisError:
            return None

    # -- performance history (repro.perf) -----------------------------------

    def record_perf_run(self, doc: Dict[str, Any]) -> int:
        """Persist one :mod:`repro.perf` run document; returns its id.

        One transaction: the ``perf_runs`` header plus every
        per-repeat sample — a run is either fully recorded or absent.
        """
        with telemetry.span("store.perf_record"):
            with self._lock:
                self._conn.execute("BEGIN")
                try:
                    cursor = self._conn.execute(
                        "INSERT INTO perf_runs"
                        "(created_at, quick, baseline, fingerprint) "
                        "VALUES (?, ?, 0, ?)",
                        (float(doc.get("created_at", time.time())),
                         1 if doc.get("quick") else 0,
                         _canonical_json(doc.get("fingerprint", {}))))
                    run_id = cursor.lastrowid
                    for bench in doc.get("benchmarks", []):
                        for repeat, value in enumerate(bench["samples"]):
                            self._conn.execute(
                                "INSERT INTO perf_samples"
                                "(run_id, benchmark, metric, unit, "
                                " lower_is_better, kind, noise, repeat, "
                                " value) "
                                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                                (run_id, bench["benchmark"],
                                 bench["metric"], bench.get("unit"),
                                 1 if bench.get("lower_is_better", True)
                                 else 0,
                                 bench.get("kind", "workload"),
                                 bench.get("noise"), repeat,
                                 float(value)))
                    self._conn.execute("COMMIT")
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
        telemetry.count("repro_store_perf_writes_total")
        return int(run_id)

    def _perf_header(self, row) -> Dict[str, Any]:
        run_id, created_at, quick, baseline, fingerprint = row
        try:
            stamp = json.loads(fingerprint)
        except (json.JSONDecodeError, TypeError):
            stamp = {}
        return {"run_id": int(run_id), "created_at": float(created_at),
                "quick": bool(quick), "baseline": bool(baseline),
                "fingerprint": stamp}

    _PERF_RUN_COLS = "run_id, created_at, quick, baseline, fingerprint"

    def perf_run(self, run_id: Optional[int] = None
                 ) -> Optional[Dict[str, Any]]:
        """One stored run as a runner-shaped document (latest when
        ``run_id`` is ``None``); ``None`` if absent."""
        with self._lock:
            if run_id is None:
                row = self._conn.execute(
                    f"SELECT {self._PERF_RUN_COLS} FROM perf_runs "
                    "ORDER BY run_id DESC LIMIT 1").fetchone()
            else:
                row = self._conn.execute(
                    f"SELECT {self._PERF_RUN_COLS} FROM perf_runs "
                    "WHERE run_id = ?", (int(run_id),)).fetchone()
            if row is None:
                return None
            samples = self._conn.execute(
                "SELECT benchmark, metric, unit, lower_is_better, kind, "
                "noise, value FROM perf_samples WHERE run_id = ? "
                "ORDER BY rowid", (row[0],)).fetchall()
        doc = self._perf_header(row)
        benchmarks: Dict[str, Dict[str, Any]] = {}
        for name, metric, unit, lower, kind, noise, value in samples:
            slot = benchmarks.setdefault(name, {
                "benchmark": name, "kind": kind, "metric": metric,
                "unit": unit, "lower_is_better": bool(lower),
                "noise": noise, "samples": []})
            slot["samples"].append(float(value))
        for slot in benchmarks.values():
            pick = min if slot["lower_is_better"] else max
            slot["value"] = pick(slot["samples"])
        doc["benchmarks"] = list(benchmarks.values())
        return doc

    def perf_runs(self, *, limit: Optional[int] = None
                  ) -> List[Dict[str, Any]]:
        """Run headers, newest first, with per-run benchmark counts."""
        sql = (f"SELECT {self._PERF_RUN_COLS}, "
               "(SELECT COUNT(DISTINCT benchmark) FROM perf_samples s "
               " WHERE s.run_id = perf_runs.run_id) "
               "FROM perf_runs ORDER BY run_id DESC")
        args: Tuple[Any, ...] = ()
        if limit is not None:
            sql += " LIMIT ?"
            args = (int(limit),)
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        headers = []
        for row in rows:
            header = self._perf_header(row[:5])
            header["benchmarks"] = int(row[5])
            headers.append(header)
        return headers

    def previous_perf_run(self, run_id: int) -> Optional[Dict[str, Any]]:
        """The newest run older than ``run_id`` (compare's default)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT run_id FROM perf_runs WHERE run_id < ? "
                "ORDER BY run_id DESC LIMIT 1", (int(run_id),)).fetchone()
        return self.perf_run(int(row[0])) if row is not None else None

    def set_perf_baseline(self, run_id: int) -> None:
        """Flag exactly one stored run as the gate baseline."""
        with self._lock:
            exists = self._conn.execute(
                "SELECT 1 FROM perf_runs WHERE run_id = ?",
                (int(run_id),)).fetchone()
            if exists is None:
                raise AnalysisError(
                    f"no stored perf run {run_id} to flag as baseline")
            self._conn.execute("BEGIN")
            try:
                self._conn.execute("UPDATE perf_runs SET baseline = 0")
                self._conn.execute(
                    "UPDATE perf_runs SET baseline = 1 WHERE run_id = ?",
                    (int(run_id),))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def perf_baseline_run(self) -> Optional[Dict[str, Any]]:
        """The run flagged by :meth:`set_perf_baseline`, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT run_id FROM perf_runs WHERE baseline = 1 "
                "ORDER BY run_id DESC LIMIT 1").fetchone()
        return self.perf_run(int(row[0])) if row is not None else None

    def perf_history(self, benchmark: Optional[str] = None, *,
                     limit: int = 60) -> Dict[str, List[Dict[str, Any]]]:
        """Per-benchmark tracked-value series, oldest-to-newest.

        ``{benchmark: [{"run_id", "created_at", "quick", "value",
        "unit", "lower_is_better"}, ...]}`` — the last ``limit`` runs
        per benchmark, the ``/perf`` sparkline feed.
        """
        sql = ("SELECT s.benchmark, s.run_id, r.created_at, r.quick, "
               "s.unit, s.lower_is_better, MIN(s.value), MAX(s.value) "
               "FROM perf_samples s "
               "JOIN perf_runs r ON r.run_id = s.run_id")
        args: Tuple[Any, ...] = ()
        if benchmark is not None:
            sql += " WHERE s.benchmark = ?"
            args = (benchmark,)
        sql += " GROUP BY s.benchmark, s.run_id ORDER BY s.benchmark, s.run_id"
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        history: Dict[str, List[Dict[str, Any]]] = {}
        for name, run_id, created_at, quick, unit, lower, vmin, vmax in rows:
            history.setdefault(name, []).append({
                "run_id": int(run_id),
                "created_at": float(created_at),
                "quick": bool(quick),
                "unit": unit,
                "lower_is_better": bool(lower),
                "value": float(vmin if lower else vmax),
            })
        if limit is not None:
            history = {name: points[-int(limit):]
                       for name, points in history.items()}
        return history

    # -- maintenance --------------------------------------------------------

    def gc(self, *, legacy: bool = False, dry_run: bool = False,
           older_than_days: Optional[float] = None) -> Dict[str, Any]:
        """Reclaim rows no current-version probe can ever hit.

        Deletes ``stale`` rows (entries whose version-folded key no
        longer matches their content — old package versions, drifted
        schemas); ``legacy=True`` additionally drops every
        kwargs-keyed row (the pre-RunConfig generation).  ``dry_run``
        reports without deleting.  The database is compacted
        (``VACUUM``) after a real collection.

        ``older_than_days`` turns collection into an age-based
        retention policy: result rows only qualify when *also* older
        than the cutoff, and perf runs (with their samples) older than
        the cutoff are reclaimed too — except the flagged baseline
        run, which is history worth keeping at any age.
        """
        cutoff = (time.time() - float(older_than_days) * 86400.0
                  if older_than_days is not None else None)
        clauses = ["stale != 0"]
        if legacy:
            clauses.append("kind = 'legacy'")
        if cutoff is not None:
            clauses = [f"({clause} AND updated_at < ?)"
                       for clause in clauses]
            args: Tuple[Any, ...] = (cutoff,) * len(clauses)
        else:
            args = ()
        predicate = " OR ".join(clauses)
        perf_doomed = 0
        with telemetry.span("store.gc", dry_run=dry_run):
            with self._lock:
                doomed = self._conn.execute(
                    f"SELECT COUNT(*) FROM results WHERE {predicate}",
                    args).fetchone()[0]
                if cutoff is not None:
                    perf_doomed = self._conn.execute(
                        "SELECT COUNT(*) FROM perf_runs "
                        "WHERE baseline = 0 AND created_at < ?",
                        (cutoff,)).fetchone()[0]
                if not dry_run and (doomed or perf_doomed):
                    if doomed:
                        self._conn.execute(
                            f"DELETE FROM results WHERE {predicate}",
                            args)
                    if perf_doomed:
                        self._conn.execute(
                            "DELETE FROM perf_samples WHERE run_id IN "
                            "(SELECT run_id FROM perf_runs "
                            " WHERE baseline = 0 AND created_at < ?)",
                            (cutoff,))
                        self._conn.execute(
                            "DELETE FROM perf_runs "
                            "WHERE baseline = 0 AND created_at < ?",
                            (cutoff,))
                    self._conn.execute("VACUUM")
        if not dry_run:
            if doomed:
                telemetry.count("repro_store_gc_deleted_total", doomed)
            if perf_doomed:
                telemetry.count("repro_store_gc_perf_runs_deleted_total",
                                perf_doomed)
        return {"candidates": int(doomed),
                "deleted": 0 if dry_run else int(doomed),
                "perf_candidates": int(perf_doomed),
                "perf_deleted": 0 if dry_run else int(perf_doomed),
                "dry_run": dry_run}

    def counts(self) -> Dict[str, Any]:
        """Row totals (overall / per experiment / per kind)."""
        with self._lock:
            total = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]
            by_experiment = dict(self._conn.execute(
                "SELECT experiment, COUNT(*) FROM results "
                "GROUP BY experiment ORDER BY experiment").fetchall())
            by_kind = dict(self._conn.execute(
                "SELECT kind, COUNT(*) FROM results GROUP BY kind"
            ).fetchall())
            stale = self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE stale != 0"
            ).fetchone()[0]
        return {"total": int(total), "by_experiment": by_experiment,
                "by_kind": by_kind, "stale": int(stale)}

    def ensure_param_index(self, param: str) -> bool:
        """Expression index over one params field (idempotent).

        Created lazily by the query layer per filtered parameter, so
        axis filters (``where("vdd", "<", 0.7)``) run off an index
        instead of extracting JSON per row.  Returns ``False`` when the
        sqlite build lacks JSON1 (queries then filter in Python).
        """
        if not _PARAM_RE.match(param):
            raise AnalysisError(
                f"invalid parameter name {param!r} for an index")
        if not self.has_json1:
            return False
        with self._lock:
            self._conn.execute(
                f"CREATE INDEX IF NOT EXISTS idx_param_{param} "
                f"ON results(json_extract(params, '$.{param}'))")
        return True

    # -- raw row access (query layer) ---------------------------------------

    def select_rows(self, where_sql: str, args: Tuple[Any, ...]
                    ) -> List[Tuple[str, str, str, str, str]]:
        """``(entry, experiment, fidelity, params, payload)`` rows
        matching a prepared WHERE clause (query-layer plumbing)."""
        sql = ("SELECT entry, experiment, fidelity, params, payload "
               "FROM results")
        if where_sql:
            sql += f" WHERE {where_sql}"
        sql += " ORDER BY entry"
        with self._lock:
            return self._conn.execute(sql, args).fetchall()


def _canonical_json(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))
