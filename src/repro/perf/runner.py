"""Benchmark runner: execute specs, fingerprint the host, persist runs.

A run document is self-describing and store-independent::

    {"schema": 1, "created_at": ..., "quick": false,
     "fingerprint": {"git_sha": ..., "python": ..., "numpy": ...,
                     "scipy": ..., "platform": ..., "machine": ...,
                     "cpu_count": ...},
     "benchmarks": [{"benchmark": id, "kind", "metric", "unit",
                     "lower_is_better", "noise", "samples": [...],
                     "value", "mean_seconds"?, "payload"?}, ...]}

``value`` is the tracked scalar: min-of-repeats for workload
benchmarks, the chosen payload metric (or wall seconds) for report
benchmarks.  When a :class:`~repro.store.db.ResultStore` is given, the
run lands in its ``perf_runs``/``perf_samples`` tables and the
document gains a ``run_id`` — the handle ``perf history``, ``compare``
and ``gate`` work from.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .. import telemetry
from ..circuit.exceptions import AnalysisError
from .harness import sample, timed
from .registry import BenchmarkSpec, get_benchmark, list_benchmarks

#: Bump when the run-document layout changes incompatibly.
PERF_SCHEMA_VERSION = 1


def _module_version(name: str) -> Optional[str]:
    try:
        module = __import__(name)
        return str(getattr(module, "__version__", None))
    except ImportError:
        return None


def _git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def environment_fingerprint(repo_root: Optional[Path] = None
                            ) -> Dict[str, Any]:
    """The host/toolchain stamp attached to every perf run.

    Comparisons across different fingerprints are still allowed (CI
    runners change), but the stamp makes "the baseline was a different
    machine" an answerable question instead of a guess.
    """
    return {
        "git_sha": _git_sha(repo_root),
        "python": platform.python_version(),
        "numpy": _module_version("numpy"),
        "scipy": _module_version("scipy"),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def run_benchmark(spec: BenchmarkSpec, *, quick: bool = False,
                  repeats: Optional[int] = None) -> Dict[str, Any]:
    """Execute one spec under its warmup/repeat policy.

    Workload kind: ``spec.fn(quick=...)`` builds the workload once
    (setup excluded from timing), then every repeat is recorded as a
    sample and ``value`` is the min.  Report kind: the function runs
    once; its payload rides along and ``value`` is the tracked metric.
    """
    entry: Dict[str, Any] = {
        "benchmark": spec.id,
        "kind": spec.kind,
        "metric": spec.resolved_metric(),
        "unit": spec.unit,
        "lower_is_better": spec.lower_is_better,
        "noise": spec.noise,
    }
    with telemetry.span("perf.benchmark", benchmark=spec.id):
        if spec.kind == "workload":
            workload = spec.fn(quick=quick)
            if not callable(workload):
                raise AnalysisError(
                    f"benchmark {spec.id!r}: workload factory returned "
                    f"{type(workload).__name__}, expected a callable")
            n = repeats if repeats is not None else (
                spec.quick_repeats if quick else spec.repeats)
            samples = sample(workload, n, warmup=spec.warmup)
            entry["samples"] = samples
            entry["value"] = min(samples)
            entry["mean_seconds"] = sum(samples) / len(samples)
        else:
            wall, payload = timed(lambda: spec.fn(quick=quick))
            if not isinstance(payload, dict):
                raise AnalysisError(
                    f"benchmark {spec.id!r}: report function returned "
                    f"{type(payload).__name__}, expected a dict payload")
            if spec.metric is None:
                value = wall
            else:
                value = payload.get(spec.metric)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    raise AnalysisError(
                        f"benchmark {spec.id!r}: payload metric "
                        f"{spec.metric!r} is {value!r}, expected a "
                        "number")
            entry["samples"] = [float(value)]
            entry["value"] = float(value)
            entry["wall_seconds"] = wall
            entry["payload"] = payload
    telemetry.count("repro_perf_benchmarks_total", benchmark=spec.id)
    return entry


def run_benchmarks(ids: Optional[Sequence[str]] = None, *,
                   tag: Optional[str] = None, quick: bool = False,
                   repeats: Optional[int] = None, store=None,
                   repo_root: Optional[Path] = None,
                   progress=None) -> Dict[str, Any]:
    """Run a set of benchmarks into one fingerprinted run document.

    ``ids`` picks explicit benchmarks (unknown ids raise with the
    registered list); otherwise every registered benchmark runs,
    optionally filtered by ``tag``.  ``progress`` is an optional
    ``fn(spec)`` hook the CLI uses for live per-benchmark lines.
    """
    if ids:
        specs = [get_benchmark(i) for i in ids]
        if tag is not None:
            specs = [s for s in specs if tag in s.tags]
    else:
        specs = list_benchmarks(tag)
    if not specs:
        raise AnalysisError(
            "no benchmarks selected"
            + (f" (tag {tag!r} matched nothing)" if tag else ""))
    doc: Dict[str, Any] = {
        "schema": PERF_SCHEMA_VERSION,
        "created_at": time.time(),
        "quick": quick,
        "fingerprint": environment_fingerprint(repo_root),
        "benchmarks": [],
    }
    with telemetry.span("perf.run", quick=quick, count=len(specs)):
        for spec in specs:
            if progress is not None:
                progress(spec)
            doc["benchmarks"].append(
                run_benchmark(spec, quick=quick, repeats=repeats))
    telemetry.count("repro_perf_runs_total")
    if store is not None:
        doc["run_id"] = store.record_perf_run(doc)
    return doc
