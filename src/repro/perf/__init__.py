"""Continuous performance observability: registry, runner, gate.

The performance twin of :mod:`repro.experiments`: benchmarks are
declared once with :func:`benchmark` (:mod:`repro.perf.registry`),
executed under a shared warmup/repeat policy into fingerprinted run
documents (:mod:`repro.perf.runner`) persisted in the SQLite
:class:`~repro.store.db.ResultStore`'s ``perf_runs``/``perf_samples``
tables, and compared against baselines with per-benchmark noise bands
and telemetry span attribution (:mod:`repro.perf.compare`).  The CLI
surface is ``repro perf run|list|history|compare|gate``; the shared
measurement helpers the ``benchmarks/bench_*.py`` scripts use live in
:mod:`repro.perf.harness`.

This ``__init__`` stays import-light: the built-in suite
(:mod:`repro.perf.suite`) pulls in circuit/exec/serve/store and is
only imported when the registry is actually consulted.
"""

from .compare import (BASELINE_SCHEMA_VERSION, DEFAULT_NOISE,  # noqa: F401
                      attribute_benchmark, baseline_document,
                      compare_runs, gate_run, load_baseline, self_times)
from .harness import (best_of, best_of_with_result, cli_env,  # noqa: F401
                      finish, host_fields, median_of, sample, sparkline,
                      timed)
from .registry import (BENCHMARKS, BenchmarkSpec, benchmark,  # noqa: F401
                       describe_benchmarks, get_benchmark,
                       list_benchmarks, load_benchmark_scripts)
from .runner import (PERF_SCHEMA_VERSION, environment_fingerprint,  # noqa: F401
                     run_benchmark, run_benchmarks)

__all__ = [
    "BASELINE_SCHEMA_VERSION", "BENCHMARKS", "BenchmarkSpec",
    "DEFAULT_NOISE", "PERF_SCHEMA_VERSION", "attribute_benchmark",
    "baseline_document", "benchmark", "best_of", "best_of_with_result",
    "cli_env",
    "compare_runs", "describe_benchmarks", "environment_fingerprint",
    "finish", "gate_run", "get_benchmark", "host_fields",
    "list_benchmarks", "load_baseline", "load_benchmark_scripts",
    "median_of", "run_benchmark", "run_benchmarks", "sample",
    "self_times", "sparkline", "timed",
]
