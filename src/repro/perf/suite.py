"""The built-in benchmark suite: one hot path per subsystem.

Every benchmark here is **quick-capable** (sized to finish in well
under a second per repeat with ``--quick`` on a single-core CI runner)
and tagged ``gate`` so ``repro perf gate`` exercises the whole stack
by default: circuit (shooting PSS + dense MNA transient), exec
(vectorised Monte-Carlo), serving (batched inference plus closed-loop
HTTP load generation against the asyncio transport), and the SQLite
store (indexed axis query).  Workload factories do all setup outside
the timed region; the returned callables traverse the instrumented
spans (``adder.evaluate`` → ``pss.shooting`` → ``mna.transient`` →
``mna.newton``, …), which is what makes gate span-attribution
meaningful.

Absolute-seconds benchmarks carry wide noise bands (100%) because the
committed baseline is measured on a different machine than any given
CI runner; the dimensionless speedup ratio is machine-stable and gets
a tighter band.  The heavyweight end-to-end numbers stay in the
``benchmarks/bench_*.py`` scripts (registered separately as
``script.*`` report benchmarks).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from .harness import best_of
from .registry import benchmark


def _ladder(stages: int):
    """A deterministic RC ladder driven by a pulse source."""
    from ..circuit import Capacitor, Circuit, Resistor, Vpulse

    c = Circuit("perf_ladder")
    c.add(Vpulse("VIN", "n0", "0", v1=0.0, v2=1.0, rise=1e-9, fall=1e-9,
                 width=40e-9, period=100e-9))
    rng = np.random.default_rng(11)
    for k in range(stages):
        c.add(Resistor(f"R{k}", f"n{k}", f"n{k + 1}",
                       float(10 ** rng.uniform(3, 4))))
        c.add(Capacitor(f"C{k}", f"n{k + 1}", "0",
                        float(10 ** rng.uniform(-13, -12))))
    return c


@benchmark("pss.shooting.adder",
           title="3-input weighted adder via the spice shooting PSS",
           tags=("gate", "circuit"), repeats=3, warmup=1,
           quick_repeats=2, noise=1.0,
           description="WeightedAdder.evaluate(engine='spice'): the "
                       "transistor netlist through shooting PSS, the "
                       "paper's core analogue compute primitive.")
def _pss_shooting_adder(quick: bool = False):
    from ..core.weighted_adder import AdderConfig, WeightedAdder

    adder = WeightedAdder(AdderConfig())
    steps = 12 if quick else 24

    def workload():
        return adder.evaluate((0.2, 0.6, 0.8), (5, 6, 7),
                              engine="spice", steps_per_period=steps)

    return workload


@benchmark("mna.transient.ladder",
           title="RC-ladder transient through the MNA engine",
           tags=("gate", "circuit"), repeats=3, warmup=1,
           quick_repeats=2, noise=1.0,
           description="Fixed-step transient of a pulse-driven RC "
                       "ladder (the dense linear backend's bread and "
                       "butter).")
def _mna_transient_ladder(quick: bool = False):
    from ..circuit import transient

    stages = 12 if quick else 24
    circuit = _ladder(stages)
    t_stop, dt = 10e-9, 0.5e-9
    transient(circuit, t_stop, dt)   # warm any lazy assembly caches

    def workload():
        return transient(circuit, t_stop, dt)

    return workload


@benchmark("exec.montecarlo.vectorized",
           title="vectorised Monte-Carlo mismatch batch",
           tags=("gate", "exec"), repeats=3, warmup=1,
           quick_repeats=2, noise=1.0,
           description="adder_monte_carlo(method='vectorized') on one "
                       "Table II row — the 51x exec-engine win's fast "
                       "path.")
def _exec_montecarlo_vectorized(quick: bool = False):
    from ..analysis import adder_monte_carlo
    from ..core.weighted_adder import AdderConfig, WeightedAdder
    from ..experiments.table2_adder import PAPER_ROWS

    adder = WeightedAdder(AdderConfig())
    row = PAPER_ROWS[0]
    n_trials = 40 if quick else 200

    def workload():
        return adder_monte_carlo(adder, row.duties, row.weights,
                                 n_trials=n_trials, seed=3,
                                 method="vectorized")

    return workload


@benchmark("exec.montecarlo.speedup",
           title="Monte-Carlo loop-vs-vectorised speedup ratio",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, tags=("gate", "exec"), noise=0.6,
           description="Dimensionless loop/vectorised ratio on one "
                       "Table II row — machine-stable, so it guards "
                       "the exec-engine win across CI runners.")
def _exec_montecarlo_speedup(quick: bool = False):
    from ..analysis import adder_monte_carlo
    from ..core.weighted_adder import AdderConfig, WeightedAdder
    from ..experiments.table2_adder import PAPER_ROWS

    adder = WeightedAdder(AdderConfig())
    row = PAPER_ROWS[0]
    n_trials = 40 if quick else 200

    def run(method: str):
        return adder_monte_carlo(adder, row.duties, row.weights,
                                 n_trials=n_trials, seed=3,
                                 method=method)

    repeats = 1 if quick else 2
    t_loop = best_of(lambda: run("loop"), repeats, warmup=1)
    t_vec = best_of(lambda: run("vectorized"), repeats, warmup=1)
    return {"n_trials": n_trials,
            "loop_seconds": t_loop,
            "vectorized_seconds": t_vec,
            "speedup": t_loop / t_vec}


@benchmark("serve.batch_predict",
           title="batched perceptron inference (serve engine)",
           tags=("gate", "serve"), repeats=5, warmup=1,
           quick_repeats=3, noise=1.0,
           description="BatchInferenceEngine.predict on a uniform "
                       "random batch — the serving plane's vectorised "
                       "hot path.")
def _serve_batch_predict(quick: bool = False):
    from ..analysis import make_blobs
    from ..core.training import PerceptronTrainer
    from ..serve import BatchInferenceEngine

    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=60).perceptron
    rng = np.random.default_rng(5)
    X = rng.uniform(0.0, 1.0, (128 if quick else 256, 2))
    engine = BatchInferenceEngine()
    engine.predict(model, X)         # warm

    def workload():
        return engine.predict(model, X)

    return workload


def _loadgen_model(tmp_root: str):
    """Export the blobs perceptron into a throwaway store; returns the
    store and a 4-row request payload."""
    from ..analysis import make_blobs
    from ..core.training import PerceptronTrainer
    from ..serve import ModelStore

    data = make_blobs(n_per_class=30, n_features=2, separation=0.35,
                      spread=0.09, seed=7)
    model = PerceptronTrainer(2, seed=7).fit(data.X, data.y,
                                             epochs=60).perceptron
    store = ModelStore(tmp_root)
    store.save("loadgen", model)
    return store, data.X[:4].tolist()


@benchmark("serve.loadgen.aio",
           title="asyncio /predict saturation under concurrent load",
           kind="report", metric="rows_per_s", unit="rows/s",
           lower_is_better=False, tags=("gate", "serve"), noise=1.0,
           description="Closed-loop load generation against the "
                       "asyncio transport: keep-alive connections "
                       "sending 4-row /predict requests back-to-back; "
                       "tracks the serving plane's saturation rows/s.")
def _serve_loadgen_aio(quick: bool = False):
    from ..serve import AsyncPerceptronServer
    from ..serve.loadgen import run_closed_loop

    connections = 16 if quick else 64
    duration = 0.5 if quick else 2.0
    with tempfile.TemporaryDirectory(
            prefix="repro-perf-loadgen-") as tmp:
        store, inputs = _loadgen_model(tmp)
        with AsyncPerceptronServer(store, workers=0) as server:
            report = run_closed_loop(server.url, "loadgen", inputs,
                                     connections=connections,
                                     duration=duration)
    return report


@benchmark("serve.loadgen.speedup",
           title="asyncio vs threaded transport saturation ratio",
           kind="report", metric="speedup", unit="x",
           lower_is_better=False, tags=("gate", "serve"), noise=0.8,
           description="Closed-loop saturation rows/s of the asyncio "
                       "transport over the threaded one, same model "
                       "and load — the dimensionless guard on the "
                       "serving-plane rewrite (acceptance: >= 5x at "
                       "full load).")
def _serve_loadgen_speedup(quick: bool = False):
    from ..serve import AsyncPerceptronServer, PerceptronServer
    from ..serve.loadgen import run_closed_loop

    connections = 16 if quick else 64
    duration = 0.5 if quick else 2.0
    with tempfile.TemporaryDirectory(
            prefix="repro-perf-loadgen-") as tmp:
        store, inputs = _loadgen_model(tmp)
        with AsyncPerceptronServer(store, workers=0) as aio:
            r_aio = run_closed_loop(aio.url, "loadgen", inputs,
                                    connections=connections,
                                    duration=duration)
        with PerceptronServer(store) as threaded:
            r_thr = run_closed_loop(threaded.url, "loadgen", inputs,
                                    connections=connections,
                                    duration=duration)
    return {"connections": connections,
            "aio_rows_per_s": r_aio["rows_per_s"],
            "threaded_rows_per_s": r_thr["rows_per_s"],
            "aio_latency_ms": r_aio["latency_ms"],
            "threaded_latency_ms": r_thr["latency_ms"],
            "speedup": round(r_aio["rows_per_s"]
                             / max(r_thr["rows_per_s"], 1e-9), 2)}


@benchmark("store.indexed_query",
           title="JSON1-indexed axis query over the SQLite store",
           tags=("gate", "store"), repeats=5, warmup=1,
           quick_repeats=3, noise=1.0,
           description="StoreQuery.where('seed', '<', k).rows() "
                       "against a populated store, expression index "
                       "warm — the campaign-analysis hot path.")
def _store_indexed_query(quick: bool = False):
    from ..experiments import RunConfig, run_config
    from ..store import ResultStore, StoreQuery

    tmp = tempfile.TemporaryDirectory(prefix="repro-perf-store-")
    store = ResultStore(Path(tmp.name))
    result = run_config(RunConfig.build("ext_montecarlo", "fast",
                                        {"seed": 0}))
    n_rows = 60 if quick else 150
    for k in range(n_rows):
        store.put_config(result, RunConfig.build(
            "ext_montecarlo", "fast", {"seed": k}))
    query = StoreQuery(store, "ext_montecarlo").where(
        "seed", "<", n_rows // 10)
    query.rows()                     # warm: builds the expression index

    def workload():
        return query.rows()

    # The tempdir (and the store in it) must outlive the timing loop.
    workload._keepalive = (tmp, store)
    return workload
