"""The ``@benchmark`` registry: typed, discoverable performance specs.

Mirrors the ``@experiment`` registry (:mod:`repro.experiments.spec`):
every benchmark is a frozen :class:`BenchmarkSpec` registered under a
unique id, so the CLI can enumerate, filter by tag, and ``describe()``
the whole performance surface as JSON without running anything.

Two benchmark kinds:

* ``"workload"`` — the registered function is a *factory*: called once
  per run as ``fn(quick=...)`` it does all setup and returns a zero-arg
  callable.  The runner applies the spec's warmup/repeat policy to that
  callable, records every repeat as a sample, and reports the **min**
  (the classic best-of-N: the least-noise estimate of the true cost on
  a shared machine).
* ``"report"`` — the function runs once and returns a plain dict (the
  shape of the legacy ``BENCH_*.json`` payloads); the tracked value is
  ``payload[spec.metric]``, or the wall time when ``metric`` is
  ``None``.  This is how the seven historical ``bench_*.py`` scripts
  register without giving up their self-managed output files.

Every spec carries its own relative ``noise`` band — the fraction of
the baseline value the comparator treats as measurement noise rather
than a regression.  Absolute-seconds benchmarks on shared CI runners
need wide bands (100%+); dimensionless ratios (speedups) are far more
stable across machines and can use tight ones.
"""

from __future__ import annotations

import importlib.util
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..circuit.exceptions import AnalysisError

#: The two registration kinds (see module docstring).
BENCHMARK_KINDS = ("workload", "report")

#: Registry of every known benchmark, keyed by id.
BENCHMARKS: Dict[str, "BenchmarkSpec"] = {}


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered benchmark: identity, policy, and the function."""

    id: str
    title: str
    fn: Callable[..., Any]
    kind: str = "workload"
    #: Name of the tracked scalar ("best_seconds" for workloads; a
    #: payload key for reports, or None -> wall seconds).
    metric: Optional[str] = "best_seconds"
    unit: str = "s"
    lower_is_better: bool = True
    repeats: int = 5
    warmup: int = 1
    #: Repeat count under ``--quick`` (workload kind only).
    quick_repeats: int = 3
    #: Relative noise band for the comparator (fraction of baseline).
    noise: float = 0.5
    tags: Tuple[str, ...] = ()
    description: str = ""

    def resolved_metric(self) -> str:
        if self.metric is not None:
            return self.metric
        return "best_seconds" if self.kind == "workload" else "wall_seconds"

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary (``perf list --json``; no callables)."""
        return {
            "id": self.id,
            "title": self.title,
            "kind": self.kind,
            "metric": self.resolved_metric(),
            "unit": self.unit,
            "lower_is_better": self.lower_is_better,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "quick_repeats": self.quick_repeats,
            "noise": self.noise,
            "tags": list(self.tags),
            "description": self.description,
        }


def benchmark(id: str, *, title: str, kind: str = "workload",
              metric: Optional[str] = "best_seconds", unit: str = "s",
              lower_is_better: bool = True, repeats: int = 5,
              warmup: int = 1, quick_repeats: int = 3,
              noise: float = 0.5, tags: Tuple[str, ...] = (),
              description: str = ""):
    """Class-free registration decorator, the ``@experiment`` twin.

    >>> @benchmark("doc.noop", title="docstring example", repeats=1,
    ...            warmup=0, tags=("doc",))
    ... def _noop(quick=False):
    ...     return lambda: None
    >>> BENCHMARKS["doc.noop"].kind
    'workload'
    >>> del BENCHMARKS["doc.noop"]
    """
    if kind not in BENCHMARK_KINDS:
        raise AnalysisError(
            f"benchmark {id!r}: unknown kind {kind!r} "
            f"(expected one of {BENCHMARK_KINDS})")
    if kind == "workload" and metric not in (None, "best_seconds"):
        raise AnalysisError(
            f"benchmark {id!r}: workload benchmarks always track "
            f"'best_seconds', not {metric!r}")
    if repeats < 1 or warmup < 0 or quick_repeats < 1:
        raise AnalysisError(
            f"benchmark {id!r}: repeats/quick_repeats must be >= 1 "
            "and warmup >= 0")
    if noise < 0:
        raise AnalysisError(f"benchmark {id!r}: noise band must be >= 0")

    def register(fn: Callable[..., Any]) -> Callable[..., Any]:
        if id in BENCHMARKS:
            raise AnalysisError(f"duplicate benchmark id {id!r}")
        BENCHMARKS[id] = BenchmarkSpec(
            id=id, title=title, fn=fn, kind=kind, metric=metric,
            unit=unit, lower_is_better=lower_is_better, repeats=repeats,
            warmup=warmup, quick_repeats=quick_repeats, noise=noise,
            tags=tuple(tags),
            description=description or (fn.__doc__ or "").strip())
        return fn

    return register


def _ensure_registered() -> None:
    """Import the built-in suite exactly once (lazy, like SPECS)."""
    from . import suite  # noqa: F401


def get_benchmark(benchmark_id: str) -> BenchmarkSpec:
    _ensure_registered()
    try:
        return BENCHMARKS[benchmark_id]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS)) or "(none)"
        raise AnalysisError(
            f"unknown benchmark {benchmark_id!r}; registered: {known}"
        ) from None


def list_benchmarks(tag: Optional[str] = None) -> List[BenchmarkSpec]:
    """All registered specs (registration order), optionally by tag."""
    _ensure_registered()
    specs = list(BENCHMARKS.values())
    if tag is not None:
        specs = [s for s in specs if tag in s.tags]
    return specs


def describe_benchmarks(tag: Optional[str] = None) -> List[Dict[str, Any]]:
    return [spec.describe() for spec in list_benchmarks(tag)]


def load_benchmark_scripts(directory) -> List[str]:
    """Import every ``bench_*.py`` in a directory, registering its
    benchmarks.

    The legacy scripts register ``script.*`` report benchmarks at
    import time; this pulls them into the registry on demand
    (``perf run --bench-dir benchmarks``) without making the core
    suite import seven heavyweight modules.  Idempotent: an already
    imported script is skipped, so double registration cannot occur.
    """
    directory = Path(directory)
    loaded: List[str] = []
    for path in sorted(directory.glob("bench_*.py")):
        module_name = f"repro_perf_scripts.{path.stem}"
        if module_name in sys.modules:
            continue
        spec = importlib.util.spec_from_file_location(module_name, path)
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
        except BaseException:
            del sys.modules[module_name]
            raise
        loaded.append(path.stem)
    return loaded
