"""Shared measurement helpers for benchmark scripts and the runner.

Before PR 9 every ``benchmarks/bench_*.py`` hand-rolled the same four
fragments: a ``perf_counter`` wrapper, a best/median-of-N loop, the
``PYTHONPATH`` environment for subprocess re-execution, and the
"``json.dumps(indent=2)`` to file + stdout" epilogue.  They live here
once, dependency-free, so the scripts shrink to pure workload code and
the registry runner shares the exact same timing discipline.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Eight-level bar alphabet for terminal/dashboard history sparklines.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def timed(fn: Callable[[], Any]) -> Tuple[float, Any]:
    """``(wall_seconds, result)`` for one call."""
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def sample(fn: Callable[[], Any], repeats: int, *,
           warmup: int = 0) -> List[float]:
    """Per-repeat wall times after ``warmup`` unrecorded calls."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    return [timed(fn)[0] for _ in range(repeats)]


def best_of(fn: Callable[[], Any], repeats: int, *,
            warmup: int = 0) -> float:
    """Min-of-N wall time: the least-noise cost estimate."""
    return min(sample(fn, repeats, warmup=warmup))


def median_of(fn: Callable[[], Any], repeats: int, *,
              warmup: int = 0) -> float:
    """Median-of-N wall time (the historical bench_store policy)."""
    return statistics.median(sample(fn, repeats, warmup=warmup))


def best_of_with_result(fn: Callable[[], Any], repeats: int, *,
                        warmup: int = 0) -> Tuple[float, Any]:
    """``(min wall seconds, last result)`` — for benchmark scripts
    that verify the timed result (bit-identity checks) as well."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        seconds, result = timed(fn)
        best = min(best, seconds)
    return best, result


def host_fields() -> Dict[str, str]:
    """The ``python``/``machine`` stamp every legacy payload carries."""
    return {"python": platform.python_version(),
            "machine": platform.machine()}


def cli_env(repo_root) -> Dict[str, str]:
    """A subprocess environment with ``<repo>/src`` on ``PYTHONPATH``."""
    env = dict(os.environ)
    src = str(Path(repo_root) / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def finish(out_path, payload: Dict[str, Any]) -> None:
    """The shared script epilogue: write ``BENCH_*.json``, echo it.

    Exactly the historical byte shape: ``json.dumps(payload, indent=2)``
    plus a trailing newline in the file, the same text (sans trailing
    newline) on stdout.
    """
    text = json.dumps(payload, indent=2)
    Path(out_path).write_text(text + "\n")
    print(text)


def sparkline(values, width: Optional[int] = None) -> str:
    """A unicode sparkline of a numeric series (empty-safe).

    >>> sparkline([1, 2, 3, 4])
    '▁▃▆█'
    >>> sparkline([])
    ''
    """
    series = [float(v) for v in values]
    if width is not None and len(series) > width:
        series = series[-width:]
    if not series:
        return ""
    lo, hi = min(series), max(series)
    if hi <= lo:
        return SPARK_CHARS[0] * len(series)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[int(round((v - lo) / (hi - lo) * top))]
        for v in series)
