"""Noise-aware run comparison, baselines, and the regression gate.

The comparison contract is deliberately simple and symmetric:

* the tracked ``value`` is min-of-repeats (workloads) or a payload
  metric (reports) — see :mod:`repro.perf.runner`;
* each benchmark carries a relative **noise band**: a lower-is-better
  value regresses only when ``value > baseline * (1 + noise)`` and
  improves only below ``baseline * (1 - noise)``; higher-is-better
  metrics mirror the bands.  The band comes from the baseline entry
  when present (a committed baseline can widen per-benchmark), else
  the registered spec, else the comparison default.

``perf gate`` adds *span attribution*: a regressed benchmark is
re-run once inside an isolated :func:`repro.telemetry.session`, the
trace is folded into per-span **self time** (own duration minus child
durations), and the gate names the dominant span — "the regression is
in ``mna.newton``", not just "something got slower".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..circuit.exceptions import AnalysisError
from .registry import BENCHMARKS, BenchmarkSpec, _ensure_registered

#: Bump when the baseline-document layout changes incompatibly.
BASELINE_SCHEMA_VERSION = 1

#: Noise band when neither the baseline entry nor a spec provides one.
DEFAULT_NOISE = 0.5

#: How many attributed spans a gate report keeps per regression.
_TOP_SPANS = 5


def baseline_document(run_doc: Dict[str, Any], *,
                      notes: str = "") -> Dict[str, Any]:
    """Distill a run document into a committable baseline file."""
    entries = []
    for bench in run_doc.get("benchmarks", []):
        entries.append({
            "benchmark": bench["benchmark"],
            "metric": bench["metric"],
            "unit": bench.get("unit"),
            "lower_is_better": bool(bench.get("lower_is_better", True)),
            "noise": bench.get("noise", DEFAULT_NOISE),
            "value": bench["value"],
        })
    return {
        "schema": BASELINE_SCHEMA_VERSION,
        "quick": bool(run_doc.get("quick", False)),
        "fingerprint": run_doc.get("fingerprint", {}),
        "notes": notes,
        "benchmarks": entries,
    }


def load_baseline(path) -> Dict[str, Any]:
    """Read and validate a baseline file (committed or exported)."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(
            f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) \
            or doc.get("schema") != BASELINE_SCHEMA_VERSION \
            or not isinstance(doc.get("benchmarks"), list):
        raise AnalysisError(
            f"baseline {path} has an unexpected shape (want schema "
            f"{BASELINE_SCHEMA_VERSION} with a 'benchmarks' list)")
    return doc


def _resolve_noise(current: Dict[str, Any],
                   base_entry: Optional[Dict[str, Any]],
                   default: float) -> float:
    for source in (base_entry or {}, current):
        noise = source.get("noise")
        if isinstance(noise, (int, float)) and noise >= 0:
            return float(noise)
    return default


def compare_runs(current: Dict[str, Any], baseline: Dict[str, Any], *,
                 default_noise: float = DEFAULT_NOISE
                 ) -> List[Dict[str, Any]]:
    """Per-benchmark comparison rows (current order, then missing).

    Statuses: ``regression`` / ``improvement`` / ``ok`` outside/inside
    the noise band, ``new`` (no baseline entry), ``missing`` (baseline
    entry the current run did not execute).
    """
    base_by_id = {b["benchmark"]: b
                  for b in baseline.get("benchmarks", [])}
    rows: List[Dict[str, Any]] = []
    seen = set()
    for bench in current.get("benchmarks", []):
        name = bench["benchmark"]
        seen.add(name)
        base = base_by_id.get(name)
        row: Dict[str, Any] = {
            "benchmark": name,
            "metric": bench["metric"],
            "unit": bench.get("unit"),
            "lower_is_better": bool(bench.get("lower_is_better", True)),
            "value": float(bench["value"]),
        }
        if base is None:
            row.update(baseline_value=None, ratio=None, delta_pct=None,
                       noise=_resolve_noise(bench, None, default_noise),
                       status="new")
            rows.append(row)
            continue
        base_value = float(base["value"])
        noise = _resolve_noise(bench, base, default_noise)
        row["baseline_value"] = base_value
        row["noise"] = noise
        if base_value != 0:
            ratio = row["value"] / base_value
            row["ratio"] = ratio
            row["delta_pct"] = (ratio - 1.0) * 100.0
        else:
            ratio = None
            row["ratio"] = row["delta_pct"] = None
        if ratio is None:
            status = "ok"
        elif row["lower_is_better"]:
            status = ("regression" if ratio > 1.0 + noise else
                      "improvement" if ratio < 1.0 - noise else "ok")
        else:
            status = ("regression" if ratio < 1.0 - noise else
                      "improvement" if ratio > 1.0 + noise else "ok")
        row["status"] = status
        rows.append(row)
    for name, base in base_by_id.items():
        if name not in seen:
            rows.append({
                "benchmark": name, "metric": base.get("metric"),
                "unit": base.get("unit"),
                "lower_is_better": bool(
                    base.get("lower_is_better", True)),
                "value": None,
                "baseline_value": float(base["value"]),
                "ratio": None, "delta_pct": None,
                "noise": _resolve_noise({}, base, default_noise),
                "status": "missing",
            })
    return rows


# -- span attribution -------------------------------------------------------

def self_times(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Fold trace events into per-span-name **self** time.

    Self time is a span's duration minus its direct children's — the
    quantity that sums to total traced time without double counting,
    so "which span owns the regression" has a well-defined answer.
    Returns ``{name: {"count", "seconds", "self_seconds"}}``.
    """
    child_dur: Dict[Any, float] = {}
    for event in events:
        parent = event.get("parent")
        if parent is not None:
            child_dur[parent] = child_dur.get(parent, 0.0) \
                + float(event["dur"])
    folded: Dict[str, Dict[str, Any]] = {}
    for event in events:
        name = event["name"]
        dur = float(event["dur"])
        own = max(0.0, dur - child_dur.get(event.get("id"), 0.0))
        slot = folded.setdefault(
            name, {"count": 0, "seconds": 0.0, "self_seconds": 0.0})
        slot["count"] += 1
        slot["seconds"] += dur
        slot["self_seconds"] += own
    return folded


def attribute_benchmark(spec: BenchmarkSpec, *,
                        quick: bool = True) -> Dict[str, Any]:
    """Re-run one benchmark traced; return its span self-time profile.

    Runs inside an isolated telemetry session (the caller's enabled
    state, if any, is untouched).  Workloads execute setup plus one
    timed call; reports execute once.  Returns ``{"spans": [...top
    self-time...], "dominant_span", "dominant_share", "traced_seconds"}``
    — empty spans mean the benchmark touches no instrumented code.
    """
    # Workload setup runs *outside* the session, mirroring the runner's
    # timed region — attribution must blame the measured call, not the
    # factory's one-off fixture building.
    traced = spec.fn(quick=quick) if spec.kind == "workload" \
        else (lambda: spec.fn(quick=quick))
    with telemetry.session() as runtime:
        with telemetry.span("perf.attribute", benchmark=spec.id):
            traced()
        events = [e for e in runtime.tracer.events()
                  if e["name"] != "perf.attribute"]
    folded = self_times(events)
    ranked = sorted(folded.items(),
                    key=lambda kv: kv[1]["self_seconds"], reverse=True)
    total_self = sum(v["self_seconds"] for v in folded.values())
    spans = [{"name": name, "count": stats["count"],
              "seconds": stats["seconds"],
              "self_seconds": stats["self_seconds"],
              "share": (stats["self_seconds"] / total_self
                        if total_self > 0 else 0.0)}
             for name, stats in ranked[:_TOP_SPANS]]
    return {
        "spans": spans,
        "dominant_span": spans[0]["name"] if spans else None,
        "dominant_share": spans[0]["share"] if spans else None,
        "traced_seconds": total_self,
    }


def gate_run(current: Dict[str, Any], baseline: Dict[str, Any], *,
             default_noise: float = DEFAULT_NOISE,
             attribute: bool = True,
             quick: bool = True) -> Dict[str, Any]:
    """The pass/fail verdict: comparison plus per-regression blame.

    A gate fails iff at least one benchmark regresses outside its
    noise band.  Each regression is (optionally) re-run traced and
    annotated with its dominant span.  ``missing`` baseline entries
    are surfaced as warnings, not failures — a partial run must not
    masquerade as a green full run, but it should not hard-fail local
    subset iteration either.
    """
    comparisons = compare_runs(current, baseline,
                               default_noise=default_noise)
    regressions = [r for r in comparisons if r["status"] == "regression"]
    if attribute:
        _ensure_registered()
        for row in regressions:
            spec = BENCHMARKS.get(row["benchmark"])
            if spec is None:
                row["attribution"] = None
                continue
            try:
                row["attribution"] = attribute_benchmark(
                    spec, quick=quick)
            except Exception as exc:   # blame must not mask the verdict
                row["attribution"] = {
                    "error": f"{type(exc).__name__}: {exc}"}
    ok = not regressions
    telemetry.count("repro_perf_gate_total",
                    outcome="pass" if ok else "fail")
    return {
        "ok": ok,
        "regressions": regressions,
        "improvements": [r for r in comparisons
                         if r["status"] == "improvement"],
        "missing": [r for r in comparisons if r["status"] == "missing"],
        "comparisons": comparisons,
    }
