"""Pluggable execution backends for sweep/ensemble campaigns.

Every ensemble-shaped computation in this library (parameter sweeps,
Monte-Carlo trials, yield parts) reduces to *map a pure function over a
list of points*.  This module supplies the two backends for that map —

* :class:`SerialExecutor` — plain in-process iteration.  Always works,
  including for closures and lambdas that cannot cross a process
  boundary.
* :class:`ProcessExecutor` — a :class:`concurrent.futures`
  process pool.  Falls back to serial execution automatically when the
  work is not picklable or when pools cannot be spawned (e.g. restricted
  sandboxes), so callers never have to special-case it.

Because every point is evaluated independently and results are returned
in submission order, **serial and parallel execution produce identical
records** — the equivalence the test suite pins down.

Deterministic seeding
---------------------
:func:`derive_seed` hashes ``(base_seed, *indices)`` into a stable
31-bit seed, so per-point RNG streams do not depend on execution order
or the number of workers.

The session-wide default backend is controlled by
:func:`set_default_executor` / :func:`use_executor`; the CLI's
``--jobs N`` flag installs a pool there, and every experiment inherits
it through :func:`repro.circuit.sweep.run_sweep` and the Monte-Carlo
entry points.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence


def derive_seed(base: Optional[int], *indices: int) -> Optional[int]:
    """Stable per-point seed derived from a base seed and point indices.

    Returns ``None`` when ``base`` is ``None`` (unseeded stays
    unseeded).  The derivation is a SHA-256 hash, so seeds are
    decorrelated across points and independent of worker count or
    execution order.
    """
    if base is None:
        return None
    payload = ",".join(str(int(v)) for v in (base, *indices))
    digest = hashlib.sha256(payload.encode("ascii")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


class SerialExecutor:
    """In-process, in-order map — the universal fallback."""

    jobs = 1

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "<SerialExecutor>"


class ProcessExecutor:
    """Process-pool map with an automatic serial fallback.

    ``jobs=None`` (or ``-1``) uses one worker per CPU.  The pool is
    created lazily per :meth:`map` call and torn down afterwards, so the
    executor itself stays picklable and fork-safe.
    """

    def __init__(self, jobs: Optional[int] = None):
        if jobs in (None, -1):
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        from .. import telemetry

        items = list(items)
        rt = telemetry.active()
        if rt is None:
            return self._map_impl(fn, items)
        with rt.tracer.span("exec.pool_map",
                            {"jobs": self.jobs, "items": len(items)}):
            rt.count("repro_exec_pool_items_total", len(items))
            return self._map_impl(fn, items)

    def _map_impl(self, fn: Callable[[Any], Any],
                  items: List[Any]) -> List[Any]:
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        try:
            pickle.dumps(fn)
            if items:
                pickle.dumps(items[0])
        except Exception:
            # Closures / local lambdas cannot cross the process
            # boundary; degrade to the serial path (identical results).
            return [fn(item) for item in items]
        from concurrent.futures import ProcessPoolExecutor
        try:
            pool = ProcessPoolExecutor(max_workers=self.jobs)
        except (OSError, RuntimeError):
            # Pool creation can fail in restricted environments.  Only
            # creation is guarded: exceptions raised by ``fn`` itself
            # must propagate (``on_error="raise"`` semantics), not
            # trigger a full serial re-run.
            return [fn(item) for item in items]
        with pool:
            chunksize = max(1, len(items) // (self.jobs * 4))
            return list(pool.map(fn, items, chunksize=chunksize))

    def __repr__(self) -> str:
        return f"<ProcessExecutor jobs={self.jobs}>"


def get_executor(jobs: Optional[int]) -> "SerialExecutor | ProcessExecutor":
    """Executor for a ``--jobs``-style count.

    ``None``, ``0`` and ``1`` mean serial; ``-1`` means one worker per
    CPU; anything else is a pool of that size.
    """
    if jobs in (None, 0, 1):
        return SerialExecutor()
    return ProcessExecutor(jobs)


_default_executor: "SerialExecutor | ProcessExecutor" = SerialExecutor()


def get_default_executor() -> "SerialExecutor | ProcessExecutor":
    """The session-wide backend used when no explicit executor is passed."""
    return _default_executor


def set_default_executor(executor) -> None:
    """Install the session-wide default backend (e.g. from ``--jobs``)."""
    global _default_executor
    _default_executor = executor


@contextmanager
def use_executor(executor) -> Iterator[None]:
    """Temporarily install a default backend (restores the old one)."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    try:
        yield
    finally:
        _default_executor = previous
