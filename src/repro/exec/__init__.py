"""Execution engine: parallel/vectorised ensemble runs and result caching.

Three cooperating pieces:

* :mod:`repro.exec.executor` — serial / process-pool map backends with a
  session-wide default (the CLI's ``--jobs N``) and deterministic
  per-point seeding;
* :mod:`repro.exec.batch` — vectorised Monte-Carlo batching through the
  switch-level RC engine (import directly: ``from repro.exec.batch
  import ...``; kept out of this namespace so the circuit layer can
  import the executor without a cycle);
* :mod:`repro.exec.cache` — on-disk experiment-result cache keyed by
  the canonical :class:`~repro.experiments.spec.RunConfig` encoding
  (legacy ``(experiment_id, fidelity, kwargs-hash)`` entries stay
  read-compatible and are migrated on first hit).
"""

from .cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    ResultCache,
    default_cache_dir,
    params_hash,
)
from .executor import (
    ProcessExecutor,
    SerialExecutor,
    derive_seed,
    get_default_executor,
    get_executor,
    set_default_executor,
    use_executor,
)

__all__ = [
    "SerialExecutor", "ProcessExecutor", "get_executor",
    "get_default_executor", "set_default_executor", "use_executor",
    "derive_seed",
    "ResultCache", "params_hash", "default_cache_dir",
    "CACHE_SCHEMA_VERSION", "CACHE_DIR_ENV",
]
