"""On-disk result cache for experiment runs.

Paper-fidelity experiments are minutes-scale simulations whose outputs
are fully determined by ``(experiment_id, fidelity, run kwargs)`` — the
textbook shape for a content-addressed cache.  :class:`ResultCache`
stores each :class:`~repro.experiments.base.ExperimentResult` as JSON
under::

    <root>/<experiment_id>/<fidelity>-<params-hash>.json

where the params hash is a SHA-256 over the canonical JSON encoding of
the run kwargs.  Hits deserialise to a result whose ``render()`` output
is byte-identical to the original (floats survive the JSON round trip
exactly via ``repr`` shortest-round-trip encoding) — pinned by the
equivalence tests.

The cache is wired into :func:`repro.experiments.registry.run_config`
and the ``python -m repro`` CLI (``--cache-dir``, ``--no-cache``).  A
schema version is embedded in every entry; bumping
:data:`CACHE_SCHEMA_VERSION` invalidates stale entries wholesale.

Keys come in two generations.  The current one hashes the canonical
encoding of a validated :class:`~repro.experiments.spec.RunConfig`
(defaults filled, values normalised), so spelling a default explicitly
no longer forks the key (:meth:`ResultCache.get_config` /
:meth:`ResultCache.put_config`).  The original generation hashed the
raw run kwargs; :meth:`ResultCache.get_config` still probes that legacy
path on a miss and transparently migrates hits to the new key.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bump when the serialised layout of ExperimentResult changes.
CACHE_SCHEMA_VERSION = 1

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

PathLike = Union[str, Path]


def params_hash(params: Dict[str, Any]) -> str:
    """Stable short hash of a kwargs dict (canonical-JSON SHA-256)."""
    canonical = json.dumps(params, sort_keys=True, default=repr,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-pwm``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pwm"


class ResultCache:
    """Content-addressed experiment-result store.

    >>> cache = ResultCache("/tmp/repro-cache-doctest")
    >>> cache.get("table1", "fast", {}) is None
    True
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)

    def path_for(self, experiment_id: str, fidelity: str,
                 params: Optional[Dict[str, Any]] = None) -> Path:
        # The package version is folded into the key so released numeric
        # changes invalidate old entries; within one version, stale
        # replays after local code edits are handled by the CLI's
        # cache-hit notice and --no-cache.
        from .. import __version__

        keyed = dict(params or {})
        keyed["__repro_version__"] = __version__
        key = params_hash(keyed)
        return self.root / experiment_id / f"{fidelity}-{key}.json"

    def get(self, experiment_id: str, fidelity: str,
            params: Optional[Dict[str, Any]] = None):
        """Cached :class:`ExperimentResult`, or ``None`` on miss."""
        return self._load(self.path_for(experiment_id, fidelity, params))

    def _load(self, path: Path):
        """Deserialise one entry; any corruption reads as a miss.

        A truncated or torn write can leave invalid JSON, JSON of the
        wrong shape (``null``, a list, a dict missing ``result``), or a
        result document that no longer deserialises.  All of those are
        misses — the caller re-runs and the next :meth:`_write`
        replaces the bad entry atomically — never exceptions: a corrupt
        cache must not take down the campaign that is trying to heal it.
        """
        from ..circuit.exceptions import AnalysisError
        from ..experiments.base import ExperimentResult

        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("schema") != CACHE_SCHEMA_VERSION \
                or not isinstance(payload.get("result"), dict):
            return None
        try:
            return ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError,
                AnalysisError):
            return None

    # -- RunConfig-keyed interface (current generation) ---------------------

    def path_for_config(self, config) -> Path:
        """Entry path for a validated RunConfig (canonical-key hash)."""
        from .. import __version__

        # Fold the package version in, as for legacy keys: released
        # numeric changes invalidate old entries.
        canonical = config.canonical_json() + f"|repro={__version__}"
        key = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        return (self.root / config.experiment_id /
                f"{config.fidelity}-rc{key}.json")

    def get_config(self, config, *,
                   legacy_params: Optional[Dict[str, Any]] = None):
        """Cached result for a RunConfig, or ``None`` on miss.

        On a miss at the canonical key, the pre-RunConfig kwargs-hash
        path is probed with ``legacy_params`` (the raw kwargs a legacy
        caller supplied; pass ``{}`` for "no explicit parameters").  A
        legacy hit is re-written under the canonical key so the old
        entry keeps serving after the migration.
        """
        from .. import telemetry

        path = self.path_for_config(config)
        result = self._load(path)
        if result is not None or legacy_params is None:
            telemetry.count(
                "repro_exec_cache_lookups_total",
                result="hit" if result is not None else "miss")
            return result
        legacy = self._load(self.path_for(config.experiment_id,
                                          config.fidelity, legacy_params))
        telemetry.count(
            "repro_exec_cache_lookups_total",
            result="hit" if legacy is not None else "miss")
        return legacy if legacy is None else self._migrate(legacy, config)

    def _migrate(self, legacy, config):
        self.put_config(legacy, config)
        return legacy

    def put_config(self, result, config) -> Path:
        """Store a result under the config's canonical key."""
        return self._write(self.path_for_config(config),
                           config.canonical_dict()["params"], result)

    # -- legacy kwargs-keyed interface --------------------------------------

    def put(self, result, params: Optional[Dict[str, Any]] = None) -> Path:
        """Store a result; returns the entry path."""
        return self._write(
            self.path_for(result.experiment_id, result.fidelity, params),
            {k: repr(v) for k, v in sorted((params or {}).items())},
            result)

    def _write(self, path: Path, params_doc: Dict[str, Any],
               result) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "params": params_doc,
            "result": result.to_dict(),
        }
        # Unique tmp name per writer: concurrent runs may race on the
        # same entry, and os.replace makes the last full write win.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:
        return f"<ResultCache root={str(self.root)!r}>"
