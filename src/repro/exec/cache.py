"""On-disk result cache for experiment runs.

Paper-fidelity experiments are minutes-scale simulations whose outputs
are fully determined by ``(experiment_id, fidelity, run kwargs)`` — the
textbook shape for a content-addressed cache.  :class:`ResultCache`
stores each :class:`~repro.experiments.base.ExperimentResult` as JSON
under::

    <root>/<experiment_id>/<fidelity>-<params-hash>.json

where the params hash is a SHA-256 over the canonical JSON encoding of
the run kwargs.  Hits deserialise to a result whose ``render()`` output
is byte-identical to the original (floats survive the JSON round trip
exactly via ``repr`` shortest-round-trip encoding) — pinned by the
equivalence tests.

The cache is wired into :func:`repro.experiments.registry.run_experiment`
and the ``python -m repro`` CLI (``--cache-dir``, ``--no-cache``).  A
schema version is embedded in every entry; bumping
:data:`CACHE_SCHEMA_VERSION` invalidates stale entries wholesale.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bump when the serialised layout of ExperimentResult changes.
CACHE_SCHEMA_VERSION = 1

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

PathLike = Union[str, Path]


def params_hash(params: Dict[str, Any]) -> str:
    """Stable short hash of a kwargs dict (canonical-JSON SHA-256)."""
    canonical = json.dumps(params, sort_keys=True, default=repr,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-pwm``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pwm"


class ResultCache:
    """Content-addressed experiment-result store.

    >>> cache = ResultCache("/tmp/repro-cache-doctest")
    >>> cache.get("table1", "fast", {}) is None
    True
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)

    def path_for(self, experiment_id: str, fidelity: str,
                 params: Optional[Dict[str, Any]] = None) -> Path:
        # The package version is folded into the key so released numeric
        # changes invalidate old entries; within one version, stale
        # replays after local code edits are handled by the CLI's
        # cache-hit notice and --no-cache.
        from .. import __version__

        keyed = dict(params or {})
        keyed["__repro_version__"] = __version__
        key = params_hash(keyed)
        return self.root / experiment_id / f"{fidelity}-{key}.json"

    def get(self, experiment_id: str, fidelity: str,
            params: Optional[Dict[str, Any]] = None):
        """Cached :class:`ExperimentResult`, or ``None`` on miss."""
        from ..experiments.base import ExperimentResult

        path = self.path_for(experiment_id, fidelity, params)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        return ExperimentResult.from_dict(payload["result"])

    def put(self, result, params: Optional[Dict[str, Any]] = None) -> Path:
        """Store a result; returns the entry path."""
        path = self.path_for(result.experiment_id, result.fidelity, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "params": {k: repr(v) for k, v in sorted((params or {}).items())},
            "result": result.to_dict(),
        }
        # Unique tmp name per writer: concurrent runs may race on the
        # same entry, and os.replace makes the last full write win.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:
        return f"<ResultCache root={str(self.root)!r}>"
