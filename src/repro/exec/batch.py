"""Vectorised Monte-Carlo batching for the switch-level adder engine.

The scalar mismatch path perturbs each cell's devices, rebuilds
:class:`~repro.core.rc_model.RcLeg` objects and runs one
:class:`~repro.core.rc_model.RcSwitchSolver` per trial — thousands of
Python-level solves per campaign.  This module flattens a whole campaign
into numpy arrays:

1. :func:`sample_adder_mismatch` draws every trial's device mismatch in
   **one** RNG call, in exactly the order the scalar path consumes the
   generator, so both paths see the same random numbers;
2. :func:`leg_resistance_arrays` converts the perturbed device
   parameters into ``(B, L)`` pull-up/pull-down resistance arrays with
   the vectorised square-law model
   (:func:`repro.tech.mosfet_models.on_resistance_vec`);
3. :func:`batch_adder_values` feeds those arrays through
   :class:`~repro.core.rc_model.RcBatchSolver` — one vectorised periodic
   solve for the whole batch.

Agreement with the scalar path is tolerance-based (identical RNG draws,
float reductions reassociated by numpy); the equivalence tests pin it to
``rtol=1e-9``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..circuit.exceptions import AnalysisError
from ..core.encoding import check_duties, check_weights
from ..core.rc_model import RcBatchSolver
from ..tech.corners import MonteCarloSampler
from ..tech.mosfet_models import on_resistance_vec

#: Monte-Carlo execution backends accepted by the ensemble layer.
MC_METHODS = ("auto", "loop", "vectorized")


def resolve_monte_carlo_method(method: str, *,
                               engine_id: str = "rc") -> str:
    """Resolve a Monte-Carlo ``method`` against the engine registry.

    ``"auto"`` asks the target engine's
    :meth:`~repro.engines.base.Engine.capabilities` whether it can
    batch a whole trial set into one solve (``batched_monte_carlo``):
    capable engines run ``"vectorized"``, the rest fall back to the
    per-trial ``"loop"``.  Explicit methods pass through unchanged;
    unknown method names or engine ids fail with the registry's help.
    """
    from ..engines import get_engine

    if method not in MC_METHODS:
        raise AnalysisError(
            f"unknown method {method!r}; use {MC_METHODS}")
    if method != "auto":
        get_engine(engine_id)  # still validate the engine id
        return method
    capable = get_engine(engine_id).capabilities().batched_monte_carlo
    return "vectorized" if capable else "loop"


def resolve_solver(solver: str, *, engine_id: str = "spice",
                   experiment_id: str = "") -> str:
    """Resolve an MNA ``solver`` knob against the engine registry.

    The knob only means something for engines that assemble MNA systems
    (``level == "transistor"``): for those the spelling is validated by
    :func:`repro.circuit.sparse.check_solver` and passed through.  For
    behavioural/switch-level engines an explicit non-default backend is
    an error (there is no matrix to pick a backend for), while the
    default ``"auto"`` passes silently so generic callers need no
    per-engine special cases.

    ``experiment_id`` names the offending experiment in rejections, the
    same error surface as
    :func:`repro.engines.base.require_capability`.
    """
    from ..circuit.sparse import check_solver
    from ..engines import get_engine

    who = f"experiment {experiment_id!r}: " if experiment_id else ""
    try:
        resolved = check_solver(solver)
        level = get_engine(engine_id).capabilities().level
    except AnalysisError as exc:
        if who:
            raise AnalysisError(f"{who}{exc}") from None
        raise
    if level != "transistor" and resolved != "auto":
        raise AnalysisError(
            f"{who}solver {resolved!r} only applies to transistor-level "
            f"engines; engine {engine_id!r} (level {level!r}) has no "
            "MNA system to solve")
    return resolved


@dataclass(frozen=True)
class MismatchBatch:
    """Per-trial, per-cell device mismatch for one cell bank.

    All arrays have shape ``(..., n_cells)`` with cells in flat
    ``i * n_bits + b`` order — the same indexing as the scalar
    ``cell_overrides`` hook.
    """

    delta_vt_n: np.ndarray
    kp_scale_n: np.ndarray
    delta_vt_p: np.ndarray
    kp_scale_p: np.ndarray

    @property
    def n_cells(self) -> int:
        return self.delta_vt_n.shape[-1]


def _cell_geometry(config) -> "Tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Per-leg ``(wn, wp, rout_eff)`` arrays in flat cell order.

    Built from :meth:`CellDesign.scaled` so the binary-weighted sizing
    rule lives in exactly one place (the scalar path uses the same
    designs).
    """
    designs = [config.cell.scaled(float(1 << b))
               for _i in range(config.n_inputs)
               for b in range(config.n_bits)]
    wn = np.array([d.wn for d in designs])
    wp = np.array([d.wp for d in designs])
    rout = np.array([d.rout_eff for d in designs])
    return wn, wp, rout


def sample_adder_mismatch(sampler: MonteCarloSampler, config,
                          n_trials: int, *,
                          banks: int = 1) -> "list[MismatchBatch]":
    """Draw mismatch for ``n_trials`` trials (and ``banks`` cell banks).

    The RNG is consumed in the scalar order — per trial (and per bank):
    for each flat cell, NMOS ``(delta_vt, kp)`` then PMOS
    ``(delta_vt, kp)`` — so a campaign vectorised with this function
    sees bit-identical draws to the per-trial loop it replaces.
    """
    if n_trials < 1:
        raise AnalysisError("need at least one trial")
    wn, wp, _rout = _cell_geometry(config)
    n_cells = wn.shape[0]
    # Device draw order: (trial, bank, cell, nmos-then-pmos).
    widths = np.empty((n_trials, banks, n_cells, 2))
    widths[..., 0] = wn
    widths[..., 1] = wp
    lengths = np.full_like(widths, config.cell.length)
    delta_vt, kp_scale = sampler.sample_batch(widths, lengths)
    return [
        MismatchBatch(
            delta_vt_n=delta_vt[:, bank, :, 0],
            kp_scale_n=kp_scale[:, bank, :, 0],
            delta_vt_p=delta_vt[:, bank, :, 1],
            kp_scale_p=kp_scale[:, bank, :, 1])
        for bank in range(banks)
    ]


def leg_resistance_arrays(config, mismatch: Optional[MismatchBatch], vdd,
                          *, batch: Optional[int] = None
                          ) -> "Tuple[np.ndarray, np.ndarray]":
    """Pull-up / pull-down resistances, shape ``(B, n_cells)``.

    ``vdd`` may be a scalar (shared supply) or a ``(B,)`` array (one
    supply per trial, e.g. a harvester draw per classification).  With
    ``mismatch=None`` the nominal design is replicated across the batch
    (``batch`` gives B, default 1).
    """
    wn, wp, rout = _cell_geometry(config)
    nmos, pmos = config.cell.nmos, config.cell.pmos
    length = config.cell.length
    vdd = np.asarray(vdd, float)
    if mismatch is None:
        b = int(batch) if batch is not None else (
            vdd.shape[0] if vdd.ndim else 1)
        zeros = np.zeros((b, wn.shape[0]))
        mismatch = MismatchBatch(zeros, zeros + 1.0, zeros, zeros + 1.0)
    vgs = vdd[:, None] if vdd.ndim else vdd
    vt_n = np.abs(nmos.vt0 + mismatch.delta_vt_n)
    beta_n = nmos.kp * mismatch.kp_scale_n * wn / length
    r_down = on_resistance_vec(beta_n, vt_n, nmos.lam, nmos.n_sub,
                               vgs) + rout
    vt_p = np.abs(pmos.vt0 - mismatch.delta_vt_p)
    beta_p = pmos.kp * mismatch.kp_scale_p * wp / length
    r_up = on_resistance_vec(beta_p, vt_p, pmos.lam, pmos.n_sub,
                             vgs) + rout
    return r_up, r_down


@dataclass(frozen=True)
class BatchAdderValues:
    """Vectorised counterpart of :class:`~repro.core.weighted_adder.AdderResult`."""

    value: np.ndarray
    ripple: np.ndarray
    power: np.ndarray


def batch_adder_values(config, duties: Sequence[float],
                       weights: Sequence[int], r_up: np.ndarray,
                       r_down: np.ndarray, vdd) -> BatchAdderValues:
    """Evaluate the adder for a batch of resistance sets in one solve.

    ``duties``/``weights`` are shared across the batch (the Monte-Carlo
    structure: stimulus fixed, devices perturbed); ``vdd`` is a scalar
    or per-element array and sets both the up rail and the PWM gate
    drive already baked into ``r_up``/``r_down``.
    """
    duties = check_duties(duties)
    weights = check_weights(weights, config.n_bits)
    if len(duties) != config.n_inputs or len(weights) != config.n_inputs:
        raise AnalysisError(
            f"expected {config.n_inputs} duties and weights, got "
            f"{len(duties)}/{len(weights)}")
    duty = np.array([
        duties[i] if (weights[i] >> b) & 1 else 0.0
        for i in range(config.n_inputs) for b in range(config.n_bits)])
    phase = np.zeros_like(duty)
    solver = RcBatchSolver(duty, phase, r_up, r_down, v_up=vdd,
                           cout=config.cout, period=config.period)
    sol = solver.solve()
    return BatchAdderValues(value=sol.average_voltage(), ripple=sol.ripple(),
                            power=sol.supply_power())
