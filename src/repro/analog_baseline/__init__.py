"""Amplitude-coded analog perceptron baseline (the non-elastic strawman)."""

from .current_mode import CurrentModePerceptron, CurrentModeSpec

__all__ = ["CurrentModePerceptron", "CurrentModeSpec"]
