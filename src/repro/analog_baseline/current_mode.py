"""Amplitude-coded (current-mode) analog perceptron baseline.

The paper motivates PWM encoding by noting that existing analog
perceptrons (RedEye-style current/charge designs, its refs [9][10])
carry information in *amplitudes*, which power variation corrupts.  This
behavioural model makes that failure mode explicit:

* inputs are voltage-coded by supply-referenced DACs, so the physical
  input level scales with ``Vdd``;
* weights are current-mirror ratios whose effective gain compresses when
  the supply erodes the mirror headroom;
* the decision compares the summed current (into a load resistor)
  against a *fixed* bandgap-style reference.

At nominal supply it is an exact perceptron; away from nominal the
decision boundary drifts — the quantitative version of the paper's
"these are not suitable for working under extreme power variations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..circuit.exceptions import AnalysisError


@dataclass(frozen=True)
class CurrentModeSpec:
    """Electrical assumptions of the baseline.

    Attributes
    ----------
    v_nominal:
        Design supply, volts.
    v_headroom:
        Total mirror + DAC headroom; gain starts compressing once
        ``vdd`` falls within this margin of the signal swing.
    compression_power:
        Sharpness of the gain collapse below the headroom knee.
    reference_fraction:
        The fixed decision reference as a fraction of the *nominal*
        full-scale sum (bandgap: does not track the supply).
    """

    v_nominal: float = 2.5
    v_headroom: float = 0.9
    compression_power: float = 2.0
    reference_fraction: float = 0.5

    def __post_init__(self):
        if self.v_nominal <= 0 or self.v_headroom <= 0:
            raise AnalysisError("voltages must be positive")
        if not 0.0 < self.reference_fraction < 1.0:
            raise AnalysisError("reference fraction must lie in (0, 1)")


class CurrentModePerceptron:
    """Behavioural amplitude-coded perceptron.

    ``weights`` are real mirror ratios in [0, w_max]; ``theta`` is the
    decision threshold on the *nominal* weighted sum, mapped onto the
    fixed reference.
    """

    def __init__(self, weights: Sequence[float], theta: float, *,
                 spec: CurrentModeSpec = CurrentModeSpec()):
        if not len(weights):
            raise AnalysisError("need at least one weight")
        if any(w < 0 for w in weights):
            raise AnalysisError("mirror ratios cannot be negative")
        self.weights = [float(w) for w in weights]
        self.theta = float(theta)
        self.spec = spec

    # -- supply-dependent transfer -------------------------------------------

    def gain(self, vdd: float) -> float:
        """Mirror gain versus supply: 1 at nominal, compressing below
        the headroom knee, saturating (slightly) above nominal."""
        if vdd <= 0:
            raise AnalysisError("vdd must be positive")
        spec = self.spec
        knee = spec.v_headroom
        if vdd >= spec.v_nominal:
            return 1.0
        if vdd <= knee:
            return 0.0
        x = (vdd - knee) / (spec.v_nominal - knee)
        return float(x ** spec.compression_power)

    def analog_sum(self, values: Sequence[float], vdd: float) -> float:
        """Summed mirror current in normalised units.

        The supply-referenced input DACs scale the physical input level
        by ``vdd / v_nominal``; the mirrors multiply by the (compressed)
        gain.
        """
        if len(values) != len(self.weights):
            raise AnalysisError(
                f"expected {len(self.weights)} inputs, got {len(values)}")
        for v in values:
            if not 0.0 <= float(v) <= 1.0:
                raise AnalysisError(f"input {v} outside [0, 1]")
        ideal = float(np.dot(values, self.weights))
        supply_scale = vdd / self.spec.v_nominal
        return ideal * supply_scale * self.gain(vdd)

    def predict(self, values: Sequence[float],
                vdd: Optional[float] = None) -> int:
        """Decision against the fixed reference."""
        supply = self.spec.v_nominal if vdd is None else vdd
        return int(self.analog_sum(values, supply) > self.theta)

    def decision_drift(self, vdd: float) -> float:
        """Multiplicative drift of the effective decision threshold.

        1.0 means the boundary is where it was designed; the paper's
        robustness argument is that this quantity stays 1.0 for the PWM
        design and does not for amplitude coding.
        """
        scale = (vdd / self.spec.v_nominal) * self.gain(vdd)
        return float("inf") if scale == 0.0 else 1.0 / scale
