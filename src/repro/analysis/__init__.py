"""Metrics, datasets and robustness harnesses."""

from .calibrate import calibrate_adder, calibration_grid
from .datasets import (
    Dataset,
    make_blobs,
    make_edge_patches,
    make_logic,
    make_majority,
)
from .elasticity import (
    ElasticityReport,
    elasticity_score,
    frequency_flatness,
    ratiometric_report,
)
from .robustness import (
    MonteCarloStats,
    StressPoint,
    accuracy_under_supply,
    adder_corner_errors,
    adder_monte_carlo,
)
from .yield_analysis import YieldResult, perceptron_yield
from .sensitivity import (
    SENSITIVITY_PARAMETERS,
    Sensitivity,
    adder_sensitivities,
)

__all__ = [
    "Dataset", "make_blobs", "make_majority", "make_edge_patches",
    "make_logic",
    "ElasticityReport", "ratiometric_report", "frequency_flatness",
    "elasticity_score",
    "MonteCarloStats", "adder_monte_carlo", "adder_corner_errors",
    "StressPoint", "accuracy_under_supply",
    "calibrate_adder", "calibration_grid",
    "adder_sensitivities", "Sensitivity", "SENSITIVITY_PARAMETERS",
    "perceptron_yield", "YieldResult",
]
