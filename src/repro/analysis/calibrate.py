"""Fit the behavioural model's calibration polynomial to a slower engine.

Running the transistor-level engine over a small operand grid and
fitting :class:`~repro.core.behavioral.CalibrationModel` gives the
behavioural engine transistor-level accuracy at closed-form cost — the
standard surrogate-modelling workflow for analog ML hardware.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.exceptions import AnalysisError
from ..core.behavioral import CalibrationModel, fit_calibration
from ..core.weighted_adder import WeightedAdder


def calibration_grid(adder: WeightedAdder, *,
                     duties_grid: Optional[Sequence[float]] = None,
                     seed: int = 0,
                     n_random: int = 8) -> "List[Tuple[list, list]]":
    """Operand sets covering the output range: corner points plus random
    (duty, weight) draws."""
    cfg = adder.config
    rng = np.random.default_rng(seed)
    wmax = cfg.weight_limit
    points: "List[Tuple[list, list]]" = [
        ([0.5] * cfg.n_inputs, [wmax] * cfg.n_inputs),
        ([0.9] * cfg.n_inputs, [wmax] * cfg.n_inputs),
        ([0.2] * cfg.n_inputs, [wmax] * cfg.n_inputs),
        ([0.5] * cfg.n_inputs, [max(1, wmax // 2)] * cfg.n_inputs),
    ]
    if duties_grid:
        for d in duties_grid:
            points.append(([float(d)] * cfg.n_inputs, [wmax] * cfg.n_inputs))
    for _ in range(n_random):
        duties = rng.uniform(0.1, 0.95, cfg.n_inputs).tolist()
        weights = rng.integers(0, wmax + 1, cfg.n_inputs).tolist()
        points.append((duties, [int(w) for w in weights]))
    return points


def calibrate_adder(adder: WeightedAdder, *, engine: str = "spice",
                    degree: int = 2, seed: int = 0, n_random: int = 8,
                    steps_per_period: int = 100) -> "Tuple[CalibrationModel, float]":
    """Fit a calibration polynomial; returns ``(model, rms_residual)``.

    The residual (volts) is measured on the fitting grid itself and
    reported so callers can decide whether the surrogate is usable.
    """
    if engine not in ("rc", "spice"):
        raise AnalysisError("calibrate against 'rc' or 'spice'")
    ideal: "list[float]" = []
    measured: "list[float]" = []
    for duties, weights in calibration_grid(adder, seed=seed,
                                            n_random=n_random):
        ideal.append(adder.theoretical_output(duties, weights))
        kwargs = {"steps_per_period": steps_per_period} if engine == "spice" else {}
        measured.append(adder.evaluate(duties, weights, engine=engine,
                                       **kwargs).value)
    model = fit_calibration(ideal, measured, adder.config.vdd, degree=degree)
    corrected = [model.apply(v, adder.config.vdd) for v in ideal]
    residual = float(np.sqrt(np.mean(
        (np.asarray(corrected) - np.asarray(measured)) ** 2)))
    return model, residual
