"""Power-elasticity metrics.

The paper demonstrates elasticity visually (Figs. 5 and 7: flat curves).
These metrics turn "flat" into numbers: relative spread of the
ratiometric output across a supply range, the usable supply window, and
an elasticity score comparable across designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuit.exceptions import AnalysisError


@dataclass(frozen=True)
class ElasticityReport:
    """Summary of a ratiometric supply sweep for one operating point."""

    vdd: "tuple[float, ...]"
    ratio: "tuple[float, ...]"          # Vout / Vdd at each supply
    usable_from: float                   # smallest Vdd inside tolerance
    spread_in_window: float              # max-min of ratio in the window
    tolerance: float

    @property
    def usable_range(self) -> "tuple[float, float]":
        return (self.usable_from, self.vdd[-1])

    @property
    def is_elastic(self) -> bool:
        return np.isfinite(self.usable_from)


def ratiometric_report(vdd: Sequence[float], vout: Sequence[float], *,
                       tolerance: float = 0.05,
                       reference_vdd: "float | None" = None) -> ElasticityReport:
    """Analyse ``Vout/Vdd`` flatness over a supply sweep.

    ``usable_from`` is the smallest supply from which the ratio stays
    within ``tolerance`` (absolute, in ratio units) of the value at the
    reference supply (default: the largest swept Vdd) *through the rest
    of the sweep*.
    """
    v = np.asarray(vdd, dtype=float)
    out = np.asarray(vout, dtype=float)
    if v.size != out.size or v.size < 2:
        raise AnalysisError("need matching vdd/vout arrays of length >= 2")
    if np.any(np.diff(v) <= 0):
        raise AnalysisError("vdd sweep must be strictly increasing")
    if np.any(v <= 0):
        raise AnalysisError("vdd values must be positive")
    ratio = out / v
    ref_idx = -1 if reference_vdd is None else int(np.argmin(np.abs(v - reference_vdd)))
    ref = ratio[ref_idx]
    within = np.abs(ratio - ref) <= tolerance
    usable_from = float("inf")
    # Earliest index from which everything stays in tolerance.  The
    # window must span at least two sweep points: the reference point is
    # trivially within tolerance of itself and proves nothing.
    for i in range(v.size - 1):
        if within[i:].all():
            usable_from = float(v[i])
            break
    if np.isfinite(usable_from):
        window = ratio[v >= usable_from]
        spread = float(np.ptp(window))
    else:
        spread = float(np.ptp(ratio))
    return ElasticityReport(vdd=tuple(v), ratio=tuple(ratio),
                            usable_from=usable_from,
                            spread_in_window=spread, tolerance=tolerance)


def frequency_flatness(frequencies: Sequence[float],
                       vout: Sequence[float]) -> float:
    """Relative spread of the output across a frequency sweep
    (paper Fig. 5's claim: ~0 over 1 MHz – 1.5 GHz)."""
    out = np.asarray(vout, dtype=float)
    if out.size < 2:
        raise AnalysisError("need at least two frequency points")
    mean = float(np.mean(out))
    if mean == 0.0:
        raise AnalysisError("cannot normalise a zero-mean series")
    return float(np.ptp(out) / abs(mean))


def elasticity_score(vdd: Sequence[float], vout: Sequence[float], *,
                     v_min_target: float = 1.0,
                     tolerance: float = 0.05) -> float:
    """Scalar in [0, 1]: fraction of the swept supply range (above the
    target minimum) over which the design is ratiometrically stable."""
    report = ratiometric_report(vdd, vout, tolerance=tolerance)
    v = np.asarray(vdd, dtype=float)
    span = v[-1] - max(v_min_target, v[0])
    if span <= 0:
        raise AnalysisError("sweep does not extend past the target minimum")
    if not report.is_elastic:
        return 0.0
    usable = v[-1] - max(report.usable_from, v_min_target, v[0])
    return float(np.clip(usable / span, 0.0, 1.0))
