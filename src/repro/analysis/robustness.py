"""Monte-Carlo robustness analysis of the weighted adder.

Per-cell Pelgrom mismatch (threshold voltage and transconductance) is
drawn per trial and applied to the switch-level engine through its
``cell_overrides`` hook; the resulting adder-output error distribution
quantifies the paper's remark that its errors remain "affordable".

Three execution paths produce the same campaign (equivalence is pinned
by ``tests/test_exec_engine.py``):

* ``method="loop"`` with the default executor — the reference
  one-solve-per-trial path;
* ``method="loop"`` with a process pool — identical records (sampling
  happens up front in the parent process, solves are pure);
* ``method="vectorized"`` (the ``"auto"`` default) — one batched numpy
  solve for all trials via :mod:`repro.exec.batch`, drawing the same
  random numbers and agreeing to float-reassociation tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuit.exceptions import AnalysisError
from ..core.cells import CellDesign
from ..core.rc_model import RcSwitchSolver
from ..core.weighted_adder import WeightedAdder
from ..exec.batch import (
    MC_METHODS,
    batch_adder_values,
    leg_resistance_arrays,
    resolve_monte_carlo_method,
    sample_adder_mismatch,
)
from ..exec.executor import get_default_executor
from ..tech.corners import CORNER_NAMES, MonteCarloSampler, corner


@dataclass(frozen=True)
class MonteCarloStats:
    """Error statistics of one Monte-Carlo campaign (volts)."""

    n_trials: int
    mean_error: float
    std_error: float
    worst_error: float
    errors: "tuple[float, ...]"

    def percentile(self, q: float) -> float:
        return float(np.percentile(np.abs(self.errors), q))


def _solve_legs(payload) -> float:
    """Solve one trial's leg set (top-level, hence process-pool safe)."""
    legs, cout, period, vdd = payload
    solver = RcSwitchSolver(legs, cout=cout, period=period, vdd=vdd)
    return solver.solve().average_voltage()


def _mismatch_overrides(cfg, sampler: MonteCarloSampler) -> Dict[int, CellDesign]:
    """Draw one trial's per-cell overrides (the scalar reference path)."""
    overrides: Dict[int, CellDesign] = {}
    for i in range(cfg.n_inputs):
        for b in range(cfg.n_bits):
            design = cfg.cell.scaled(float(1 << b))
            nm = sampler.sample(design.wn, design.length)
            pm = sampler.sample(design.wp, design.length)
            overrides[i * cfg.n_bits + b] = replace(
                design,
                nmos=nm.apply(design.nmos),
                pmos=pm.apply(design.pmos))
    return overrides


def adder_monte_carlo(adder: WeightedAdder, duties: Sequence[float],
                      weights: Sequence[int], *, n_trials: int = 100,
                      seed: Optional[int] = None,
                      sampler: Optional[MonteCarloSampler] = None,
                      vdd: Optional[float] = None,
                      method: str = "auto",
                      executor=None) -> MonteCarloStats:
    """Distribution of the adder error under per-cell device mismatch.

    The error is measured against the *nominal RC-engine* output (not
    Eq. 2), isolating mismatch from the systematic engine deviation.

    ``method`` selects the execution path: ``"vectorized"`` (one batched
    numpy solve, the ``"auto"`` default) or ``"loop"`` (one solve per
    trial, distributed over ``executor`` — serial by default, a process
    pool under the CLI's ``--jobs N``).  Both consume the sampler's RNG
    identically, so campaigns agree across paths for a fixed seed.
    """
    if n_trials < 1:
        raise AnalysisError("need at least one trial")
    # The switch-level engine batches whole trial sets; "auto" resolves
    # against its registry capabilities (engines without
    # batched_monte_carlo would drop to the per-trial loop).
    method = resolve_monte_carlo_method(method, engine_id="rc")
    cfg = adder.config
    sampler = sampler or MonteCarloSampler(seed=seed)
    supply = cfg.vdd if vdd is None else vdd
    nominal = adder.evaluate(duties, weights, engine="rc", vdd=vdd).value

    if method == "vectorized":
        mismatch, = sample_adder_mismatch(sampler, cfg, n_trials)
        r_up, r_down = leg_resistance_arrays(cfg, mismatch, supply)
        values = batch_adder_values(cfg, duties, weights, r_up, r_down,
                                    supply).value
        arr = values - nominal
    else:
        executor = executor or get_default_executor()
        payloads = []
        for _ in range(n_trials):
            overrides = _mismatch_overrides(cfg, sampler)
            legs = adder.rc_legs(duties, weights, vdd=supply,
                                 cell_overrides=overrides)
            payloads.append((tuple(legs), cfg.cout, cfg.period, supply))
        values = executor.map(_solve_legs, payloads)
        arr = np.asarray([v - nominal for v in values])
    return MonteCarloStats(
        n_trials=n_trials,
        mean_error=float(arr.mean()),
        std_error=float(arr.std(ddof=1)) if n_trials > 1 else 0.0,
        worst_error=float(np.abs(arr).max()),
        errors=tuple(float(e) for e in arr))


def adder_corner_errors(adder: WeightedAdder, duties: Sequence[float],
                        weights: Sequence[int], *,
                        vdd: Optional[float] = None) -> "dict[str, float]":
    """Adder output deviation from TT at each process corner (volts)."""
    cfg = adder.config
    results: "dict[str, float]" = {}
    nominal = adder.evaluate(duties, weights, engine="rc", vdd=vdd).value
    for name in CORNER_NAMES:
        cell = replace(cfg.cell,
                       nmos=corner(cfg.cell.nmos, name),
                       pmos=corner(cfg.cell.pmos, name))
        overrides = {
            i * cfg.n_bits + b: cell.scaled(float(1 << b))
            for i in range(cfg.n_inputs) for b in range(cfg.n_bits)
        }
        value = adder.evaluate(duties, weights, engine="rc", vdd=vdd,
                               cell_overrides=overrides).value
        results[name] = value - nominal
    return results


@dataclass(frozen=True)
class StressPoint:
    """One (condition, accuracy) record of a classification stress test."""

    condition: float
    accuracy: float


def accuracy_under_supply(predict, X: np.ndarray, y: np.ndarray,
                          vdd_values: Sequence[float]) -> List[StressPoint]:
    """Classification accuracy across supply voltages.

    ``predict(x, vdd)`` must return 0/1; works for PWM, digital and
    current-mode models alike, so the robustness benches can overlay
    them.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if len(X) != len(y) or len(y) == 0:
        raise AnalysisError("need a non-empty dataset")
    points = []
    for vdd in vdd_values:
        hits = sum(int(predict(x, float(vdd)) == label)
                   for x, label in zip(X, y))
        points.append(StressPoint(condition=float(vdd),
                                  accuracy=hits / len(y)))
    return points


def pwm_accuracy_under_supply(perceptron, X: np.ndarray, y: np.ndarray,
                              vdd_values: Sequence[float], *,
                              engine: str = "behavioral"
                              ) -> List[StressPoint]:
    """Batched :func:`accuracy_under_supply` for a differential PWM
    perceptron — identical points, no per-``(sample, vdd)`` Python loop.

    The behavioural engine classifies the whole dataset per supply point
    in one :class:`~repro.serve.engine.BatchInferenceEngine` call
    (bit-identical to the scalar path); the switch-level engine batches
    each sample's entire supply sweep through one
    :class:`~repro.core.rc_model.RcBatchSolver` solve per cell bank
    instead of one scalar periodic solve per grid point.
    """
    from ..engines import require_capability
    from ..serve.engine import BatchInferenceEngine

    # Registry choke point: unknown ids and engines that cannot produce
    # perceptron margins fail with the registry's help.
    require_capability(engine, "serving_margins",
                       context="perceptron accuracy sweeps")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if len(X) != len(y) or len(y) == 0:
        raise AnalysisError("need a non-empty dataset")
    vdds = [float(v) for v in vdd_values]
    batch_engine = BatchInferenceEngine()
    if engine == "behavioral":
        preds = np.stack([batch_engine.predict(perceptron, X, vdd=v)
                          for v in vdds])                     # (V, N)
    else:
        preds = np.stack([
            batch_engine.predict_supply_sweep(perceptron, x, vdds,
                                              engine=engine)
            for x in X], axis=1)                              # (V, N)
    return [StressPoint(condition=v,
                        accuracy=int(np.sum(preds[i] == y)) / len(y))
            for i, v in enumerate(vdds)]
