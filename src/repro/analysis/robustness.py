"""Monte-Carlo robustness analysis of the weighted adder.

Per-cell Pelgrom mismatch (threshold voltage and transconductance) is
drawn per trial and applied to the switch-level engine through its
``cell_overrides`` hook; the resulting adder-output error distribution
quantifies the paper's remark that its errors remain "affordable".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuit.exceptions import AnalysisError
from ..core.cells import CellDesign
from ..core.weighted_adder import WeightedAdder
from ..tech.corners import CORNER_NAMES, MonteCarloSampler, corner


@dataclass(frozen=True)
class MonteCarloStats:
    """Error statistics of one Monte-Carlo campaign (volts)."""

    n_trials: int
    mean_error: float
    std_error: float
    worst_error: float
    errors: "tuple[float, ...]"

    def percentile(self, q: float) -> float:
        return float(np.percentile(np.abs(self.errors), q))


def adder_monte_carlo(adder: WeightedAdder, duties: Sequence[float],
                      weights: Sequence[int], *, n_trials: int = 100,
                      seed: Optional[int] = None,
                      sampler: Optional[MonteCarloSampler] = None,
                      vdd: Optional[float] = None) -> MonteCarloStats:
    """Distribution of the adder error under per-cell device mismatch.

    The error is measured against the *nominal RC-engine* output (not
    Eq. 2), isolating mismatch from the systematic engine deviation.
    """
    if n_trials < 1:
        raise AnalysisError("need at least one trial")
    cfg = adder.config
    sampler = sampler or MonteCarloSampler(seed=seed)
    nominal = adder.evaluate(duties, weights, engine="rc", vdd=vdd).value
    errors: List[float] = []
    for _ in range(n_trials):
        overrides: Dict[int, CellDesign] = {}
        for i in range(cfg.n_inputs):
            for b in range(cfg.n_bits):
                design = cfg.cell.scaled(float(1 << b))
                nm = sampler.sample(design.wn, design.length)
                pm = sampler.sample(design.wp, design.length)
                overrides[i * cfg.n_bits + b] = replace(
                    design,
                    nmos=nm.apply(design.nmos),
                    pmos=pm.apply(design.pmos))
        value = adder.evaluate(duties, weights, engine="rc", vdd=vdd,
                               cell_overrides=overrides).value
        errors.append(value - nominal)
    arr = np.asarray(errors)
    return MonteCarloStats(
        n_trials=n_trials,
        mean_error=float(arr.mean()),
        std_error=float(arr.std(ddof=1)) if n_trials > 1 else 0.0,
        worst_error=float(np.abs(arr).max()),
        errors=tuple(arr))


def adder_corner_errors(adder: WeightedAdder, duties: Sequence[float],
                        weights: Sequence[int], *,
                        vdd: Optional[float] = None) -> "dict[str, float]":
    """Adder output deviation from TT at each process corner (volts)."""
    cfg = adder.config
    results: "dict[str, float]" = {}
    nominal = adder.evaluate(duties, weights, engine="rc", vdd=vdd).value
    for name in CORNER_NAMES:
        cell = replace(cfg.cell,
                       nmos=corner(cfg.cell.nmos, name),
                       pmos=corner(cfg.cell.pmos, name))
        overrides = {
            i * cfg.n_bits + b: cell.scaled(float(1 << b))
            for i in range(cfg.n_inputs) for b in range(cfg.n_bits)
        }
        value = adder.evaluate(duties, weights, engine="rc", vdd=vdd,
                               cell_overrides=overrides).value
        results[name] = value - nominal
    return results


@dataclass(frozen=True)
class StressPoint:
    """One (condition, accuracy) record of a classification stress test."""

    condition: float
    accuracy: float


def accuracy_under_supply(predict, X: np.ndarray, y: np.ndarray,
                          vdd_values: Sequence[float]) -> List[StressPoint]:
    """Classification accuracy across supply voltages.

    ``predict(x, vdd)`` must return 0/1; works for PWM, digital and
    current-mode models alike, so the robustness benches can overlay
    them.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if len(X) != len(y) or len(y) == 0:
        raise AnalysisError("need a non-empty dataset")
    points = []
    for vdd in vdd_values:
        hits = sum(int(predict(x, float(vdd)) == label)
                   for x, label in zip(X, y))
        points.append(StressPoint(condition=float(vdd),
                                  accuracy=hits / len(y)))
    return points
