"""Parameter-sensitivity analysis of the weighted adder.

Finite-difference sensitivities of the adder output with respect to
every electrical design parameter (device thresholds, transconductances,
the passives).  Ranks which parameters actually matter — the ratiometric
structure makes the output insensitive to *global* parameter shifts but
sensitive to *asymmetries*, and this analysis shows exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from ..circuit.exceptions import AnalysisError
from ..core.cells import CellDesign
from ..core.weighted_adder import WeightedAdder


@dataclass(frozen=True)
class Sensitivity:
    """Normalised sensitivity ``(dV/V) / (dp/p)`` of one parameter."""

    parameter: str
    nominal_output: float
    sensitivity: float

    @property
    def percent_per_percent(self) -> float:
        """Output change (%) per 1 % parameter change."""
        return self.sensitivity


def _perturbed_cell(cell: CellDesign, parameter: str,
                    rel_step: float) -> CellDesign:
    if parameter == "rout":
        return replace(cell, rout=cell.rout * (1 + rel_step))
    if parameter == "nmos_width":
        return replace(cell, nmos_width=cell.nmos_width * (1 + rel_step))
    if parameter == "pmos_width":
        return replace(cell, pmos_width=cell.pmos_width * (1 + rel_step))
    if parameter == "nmos_vt":
        return replace(cell, nmos=cell.nmos.scaled(
            vt0=cell.nmos.vt0 * (1 + rel_step)))
    if parameter == "pmos_vt":
        return replace(cell, pmos=cell.pmos.scaled(
            vt0=cell.pmos.vt0 * (1 + rel_step)))
    if parameter == "nmos_kp":
        return replace(cell, nmos=cell.nmos.scaled(
            kp=cell.nmos.kp * (1 + rel_step)))
    if parameter == "pmos_kp":
        return replace(cell, pmos=cell.pmos.scaled(
            kp=cell.pmos.kp * (1 + rel_step)))
    raise AnalysisError(f"unknown sensitivity parameter {parameter!r}")


#: Parameters ranked by default.
SENSITIVITY_PARAMETERS = ("rout", "nmos_width", "pmos_width", "nmos_vt",
                          "pmos_vt", "nmos_kp", "pmos_kp")


def adder_sensitivities(adder: WeightedAdder, duties: Sequence[float],
                        weights: Sequence[int], *,
                        parameters: Sequence[str] = SENSITIVITY_PARAMETERS,
                        rel_step: float = 0.05,
                        vdd: "float | None" = None) -> List[Sensitivity]:
    """Normalised output sensitivities via central differences on the
    RC switch-level engine (applied to *every* cell simultaneously —
    i.e. a global parameter shift, the corner-style variation)."""
    if rel_step <= 0:
        raise AnalysisError("rel_step must be positive")
    cfg = adder.config
    nominal = adder.evaluate(duties, weights, engine="rc", vdd=vdd).value
    if nominal == 0.0:
        raise AnalysisError("nominal output is zero; sensitivities undefined")

    results: List[Sensitivity] = []
    for parameter in parameters:
        outputs = []
        for sign in (+1.0, -1.0):
            cell = _perturbed_cell(cfg.cell, parameter, sign * rel_step)
            overrides: Dict[int, CellDesign] = {
                i * cfg.n_bits + b: cell.scaled(float(1 << b))
                for i in range(cfg.n_inputs)
                for b in range(cfg.n_bits)
            }
            outputs.append(adder.evaluate(
                duties, weights, engine="rc", vdd=vdd,
                cell_overrides=overrides).value)
        dv = (outputs[0] - outputs[1]) / 2.0
        results.append(Sensitivity(
            parameter=parameter, nominal_output=nominal,
            sensitivity=(dv / nominal) / rel_step))
    return sorted(results, key=lambda s: -abs(s.sensitivity))
