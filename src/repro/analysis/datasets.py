"""Synthetic datasets with duty-cycle features.

All features live in [0, 1] so they map directly onto PWM duty cycles.
The 3x3-patch dataset matches the paper's 3x3 adder: nine pixels, one
perceptron — the image-sensing workload its introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..circuit.exceptions import AnalysisError


@dataclass(frozen=True)
class Dataset:
    """Features (duty cycles) and binary labels."""

    X: np.ndarray
    y: np.ndarray
    name: str = "dataset"

    def __post_init__(self):
        if self.X.ndim != 2 or self.y.ndim != 1:
            raise AnalysisError("X must be 2-D and y 1-D")
        if len(self.X) != len(self.y):
            raise AnalysisError("X and y lengths differ")
        if self.X.size and (self.X.min() < 0.0 or self.X.max() > 1.0):
            raise AnalysisError("features must lie in [0, 1]")

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def __len__(self) -> int:
        return len(self.y)

    def split(self, train_fraction: float = 0.7,
              seed: Optional[int] = None) -> "Tuple[Dataset, Dataset]":
        if not 0.0 < train_fraction < 1.0:
            raise AnalysisError("train fraction must lie in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        tr, te = order[:cut], order[cut:]
        return (Dataset(self.X[tr], self.y[tr], f"{self.name}_train"),
                Dataset(self.X[te], self.y[te], f"{self.name}_test"))


def make_blobs(n_per_class: int = 50, n_features: int = 2, *,
               separation: float = 0.4, spread: float = 0.08,
               seed: Optional[int] = None) -> Dataset:
    """Two Gaussian clusters inside the unit hypercube."""
    if n_per_class < 1 or n_features < 1:
        raise AnalysisError("need at least one sample and one feature")
    rng = np.random.default_rng(seed)
    c0 = np.full(n_features, 0.5 - separation / 2)
    c1 = np.full(n_features, 0.5 + separation / 2)
    X0 = rng.normal(c0, spread, (n_per_class, n_features))
    X1 = rng.normal(c1, spread, (n_per_class, n_features))
    X = np.clip(np.vstack([X0, X1]), 0.0, 1.0)
    y = np.concatenate([np.zeros(n_per_class, int), np.ones(n_per_class, int)])
    return Dataset(X, y, "blobs")


def make_majority(n_samples: int = 120, n_features: int = 3, *,
                  noise: float = 0.1, seed: Optional[int] = None) -> Dataset:
    """Noisy majority vote: label 1 when most features exceed 0.5."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 2, (n_samples, n_features)).astype(float)
    X = np.clip(base * 0.8 + 0.1 + rng.normal(0, noise, base.shape), 0, 1)
    y = (base.sum(axis=1) > n_features / 2).astype(int)
    return Dataset(X, y, "majority")


def make_edge_patches(n_samples: int = 160, *, contrast: float = 0.6,
                      noise: float = 0.08,
                      seed: Optional[int] = None) -> Dataset:
    """3x3 image patches: bright-top edges (label 1) vs bright-bottom.

    Nine duty-cycle features — exactly the paper's 3x3 adder workload
    (three such perceptrons, one per pixel column, would make the full
    3-input weighted adder).
    """
    rng = np.random.default_rng(seed)
    X = np.empty((n_samples, 9))
    y = rng.integers(0, 2, n_samples)
    lo, hi = 0.5 - contrast / 2, 0.5 + contrast / 2
    for i in range(n_samples):
        patch = np.full((3, 3), lo)
        if y[i] == 1:
            patch[0, :] = hi   # bright top row
        else:
            patch[2, :] = hi   # bright bottom row
        patch += rng.normal(0, noise, (3, 3))
        X[i] = np.clip(patch, 0.0, 1.0).ravel()
    return Dataset(X, y.astype(int), "edge_patches")


def make_logic(function: str = "and", n_samples: int = 80, *,
               noise: float = 0.05, seed: Optional[int] = None) -> Dataset:
    """Noisy two-input logic functions (AND/OR are linearly separable;
    XOR is not — the MLP test case)."""
    tables = {
        "and": [0, 0, 0, 1],
        "or": [0, 1, 1, 1],
        "xor": [0, 1, 1, 0],
        "nand": [1, 1, 1, 0],
    }
    key = function.lower()
    if key not in tables:
        raise AnalysisError(f"unknown logic function {function!r}")
    rng = np.random.default_rng(seed)
    corners = np.array([[0.1, 0.1], [0.1, 0.9], [0.9, 0.1], [0.9, 0.9]])
    labels = tables[key]
    idx = rng.integers(0, 4, n_samples)
    X = np.clip(corners[idx] + rng.normal(0, noise, (n_samples, 2)), 0, 1)
    y = np.asarray([labels[i] for i in idx], dtype=int)
    return Dataset(X, y, f"logic_{key}")
