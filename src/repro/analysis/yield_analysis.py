"""Parametric yield: the fraction of manufactured-and-deployed parts
that classify correctly.

Combines the two variation axes this library models — per-device
mismatch (manufacturing) and supply voltage (deployment, e.g. harvester
statistics) — into a single Monte-Carlo yield figure for a trained
perceptron.  This is the number a product team would actually sign off
on, and the strongest single-figure summary of the paper's robustness
story.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

import numpy as np

from ..circuit.exceptions import AnalysisError
from ..core.cells import CellDesign
from ..core.perceptron import DifferentialPwmPerceptron
from ..tech.corners import MonteCarloSampler
from .datasets import Dataset


@dataclass(frozen=True)
class YieldResult:
    """Outcome of a yield campaign."""

    n_parts: int
    accuracy_threshold: float
    yield_fraction: float
    mean_accuracy: float
    worst_accuracy: float
    accuracies: "tuple[float, ...]"


def _mismatched_overrides(config, sampler: MonteCarloSampler) -> Dict[int, CellDesign]:
    overrides: Dict[int, CellDesign] = {}
    for i in range(config.n_inputs):
        for b in range(config.n_bits):
            design = config.cell.scaled(float(1 << b))
            nm = sampler.sample(design.wn, design.length)
            pm = sampler.sample(design.wp, design.length)
            overrides[i * config.n_bits + b] = replace(
                design, nmos=nm.apply(design.nmos),
                pmos=pm.apply(design.pmos))
    return overrides


def perceptron_yield(perceptron: DifferentialPwmPerceptron,
                     dataset: Dataset, *, n_parts: int = 50,
                     vdd_sampler: Optional[Callable[[], float]] = None,
                     accuracy_threshold: float = 0.95,
                     seed: Optional[int] = None) -> YieldResult:
    """Monte-Carlo yield of a differential PWM perceptron.

    Each simulated *part* draws fresh mismatch for both cell banks; each
    *classification* draws a supply voltage from ``vdd_sampler`` (default:
    the nominal supply).  A part passes when its dataset accuracy meets
    ``accuracy_threshold``.
    """
    if n_parts < 1:
        raise AnalysisError("need at least one part")
    if not 0.0 < accuracy_threshold <= 1.0:
        raise AnalysisError("accuracy threshold must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    sampler = MonteCarloSampler(seed=None if seed is None else seed + 1)
    config = perceptron.config

    accuracies = []
    for _part in range(n_parts):
        pos_overrides = _mismatched_overrides(config, sampler)
        neg_overrides = _mismatched_overrides(config, sampler)
        hits = 0
        for x, label in zip(dataset.X, dataset.y):
            vdd = float(vdd_sampler()) if vdd_sampler else None
            duties = list(x) + [1.0]
            pos = perceptron.pos_adder.evaluate(
                duties, perceptron._pos_weights, engine="rc", vdd=vdd,
                cell_overrides=pos_overrides)
            neg = perceptron.neg_adder.evaluate(
                duties, perceptron._neg_weights, engine="rc", vdd=vdd,
                cell_overrides=neg_overrides)
            prediction = int(perceptron.comparator.compare(pos.value,
                                                           neg.value))
            hits += int(prediction == int(label))
        accuracies.append(hits / len(dataset))

    arr = np.asarray(accuracies)
    return YieldResult(
        n_parts=n_parts,
        accuracy_threshold=accuracy_threshold,
        yield_fraction=float(np.mean(arr >= accuracy_threshold)),
        mean_accuracy=float(arr.mean()),
        worst_accuracy=float(arr.min()),
        accuracies=tuple(arr))
