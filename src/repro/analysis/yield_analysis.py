"""Parametric yield: the fraction of manufactured-and-deployed parts
that classify correctly.

Combines the two variation axes this library models — per-device
mismatch (manufacturing) and supply voltage (deployment, e.g. harvester
statistics) — into a single Monte-Carlo yield figure for a trained
perceptron.  This is the number a product team would actually sign off
on, and the strongest single-figure summary of the paper's robustness
story.

Execution mirrors :func:`repro.analysis.robustness.adder_monte_carlo`:
``method="loop"`` is the reference per-part path (optionally spread
over a process pool — identical results, since all RNG consumption
happens up front in the parent process), ``method="vectorized"`` (the
``"auto"`` default) batches all parts per dataset sample through
:class:`~repro.core.rc_model.RcBatchSolver` and agrees with the loop to
float tolerance while drawing the same random numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from ..circuit.exceptions import AnalysisError
from ..core.cells import CellDesign
from ..core.comparator import DifferentialComparator
from ..core.perceptron import DifferentialPwmPerceptron
from ..exec.batch import (
    batch_adder_values,
    leg_resistance_arrays,
    sample_adder_mismatch,
)
from ..exec.executor import get_default_executor
from ..tech.corners import MonteCarloSampler
from .datasets import Dataset

YIELD_METHODS = ("auto", "loop", "vectorized")


@dataclass(frozen=True)
class YieldResult:
    """Outcome of a yield campaign."""

    n_parts: int
    accuracy_threshold: float
    yield_fraction: float
    mean_accuracy: float
    worst_accuracy: float
    accuracies: "tuple[float, ...]"


def _mismatched_overrides(config, sampler: MonteCarloSampler) -> Dict[int, CellDesign]:
    overrides: Dict[int, CellDesign] = {}
    for i in range(config.n_inputs):
        for b in range(config.n_bits):
            design = config.cell.scaled(float(1 << b))
            nm = sampler.sample(design.wn, design.length)
            pm = sampler.sample(design.wp, design.length)
            overrides[i * config.n_bits + b] = replace(
                design, nmos=nm.apply(design.nmos),
                pmos=pm.apply(design.pmos))
    return overrides


def _part_accuracy(payload) -> float:
    """Classify one part over the dataset (top-level, process-pool safe)."""
    (perceptron, pos_overrides, neg_overrides, X, y, vdds) = payload
    hits = 0
    for x, label, vdd in zip(X, y, vdds):
        duties = list(x) + [1.0]
        pos = perceptron.pos_adder.evaluate(
            duties, perceptron._pos_weights, engine="rc", vdd=vdd,
            cell_overrides=pos_overrides)
        neg = perceptron.neg_adder.evaluate(
            duties, perceptron._neg_weights, engine="rc", vdd=vdd,
            cell_overrides=neg_overrides)
        prediction = int(perceptron.comparator.compare(pos.value, neg.value))
        hits += int(prediction == int(label))
    return hits / len(y)


def _plain_differential(comparator) -> bool:
    """True when the decision reduces to ``(pos - neg) > offset``."""
    return (type(comparator) is DifferentialComparator
            and comparator.hysteresis == 0.0)


def perceptron_yield(perceptron: DifferentialPwmPerceptron,
                     dataset: Dataset, *, n_parts: int = 50,
                     vdd_sampler: Optional[Callable[[], float]] = None,
                     accuracy_threshold: float = 0.95,
                     seed: Optional[int] = None,
                     method: str = "auto",
                     executor=None) -> YieldResult:
    """Monte-Carlo yield of a differential PWM perceptron.

    Each simulated *part* draws fresh mismatch for both cell banks; each
    *classification* draws a supply voltage from ``vdd_sampler`` (default:
    the nominal supply).  A part passes when its dataset accuracy meets
    ``accuracy_threshold``.

    ``method="vectorized"`` (the ``"auto"`` default) solves all parts at
    once per dataset sample; ``method="loop"`` runs the reference
    per-part evaluation, distributed over ``executor``.  A comparator
    with hysteresis is stateful across classifications, so it forces the
    in-order loop path.
    """
    if n_parts < 1:
        raise AnalysisError("need at least one part")
    if not 0.0 < accuracy_threshold <= 1.0:
        raise AnalysisError("accuracy threshold must lie in (0, 1]")
    if method not in YIELD_METHODS:
        raise AnalysisError(f"unknown method {method!r}; use {YIELD_METHODS}")
    sampler = MonteCarloSampler(seed=None if seed is None else seed + 1)
    config = perceptron.config
    n_samples = len(dataset)
    nominal_vdd = float(config.vdd)

    if not _plain_differential(perceptron.comparator):
        # Hysteresis carries state from one compare to the next: only
        # the strictly-in-order scalar path reproduces it.
        accuracies = _yield_loop_stateful(perceptron, dataset, n_parts,
                                          vdd_sampler, sampler)
        return _summarise(accuracies, n_parts, accuracy_threshold)

    if method in ("auto", "vectorized"):
        mismatch_pos, mismatch_neg = sample_adder_mismatch(
            sampler, config, n_parts, banks=2)
        vdds = _draw_vdds(vdd_sampler, n_parts, n_samples, nominal_vdd)
        offset = perceptron.comparator.offset
        hits = np.zeros(n_parts)
        for s in range(n_samples):
            duties = list(dataset.X[s]) + [1.0]
            vdd_col = vdds[:, s]
            pos_up, pos_down = leg_resistance_arrays(config, mismatch_pos,
                                                     vdd_col)
            neg_up, neg_down = leg_resistance_arrays(config, mismatch_neg,
                                                     vdd_col)
            pos = batch_adder_values(config, duties,
                                     perceptron._pos_weights,
                                     pos_up, pos_down, vdd_col).value
            neg = batch_adder_values(config, duties,
                                     perceptron._neg_weights,
                                     neg_up, neg_down, vdd_col).value
            predictions = ((pos - neg) > offset).astype(int)
            hits += predictions == int(dataset.y[s])
        accuracies = list(hits / n_samples)
    else:
        executor = executor or get_default_executor()
        payloads = []
        for _part in range(n_parts):
            pos_overrides = _mismatched_overrides(config, sampler)
            neg_overrides = _mismatched_overrides(config, sampler)
            vdds = [float(vdd_sampler()) if vdd_sampler else None
                    for _ in range(n_samples)]
            payloads.append((perceptron, pos_overrides, neg_overrides,
                             dataset.X, dataset.y, vdds))
        accuracies = executor.map(_part_accuracy, payloads)
    return _summarise(accuracies, n_parts, accuracy_threshold)


def _draw_vdds(vdd_sampler, n_parts: int, n_samples: int,
               nominal: float) -> np.ndarray:
    """Supply draws in the scalar order: part-major, one per sample."""
    if vdd_sampler is None:
        return np.full((n_parts, n_samples), nominal)
    return np.array([[float(vdd_sampler()) for _ in range(n_samples)]
                     for _ in range(n_parts)])


def _yield_loop_stateful(perceptron, dataset, n_parts, vdd_sampler,
                         sampler) -> "List[float]":
    """Strictly-serial reference path sharing the stateful comparator."""
    config = perceptron.config
    accuracies: List[float] = []
    for _part in range(n_parts):
        pos_overrides = _mismatched_overrides(config, sampler)
        neg_overrides = _mismatched_overrides(config, sampler)
        hits = 0
        for x, label in zip(dataset.X, dataset.y):
            vdd = float(vdd_sampler()) if vdd_sampler else None
            duties = list(x) + [1.0]
            pos = perceptron.pos_adder.evaluate(
                duties, perceptron._pos_weights, engine="rc", vdd=vdd,
                cell_overrides=pos_overrides)
            neg = perceptron.neg_adder.evaluate(
                duties, perceptron._neg_weights, engine="rc", vdd=vdd,
                cell_overrides=neg_overrides)
            prediction = int(perceptron.comparator.compare(pos.value,
                                                           neg.value))
            hits += int(prediction == int(label))
        accuracies.append(hits / len(dataset))
    return accuracies


def _summarise(accuracies, n_parts: int,
               accuracy_threshold: float) -> YieldResult:
    arr = np.asarray(list(accuracies))
    return YieldResult(
        n_parts=n_parts,
        accuracy_threshold=accuracy_threshold,
        yield_fraction=float(np.mean(arr >= accuracy_threshold)),
        mean_accuracy=float(arr.mean()),
        worst_accuracy=float(arr.min()),
        accuracies=tuple(float(a) for a in arr))
