"""Export circuits as SPICE netlists.

Users with access to a real simulator (ngspice, Spectre, the Cadence ADE
the paper used) can cross-check this library's results: every `Circuit`
serialises to a standard ``.cir`` deck, with the Level-1 device
parameters emitted as ``.model`` cards.  The export covers the element
set the perceptron work uses; exotic elements raise rather than silently
dropping.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from .elements.controlled import Vccs, Vcvs, VSwitch
from .elements.mosfet import Mosfet
from .elements.passives import Capacitor, Inductor, Resistor
from .elements.sources import (
    Idc,
    PwmVoltage,
    Vdc,
    Vpulse,
    Vpwl,
    Vsin,
)
from .exceptions import AnalysisError
from .netlist import Circuit

PathLike = Union[str, Path]


def _node(name: str) -> str:
    """SPICE node name: ground becomes 0, dots become underscores."""
    from .elements.base import is_ground

    if is_ground(name):
        return "0"
    return name.replace(".", "_")


def _model_name(mosfet: Mosfet) -> str:
    base = mosfet.model.name or f"{mosfet.model.polarity}_model"
    return base.replace(".", "_")


def _model_card(mosfet: Mosfet) -> str:
    m = mosfet.model
    kind = "NMOS" if m.polarity == "nmos" else "PMOS"
    # Level-1 parameter mapping; capacitances as overlap terms.
    return (f".model {_model_name(mosfet)} {kind} (LEVEL=1 VTO={m.vt0:g} "
            f"KP={m.kp:g} LAMBDA={m.lam:g} "
            f"CGSO={m.cgso:g} CGDO={m.cgdo:g})")


def to_spice(circuit: Circuit, *, title: str = "",
             analysis_lines: "List[str] | None" = None) -> str:
    """Serialise ``circuit`` to a SPICE deck (returned as a string)."""
    circuit.compile()
    lines: List[str] = [f"* {title or circuit.name}"]
    models: Dict[str, str] = {}

    for el in circuit.elements:
        name = el.name.replace(".", "_")
        nodes = [_node(n) for n in el.node_names]
        if isinstance(el, Resistor):
            lines.append(f"R{name} {nodes[0]} {nodes[1]} {el.resistance:g}")
        elif isinstance(el, Capacitor):
            card = f"C{name} {nodes[0]} {nodes[1]} {el.capacitance:g}"
            if el.ic is not None:
                card += f" IC={el.ic:g}"
            lines.append(card)
        elif isinstance(el, Inductor):
            lines.append(f"L{name} {nodes[0]} {nodes[1]} {el.inductance:g}")
        elif isinstance(el, Mosfet):
            model = _model_name(el)
            models[model] = _model_card(el)
            lines.append(
                f"M{name} {nodes[0]} {nodes[1]} {nodes[2]} {nodes[2]} "
                f"{model} W={el.width:g} L={el.length:g}")
        elif isinstance(el, (Vpulse,)):
            # Covers PwmVoltage too (a Vpulse subclass).
            lines.append(
                f"V{name} {nodes[0]} {nodes[1]} PULSE({el.v1:g} {el.v2:g} "
                f"{el.delay:g} {el.rise:g} {el.fall:g} {el.width:g} "
                f"{el.period:g})")
        elif isinstance(el, Vsin):
            lines.append(
                f"V{name} {nodes[0]} {nodes[1]} SIN({el.offset:g} "
                f"{el.amplitude:g} {el.frequency:g} {el.delay:g})")
        elif isinstance(el, Vpwl):
            points = " ".join(f"{t:g} {v:g}" for t, v in el.points)
            lines.append(f"V{name} {nodes[0]} {nodes[1]} PWL({points})")
        elif isinstance(el, Vdc):
            lines.append(f"V{name} {nodes[0]} {nodes[1]} DC {el.voltage:g}")
        elif isinstance(el, Idc):
            lines.append(f"I{name} {nodes[0]} {nodes[1]} DC {el.current:g}")
        elif isinstance(el, Vcvs):
            lines.append(f"E{name} {nodes[0]} {nodes[1]} {nodes[2]} "
                         f"{nodes[3]} {el.gain:g}")
        elif isinstance(el, Vccs):
            lines.append(f"G{name} {nodes[0]} {nodes[1]} {nodes[2]} "
                         f"{nodes[3]} {el.gm:g}")
        elif isinstance(el, VSwitch):
            model = f"sw_{name}"
            models[model] = (f".model {model} SW (RON={el.r_on:g} "
                             f"ROFF={el.r_off:g} VT={el.threshold:g} "
                             f"VH={el.smooth:g})")
            lines.append(f"S{name} {nodes[0]} {nodes[1]} {nodes[2]} "
                         f"{nodes[3]} {model}")
        else:
            raise AnalysisError(
                f"cannot export element type {type(el).__name__} "
                f"({el.name}) to SPICE")

    lines.extend(sorted(models.values()))
    if analysis_lines:
        lines.extend(analysis_lines)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_spice(circuit: Circuit, path: PathLike, **kwargs) -> Path:
    """Write the deck to ``path``; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_spice(circuit, **kwargs))
    return target
