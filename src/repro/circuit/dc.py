"""DC operating point and DC sweeps.

The operating point is found with plain Newton first; if that fails the
solver falls back to gmin stepping, then source stepping — the same
homotopy ladder a production SPICE uses.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from .exceptions import ConvergenceError
from .mna import MnaContext
from .netlist import Circuit


class OpPoint:
    """Solved operating point with name-based accessors."""

    def __init__(self, circuit: Circuit, x: np.ndarray, t: float = 0.0):
        self.circuit = circuit
        self.x = x
        self.t = t

    def voltage(self, node: str) -> float:
        idx = self.circuit.node_index(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def branch_current(self, element_name: str) -> float:
        el = self.circuit.element(element_name)
        if not el._branch:
            raise ConvergenceError(
                f"{element_name!r} has no branch current", analysis="op")
        return float(self.x[el._branch[0]])

    def voltages(self) -> "dict[str, float]":
        return {
            name: float(self.x[i])
            for i, name in enumerate(self.circuit.node_names)
        }

    def __repr__(self) -> str:
        return f"<OpPoint t={self.t:.4g} nodes={self.circuit.n_nodes}>"


#: gshunt ladder for gmin stepping, siemens.
_GSHUNT_LADDER = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0.0)


def operating_point(circuit: Circuit, *, t: float = 0.0,
                    x0: Optional[np.ndarray] = None,
                    ctx: Optional[MnaContext] = None) -> OpPoint:
    """Solve the DC operating point at time ``t`` (sources evaluated there).

    Capacitors are open, inductors short.
    """
    ctx = ctx or MnaContext(circuit)
    try:
        x = ctx.solve_newton(x0, t, mode="dc", analysis="op")
        return OpPoint(circuit, x, t)
    except ConvergenceError:
        pass
    # gmin stepping.
    x = x0
    try:
        for gshunt in _GSHUNT_LADDER:
            x = ctx.solve_newton(x, t, mode="dc", gshunt=gshunt,
                                 analysis="op/gmin")
        return OpPoint(circuit, x, t)
    except ConvergenceError:
        pass
    # Source stepping.
    x = None
    for scale in np.linspace(0.05, 1.0, 20):
        x = ctx.solve_newton(x, t, mode="dc", source_scale=float(scale),
                             analysis="op/source-step")
    return OpPoint(circuit, x, t)


def dc_sweep(circuit: Circuit, set_value: Callable[[float], None],
             values: Sequence[float], *, t: float = 0.0) -> List[OpPoint]:
    """Solve a chain of operating points while ``set_value`` mutates the
    circuit (typically a source voltage) before each solve.

    The previous solution warm-starts the next point, which is both
    faster and more robust than independent solves.
    """
    points: List[OpPoint] = []
    x_prev: Optional[np.ndarray] = None
    for value in values:
        set_value(float(value))
        ctx = MnaContext(circuit)
        op = operating_point(circuit, t=t, x0=x_prev, ctx=ctx)
        points.append(op)
        x_prev = op.x
    return points
