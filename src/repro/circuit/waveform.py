"""Time-series container with the measurements analog designers expect.

A :class:`Waveform` is an immutable pair of monotonically increasing time
points and sampled values.  All reductions (average, RMS, ripple) use
trapezoidal integration so results are consistent with the variable-step
transient engine that produces them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Tuple

import numpy as np

from .exceptions import AnalysisError


class Waveform:
    """A sampled signal ``y(t)``.

    Parameters
    ----------
    t:
        Monotonically non-decreasing sample times, seconds.
    y:
        Sample values, same length as ``t``.
    name:
        Optional label used in reprs and exported tables.
    """

    __slots__ = ("_t", "_y", "name")

    def __init__(self, t: Sequence[float], y: Sequence[float], name: str = ""):
        t_arr = np.asarray(t, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        if t_arr.ndim != 1 or y_arr.ndim != 1:
            raise AnalysisError("waveform arrays must be one-dimensional")
        if t_arr.shape != y_arr.shape:
            raise AnalysisError(
                f"time and value arrays differ in length: {t_arr.size} vs {y_arr.size}"
            )
        if t_arr.size < 1:
            raise AnalysisError("waveform needs at least one sample")
        if np.any(np.diff(t_arr) < 0):
            raise AnalysisError("waveform time axis must be non-decreasing")
        self._t = t_arr
        self._y = y_arr
        self.name = name

    # -- basic accessors ------------------------------------------------

    @property
    def t(self) -> np.ndarray:
        """Sample times (read-only view)."""
        view = self._t.view()
        view.flags.writeable = False
        return view

    @property
    def y(self) -> np.ndarray:
        """Sample values (read-only view)."""
        view = self._y.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._t.size

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Waveform{label} n={len(self)} "
            f"t=[{self._t[0]:.4g}, {self._t[-1]:.4g}]s>"
        )

    @property
    def duration(self) -> float:
        """Span of the time axis in seconds."""
        return float(self._t[-1] - self._t[0])

    # -- sampling -------------------------------------------------------

    def value_at(self, time: float) -> float:
        """Linearly interpolated value at ``time`` (clamped to the ends)."""
        return float(np.interp(time, self._t, self._y))

    def slice(self, t0: float, t1: float) -> "Waveform":
        """Return the sub-waveform on ``[t0, t1]`` with interpolated ends."""
        if t1 < t0:
            raise AnalysisError(f"empty slice: [{t0}, {t1}]")
        inside = (self._t > t0) & (self._t < t1)
        t_new = np.concatenate(([t0], self._t[inside], [t1]))
        y_new = np.concatenate(
            ([self.value_at(t0)], self._y[inside], [self.value_at(t1)])
        )
        return Waveform(t_new, y_new, self.name)

    def resample(self, t_new: Sequence[float]) -> "Waveform":
        """Linearly resample onto a new time grid."""
        t_arr = np.asarray(t_new, dtype=float)
        return Waveform(t_arr, np.interp(t_arr, self._t, self._y), self.name)

    # -- reductions -----------------------------------------------------

    def average(self) -> float:
        """Time-weighted mean value (trapezoidal)."""
        if self.duration == 0.0:
            return float(self._y[0])
        return float(np.trapezoid(self._y, self._t) / self.duration)

    def rms(self) -> float:
        """Root-mean-square value (trapezoidal)."""
        if self.duration == 0.0:
            return float(abs(self._y[0]))
        return float(np.sqrt(np.trapezoid(self._y**2, self._t) / self.duration))

    def minimum(self) -> float:
        return float(self._y.min())

    def maximum(self) -> float:
        return float(self._y.max())

    def peak_to_peak(self) -> float:
        """Ripple: max minus min."""
        return float(self._y.max() - self._y.min())

    def integral(self) -> float:
        """Trapezoidal integral of ``y`` over the full time span."""
        return float(np.trapezoid(self._y, self._t))

    def fold(self, period: float, n_bins: int = 200) -> "Waveform":
        """Overlay the waveform onto one period (eye-diagram style).

        Samples are binned by phase and averaged — the steady-state
        shape emerges even from a long multi-period transient.  Bins
        with no samples are interpolated from their neighbours.
        """
        if period <= 0:
            raise AnalysisError("fold period must be positive")
        if n_bins < 2:
            raise AnalysisError("fold needs at least two bins")
        phase = ((self._t - self._t[0]) % period) / period
        bins = np.minimum((phase * n_bins).astype(int), n_bins - 1)
        sums = np.bincount(bins, weights=self._y, minlength=n_bins)
        counts = np.bincount(bins, minlength=n_bins)
        centers = (np.arange(n_bins) + 0.5) * period / n_bins
        filled = counts > 0
        if not filled.any():
            raise AnalysisError("fold produced no samples")
        means = np.empty(n_bins)
        means[filled] = sums[filled] / counts[filled]
        if not filled.all():
            means[~filled] = np.interp(centers[~filled], centers[filled],
                                       means[filled])
        return Waveform(centers, means, f"{self.name}_folded")

    def spectrum(self, n_points: int = 1024) -> "Tuple[np.ndarray, np.ndarray]":
        """Single-sided amplitude spectrum ``(frequencies, amplitudes)``.

        The waveform is resampled onto a uniform grid (the engine's
        steps are breakpoint-aligned, hence non-uniform) before the real
        FFT.  Amplitudes are peak volts per bin; the DC bin holds the
        mean.  Used for ripple-harmonic analysis of the averaging node.
        """
        if self.duration <= 0.0:
            raise AnalysisError("spectrum needs a non-zero time span")
        if n_points < 2:
            raise AnalysisError("spectrum needs at least two points")
        t_uniform = np.linspace(self._t[0], self._t[-1], n_points,
                                endpoint=False)
        y_uniform = np.interp(t_uniform, self._t, self._y)
        amplitudes = np.abs(np.fft.rfft(y_uniform)) / n_points
        amplitudes[1:] *= 2.0
        frequencies = np.fft.rfftfreq(n_points,
                                      self.duration / n_points)
        return frequencies, amplitudes

    def harmonic_amplitude(self, fundamental: float, harmonic: int = 1,
                           n_points: int = 4096) -> float:
        """Amplitude of the ``harmonic``-th multiple of ``fundamental``."""
        if fundamental <= 0 or harmonic < 1:
            raise AnalysisError("need a positive fundamental and harmonic")
        freqs, amps = self.spectrum(n_points)
        target = fundamental * harmonic
        idx = int(np.argmin(np.abs(freqs - target)))
        return float(amps[idx])

    # -- event extraction -----------------------------------------------

    def crossings(self, level: float, direction: str = "both") -> np.ndarray:
        """Interpolated times where the signal crosses ``level``.

        ``direction`` is ``"rise"``, ``"fall"`` or ``"both"``.
        """
        if direction not in ("rise", "fall", "both"):
            raise AnalysisError(f"bad crossing direction: {direction!r}")
        y_rel = self._y - level
        sign = np.sign(y_rel)
        # Treat exact hits as belonging to the previous sign to avoid
        # double counting.
        sign[sign == 0] = 1
        flips = np.nonzero(np.diff(sign))[0]
        times = []
        for i in flips:
            rising = self._y[i + 1] > self._y[i]
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and rising:
                continue
            dy = self._y[i + 1] - self._y[i]
            if dy == 0.0:
                continue
            frac = (level - self._y[i]) / dy
            times.append(self._t[i] + frac * (self._t[i + 1] - self._t[i]))
        return np.asarray(times)

    def duty_cycle(self, level: float) -> float:
        """Fraction of time the signal spends above ``level``."""
        if self.duration == 0.0:
            return 1.0 if self._y[0] > level else 0.0
        above = (self._y[:-1] > level) & (self._y[1:] > level)
        below = (self._y[:-1] <= level) & (self._y[1:] <= level)
        dt = np.diff(self._t)
        time_above = float(np.sum(dt[above]))
        time_below = float(np.sum(dt[below]))
        # Segments that cross the level: split at the interpolated
        # crossing point.
        mixed = ~(above | below)
        for i in np.nonzero(mixed)[0]:
            dy = self._y[i + 1] - self._y[i]
            if dy == 0.0:
                continue
            frac = np.clip((level - self._y[i]) / dy, 0.0, 1.0)
            t_cross = frac * dt[i]
            if self._y[i] > level:
                time_above += t_cross
                time_below += dt[i] - t_cross
            else:
                time_below += t_cross
                time_above += dt[i] - t_cross
        total = time_above + time_below
        return time_above / total if total > 0 else 0.0

    def settling_time(self, final: float, tolerance: float) -> float:
        """First time after which the signal stays within ``final±tolerance``.

        Returns ``inf`` when the signal never settles inside the band.
        """
        outside = np.abs(self._y - final) > tolerance
        if not outside.any():
            return float(self._t[0])
        last_bad = int(np.nonzero(outside)[0][-1])
        if last_bad == len(self) - 1:
            return float("inf")
        return float(self._t[last_bad + 1])

    # -- arithmetic -----------------------------------------------------

    def _binary(self, other: "Waveform | float", op: Callable) -> "Waveform":
        if isinstance(other, Waveform):
            t_union = np.union1d(self._t, other._t)
            a = np.interp(t_union, self._t, self._y)
            b = np.interp(t_union, other._t, other._y)
            return Waveform(t_union, op(a, b), self.name)
        return Waveform(self._t, op(self._y, float(other)), self.name)

    def __add__(self, other):
        return self._binary(other, lambda a, b: a + b)

    def __sub__(self, other):
        return self._binary(other, lambda a, b: a - b)

    def __mul__(self, other):
        return self._binary(other, lambda a, b: a * b)

    def __truediv__(self, other):
        return self._binary(other, lambda a, b: a / b)

    def __neg__(self):
        return Waveform(self._t, -self._y, self.name)

    def abs(self) -> "Waveform":
        return Waveform(self._t, np.abs(self._y), self.name)


def concatenate(waves: Iterable[Waveform], name: str = "") -> Waveform:
    """Join consecutive waveforms end to end.

    Duplicate boundary samples (the end of one segment equals the start
    of the next) are merged.
    """
    waves = list(waves)
    if not waves:
        raise AnalysisError("cannot concatenate zero waveforms")
    ts: "list[np.ndarray]" = [waves[0].t]
    ys: "list[np.ndarray]" = [waves[0].y]
    for w in waves[1:]:
        t, y = w.t, w.y
        if ts[-1][-1] == t[0]:
            t, y = t[1:], y[1:]
        elif t[0] < ts[-1][-1]:
            raise AnalysisError("waveforms to concatenate must be in time order")
        ts.append(t)
        ys.append(y)
    return Waveform(np.concatenate(ts), np.concatenate(ys), name or waves[0].name)
