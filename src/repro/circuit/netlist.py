"""Circuit and subcircuit containers.

A :class:`Circuit` is an ordered collection of elements on named nodes.
``compile()`` flattens composite devices, assigns matrix indices and
buckets elements by stamping category; analyses call it implicitly.

:class:`SubCircuit` supports hierarchy: a reusable block with declared
ports that can be instantiated into a parent circuit any number of times
with automatic node/name prefixing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .elements.base import (
    NONLINEAR,
    REACTIVE,
    SOURCE,
    STATIC,
    Element,
    is_ground,
)
from .elements.mosfet import Mosfet
from .exceptions import NetlistError


class Circuit:
    """A flat-namespace analog circuit."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._elements: "Dict[str, Element]" = {}
        self._order: List[str] = []
        # Compile products:
        self._compiled = False
        self._flat: List[Element] = []
        self._node_names: List[str] = []
        self._node_index: Dict[str, int] = {}
        self._n_branches = 0
        self.by_category: Dict[str, List[Element]] = {}

    # -- construction ------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add ``element``; returns it for chaining."""
        if element.name in self._elements:
            raise NetlistError(f"duplicate element name: {element.name!r}")
        self._elements[element.name] = element
        self._order.append(element.name)
        self._compiled = False
        return element

    def add_all(self, elements: Iterable[Element]) -> None:
        for el in elements:
            self.add(el)

    def remove(self, name: str) -> None:
        if name not in self._elements:
            raise NetlistError(f"no element named {name!r}")
        del self._elements[name]
        self._order.remove(name)
        self._compiled = False

    def element(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    @property
    def elements(self) -> List[Element]:
        """Elements in insertion order (original, pre-expansion)."""
        return [self._elements[n] for n in self._order]

    def instantiate(self, sub: "SubCircuit", inst_name: str,
                    port_map: Mapping[str, str]) -> None:
        """Instantiate ``sub`` under ``inst_name`` with ports connected
        to the parent nodes in ``port_map``."""
        missing = set(sub.ports) - set(port_map)
        if missing:
            raise NetlistError(
                f"instance {inst_name!r} missing port connections: {sorted(missing)}"
            )
        extra = set(port_map) - set(sub.ports)
        if extra:
            raise NetlistError(
                f"instance {inst_name!r} connects unknown ports: {sorted(extra)}"
            )
        for el in sub.elements:
            new_nodes = []
            for node in el.node_names:
                if node in port_map:
                    new_nodes.append(port_map[node])
                elif is_ground(node):
                    new_nodes.append(node)
                else:
                    new_nodes.append(f"{inst_name}.{node}")
            self.add(el.clone(f"{inst_name}.{el.name}", new_nodes))

    # -- compilation ---------------------------------------------------------

    def compile(self) -> None:
        """Flatten, index and bind.  Idempotent until the netlist changes."""
        if self._compiled:
            return
        flat: List[Element] = []
        seen: set = set()
        for name in self._order:
            for el in self._elements[name].expand():
                if el.name in seen:
                    raise NetlistError(f"duplicate expanded element: {el.name!r}")
                seen.add(el.name)
                flat.append(el)

        node_index: Dict[str, int] = {}
        node_names: List[str] = []
        for el in flat:
            for node in el.node_names:
                if is_ground(node) or node in node_index:
                    continue
                node_index[node] = len(node_names)
                node_names.append(node)

        n_nodes = len(node_names)
        branch_cursor = n_nodes
        by_category: Dict[str, List[Element]] = {
            STATIC: [], REACTIVE: [], SOURCE: [], NONLINEAR: [],
        }
        for el in flat:
            idx = tuple(
                -1 if is_ground(n) else node_index[n] for n in el.node_names
            )
            branches = tuple(range(branch_cursor, branch_cursor + el.n_branch_vars))
            branch_cursor += el.n_branch_vars
            el.bind(idx, branches)
            by_category[el.category].append(el)

        self._flat = flat
        self._node_names = node_names
        self._node_index = node_index
        self._n_branches = branch_cursor - n_nodes
        self.by_category = by_category
        self._compiled = True

    # -- compiled accessors ------------------------------------------------

    def _require_compiled(self) -> None:
        if not self._compiled:
            self.compile()

    @property
    def node_names(self) -> List[str]:
        self._require_compiled()
        return list(self._node_names)

    @property
    def n_nodes(self) -> int:
        self._require_compiled()
        return len(self._node_names)

    @property
    def n_branches(self) -> int:
        self._require_compiled()
        return self._n_branches

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    @property
    def flat_elements(self) -> List[Element]:
        self._require_compiled()
        return list(self._flat)

    def node_index(self, name: str) -> int:
        """Matrix index of node ``name`` (ground → -1)."""
        self._require_compiled()
        if is_ground(name):
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise NetlistError(
                f"no node named {name!r} in circuit {self.name!r}"
            ) from None

    def has_node(self, name: str) -> bool:
        self._require_compiled()
        return is_ground(name) or name in self._node_index

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Element/node/transistor tallies (used by the area experiments)."""
        self._require_compiled()
        n_mosfets = sum(1 for el in self._flat if isinstance(el, Mosfet))
        return {
            "elements": len(self._flat),
            "nodes": self.n_nodes,
            "branches": self._n_branches,
            "transistors": n_mosfets,
        }

    def __repr__(self) -> str:
        return f"<Circuit {self.name!r} elements={len(self._order)}>"


class SubCircuit:
    """A reusable circuit block with declared ports.

    Internal nodes and element names are prefixed with the instance name
    on instantiation; nodes listed in ``ports`` are mapped to parent
    nodes, and ground names pass through unchanged.
    """

    def __init__(self, name: str, ports: Iterable[str]):
        self.name = name
        self.ports: Tuple[str, ...] = tuple(ports)
        if len(set(self.ports)) != len(self.ports):
            raise NetlistError(f"subcircuit {name!r} has duplicate ports")
        for p in self.ports:
            if is_ground(p):
                raise NetlistError(
                    f"subcircuit {name!r}: ground cannot be a port (it is global)"
                )
        self._elements: Dict[str, Element] = {}
        self._order: List[str] = []

    def add(self, element: Element) -> Element:
        if element.name in self._elements:
            raise NetlistError(
                f"duplicate element name in subcircuit {self.name!r}: {element.name!r}"
            )
        self._elements[element.name] = element
        self._order.append(element.name)
        return element

    def add_all(self, elements: Iterable[Element]) -> None:
        for el in elements:
            self.add(el)

    @property
    def elements(self) -> List[Element]:
        return [self._elements[n] for n in self._order]

    def __repr__(self) -> str:
        return (
            f"<SubCircuit {self.name!r} ports={self.ports} "
            f"elements={len(self._order)}>"
        )
