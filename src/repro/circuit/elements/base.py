"""Element base classes and the MNA stamping contract.

Every element belongs to exactly one stamping *category*, which tells the
assembler when its stamps must be refreshed:

``static``
    Pure linear conductances (resistors, fixed controlled sources).
    Stamped once per matrix structure.
``reactive``
    Energy-storage elements (capacitors, inductors).  Stamped once per
    time step via integration companion models; keep internal state.
``source``
    Independent sources.  Stamped once per time point.
``nonlinear``
    Devices whose stamps depend on the present solution estimate
    (MOSFETs, switches).  Stamped every Newton iteration.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import NetlistError

GROUND_NAMES = frozenset({"0", "gnd", "vss!", "ground"})

STATIC = "static"
REACTIVE = "reactive"
SOURCE = "source"
NONLINEAR = "nonlinear"


def is_ground(node: str) -> bool:
    """True when ``node`` names the global reference node."""
    return node.lower() in GROUND_NAMES


class Element:
    """A circuit element connected to named nodes.

    Subclasses set :attr:`category`, may request branch-current unknowns
    via :attr:`n_branch_vars`, and implement the stamping method that
    matches their category.
    """

    category: str = STATIC
    n_branch_vars: int = 0

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = str(name)
        self._node_names: Tuple[str, ...] = tuple(str(n) for n in nodes)
        if not self._node_names:
            raise NetlistError(f"{self.name}: element needs at least one node")
        # Filled in by Circuit.compile():
        self._idx: Tuple[int, ...] = ()
        self._branch: Tuple[int, ...] = ()

    # -- netlist plumbing ------------------------------------------------

    @property
    def node_names(self) -> Tuple[str, ...]:
        return self._node_names

    def bind(self, node_indices: Sequence[int], branch_indices: Sequence[int]) -> None:
        """Receive absolute matrix indices from the compiler.

        Ground maps to index ``-1``; stamping helpers skip it.
        """
        if len(node_indices) != len(self._node_names):
            raise NetlistError(f"{self.name}: bad node binding")
        if len(branch_indices) != self.n_branch_vars:
            raise NetlistError(f"{self.name}: bad branch binding")
        self._idx = tuple(node_indices)
        self._branch = tuple(branch_indices)

    def expand(self) -> "list[Element]":
        """Return the flat element list this element contributes.

        Composite devices (e.g. a MOSFET with its parasitic capacitors)
        override this; simple elements return ``[self]``.
        """
        return [self]

    def clone(self, name: str, nodes: Sequence[str]) -> "Element":
        """Return a copy of this element on different nodes.

        Used by subcircuit instantiation.  Subclasses with constructor
        parameters must override.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support subcircuit cloning"
        )

    def __repr__(self) -> str:
        nodes = ",".join(self._node_names)
        return f"<{type(self).__name__} {self.name} ({nodes})>"

    # -- stamping hooks ----------------------------------------------------

    def stamp_static(self, sys: "MnaSystem") -> None:
        raise NotImplementedError

    def stamp_source(self, sys: "MnaSystem", t: float, scale: float = 1.0) -> None:
        raise NotImplementedError

    def stamp_reactive(self, sys: "MnaSystem", dt: float, method: str) -> None:
        raise NotImplementedError

    def stamp_nonlinear(self, sys: "MnaSystem", x: np.ndarray, t: float) -> None:
        raise NotImplementedError

    # -- state hooks (reactive elements) ------------------------------------

    def init_state(self, x: np.ndarray) -> None:
        """Initialise integration state from a full solution vector."""

    def accept_step(self, x: np.ndarray, dt: float, method: str) -> None:
        """Commit the step just solved; update companion-model state."""

    def stamp_dc(self, sys: "MnaSystem") -> None:
        """DC-operating-point stamp for reactive elements.

        Capacitors are open circuits (no stamp); inductors override this
        to stamp a short.
        """

    # -- analysis metadata ---------------------------------------------------

    def breakpoints(self, t0: float, t1: float) -> "list[float]":
        """Times in ``(t0, t1]`` where this element has a corner."""
        return []


class MnaSystem:
    """Dense MNA matrix/RHS pair with sign-safe stamping helpers.

    Row/column layout: node voltages first (``0..n_nodes-1``), then
    branch currents.  Ground is index ``-1`` and is skipped by every
    helper.  KCL rows are written as "sum of currents leaving the node
    equals the injection on the RHS".
    """

    __slots__ = ("size", "n_nodes", "G", "I")

    def __init__(self, n_nodes: int, n_branches: int):
        self.n_nodes = n_nodes
        self.size = n_nodes + n_branches
        self.G = np.zeros((self.size, self.size))
        self.I = np.zeros(self.size)

    def clear(self) -> None:
        self.G[:, :] = 0.0
        self.I[:] = 0.0

    def load_from(self, G0: np.ndarray, I0: np.ndarray) -> None:
        """Reset the system to a precomputed base (static stamps)."""
        np.copyto(self.G, G0)
        np.copyto(self.I, I0)

    # -- two-terminal stamps -------------------------------------------------

    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Conductance ``g`` between nodes ``a`` and ``b``."""
        if a >= 0:
            self.G[a, a] += g
        if b >= 0:
            self.G[b, b] += g
        if a >= 0 and b >= 0:
            self.G[a, b] -= g
            self.G[b, a] -= g

    def add_current(self, a: int, b: int, i: float) -> None:
        """Element current ``i`` flowing from node ``a`` to node ``b``."""
        if a >= 0:
            self.I[a] -= i
        if b >= 0:
            self.I[b] += i

    def add_vccs(self, a: int, b: int, cp: int, cn: int, gm: float) -> None:
        """Current ``gm * (v_cp - v_cn)`` flowing from ``a`` to ``b``."""
        if a >= 0:
            if cp >= 0:
                self.G[a, cp] += gm
            if cn >= 0:
                self.G[a, cn] -= gm
        if b >= 0:
            if cp >= 0:
                self.G[b, cp] -= gm
            if cn >= 0:
                self.G[b, cn] += gm

    # -- branch stamps ---------------------------------------------------------

    def stamp_branch_kcl(self, a: int, b: int, br: int) -> None:
        """Couple branch current ``br`` into the KCL rows of ``a``/``b``.

        The branch current is defined as flowing from ``a`` through the
        element to ``b``.
        """
        if a >= 0:
            self.G[a, br] += 1.0
        if b >= 0:
            self.G[b, br] -= 1.0

    def stamp_branch_voltage_row(self, br: int, a: int, b: int) -> None:
        """Write ``v_a - v_b`` into the branch equation row."""
        if a >= 0:
            self.G[br, a] += 1.0
        if b >= 0:
            self.G[br, b] -= 1.0

    def set_branch_rhs(self, br: int, value: float) -> None:
        self.I[br] += value

    def add_branch_self(self, br: int, value: float) -> None:
        """Add a coefficient on the branch's own current in its row."""
        self.G[br, br] += value


def node_voltage(x: np.ndarray, idx: int) -> float:
    """Voltage of node ``idx`` in solution vector ``x`` (ground = 0)."""
    return 0.0 if idx < 0 else float(x[idx])


def voltage_between(x: np.ndarray, a: int, b: int) -> float:
    return node_voltage(x, a) - node_voltage(x, b)


class StateDict(Dict[str, float]):
    """Convenience mapping used by results to expose node voltages."""

    def __missing__(self, key: str) -> float:
        raise KeyError(f"no node or branch named {key!r}")
