"""MOSFET circuit element (nonlinear) with constant parasitic capacitors.

The element itself is purely resistive-nonlinear; its gate and junction
capacitances are expanded into ordinary linear :class:`Capacitor`
sub-elements at compile time, so the transient/PSS machinery treats them
uniformly.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ...tech.mosfet_models import MosfetParams, gate_capacitances, ids_full
from ..exceptions import NetlistError
from ..units import Quantity, parse_quantity
from .base import NONLINEAR, Element, MnaSystem, node_voltage
from .passives import Capacitor

#: Minimum drain-source shunt conductance for Newton robustness, siemens.
GMIN_DS = 1e-12


class Mosfet(Element):
    """Level-1 MOSFET between ``(drain, gate, source)``.

    The bulk terminal is tied to the source internally (the perceptron
    cells tie NMOS bulks to ground and PMOS bulks to the supply, which is
    electrically the source in every cell used here); body effect is
    therefore not modelled, as recorded in DESIGN.md.
    """

    category = NONLINEAR

    def __init__(self, name: str, drain: str, gate: str, source: str, *,
                 model: MosfetParams, w: Quantity, l: Quantity,
                 include_caps: bool = True):
        super().__init__(name, (drain, gate, source))
        self.model = model
        self.width = parse_quantity(w)
        self.length = parse_quantity(l)
        if self.width <= 0 or self.length <= 0:
            raise NetlistError(f"{name}: W and L must be positive")
        self.include_caps = include_caps

    def clone(self, name: str, nodes: Sequence[str]) -> "Mosfet":
        return Mosfet(name, nodes[0], nodes[1], nodes[2], model=self.model,
                      w=self.width, l=self.length,
                      include_caps=self.include_caps)

    def expand(self) -> List[Element]:
        elements: List[Element] = [self]
        if not self.include_caps:
            return elements
        d, g, s = self._node_names
        cgs, cgd, cj = gate_capacitances(self.model, self.width, self.length)
        if cgs > 0:
            elements.append(Capacitor(f"{self.name}.cgs", g, s, cgs))
        if cgd > 0:
            elements.append(Capacitor(f"{self.name}.cgd", g, d, cgd))
        if cj > 0:
            # Junction capacitance to the bulk, which is tied to the
            # source terminal here.
            elements.append(Capacitor(f"{self.name}.cj", d, s, cj))
        return elements

    def stamp_nonlinear(self, sys: MnaSystem, x: np.ndarray, t: float) -> None:
        d, g, s = self._idx
        vd = node_voltage(x, d)
        vg = node_voltage(x, g)
        vs = node_voltage(x, s)
        ids, gm, gds = ids_full(vd, vg, vs, self.model, self.width, self.length)
        vgs = vg - vs
        vds = vd - vs
        # Linearised drain current: ids ~= gm*vgs + gds*vds + ieq.
        ieq = ids - gm * vgs - gds * vds
        sys.add_vccs(d, s, g, s, gm)
        sys.add_conductance(d, s, gds + GMIN_DS)
        sys.add_current(d, s, ieq)

    def drain_current(self, x: np.ndarray) -> float:
        """Drain current into the drain terminal for solution ``x``."""
        d, g, s = self._idx
        ids, _gm, _gds = ids_full(node_voltage(x, d), node_voltage(x, g),
                                  node_voltage(x, s), self.model,
                                  self.width, self.length)
        return ids
