"""Controlled sources and the voltage-controlled switch."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..exceptions import NetlistError
from ..units import Quantity, parse_quantity
from .base import NONLINEAR, STATIC, Element, MnaSystem, node_voltage


class Vcvs(Element):
    """Voltage-controlled voltage source ``v(a,b) = gain * v(cp,cn)``."""

    category = STATIC
    n_branch_vars = 1

    def __init__(self, name: str, a: str, b: str, cp: str, cn: str,
                 gain: float):
        super().__init__(name, (a, b, cp, cn))
        self.gain = float(gain)

    def clone(self, name: str, nodes: Sequence[str]) -> "Vcvs":
        return Vcvs(name, nodes[0], nodes[1], nodes[2], nodes[3], self.gain)

    def stamp_static(self, sys: MnaSystem) -> None:
        a, b, cp, cn = self._idx
        br = self._branch[0]
        sys.stamp_branch_kcl(a, b, br)
        sys.stamp_branch_voltage_row(br, a, b)
        if cp >= 0:
            sys.G[br, cp] -= self.gain
        if cn >= 0:
            sys.G[br, cn] += self.gain


class Vccs(Element):
    """Voltage-controlled current source ``i(a→b) = gm * v(cp,cn)``."""

    category = STATIC

    def __init__(self, name: str, a: str, b: str, cp: str, cn: str, gm: float):
        super().__init__(name, (a, b, cp, cn))
        self.gm = float(gm)

    def clone(self, name: str, nodes: Sequence[str]) -> "Vccs":
        return Vccs(name, nodes[0], nodes[1], nodes[2], nodes[3], self.gm)

    def stamp_static(self, sys: MnaSystem) -> None:
        a, b, cp, cn = self._idx
        sys.add_vccs(a, b, cp, cn, self.gm)


class VSwitch(Element):
    """Smooth voltage-controlled switch.

    Conductance between ``a`` and ``b`` moves between ``1/r_off`` and
    ``1/r_on`` as the control voltage ``v(cp) - v(cn)`` sweeps through
    ``threshold`` over a transition width ``smooth`` (volts).  The
    sigmoid transition keeps the Jacobian continuous.
    """

    category = NONLINEAR

    def __init__(self, name: str, a: str, b: str, cp: str, cn: str, *,
                 r_on: Quantity = 1.0, r_off: Quantity = 1e9,
                 threshold: Quantity = 0.5, smooth: Quantity = 0.05):
        super().__init__(name, (a, b, cp, cn))
        self.r_on = parse_quantity(r_on)
        self.r_off = parse_quantity(r_off)
        self.threshold = parse_quantity(threshold)
        self.smooth = parse_quantity(smooth)
        if self.r_on <= 0 or self.r_off <= 0:
            raise NetlistError(f"{name}: switch resistances must be positive")
        if self.smooth <= 0:
            raise NetlistError(f"{name}: smoothing width must be positive")

    def clone(self, name: str, nodes: Sequence[str]) -> "VSwitch":
        return VSwitch(name, nodes[0], nodes[1], nodes[2], nodes[3],
                       r_on=self.r_on, r_off=self.r_off,
                       threshold=self.threshold, smooth=self.smooth)

    def _conductance(self, vc: float) -> "tuple[float, float]":
        """Return ``(g, dg/dvc)`` at control voltage ``vc``."""
        g_on = 1.0 / self.r_on
        g_off = 1.0 / self.r_off
        z = (vc - self.threshold) / self.smooth
        if z > 35.0:
            return g_on, 0.0
        if z < -35.0:
            return g_off, 0.0
        sig = 1.0 / (1.0 + math.exp(-z))
        g = g_off + (g_on - g_off) * sig
        dg = (g_on - g_off) * sig * (1.0 - sig) / self.smooth
        return g, dg

    def stamp_nonlinear(self, sys: MnaSystem, x: np.ndarray, t: float) -> None:
        a, b, cp, cn = self._idx
        vc = node_voltage(x, cp) - node_voltage(x, cn)
        vab = node_voltage(x, a) - node_voltage(x, b)
        g, dg = self._conductance(vc)
        # i = g(vc) * vab; linearise in both vab and vc.
        sys.add_conductance(a, b, g)
        sys.add_vccs(a, b, cp, cn, dg * vab)
        # Residual correction: the two linear terms above evaluate to
        # g*vab + dg*vab*vc at the expansion point; the true current is
        # g*vab, so cancel the control-term offset.
        sys.add_current(a, b, -dg * vab * vc)
