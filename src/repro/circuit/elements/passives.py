"""Linear passive elements: resistor, capacitor, inductor."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import NetlistError
from ..units import Quantity, parse_quantity
from .base import (
    REACTIVE,
    STATIC,
    Element,
    MnaSystem,
    voltage_between,
)


class Resistor(Element):
    """Ideal linear resistor.

    >>> Resistor("R1", "a", "b", "100k").resistance
    100000.0
    """

    category = STATIC

    def __init__(self, name: str, a: str, b: str, resistance: Quantity):
        super().__init__(name, (a, b))
        self.resistance = parse_quantity(resistance)
        if self.resistance <= 0:
            raise NetlistError(f"{name}: resistance must be positive")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def clone(self, name: str, nodes: Sequence[str]) -> "Resistor":
        return Resistor(name, nodes[0], nodes[1], self.resistance)

    def stamp_static(self, sys: MnaSystem) -> None:
        a, b = self._idx
        sys.add_conductance(a, b, self.conductance)

    def current(self, x: np.ndarray) -> float:
        """Current flowing a→b for solution ``x``."""
        return voltage_between(x, *self._idx) * self.conductance


class Capacitor(Element):
    """Ideal linear capacitor integrated with BE or trapezoidal companions."""

    category = REACTIVE

    def __init__(self, name: str, a: str, b: str, capacitance: Quantity,
                 ic: "float | None" = None):
        super().__init__(name, (a, b))
        self.capacitance = parse_quantity(capacitance)
        if self.capacitance < 0:
            raise NetlistError(f"{name}: capacitance must be non-negative")
        #: Optional per-element initial voltage override.
        self.ic = None if ic is None else float(ic)
        self._v_prev = 0.0
        self._i_prev = 0.0

    def clone(self, name: str, nodes: Sequence[str]) -> "Capacitor":
        return Capacitor(name, nodes[0], nodes[1], self.capacitance, ic=self.ic)

    # -- state ------------------------------------------------------------

    def init_state(self, x: np.ndarray) -> None:
        self._v_prev = voltage_between(x, *self._idx)
        if self.ic is not None:
            self._v_prev = self.ic
        self._i_prev = 0.0

    def set_voltage_state(self, v: float) -> None:
        """Force the companion-model state (used by PSS restarts)."""
        self._v_prev = float(v)
        self._i_prev = 0.0

    @property
    def voltage_state(self) -> float:
        return self._v_prev

    def stamp_reactive(self, sys: MnaSystem, dt: float, method: str) -> None:
        a, b = self._idx
        if self.capacitance == 0.0:
            return
        if method == "be":
            geq = self.capacitance / dt
            ieq = -geq * self._v_prev
        else:  # trapezoidal
            geq = 2.0 * self.capacitance / dt
            ieq = -geq * self._v_prev - self._i_prev
        sys.add_conductance(a, b, geq)
        sys.add_current(a, b, ieq)

    def accept_step(self, x: np.ndarray, dt: float, method: str) -> None:
        v_new = voltage_between(x, *self._idx)
        if self.capacitance == 0.0:
            self._v_prev = v_new
            self._i_prev = 0.0
            return
        if method == "be":
            i_new = (self.capacitance / dt) * (v_new - self._v_prev)
        else:
            geq = 2.0 * self.capacitance / dt
            i_new = geq * (v_new - self._v_prev) - self._i_prev
        self._v_prev = v_new
        self._i_prev = i_new

    def current_state(self) -> float:
        """Capacitor current at the last accepted step."""
        return self._i_prev


class Inductor(Element):
    """Ideal linear inductor.  Uses a branch-current unknown."""

    category = REACTIVE
    n_branch_vars = 1

    def __init__(self, name: str, a: str, b: str, inductance: Quantity,
                 ic: "float | None" = None):
        super().__init__(name, (a, b))
        self.inductance = parse_quantity(inductance)
        if self.inductance < 0:
            raise NetlistError(f"{name}: inductance must be non-negative")
        #: Optional initial current override (amps, flowing a→b).
        self.ic = None if ic is None else float(ic)
        self._i_prev = 0.0
        self._v_prev = 0.0

    def clone(self, name: str, nodes: Sequence[str]) -> "Inductor":
        return Inductor(name, nodes[0], nodes[1], self.inductance, ic=self.ic)

    def init_state(self, x: np.ndarray) -> None:
        br = self._branch[0]
        self._i_prev = float(x[br])
        if self.ic is not None:
            self._i_prev = self.ic
        self._v_prev = 0.0

    def stamp_reactive(self, sys: MnaSystem, dt: float, method: str) -> None:
        a, b = self._idx
        br = self._branch[0]
        sys.stamp_branch_kcl(a, b, br)
        sys.stamp_branch_voltage_row(br, a, b)
        if method == "be":
            req = self.inductance / dt
            sys.add_branch_self(br, -req)
            sys.set_branch_rhs(br, -req * self._i_prev)
        else:
            req = 2.0 * self.inductance / dt
            sys.add_branch_self(br, -req)
            sys.set_branch_rhs(br, -req * self._i_prev - self._v_prev)

    def accept_step(self, x: np.ndarray, dt: float, method: str) -> None:
        a, b = self._idx
        self._i_prev = float(x[self._branch[0]])
        self._v_prev = voltage_between(x, a, b)

    def stamp_dc(self, sys: MnaSystem) -> None:
        """DC behaviour: a short circuit (zero-volt branch)."""
        a, b = self._idx
        br = self._branch[0]
        sys.stamp_branch_kcl(a, b, br)
        sys.stamp_branch_voltage_row(br, a, b)
