"""Circuit elements."""

from .base import Element, MnaSystem, is_ground
from .controlled import Vccs, Vcvs, VSwitch
from .mosfet import Mosfet
from .passives import Capacitor, Inductor, Resistor
from .sources import (
    Idc,
    ModulatedVoltage,
    IProfile,
    PwmVoltage,
    Vdc,
    VoltageSource,
    VProfile,
    Vpulse,
    Vpwl,
    Vsin,
)

__all__ = [
    "Element", "MnaSystem", "is_ground",
    "Resistor", "Capacitor", "Inductor",
    "Vdc", "Vpulse", "PwmVoltage", "Vsin", "Vpwl", "VProfile",
    "ModulatedVoltage",
    "VoltageSource", "Idc", "IProfile",
    "Mosfet", "VSwitch", "Vcvs", "Vccs",
]
