"""Independent voltage and current sources.

All voltage sources share :class:`VoltageSource` plumbing (branch-current
unknown, KCL coupling) and differ only in their ``value(t)`` and
``breakpoints`` implementations.  The PWM source used throughout the
perceptron work is :class:`PwmVoltage`, a thin trapezoidal-pulse wrapper
whose *effective* duty cycle (fraction of the period spent above the
50 % level) equals the requested duty cycle exactly.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import NetlistError
from ..units import Quantity, parse_quantity
from .base import SOURCE, Element, MnaSystem


class VoltageSource(Element):
    """Base class for independent voltage sources between ``a`` (+) and ``b``.

    The branch current is defined flowing from the positive terminal
    through the source to the negative terminal, so a source *delivering*
    power has a negative branch current (SPICE convention).
    """

    category = SOURCE
    n_branch_vars = 1

    def value(self, t: float) -> float:
        raise NotImplementedError

    def stamp_source(self, sys: MnaSystem, t: float, scale: float = 1.0) -> None:
        a, b = self._idx
        br = self._branch[0]
        sys.stamp_branch_kcl(a, b, br)
        sys.stamp_branch_voltage_row(br, a, b)
        sys.set_branch_rhs(br, scale * self.value(t))

    @property
    def branch_index(self) -> int:
        return self._branch[0]


class Vdc(VoltageSource):
    """Constant voltage source."""

    def __init__(self, name: str, a: str, b: str, voltage: Quantity):
        super().__init__(name, (a, b))
        self.voltage = parse_quantity(voltage)

    def clone(self, name: str, nodes: Sequence[str]) -> "Vdc":
        return Vdc(name, nodes[0], nodes[1], self.voltage)

    def value(self, t: float) -> float:
        return self.voltage


class Vpulse(VoltageSource):
    """SPICE-style periodic trapezoidal pulse.

    The waveform starts at ``v1``, and each period consists of a rise of
    ``rise`` seconds, ``width`` seconds at ``v2``, a fall of ``fall``
    seconds and the remainder at ``v1``.
    """

    def __init__(self, name: str, a: str, b: str, *, v1: Quantity, v2: Quantity,
                 delay: Quantity = 0.0, rise: Quantity, fall: Quantity,
                 width: Quantity, period: Quantity):
        super().__init__(name, (a, b))
        self.v1 = parse_quantity(v1)
        self.v2 = parse_quantity(v2)
        self.delay = parse_quantity(delay)
        self.rise = parse_quantity(rise)
        self.fall = parse_quantity(fall)
        self.width = parse_quantity(width)
        self.period = parse_quantity(period)
        if self.period <= 0:
            raise NetlistError(f"{name}: pulse period must be positive")
        if self.rise < 0 or self.fall < 0 or self.width < 0:
            raise NetlistError(f"{name}: pulse segments must be non-negative")
        if self.rise + self.width + self.fall > self.period:
            raise NetlistError(
                f"{name}: rise+width+fall exceeds period "
                f"({self.rise + self.width + self.fall:.3g} > {self.period:.3g})"
            )

    def clone(self, name: str, nodes: Sequence[str]) -> "Vpulse":
        return Vpulse(name, nodes[0], nodes[1], v1=self.v1, v2=self.v2,
                      delay=self.delay, rise=self.rise, fall=self.fall,
                      width=self.width, period=self.period)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tau = (t - self.delay) % self.period
        if tau < self.rise:
            if self.rise == 0:
                return self.v2
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            if self.fall == 0:
                return self.v1
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        corners = (0.0, self.rise, self.rise + self.width,
                   self.rise + self.width + self.fall)
        points: List[float] = []
        if t1 <= self.delay:
            return points
        k0 = max(0, math.floor((t0 - self.delay) / self.period) - 1)
        k1 = math.ceil((t1 - self.delay) / self.period) + 1
        for k in range(int(k0), int(k1)):
            base = self.delay + k * self.period
            for c in corners:
                tc = base + c
                if t0 < tc <= t1:
                    points.append(tc)
        return points


class PwmVoltage(Vpulse):
    """PWM source defined by frequency and duty cycle.

    ``duty`` is the fraction of the period spent *high*, measured at the
    50 % amplitude level; the trapezoid's flat-top width is adjusted so
    this holds exactly.  ``duty=0`` and ``duty=1`` produce constant
    levels.
    """

    def __init__(self, name: str, a: str, b: str, *, v_low: Quantity = 0.0,
                 v_high: Quantity, frequency: Quantity, duty: float,
                 rise_fraction: float = 0.02, delay: Quantity = 0.0,
                 phase: float = 0.0):
        v_lo = parse_quantity(v_low)
        v_hi = parse_quantity(v_high)
        freq = parse_quantity(frequency)
        if freq <= 0:
            raise NetlistError(f"{name}: PWM frequency must be positive")
        if not 0.0 <= duty <= 1.0:
            raise NetlistError(f"{name}: duty cycle must lie in [0, 1], got {duty}")
        if not 0.0 <= phase < 1.0:
            raise NetlistError(f"{name}: phase must lie in [0, 1)")
        period = 1.0 / freq
        if duty == 0.0:
            super().__init__(name, a, b, v1=v_lo, v2=v_lo, delay=0.0,
                             rise=0.0, fall=0.0, width=0.0, period=period)
        elif duty == 1.0:
            super().__init__(name, a, b, v1=v_hi, v2=v_hi, delay=0.0,
                             rise=0.0, fall=0.0, width=0.0, period=period)
        else:
            # Effective high time measured at the 50% level is
            # rise/2 + width + fall/2; solve for the flat-top width, and
            # shrink the edges for extreme duty cycles where the nominal
            # edge time no longer fits.
            edge = max(rise_fraction, 0.0) * period
            width = duty * period - edge
            if width < 0.0:
                edge = duty * period
                width = 0.0
            if width + 2.0 * edge > period:
                edge = (1.0 - duty) * period
                width = period - 2.0 * edge
            super().__init__(name, a, b, v1=v_lo, v2=v_hi,
                             delay=parse_quantity(delay) + phase * period,
                             rise=edge, fall=edge,
                             width=max(width, 0.0), period=period)
        self.duty = float(duty)
        self.frequency = freq
        self.v_low = v_lo
        self.v_high = v_hi
        self.rise_fraction = rise_fraction
        self.phase = phase

    def clone(self, name: str, nodes: Sequence[str]) -> "PwmVoltage":
        return PwmVoltage(name, nodes[0], nodes[1], v_low=self.v_low,
                          v_high=self.v_high, frequency=self.frequency,
                          duty=self.duty, rise_fraction=self.rise_fraction,
                          phase=self.phase)


class Vsin(VoltageSource):
    """Sinusoidal source ``offset + amplitude*sin(2*pi*f*(t-delay))``."""

    def __init__(self, name: str, a: str, b: str, *, offset: Quantity = 0.0,
                 amplitude: Quantity, frequency: Quantity, delay: Quantity = 0.0):
        super().__init__(name, (a, b))
        self.offset = parse_quantity(offset)
        self.amplitude = parse_quantity(amplitude)
        self.frequency = parse_quantity(frequency)
        self.delay = parse_quantity(delay)
        if self.frequency <= 0:
            raise NetlistError(f"{name}: sine frequency must be positive")

    def clone(self, name: str, nodes: Sequence[str]) -> "Vsin":
        return Vsin(name, nodes[0], nodes[1], offset=self.offset,
                    amplitude=self.amplitude, frequency=self.frequency,
                    delay=self.delay)

    def value(self, t: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency * (t - self.delay))


class Vpwl(VoltageSource):
    """Piecewise-linear source defined by ``(time, value)`` pairs."""

    def __init__(self, name: str, a: str, b: str, points: Sequence["tuple[float, float]"]):
        super().__init__(name, (a, b))
        if len(points) < 1:
            raise NetlistError(f"{name}: PWL source needs at least one point")
        times = [parse_quantity(p[0]) for p in points]
        values = [parse_quantity(p[1]) for p in points]
        if any(t1 < t0 for t0, t1 in zip(times, times[1:])):
            raise NetlistError(f"{name}: PWL times must be non-decreasing")
        self._times = np.asarray(times)
        self._values = np.asarray(values)

    @property
    def points(self) -> "list[tuple[float, float]]":
        return list(zip(self._times.tolist(), self._values.tolist()))

    def clone(self, name: str, nodes: Sequence[str]) -> "Vpwl":
        return Vpwl(name, nodes[0], nodes[1], self.points)

    def value(self, t: float) -> float:
        return float(np.interp(t, self._times, self._values))

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        return [float(t) for t in self._times if t0 < t <= t1]


class VProfile(VoltageSource):
    """Voltage source driven by an arbitrary callable ``v(t)``.

    Used for supply profiles (harvester models, brownouts).  Optional
    explicit breakpoints help the transient engine land on corners.
    """

    def __init__(self, name: str, a: str, b: str, fn: Callable[[float], float],
                 breakpoints: Optional[Sequence[float]] = None):
        super().__init__(name, (a, b))
        self._fn = fn
        self._breakpoints = sorted(float(t) for t in breakpoints) if breakpoints else []

    def clone(self, name: str, nodes: Sequence[str]) -> "VProfile":
        return VProfile(name, nodes[0], nodes[1], self._fn, self._breakpoints)

    def value(self, t: float) -> float:
        return float(self._fn(t))

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        return [t for t in self._breakpoints if t0 < t <= t1]


class ModulatedVoltage(VoltageSource):
    """Product of a base source and an envelope: ``v(t) = base(t) * env(t)``.

    The canonical use is a rail-referenced PWM driver: a unit-amplitude
    PWM base multiplied by the (time-varying) supply envelope, so the
    pulse amplitude tracks the rail exactly as a driver powered from
    that rail would.
    """

    def __init__(self, name: str, a: str, b: str, *, base: VoltageSource,
                 envelope: Callable[[float], float],
                 envelope_breakpoints: Optional[Sequence[float]] = None):
        super().__init__(name, (a, b))
        self._base = base
        self._envelope = envelope
        self._env_breakpoints = sorted(float(t) for t in envelope_breakpoints) \
            if envelope_breakpoints else []

    def clone(self, name: str, nodes: Sequence[str]) -> "ModulatedVoltage":
        return ModulatedVoltage(name, nodes[0], nodes[1], base=self._base,
                                envelope=self._envelope,
                                envelope_breakpoints=self._env_breakpoints)

    def value(self, t: float) -> float:
        return self._base.value(t) * float(self._envelope(t))

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        points = list(self._base.breakpoints(t0, t1))
        points.extend(t for t in self._env_breakpoints if t0 < t <= t1)
        return points


class Idc(Element):
    """Constant current source driving ``current`` from ``a`` to ``b``."""

    category = SOURCE

    def __init__(self, name: str, a: str, b: str, current: Quantity):
        super().__init__(name, (a, b))
        self.current = parse_quantity(current)

    def clone(self, name: str, nodes: Sequence[str]) -> "Idc":
        return Idc(name, nodes[0], nodes[1], self.current)

    def stamp_source(self, sys: MnaSystem, t: float, scale: float = 1.0) -> None:
        a, b = self._idx
        sys.add_current(a, b, scale * self.current)


class IProfile(Element):
    """Current source driven by a callable ``i(t)`` (a→b)."""

    category = SOURCE

    def __init__(self, name: str, a: str, b: str, fn: Callable[[float], float],
                 breakpoints: Optional[Sequence[float]] = None):
        super().__init__(name, (a, b))
        self._fn = fn
        self._breakpoints = sorted(float(t) for t in breakpoints) if breakpoints else []

    def clone(self, name: str, nodes: Sequence[str]) -> "IProfile":
        return IProfile(name, nodes[0], nodes[1], self._fn, self._breakpoints)

    def stamp_source(self, sys: MnaSystem, t: float, scale: float = 1.0) -> None:
        a, b = self._idx
        sys.add_current(a, b, scale * float(self._fn(t)))

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        return [t for t in self._breakpoints if t0 < t <= t1]
