"""Batched MNA transient and shooting PSS over independent sweep points.

A supply sweep (or Monte-Carlo campaign) of one bench is a family of
circuits that share *structure* — the same elements on the same nodes
with the same source timing — and differ only in values: rail voltages,
source amplitudes, device geometry.  Solving them one at a time repeats
the whole Python stepping machinery (breakpoint handling, companion
updates, Newton bookkeeping) once per point; that overhead, not LAPACK,
dominates the wall clock for the paper's small benches.

:class:`BatchTransientSolver` integrates ``P`` such circuits in
lock-step: one breakpoint-aware time loop, vectorised companion models,
one MOSFET stamp over all ``(P, M)`` devices per Newton iteration, and
one stacked ``(P, S, S)`` linear solve.  Because the stacked system is
block-diagonal across points, each point's Newton iterates are exactly
the ones the scalar engine would produce — per-point convergence is
tracked with a freeze mask, so a point that converges early keeps its
converged solution while stragglers iterate.  The results are therefore
bit-identical to per-point :func:`repro.circuit.transient.transient`
runs whenever no point forces a step-size halving (the perceptron
benches never do; equality is pinned by the engine tests).

:func:`shooting_batch` lifts the same trick to periodic steady state:
one batched Newton-shooting iteration drives all points, with each
point's PSS captured at the iteration where *it* converges — again
matching the scalar :func:`repro.circuit.pss.shooting` point for point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..tech.mosfet_models import ids_full_vec
from .dc import operating_point
from .elements.base import SOURCE
from .elements.mosfet import GMIN_DS
from .elements.passives import Capacitor, Inductor
from .elements.sources import PwmVoltage, Vdc, VoltageSource, Vpulse
from .exceptions import AnalysisError, ConvergenceError, SingularMatrixError
from .mna import MnaContext
from .netlist import Circuit
from .pss import PssResult, _default_observe
from .sparse import (
    check_solver,
    choose_backend,
    matrix_fill,
    sparse_solve_batch,
)
from .transient import (
    BE_STEPS_AFTER_BREAKPOINT,
    MIN_STEP,
    TransientResult,
    transient,
)
from .waveform import Waveform

try:
    # The gufunc behind np.linalg.solve.  Binding it directly skips
    # ~15 us of per-call Python argument checking — measurable when the
    # Newton loop solves thousands of small stacked systems.  It returns
    # NaNs instead of raising on singular matrices; the Newton loop's
    # finite-ness check already handles that path.
    from numpy.linalg._umath_linalg import solve as _gufunc_solve
except ImportError:  # pragma: no cover - older/newer numpy layouts
    _gufunc_solve = None


def _batched_solve(G: np.ndarray, I: np.ndarray) -> np.ndarray:
    """Stacked ``(P, S, S) @ x = (P, S)`` solve, minimal overhead.

    Callers run under a suppressing ``np.errstate`` (singular systems
    surface as NaNs and are handled by the finite-ness check).
    """
    if _gufunc_solve is not None:
        return _gufunc_solve(G, I[:, :, None])[:, :, 0]
    return np.linalg.solve(G, I[:, :, None])[:, :, 0]


def _note_batch_newton(rt, iterations: int,
                       backend: Optional[str]) -> None:
    """Record one converged batched Newton solve (telemetry on only)."""
    rt.count("repro_mna_newton_solves_total")
    rt.count("repro_mna_newton_iterations_total", iterations,
             backend=backend or "dense")


def _structure_signature(ctx: MnaContext) -> "list[tuple]":
    """Per-element structural identity of a compiled circuit."""
    return [(type(el).__name__, el.name, el._idx, el._branch)
            for el in ctx.circuit.flat_elements]


class _BatchCapacitors:
    """Vectorised companion models for every capacitor in the batch.

    State arrays are ``(K, P)`` — one row per capacitor, one column per
    sweep point.  The companion conductance ``geq`` is shared across
    points (same C, same dt); only the equivalent current differs.
    """

    def __init__(self, caps_by_point: List[List[Capacitor]], size: int):
        caps = caps_by_point[0]
        self.n = len(caps)
        self.n_points = n_points = len(caps_by_point)
        if self.n == 0:
            return
        a = np.array([c._idx[0] for c in caps], dtype=np.intp)
        b = np.array([c._idx[1] for c in caps], dtype=np.intp)
        self.a, self.b = a, b
        self.a_valid = a >= 0
        self.b_valid = b >= 0
        self.a_gather = np.where(a >= 0, a, size)
        self.b_gather = np.where(b >= 0, b, size)
        # Per-point values, (K, P): parasitic caps scale with device
        # geometry, which Monte-Carlo batches perturb per point.
        self.c = np.array([[c.capacitance for c in point_caps]
                           for point_caps in caps_by_point]).T
        self.ic = np.array([[np.nan if c.ic is None else c.ic
                             for c in point_caps]
                            for point_caps in caps_by_point]).T
        self.v_prev = np.zeros((self.n, n_points))
        self.i_prev = np.zeros((self.n, n_points))
        self._geq_cache: "dict[tuple[float, str], np.ndarray]" = {}
        self._live = self.c > 0.0
        # RHS scatter slots, interleaved per cap (a row then b row) in
        # element order to reproduce the scalar accumulation sequence.
        rows, signs, caps_idx = [], [], []
        for k in range(self.n):
            if not self._live[k].any():
                continue
            if a[k] >= 0:
                rows.append(a[k])
                signs.append(-1.0)
                caps_idx.append(k)
            if b[k] >= 0:
                rows.append(b[k])
                signs.append(1.0)
                caps_idx.append(k)
        self._rhs_rows = np.asarray(rows, dtype=np.intp)
        self._rhs_signs = np.asarray(signs)[:, None]
        self._rhs_caps = np.asarray(caps_idx, dtype=np.intp)

    def _voltages(self, x_t_padded: np.ndarray) -> np.ndarray:
        """Element voltages ``(K, P)`` from padded ``(S+1, P)`` states."""
        return x_t_padded[self.a_gather] - x_t_padded[self.b_gather]

    def init_state(self, x_t_padded: np.ndarray) -> None:
        if self.n == 0:
            return
        self.v_prev = self._voltages(x_t_padded)
        has_ic = np.isfinite(self.ic)
        if has_ic.any():
            self.v_prev[has_ic] = self.ic[has_ic]
        self.i_prev = np.zeros_like(self.v_prev)

    def geq(self, dt: float, method: str) -> np.ndarray:
        """Companion conductances ``(K, P)``, cached per step size."""
        cached = self._geq_cache.get((dt, method))
        if cached is None:
            factor = 1.0 if method == "be" else 2.0
            cached = factor * self.c / dt
            self._geq_cache[(dt, method)] = cached
        return cached

    def add_geq_stack(self, G_stack: np.ndarray, dt: float,
                      method: str) -> None:
        """Companion conductances onto the stacked base, ``(P, S, S)``.

        Caps are applied one at a time in element order (vectorised
        over points only) so every cell accumulates in exactly the
        sequence the scalar assembler uses — bit-identical sums even
        where several caps share a node with static conductances.
        """
        if self.n == 0:
            return
        geq = self.geq(dt, method)
        for k in range(self.n):
            if not self._live[k].any():
                continue
            g = geq[k]
            a, b = self.a[k], self.b[k]
            if a >= 0:
                G_stack[:, a, a] += g
            if b >= 0:
                G_stack[:, b, b] += g
            if a >= 0 and b >= 0:
                G_stack[:, a, b] -= g
                G_stack[:, b, a] -= g

    def stamp_rhs(self, I_t: np.ndarray, dt: float, method: str) -> None:
        """Equivalent currents into the transposed RHS ``(S, P)``.

        The scatter interleaves each cap's ``a`` then ``b`` row in
        element order — the scalar ``add_current`` sequence — so nodes
        shared by several caps accumulate identically.
        """
        if self.n == 0 or self._rhs_rows.size == 0:
            return
        geq = self.geq(dt, method)
        if method == "be":
            ieq = -geq * self.v_prev
        else:
            ieq = -geq * self.v_prev - self.i_prev
        # add_current(a, b, ieq): I[a] -= ieq, I[b] += ieq.
        np.add.at(I_t, self._rhs_rows,
                  self._rhs_signs * ieq.take(self._rhs_caps, axis=0))

    def accept_step(self, x_t_padded: np.ndarray, dt: float,
                    method: str) -> None:
        if self.n == 0:
            return
        v_new = self._voltages(x_t_padded)
        live = self._live
        geq = self.geq(dt, method)
        if method == "be":
            i_new = geq * (v_new - self.v_prev)
        else:
            i_new = geq * (v_new - self.v_prev) - self.i_prev
        self.i_prev = np.where(live, i_new, 0.0)
        self.v_prev = v_new


class _BatchMosfets:
    """Vectorised MOSFET stamping over ``(P, M)`` devices.

    Index arrays come from the shared structure; device parameters are
    gathered per point, so Monte-Carlo batches (same netlist, perturbed
    geometry) stamp exactly like supply sweeps.
    """

    def __init__(self, contexts: List[MnaContext]):
        groups = [ctx.mosfet_group for ctx in contexts]
        g0 = groups[0]
        self.m = g0.n
        self.n_points = len(contexts)
        if self.m == 0:
            return
        size = contexts[0].size
        self.size = size
        self.d, self.g, self.s = g0.d, g0.g, g0.s
        self.d_gather, self.g_gather, self.s_gather = \
            g0.d_gather, g0.g_gather, g0.s_gather
        self.sign = g0.sign
        # Per-point device parameters, shape (P, M).
        self.beta = np.stack([g.beta for g in groups])
        self.vt = np.stack([g.vt for g in groups])
        self.lam = np.stack([g.lam for g in groups])
        self.n_sub = np.stack([g.n_sub for g in groups])
        self.valid_idx = np.nonzero(g0.valid)[0]
        self.d_valid = g0.d_valid
        self.s_valid = g0.s_valid
        # Linear scatter indices into the flattened (P, S, S) stack:
        # point p's pattern is the shared pattern offset by p*S*S.
        offsets = np.arange(self.n_points, dtype=np.intp) * size * size
        self.lin = (offsets[:, None] + g0.lin[None, :]).ravel()

        self._base_lin = g0.lin
        self._lin_by_size = {self.n_points: self.lin}
        #: per-batch-size scratch: (gm/gt block buffer, current buffer).
        self._buf_by_size: "dict[int, tuple]" = {}
        # Stamp pattern: per device the 8 G entries are +/-gm then
        # +/-gds blocks; building them as one broadcast multiply (exact
        # for +/-1 factors) replaces eight buffer writes per iteration.
        self._signs = np.array([1.0, -1.0, -1.0, 1.0,
                                1.0, 1.0, -1.0, -1.0])[None, :, None]
        self._d_valid_idx = np.nonzero(g0.d_valid)[0]
        self._s_valid_idx = np.nonzero(g0.s_valid)[0]
        self._i_rows = np.concatenate([self.d[self._d_valid_idx],
                                       self.s[self._s_valid_idx]])

    def stamp(self, G_stack: np.ndarray, I_t: np.ndarray,
              x_pad_cols: np.ndarray,
              rows: Optional[np.ndarray] = None) -> None:
        """Accumulate linearised stamps for a (sub-)batch.

        ``G_stack`` is ``(B, S, S)``, ``I_t`` the transposed RHS
        ``(S, B)``, ``x_pad_cols`` the padded states ``(B, S+1)``
        (last column zero for ground gathers).  ``rows`` names the
        original batch rows when ``B < P`` (converged points dropped
        from the Newton working set); device parameters are gathered
        accordingly.
        """
        if rows is None:
            beta, vt, lam, n_sub = self.beta, self.vt, self.lam, self.n_sub
        else:
            beta, vt = self.beta[rows], self.vt[rows]
            lam, n_sub = self.lam[rows], self.n_sub[rows]
        b = x_pad_cols.shape[0]
        lin = self._lin_by_size.get(b)
        if lin is None:
            offsets = np.arange(b, dtype=np.intp) * self.size * self.size
            lin = (offsets[:, None] + self._base_lin[None, :]).ravel()
            self._lin_by_size[b] = lin
        vd = x_pad_cols[:, self.d_gather]    # (B, M)
        vg = x_pad_cols[:, self.g_gather]
        vs = x_pad_cols[:, self.s_gather]
        ids, gm, gds = ids_full_vec(vd, vg, vs, self.sign, beta,
                                    vt, lam, n_sub)
        gt = gds + GMIN_DS
        ieq = ids - gm * (vg - vs) - gds * (vd - vs)
        bufs = self._buf_by_size.get(b)
        if bufs is None:
            bufs = (np.empty((b, 2, self.m)),
                    np.empty((self._i_rows.size, b)))
            self._buf_by_size[b] = bufs
        gmgt, i_vals = bufs
        # (B, 2, M) -> repeat -> (B, 8, M) * +/-1 -> (B, 8M): the
        # factors are exact, so the entries equal the scalar engine's
        # concatenation order.
        gmgt[:, 0] = gm
        gmgt[:, 1] = gt
        vals = (gmgt.repeat(4, axis=1) * self._signs).reshape(b, 8 * self.m)
        np.add.at(G_stack.reshape(-1), lin,
                  vals.take(self.valid_idx, axis=1).ravel())
        nd = self._d_valid_idx.size
        np.negative(ieq.take(self._d_valid_idx, axis=1).T, out=i_vals[:nd])
        i_vals[nd:] = ieq.take(self._s_valid_idx, axis=1).T
        np.add.at(I_t, self._i_rows, i_vals)


class _VsrcColumn:
    """Per-point values of one voltage source across the batch.

    The sweep-family common cases — DC rails and same-timing PWM/pulse
    drivers whose amplitudes vary per point — evaluate as one array
    expression with exactly the operation order of the scalar
    ``value(t)`` (so results stay bit-identical); anything else falls
    back to a per-point Python loop.
    """

    def __init__(self, elements: List[VoltageSource]):
        el0 = elements[0]
        self._values = [el.value for el in elements]
        self.mode = "loop"
        if all(type(el) is Vdc for el in elements):
            self.mode = "const"
            self.const = np.array([el.voltage for el in elements])
        elif all(type(el) in (Vpulse, PwmVoltage) for el in elements) \
                and all(el.delay == el0.delay and el.rise == el0.rise
                        and el.fall == el0.fall and el.width == el0.width
                        and el.period == el0.period for el in elements):
            self.mode = "pulse"
            self.v1 = np.array([el.v1 for el in elements])
            self.v2 = np.array([el.v2 for el in elements])
            self.delay, self.rise = el0.delay, el0.rise
            self.fall, self.width = el0.fall, el0.width
            self.pulse_period = el0.period

    def __call__(self, t: float):
        if self.mode == "const":
            return self.const
        if self.mode == "pulse":
            # Mirrors Vpulse.value branch for branch; the shared timing
            # guarantees every point takes the same branch.
            if t < self.delay:
                return self.v1
            tau = (t - self.delay) % self.pulse_period
            if tau < self.rise:
                if self.rise == 0:
                    return self.v2
                return self.v1 + (self.v2 - self.v1) * tau / self.rise
            tau -= self.rise
            if tau < self.width:
                return self.v2
            tau -= self.width
            if tau < self.fall:
                if self.fall == 0:
                    return self.v1
                return self.v2 + (self.v1 - self.v2) * tau / self.fall
            return self.v1
        return [value(t) for value in self._values]


class BatchTransientResult:
    """Lock-step solution of a circuit batch: ``X`` is ``(T, P, S)``."""

    def __init__(self, circuits: List[Circuit], t: np.ndarray, X: np.ndarray):
        self.circuits = circuits
        self.t = t
        self.X = X

    @property
    def n_points(self) -> int:
        return self.X.shape[1]

    @property
    def final_x(self) -> np.ndarray:
        """End states, shape ``(P, S)``."""
        return self.X[-1].copy()

    def node(self, name: str) -> np.ndarray:
        """Node voltages over time for every point, shape ``(T, P)``."""
        idx = self.circuits[0].node_index(name)
        if idx < 0:
            return np.zeros(self.X.shape[:2])
        return self.X[:, :, idx]

    def point(self, p: int) -> TransientResult:
        """One point's trajectory as an ordinary :class:`TransientResult`."""
        return TransientResult(self.circuits[p], self.t, self.X[:, p, :])


class BatchTransientSolver:
    """Lock-step transient integration of structurally identical circuits.

    All circuits must share their element structure (names, types, node
    bindings) and their source *timing* (breakpoints); element values —
    rail voltages, source amplitudes, device geometry, resistances — are
    free to differ per point.  Unsupported in batches: inductors and
    non-MOSFET nonlinear devices (switches), which keep per-element
    Python state the vectorised layer does not model.
    """

    def __init__(self, circuits: Sequence[Circuit], *,
                 solver: str = "auto"):
        self.circuits = list(circuits)
        if not self.circuits:
            raise AnalysisError("need at least one circuit to batch")
        self.solver = check_solver(solver)
        #: Concrete linear-solve backend, decided lazily from the first
        #: assembled stack (see :mod:`repro.circuit.sparse`).
        self._backend: Optional[str] = None
        self.contexts = [MnaContext(c, solver=solver)
                         for c in self.circuits]
        ctx0 = self.contexts[0]
        self.size = ctx0.size
        self.n_nodes = ctx0.n_nodes
        self.n_points = len(self.circuits)

        signature = _structure_signature(ctx0)
        for ctx in self.contexts[1:]:
            if ctx.size != ctx0.size or \
                    _structure_signature(ctx) != signature:
                raise AnalysisError(
                    "batched circuits must share element structure "
                    "(same elements on the same nodes); rebuild the "
                    "family from one parametrised builder")
        for ctx in self.contexts:
            if ctx.other_nonlinear:
                raise AnalysisError(
                    "batched transient does not support non-MOSFET "
                    "nonlinear elements (switches); use the scalar "
                    "engine")
            if any(isinstance(el, Inductor) for el in ctx.reactive_elements):
                raise AnalysisError(
                    "batched transient does not support inductors yet; "
                    "use the scalar engine")

        # Per-point static base (stacked); structure is shared so the
        # source branch rows can be folded in once.
        self._G_static = np.stack([ctx._G_static for ctx in self.contexts])
        self._I_static = np.stack([ctx._I_static for ctx in self.contexts])

        cats0 = ctx0.circuit.by_category
        self._vsources = [el for el in cats0[SOURCE]
                          if isinstance(el, VoltageSource)]
        self._isources = [el for el in cats0[SOURCE]
                          if not isinstance(el, VoltageSource)]
        # Per-point source elements, aligned with the shared structure.
        by_name = [{el.name: el for el in ctx.circuit.by_category[SOURCE]}
                   for ctx in self.contexts]
        self._vsources_by_point = [[bn[el.name] for el in self._vsources]
                                   for bn in by_name]
        self._isources_by_point = [[bn[el.name] for el in self._isources]
                                   for bn in by_name]
        # Per-source batched value evaluators — the per-step RHS fill
        # runs thousands of times.
        self._vsrc_cols = [
            _VsrcColumn([self._vsources_by_point[p][k]
                         for p in range(self.n_points)])
            for k in range(len(self._vsources))]
        # Voltage-source structure stamps (branch KCL + voltage rows)
        # are value-independent: fold them into one shared addition.
        self._G_sources = np.zeros((self.size, self.size))
        sys_view = ctx0.sys_view(self._G_sources, np.zeros(self.size))
        for el in self._vsources:
            a, b = el._idx
            br = el._branch[0]
            sys_view.stamp_branch_kcl(a, b, br)
            sys_view.stamp_branch_voltage_row(br, a, b)
        self._vsrc_branch = np.array(
            [el._branch[0] for el in self._vsources], dtype=np.intp)

        self._caps = _BatchCapacitors(
            [[el for el in ctx.reactive_elements
              if isinstance(el, Capacitor)] for ctx in self.contexts],
            self.size)
        self._mosfets = _BatchMosfets(self.contexts)

        # Per-(dt, method) shared stamp cache: the companion
        # conductances and source structure rows do not depend on the
        # solution or the point, so each distinct step size is
        # assembled once.
        self._shared_g_cache: "dict[tuple[float, str], np.ndarray]" = {}
        # Column-padded state scratch for the MOSFET gathers (last
        # column stays zero = ground).
        self._xpad_cols = np.zeros((self.n_points, self.size + 1))
        self._tol_cache: "dict[tuple[float, float], np.ndarray]" = {}

    # -- assembly ----------------------------------------------------------

    def _breakpoints(self, t0: float, t1: float) -> np.ndarray:
        ref = self.contexts[0].breakpoints(t0, t1)
        for ctx in self.contexts[1:]:
            other = ctx.breakpoints(t0, t1)
            if other.shape != ref.shape or not np.array_equal(other, ref):
                raise AnalysisError(
                    "batched circuits must share source timing "
                    "(identical breakpoints); sweep values, not "
                    "frequencies or duties, across a batch")
        return ref

    def _source_rhs(self, I_t: np.ndarray, t: float) -> None:
        """Per-point source values into the transposed RHS ``(S, P)``."""
        for k, el in enumerate(self._vsources):
            I_t[self._vsrc_branch[k]] += self._vsrc_cols[k](t)
        for k, el in enumerate(self._isources):
            a, b = el._idx
            for p in range(self.n_points):
                el_p = self._isources_by_point[p][k]
                i = el_p._fn(t) if hasattr(el_p, "_fn") else el_p.current
                if a >= 0:
                    I_t[a, p] -= i
                if b >= 0:
                    I_t[b, p] += i

    def _padded(self, x: np.ndarray) -> np.ndarray:
        """Transpose states to ``(S+1, P)`` with a zero ground row."""
        x_t = np.zeros((self.size + 1, self.n_points))
        x_t[:-1] = x.T
        return x_t

    def _tol_cols(self, abstol: float, itol: float) -> np.ndarray:
        """Per-column Newton tolerance: ``abstol`` on node voltages,
        ``itol`` on branch currents (cached)."""
        key = (abstol, itol)
        cached = self._tol_cache.get(key)
        if cached is None:
            cached = np.full(self.size, itol)
            cached[:self.n_nodes] = abstol
            self._tol_cache[key] = cached
        return cached

    # -- Newton -----------------------------------------------------------

    def _solve_newton(self, x0: np.ndarray, t: float, dt: float,
                      method: str, *, max_iter: int = 80,
                      vlimit: float = 1.0, abstol: float = 1e-6,
                      reltol: float = 1e-4, itol: float = 1e-9) -> np.ndarray:
        """Damped Newton at one time point, vectorised over points.

        Block-diagonal structure keeps every point's iterate sequence
        identical to the scalar engine's: updates, clamping and the
        convergence test apply per point, and a converged point's state
        is frozen while the rest keep iterating.
        """
        rt = telemetry.active()
        if rt is None:
            return self._solve_newton_impl(
                x0, t, dt, method, max_iter=max_iter, vlimit=vlimit,
                abstol=abstol, reltol=reltol, itol=itol, rt=None)
        with rt.tracer.span("mna.newton",
                            {"analysis": "batch-transient",
                             "points": self.n_points, "size": self.size}):
            return self._solve_newton_impl(
                x0, t, dt, method, max_iter=max_iter, vlimit=vlimit,
                abstol=abstol, reltol=reltol, itol=itol, rt=rt)

    def _solve_newton_impl(self, x0: np.ndarray, t: float, dt: float,
                           method: str, *, max_iter, vlimit, abstol,
                           reltol, itol, rt) -> np.ndarray:
        key = (dt, method)
        G_base = self._shared_g_cache.get(key)
        if G_base is None:
            # Source structure rows are exact +/-1 additions into cells
            # the static stamps never touch; the cap companions then
            # accumulate in scalar element order (see add_geq_stack).
            G_base = self._G_static + self._G_sources[None, :, :]
            self._caps.add_geq_stack(G_base, dt, method)
            self._shared_g_cache[key] = G_base
        I_t_base = self._I_static.T.copy()          # (S, P)
        # Scalar assembly order: sources first, then reactive companions.
        self._source_rhs(I_t_base, t)
        self._caps.stamp_rhs(I_t_base, dt, method)

        x = x0.copy()                                # (P, S)
        n = self.n_nodes
        has_nonlinear = self._mosfets.m > 0
        # Indices of points still iterating.  The stacked system is
        # block-diagonal, so dropping a converged point's rows neither
        # changes the others' iterates nor its own frozen solution —
        # stragglers iterate on an ever-smaller stack.
        work = np.arange(self.n_points)

        for _iteration in range(max_iter):
            full = work.size == self.n_points
            # Fancy indexing already copies, so subsets skip the
            # explicit copy.
            G = G_base.copy() if full else G_base[work]
            I_t = I_t_base.copy() if full else I_t_base[:, work]
            x_work = x if full else x[work]
            if has_nonlinear:
                xpad = self._xpad_cols[:work.size]
                xpad[:, :-1] = x_work
                self._mosfets.stamp(G, I_t, xpad,
                                    rows=None if full else work)
            if self._backend is None:
                self._backend = choose_backend(
                    self.size, matrix_fill(G[0]), self.solver)
                if rt is not None:
                    rt.count("repro_mna_backend_decisions_total",
                             solver=self.solver, backend=self._backend)
            try:
                if self._backend == "sparse":
                    x_new = sparse_solve_batch(G, I_t.T)
                else:
                    x_new = _batched_solve(G, I_t.T)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(
                    f"singular MNA matrix in batch: {exc}",
                    analysis="batch-transient", time=t) from None
            if not np.isfinite(x_new).all():
                # The direct gufunc signals singular matrices with NaNs
                # rather than raising; both land here.
                raise ConvergenceError(
                    "solution diverged to non-finite values "
                    "(or singular MNA matrix)",
                    analysis="batch-transient", time=t)
            if not has_nonlinear:
                if rt is not None:
                    _note_batch_newton(rt, _iteration + 1, self._backend)
                return x_new
            dx = x_new - x_work
            dv = dx[:, :n]
            abs_dv = np.abs(dv)
            if abs_dv.max() > vlimit:
                clamped = (abs_dv > vlimit).any(axis=1)
            else:
                clamped = np.zeros(work.size, dtype=bool)
            if clamped.any():
                rows = work[clamped]
                x[rows, :n] += np.clip(dv[clamped], -vlimit, vlimit)
                x[rows, n:] += dx[clamped, n:]
            stepped = ~clamped
            if stepped.any():
                x[work[stepped]] = x_new[stepped]
                # One fused pass: per-column tolerance (abstol on node
                # voltages, itol on branch currents) — elementwise equal
                # to the scalar engine's separate v/i tests.
                ok = stepped & (
                    np.abs(dx) <=
                    self._tol_cols(abstol, itol)
                    + reltol * np.abs(x_new)).all(axis=1)
                if ok.all():
                    if rt is not None:
                        _note_batch_newton(rt, _iteration + 1,
                                           self._backend)
                    return x
                if ok.any():
                    work = work[~ok]
        if rt is not None:
            rt.count("repro_mna_convergence_failures_total",
                     analysis="batch-transient")
        raise ConvergenceError(
            f"batched Newton failed to converge in {max_iter} iterations "
            f"({work.size} of {self.n_points} points open)",
            analysis="batch-transient", time=t)

    # -- integration -------------------------------------------------------

    def run(self, tstop: float, dt: float, *, tstart: float = 0.0,
            method: str = "trap", x0: Optional[np.ndarray] = None,
            max_retries: int = 10) -> BatchTransientResult:
        """Integrate every point from ``tstart`` to ``tstop`` in lock-step.

        ``x0`` is the stacked initial state ``(P, S)``; ``None`` solves
        each point's DC operating point at ``tstart`` first (scalar, so
        the starting states match per-point runs exactly).
        """
        if tstop <= tstart:
            raise AnalysisError(
                f"tstop ({tstop}) must exceed tstart ({tstart})")
        if dt <= 0:
            raise AnalysisError("dt must be positive")
        if method not in ("trap", "be"):
            raise AnalysisError(f"unknown integration method {method!r}")

        if x0 is not None:
            x = np.asarray(x0, dtype=float).copy()
            if x.shape != (self.n_points, self.size):
                raise AnalysisError(
                    f"x0 must be ({self.n_points}, {self.size}), "
                    f"got {x.shape}")
        else:
            x = np.stack([
                operating_point(c, t=tstart, ctx=ctx).x
                for c, ctx in zip(self.circuits, self.contexts)])
        self._caps.init_state(self._padded(x))

        breakpoints = self._breakpoints(tstart, tstop)
        bp_iter: List[float] = [b for b in breakpoints if tstart < b < tstop]
        bp_iter.append(tstop)

        times: List[float] = [tstart]
        states: List[np.ndarray] = [x.copy()]
        t_cur = tstart
        be_countdown = BE_STEPS_AFTER_BREAKPOINT
        eps = dt * 1e-9

        # One errstate frame for the whole run: the direct solve gufunc
        # flags singular systems via NaNs, which the Newton loop checks.
        errstate = np.errstate(invalid="ignore", divide="ignore",
                               over="ignore")
        with errstate, telemetry.span("mna.transient.batch",
                                      points=self.n_points,
                                      size=self.size):
            return self._integrate(tstop, dt, method, x, times, states,
                                   t_cur, be_countdown, eps, bp_iter,
                                   max_retries)

    def _integrate(self, tstop, dt, method, x, times, states, t_cur,
                   be_countdown, eps, bp_iter, max_retries
                   ) -> BatchTransientResult:
        bp_pos = 0
        while t_cur < tstop - eps:
            while bp_pos < len(bp_iter) and bp_iter[bp_pos] <= t_cur + eps:
                bp_pos += 1
            next_bp = bp_iter[bp_pos] if bp_pos < len(bp_iter) else tstop
            h = min(dt, next_bp - t_cur)
            step_method = "be" if (method == "be" or be_countdown > 0) \
                else "trap"

            x_next = None
            h_try = h
            for _attempt in range(max_retries):
                try:
                    x_next = self._solve_newton(x, t_cur + h_try, h_try,
                                                step_method)
                    break
                except ConvergenceError:
                    # One straggler halves the step for the whole batch;
                    # correctness is preserved, strict per-point identity
                    # with the scalar engine is not (see module docs).
                    h_try *= 0.5
                    step_method = "be"
                    if h_try < MIN_STEP:
                        break
            if x_next is None:
                raise ConvergenceError(
                    "batched transient step failed even at minimum step "
                    "size", analysis="batch-transient", time=t_cur)

            t_cur += h_try
            self._caps.accept_step(self._padded(x_next), h_try, step_method)
            x = x_next
            times.append(t_cur)
            states.append(x.copy())
            if abs(t_cur - next_bp) <= eps:
                be_countdown = BE_STEPS_AFTER_BREAKPOINT
            elif be_countdown > 0:
                be_countdown -= 1

        return BatchTransientResult(self.circuits, np.asarray(times),
                                    np.stack(states, axis=0))


class BatchPssResult:
    """Periodic steady states of a circuit batch.

    Every reduction mirrors :class:`~repro.circuit.pss.PssResult`, one
    value per point; :meth:`point` recovers a scalar result object.
    Waves are stored per point (``(t, X)`` pairs): points captured at
    different shooting iterations may sit on different time grids when
    a Newton step-halving refined one iteration's stepping.
    """

    def __init__(self, solver: BatchTransientSolver, period: float,
                 waves: "List[tuple]", iterations: np.ndarray,
                 residuals: np.ndarray):
        self._solver = solver
        self.period = period
        self._waves = waves             # per point: (t (T,), X (T, S))
        self.iterations = iterations    # (P,)
        self.residuals = residuals      # (P,)

    @property
    def n_points(self) -> int:
        return len(self._waves)

    def averages(self, node: str) -> np.ndarray:
        """Period-average node voltage per point, shape ``(P,)``."""
        idx = self._solver.circuits[0].node_index(node)
        if idx < 0:
            return np.zeros(self.n_points)
        return np.array([
            Waveform(t, X[:, idx]).average() for t, X in self._waves])

    def ripples(self, node: str) -> np.ndarray:
        idx = self._solver.circuits[0].node_index(node)
        if idx < 0:
            return np.zeros(self.n_points)
        return np.array([
            Waveform(t, X[:, idx]).peak_to_peak()
            for t, X in self._waves])

    def point(self, p: int) -> PssResult:
        t, X = self._waves[p]
        waves = TransientResult(self._solver.circuits[p], t, X)
        return PssResult(self._solver.circuits[p], self.period, waves,
                         int(self.iterations[p]),
                         float(self.residuals[p]))


def shooting_batch(circuits: Sequence[Circuit], period: float, *,
                   steps_per_period: int = 200,
                   observe: Optional[Sequence[str]] = None,
                   x0: Optional[np.ndarray] = None,
                   warmup_periods: int = 2, max_iterations: int = 15,
                   tol: float = 1e-4, fd_delta: float = 5e-3,
                   method: str = "trap",
                   update_limit: float = 2.0,
                   solver: str = "auto") -> BatchPssResult:
    """Newton-shooting PSS for a whole batch of sweep points at once.

    The batched period map is block-diagonal across points, so each
    point's shooting iterates equal the scalar
    :func:`~repro.circuit.pss.shooting` sequence; a point's waves are
    captured at the iteration where *its* residual first drops under
    ``tol`` (exactly the scalar return), and its state is frozen while
    the remaining points keep iterating.  Defaults mirror the scalar
    engine's.
    """
    rt = telemetry.active()
    if rt is None:
        return _shooting_batch_impl(
            circuits, period, steps_per_period=steps_per_period,
            observe=observe, x0=x0, warmup_periods=warmup_periods,
            max_iterations=max_iterations, tol=tol, fd_delta=fd_delta,
            method=method, update_limit=update_limit, solver=solver)
    with rt.tracer.span("pss.shooting_batch",
                        {"points": len(circuits)}) as sp:
        try:
            result = _shooting_batch_impl(
                circuits, period, steps_per_period=steps_per_period,
                observe=observe, x0=x0, warmup_periods=warmup_periods,
                max_iterations=max_iterations, tol=tol,
                fd_delta=fd_delta, method=method,
                update_limit=update_limit, solver=solver)
        except ConvergenceError:
            rt.count("repro_pss_convergence_failures_total")
            raise
        sp.set_tag("iterations", int(result.iterations.max()))
        rt.count("repro_pss_solves_total", result.n_points)
        rt.count("repro_pss_iterations_total",
                 int(result.iterations.sum()))
        return result


def _shooting_batch_impl(circuits, period, *, steps_per_period, observe,
                         x0, warmup_periods, max_iterations, tol,
                         fd_delta, method, update_limit,
                         solver) -> BatchPssResult:
    if period <= 0:
        raise AnalysisError("period must be positive")
    solver_kind = check_solver(solver)
    solver = BatchTransientSolver(circuits, solver=solver_kind)
    circuit0 = solver.circuits[0]
    observe_names = list(observe) if observe \
        else _default_observe(circuit0)
    if not observe_names:
        raise AnalysisError(
            "shooting needs at least one observed node; none carry "
            "explicit capacitors and none were given")
    obs_idx = np.array([circuit0.node_index(n) for n in observe_names])
    if np.any(obs_idx < 0):
        raise AnalysisError("cannot observe the ground node")
    dt = period / steps_per_period
    n_points = solver.n_points
    n_obs = len(obs_idx)

    def run_period(x_start: np.ndarray) -> BatchTransientResult:
        return solver.run(period, dt, x0=x_start, method=method)

    if x0 is None:
        x = np.stack([
            operating_point(c, t=0.0, ctx=ctx).x
            for c, ctx in zip(solver.circuits, solver.contexts)])
    else:
        x = np.asarray(x0, dtype=float).copy()
    for _ in range(max(warmup_periods, 0)):
        x = run_period(x).final_x

    # Converged points leave the working batch entirely (the solver is
    # rebuilt on the survivors), so stragglers never drag the whole
    # sweep through extra full-width period runs.  ``order`` maps
    # working-batch rows back to the caller's point indices.
    full_solver = solver
    order = np.arange(n_points)
    iterations = np.zeros(n_points, dtype=int)
    residuals = np.full(n_points, np.inf)
    waves: "List[Optional[tuple]]" = [None] * n_points

    for iteration in range(1, max_iterations + 1):
        base = run_period(x)
        fx = base.final_x
        r = fx[:, obs_idx] - x[:, obs_idx]          # (B, n_obs)
        res = np.max(np.abs(r), axis=1)
        residuals[order] = res
        done = res < tol
        x_start = base.X[0]
        if done.any():
            for i in np.nonzero(done)[0]:
                waves[order[i]] = (base.t, base.X[:, i, :].copy())
            iterations[order[done]] = iteration
            if done.all():
                return BatchPssResult(full_solver, period, waves,
                                      iterations, residuals)
            keep = np.nonzero(~done)[0]
            order = order[keep]
            solver = BatchTransientSolver(
                [solver.circuits[int(k)] for k in keep],
                solver=solver_kind)

            def run_period(x_start: np.ndarray) -> BatchTransientResult:
                return solver.run(period, dt, x0=x_start, method=method)

            x, fx, r = x[keep], fx[keep], r[keep]
            x_start = x_start[keep]
        # Finite-difference Jacobian of the period map, per point.  One
        # batched run per observed node perturbs every surviving point
        # at once.
        A = np.zeros((x.shape[0], n_obs, n_obs))
        for j in range(n_obs):
            x_pert = x.copy()
            x_pert[:, obs_idx[j]] += fd_delta
            fx_pert = run_period(x_pert).final_x
            A[:, :, j] = (fx_pert[:, obs_idx] - fx[:, obs_idx]) / fd_delta
        # Solve (I - A) dx = r per point; singular/non-finite points
        # fall back to fixed-point iteration like the scalar engine.
        eye = np.eye(n_obs)
        dx_obs = np.empty((x.shape[0], n_obs))
        for p in range(x.shape[0]):
            try:
                dx_p = np.linalg.solve(eye - A[p], r[p])
            except np.linalg.LinAlgError:
                dx_p = r[p]
            if not np.all(np.isfinite(dx_p)):
                dx_p = r[p]
            dx_obs[p] = dx_p
        dx_obs = np.clip(dx_obs, -update_limit, update_limit)
        x_next = fx.copy()
        x_next[:, obs_idx] = x_start[:, obs_idx] + dx_obs
        x = x_next

    raise ConvergenceError(
        f"batched shooting did not converge in {max_iterations} "
        f"iterations ({x.shape[0]} of {n_points} points open, "
        f"worst residual {float(np.max(residuals[order])):.3g} V)",
        analysis="pss")


def shooting_jacobian_batched(circuit: Circuit, period: float, *,
                              steps_per_period: int = 200,
                              observe: Optional[Sequence[str]] = None,
                              x0: Optional[np.ndarray] = None,
                              warmup_periods: int = 2,
                              max_iterations: int = 15,
                              tol: float = 1e-4, fd_delta: float = 5e-3,
                              method: str = "trap",
                              update_limit: float = 2.0,
                              solver: str = "auto") -> PssResult:
    """Newton-shooting PSS of **one** circuit with batched Jacobian runs.

    :func:`shooting_batch` batches across sweep *points*; single-point
    paths (the multifreq sweeps, the perceptron-adder transients) cannot
    use it — their circuits differ in source timing.  But every shooting
    iteration of a single circuit already contains ``1 + n_obs``
    independent period integrations: the base run plus one
    finite-difference probe per observed node, all of the *same* circuit
    and differing only in the starting state.  This function stacks them
    into one lock-step :class:`BatchTransientSolver` run per iteration,
    collapsing the per-iteration Python stepping overhead by
    ``1 + n_obs``.

    The stacked system is block-diagonal across the batch, so the base
    trajectory's iterates are unaffected by the speculative probe
    points: residuals, Jacobians and updates equal the scalar
    :func:`~repro.circuit.pss.shooting` sequence bit for bit (the probes
    are run speculatively *before* the residual test, which only wastes
    work on the final iteration).  Warmup periods run through the scalar
    engine — identical by construction.
    """
    rt = telemetry.active()
    if rt is None:
        return _shooting_jacobian_impl(
            circuit, period, steps_per_period=steps_per_period,
            observe=observe, x0=x0, warmup_periods=warmup_periods,
            max_iterations=max_iterations, tol=tol, fd_delta=fd_delta,
            method=method, update_limit=update_limit, solver=solver)
    with rt.tracer.span("pss.shooting_jacobian",
                        {"circuit": circuit.name}) as sp:
        try:
            result = _shooting_jacobian_impl(
                circuit, period, steps_per_period=steps_per_period,
                observe=observe, x0=x0, warmup_periods=warmup_periods,
                max_iterations=max_iterations, tol=tol,
                fd_delta=fd_delta, method=method,
                update_limit=update_limit, solver=solver)
        except ConvergenceError:
            rt.count("repro_pss_convergence_failures_total")
            raise
        sp.set_tag("iterations", result.iterations)
        rt.count("repro_pss_solves_total")
        rt.count("repro_pss_iterations_total", result.iterations)
        return result


def _shooting_jacobian_impl(circuit, period, *, steps_per_period,
                            observe, x0, warmup_periods, max_iterations,
                            tol, fd_delta, method, update_limit,
                            solver) -> PssResult:
    if period <= 0:
        raise AnalysisError("period must be positive")
    circuit.compile()
    observe_names = list(observe) if observe else _default_observe(circuit)
    if not observe_names:
        raise AnalysisError(
            "shooting needs at least one observed node; none carry "
            "explicit capacitors and none were given")
    obs_idx = np.array([circuit.node_index(n) for n in observe_names])
    if np.any(obs_idx < 0):
        raise AnalysisError("cannot observe the ground node")
    dt = period / steps_per_period
    n_obs = len(obs_idx)
    # All batch points are the same circuit object: the batch layer never
    # mutates element state (capacitor companions live in its own
    # arrays), so the shared structure check is trivially satisfied.
    batch_solver = BatchTransientSolver([circuit] * (1 + n_obs),
                                        solver=solver)
    ctx = batch_solver.contexts[0]

    x = operating_point(circuit, t=0.0, ctx=ctx).x.copy() if x0 is None \
        else np.asarray(x0, dtype=float).copy()
    for _ in range(max(warmup_periods, 0)):
        x = transient(circuit, period, dt, x0=x, method=method,
                      ctx=ctx).final_x

    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        starts = np.repeat(x[None, :], 1 + n_obs, axis=0)
        for j in range(n_obs):
            starts[1 + j, obs_idx[j]] += fd_delta
        batch = batch_solver.run(period, dt, x0=starts, method=method)
        fx_all = batch.final_x                       # (1+n_obs, S)
        fx = fx_all[0]
        r = fx[obs_idx] - x[obs_idx]
        residual = float(np.max(np.abs(r)))
        if residual < tol:
            return PssResult(circuit, period, batch.point(0), iteration,
                             residual)
        A = np.empty((n_obs, n_obs))
        for j in range(n_obs):
            A[:, j] = (fx_all[1 + j][obs_idx] - fx[obs_idx]) / fd_delta
        try:
            dx_obs = np.linalg.solve(np.eye(n_obs) - A, r)
        except np.linalg.LinAlgError:
            dx_obs = r  # fall back to fixed-point iteration
        if not np.all(np.isfinite(dx_obs)):
            dx_obs = r
        dx_obs = np.clip(dx_obs, -update_limit, update_limit)
        x = fx.copy()
        x[obs_idx] = batch.X[0][0][obs_idx] + dx_obs

    raise ConvergenceError(
        f"shooting did not converge in {max_iterations} iterations "
        f"(residual {residual:.3g} V)", analysis="pss")
