"""Engineering-notation unit parsing and formatting.

SPICE-style magnitudes are used throughout the library: resistances such
as ``"100k"``, capacitances such as ``"1p"`` and geometries such as
``"320n"`` are accepted anywhere a numeric quantity is expected.  The
parser is deliberately strict: a malformed quantity raises ``UnitError``
rather than silently returning a wrong value.
"""

from __future__ import annotations

import math
import re
from typing import Union

from .exceptions import UnitError

Quantity = Union[int, float, str]

#: SPICE magnitude suffixes.  ``meg`` must be matched before ``m``.
_SUFFIXES = [
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
]

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Z%]*)\s*$"
)

#: Unit names that may trail a magnitude suffix and are ignored,
#: e.g. ``"100kOhm"``, ``"1pF"``, ``"2.5V"``, ``"500MHz"`` (``M`` in
#: ``MHz`` is handled explicitly below because SPICE ``m`` is milli).
_UNIT_NAMES = ("ohm", "f", "v", "a", "s", "hz", "w", "j")


def parse_quantity(value: Quantity) -> float:
    """Convert ``value`` to a float, honouring SPICE magnitude suffixes.

    >>> parse_quantity("100k")
    100000.0
    >>> parse_quantity("1p")
    1e-12
    >>> parse_quantity("500MHz")
    500000000.0
    >>> parse_quantity(3.3)
    3.3
    """
    if isinstance(value, (int, float)):
        if isinstance(value, bool):
            raise UnitError(f"booleans are not quantities: {value!r}")
        return float(value)
    if not isinstance(value, str):
        raise UnitError(f"cannot parse quantity of type {type(value).__name__}")

    match = _NUMBER_RE.match(value)
    if not match:
        raise UnitError(f"malformed quantity: {value!r}")
    mantissa = float(match.group(1))
    tail = match.group(2)
    if not tail:
        return mantissa

    scale, rest = _split_suffix(tail)
    if rest and rest.lower() not in _UNIT_NAMES:
        raise UnitError(f"unknown unit in quantity: {value!r}")
    return mantissa * scale


def _split_suffix(tail: str) -> "tuple[float, str]":
    """Split ``tail`` into a magnitude scale and a residual unit name."""
    lower = tail.lower()
    # "MHz"-style: uppercase M means mega when followed by Hz (SPICE "m"
    # alone is milli).
    if tail.startswith("M") and lower.endswith("hz") and len(tail) == 3:
        return 1e6, "hz"
    for suffix, scale in _SUFFIXES:
        if lower.startswith(suffix):
            return scale, lower[len(suffix):]
    return 1.0, lower


def format_quantity(value: float, unit: str = "") -> str:
    """Format ``value`` with an engineering suffix.

    >>> format_quantity(100e3, "Ohm")
    '100kOhm'
    >>> format_quantity(1e-12, "F")
    '1pF'
    """
    if value == 0:
        return f"0{unit}"
    if not math.isfinite(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    for suffix, scale in [
        ("T", 1e12), ("G", 1e9), ("k", 1e3), ("", 1.0),
        ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12),
        ("f", 1e-15), ("a", 1e-18),
    ]:
        if magnitude >= scale * 0.9995:
            scaled = value / scale
            if abs(scaled - round(scaled)) < 5e-4:
                return f"{round(scaled):d}{suffix}{unit}"
            return f"{scaled:.3g}{suffix}{unit}"
    return f"{value:.3g}{unit}"
