"""Transient analysis with breakpoint-aware stepping.

The engine integrates with trapezoidal companions by default, dropping to
backward Euler for a couple of steps after every source breakpoint (the
standard damping trick that suppresses trapezoidal ringing at corners).
On Newton failure the step is halved and retried.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from .. import telemetry
from .dc import operating_point
from .exceptions import AnalysisError, ConvergenceError
from .mna import MnaContext
from .netlist import Circuit
from .waveform import Waveform

#: Steps integrated with backward Euler right after each breakpoint.
BE_STEPS_AFTER_BREAKPOINT = 2

#: Smallest allowed time step before the engine gives up, seconds.
MIN_STEP = 1e-18


class TransientResult:
    """Sampled solution of a transient run."""

    def __init__(self, circuit: Circuit, t: np.ndarray, X: np.ndarray):
        self.circuit = circuit
        self.t = t
        self.X = X

    @property
    def final_x(self) -> np.ndarray:
        return self.X[-1].copy()

    def node(self, name: str) -> Waveform:
        """Node voltage waveform."""
        idx = self.circuit.node_index(name)
        if idx < 0:
            return Waveform(self.t, np.zeros_like(self.t), name)
        return Waveform(self.t, self.X[:, idx], name)

    def branch_current(self, element_name: str) -> Waveform:
        """Branch current of a voltage source or inductor (a→b through
        the element; negative = delivering power for a supply)."""
        el = self.circuit.element(element_name)
        if not el._branch:
            raise AnalysisError(f"{element_name!r} has no branch current")
        return Waveform(self.t, self.X[:, el._branch[0]],
                        f"I({element_name})")

    def supply_power(self, source_name: str) -> Waveform:
        """Instantaneous power *delivered by* the named voltage source."""
        el = self.circuit.element(source_name)
        if not el._branch:
            raise AnalysisError(f"{source_name!r} has no branch current")
        v = np.array([el.value(tk) for tk in self.t])
        i = self.X[:, el._branch[0]]
        return Waveform(self.t, -v * i, f"P({source_name})")

    def average_power(self, source_name: str) -> float:
        return self.supply_power(source_name).average()

    def __repr__(self) -> str:
        return (
            f"<TransientResult {self.circuit.name!r} samples={len(self.t)} "
            f"t=[{self.t[0]:.4g}, {self.t[-1]:.4g}]s>"
        )


def transient(circuit: Circuit, tstop: float, dt: float, *,
              tstart: float = 0.0, method: str = "trap",
              ic: Optional[Mapping[str, float]] = None, uic: bool = False,
              x0: Optional[np.ndarray] = None,
              ctx: Optional[MnaContext] = None,
              max_retries: int = 10,
              solver: str = "auto") -> TransientResult:
    """Integrate the circuit from ``tstart`` to ``tstop``.

    Parameters
    ----------
    dt:
        Nominal (maximum) step.  The engine always lands exactly on
        source breakpoints and halves the step on Newton failures.
    ic:
        Node-voltage initial conditions.  With ``uic=True`` they are used
        verbatim (skipping the DC operating point); otherwise the DC
        operating point at ``tstart`` is computed first and then
        overridden at the listed nodes.
    x0:
        Full initial solution vector (overrides the operating point, used
        by the PSS engine for warm restarts).
    solver:
        Linear-solve backend for the MNA systems ("auto"/"dense"/
        "sparse", see :mod:`repro.circuit.sparse`).  Ignored when an
        explicit ``ctx`` is supplied (the context owns the choice).
    """
    rt = telemetry.active()
    if rt is None:
        return _transient_impl(circuit, tstop, dt, tstart=tstart,
                               method=method, ic=ic, uic=uic, x0=x0,
                               ctx=ctx, max_retries=max_retries,
                               solver=solver)
    with rt.tracer.span("mna.transient",
                        {"circuit": circuit.name, "method": method}) as sp:
        result = _transient_impl(circuit, tstop, dt, tstart=tstart,
                                 method=method, ic=ic, uic=uic, x0=x0,
                                 ctx=ctx, max_retries=max_retries,
                                 solver=solver)
        sp.set_tag("steps", len(result.t) - 1)
        return result


def _transient_impl(circuit, tstop, dt, *, tstart, method, ic, uic, x0,
                    ctx, max_retries, solver) -> TransientResult:
    if tstop <= tstart:
        raise AnalysisError(f"tstop ({tstop}) must exceed tstart ({tstart})")
    if dt <= 0:
        raise AnalysisError("dt must be positive")
    if method not in ("trap", "be"):
        raise AnalysisError(f"unknown integration method {method!r}")
    ctx = ctx or MnaContext(circuit, solver=solver)

    # -- initial state ----------------------------------------------------
    if x0 is not None:
        x = np.asarray(x0, dtype=float).copy()
    elif uic:
        x = np.zeros(circuit.size)
    else:
        x = operating_point(circuit, t=tstart, ctx=ctx).x.copy()
    if ic:
        for node, v in ic.items():
            idx = circuit.node_index(node)
            if idx >= 0:
                x[idx] = float(v)
    ctx.init_states(x)

    breakpoints = ctx.breakpoints(tstart, tstop)
    bp_iter: List[float] = [b for b in breakpoints if tstart < b < tstop]
    bp_iter.append(tstop)
    bp_pos = 0

    times: List[float] = [tstart]
    states: List[np.ndarray] = [x.copy()]
    t_cur = tstart
    be_countdown = BE_STEPS_AFTER_BREAKPOINT  # initial ramp is a corner too
    eps = dt * 1e-9

    while t_cur < tstop - eps:
        while bp_pos < len(bp_iter) and bp_iter[bp_pos] <= t_cur + eps:
            bp_pos += 1
        next_bp = bp_iter[bp_pos] if bp_pos < len(bp_iter) else tstop
        h = min(dt, next_bp - t_cur)
        step_method = "be" if (method == "be" or be_countdown > 0) else "trap"

        x_next = None
        h_try = h
        for _attempt in range(max_retries):
            try:
                x_next = ctx.solve_newton(
                    x, t_cur + h_try, mode="tran", dt=h_try,
                    method=step_method, analysis="transient")
                break
            except ConvergenceError:
                h_try *= 0.5
                step_method = "be"
                if h_try < MIN_STEP:
                    break
        if x_next is None:
            raise ConvergenceError(
                "transient step failed even at minimum step size",
                analysis="transient", time=t_cur)

        t_cur += h_try
        ctx.accept_step(x_next, h_try, step_method)
        x = x_next
        times.append(t_cur)
        states.append(x.copy())
        if abs(t_cur - next_bp) <= eps:
            be_countdown = BE_STEPS_AFTER_BREAKPOINT
        elif be_countdown > 0:
            be_countdown -= 1

    return TransientResult(circuit, np.asarray(times), np.vstack(states))
