"""MNA assembly and damped Newton–Raphson solution.

:class:`MnaContext` caches everything that does not change between
solves: static (linear) stamps, the vectorised index arrays for MOSFET
groups, and scratch matrices.  Analyses (DC, transient, PSS) share one
context per circuit, which is what makes the Python engine fast enough
for the paper's 54-transistor adder.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import telemetry
from ..tech.mosfet_models import ids_full_vec
from .elements.base import NONLINEAR, REACTIVE, SOURCE, STATIC, MnaSystem
from .elements.mosfet import GMIN_DS, Mosfet
from .exceptions import ConvergenceError, SingularMatrixError
from .netlist import Circuit
from .sparse import check_solver, choose_backend, matrix_fill, sparse_solve

#: Default conductance from every node to ground, for matrix regularity.
DEFAULT_GMIN = 1e-12


def _note_newton(rt, iterations: int, backend: Optional[str]) -> None:
    """Record one converged Newton solve (telemetry enabled only)."""
    rt.count("repro_mna_newton_solves_total")
    rt.count("repro_mna_newton_iterations_total", iterations,
             backend=backend or "dense")


class _MosfetGroup:
    """Precomputed scatter indices for vectorised MOSFET stamping."""

    def __init__(self, mosfets: List[Mosfet], size: int):
        self.devices = mosfets
        n = len(mosfets)
        self.n = n
        if n == 0:
            return
        d = np.array([m._idx[0] for m in mosfets], dtype=np.intp)
        g = np.array([m._idx[1] for m in mosfets], dtype=np.intp)
        s = np.array([m._idx[2] for m in mosfets], dtype=np.intp)
        self.d, self.g, self.s = d, g, s
        self.sign = np.array([m.model.sign for m in mosfets])
        self.beta = np.array(
            [m.model.kp * m.width / m.length for m in mosfets]
        )
        self.vt = np.array([abs(m.model.vt0) for m in mosfets])
        self.lam = np.array([m.model.lam for m in mosfets])
        self.n_sub = np.array([m.model.n_sub for m in mosfets])
        # Ground-safe gather indices: ground (-1) reads a padded zero.
        self.d_gather = np.where(d >= 0, d, size)
        self.g_gather = np.where(g >= 0, g, size)
        self.s_gather = np.where(s >= 0, s, size)
        # G-matrix scatter pattern.  Per device, in order:
        #   gm block:  (d,g)+ (d,s)- (s,g)- (s,s)+
        #   gds block: (d,d)+ (s,s)+ (d,s)- (s,d)-
        rows = np.concatenate([d, d, s, s, d, s, d, s])
        cols = np.concatenate([g, s, g, s, d, s, s, d])
        valid = (rows >= 0) & (cols >= 0)
        self.lin = (rows * size + cols)[valid]
        self.valid = valid
        self.d_valid = d >= 0
        self.s_valid = s >= 0

    def stamp(self, G: np.ndarray, I: np.ndarray, x_padded: np.ndarray) -> None:
        """Accumulate linearised device stamps for the solution estimate."""
        vd = x_padded[self.d_gather]
        vg = x_padded[self.g_gather]
        vs = x_padded[self.s_gather]
        ids, gm, gds = ids_full_vec(vd, vg, vs, self.sign, self.beta,
                                    self.vt, self.lam, self.n_sub)
        gt = gds + GMIN_DS
        ieq = ids - gm * (vg - vs) - gds * (vd - vs)
        vals = np.concatenate([gm, -gm, -gm, gm, gt, gt, -gt, -gt])[self.valid]
        np.add.at(G.reshape(-1), self.lin, vals)
        np.add.at(I, self.d[self.d_valid], -ieq[self.d_valid])
        np.add.at(I, self.s[self.s_valid], ieq[self.s_valid])

    def currents(self, x_padded: np.ndarray) -> np.ndarray:
        """Drain currents for all devices at solution ``x``."""
        vd = x_padded[self.d_gather]
        vg = x_padded[self.g_gather]
        vs = x_padded[self.s_gather]
        ids, _gm, _gds = ids_full_vec(vd, vg, vs, self.sign, self.beta,
                                      self.vt, self.lam, self.n_sub)
        return ids


class MnaContext:
    """Reusable solver workspace for one compiled circuit."""

    def __init__(self, circuit: Circuit, *, gmin: float = DEFAULT_GMIN,
                 solver: str = "auto"):
        circuit.compile()
        self.circuit = circuit
        self.gmin = gmin
        self.solver = check_solver(solver)
        #: Concrete backend ("dense"/"sparse"), decided lazily from the
        #: first fully assembled matrix (its fill is what the crossover
        #: heuristic needs, and it is unknown before stamping).
        self._backend: Optional[str] = None
        self.n_nodes = circuit.n_nodes
        self.size = circuit.size
        cats = circuit.by_category
        self.static_elements = cats[STATIC]
        self.reactive_elements = cats[REACTIVE]
        self.source_elements = cats[SOURCE]
        mosfets = [el for el in cats[NONLINEAR] if isinstance(el, Mosfet)]
        self.other_nonlinear = [
            el for el in cats[NONLINEAR] if not isinstance(el, Mosfet)
        ]
        self.mosfet_group = _MosfetGroup(mosfets, self.size)
        self.sys = MnaSystem(circuit.n_nodes, circuit.n_branches)

        # Static base: linear elements + gmin on every node diagonal.
        self.sys.clear()
        for el in self.static_elements:
            el.stamp_static(self.sys)
        for i in range(self.n_nodes):
            self.sys.G[i, i] += gmin
        self._G_static = self.sys.G.copy()
        self._I_static = self.sys.I.copy()

    # -- assembly helpers --------------------------------------------------

    def _base_for_point(self, t: float, *, mode: str, dt: Optional[float],
                        method: str, source_scale: float,
                        gshunt: float) -> "tuple[np.ndarray, np.ndarray]":
        """Static + source + reactive stamps for one (t, dt) point."""
        sys = self.sys
        sys.load_from(self._G_static, self._I_static)
        for el in self.source_elements:
            el.stamp_source(sys, t, source_scale)
        if mode == "dc":
            for el in self.reactive_elements:
                el.stamp_dc(sys)
        else:
            if dt is None or dt <= 0:
                raise ConvergenceError("transient stamping needs dt > 0",
                                       analysis="mna")
            for el in self.reactive_elements:
                el.stamp_reactive(sys, dt, method)
        if gshunt > 0.0:
            for i in range(self.n_nodes):
                sys.G[i, i] += gshunt
        return sys.G.copy(), sys.I.copy()

    # -- Newton ---------------------------------------------------------------

    def solve_newton(self, x0: Optional[np.ndarray], t: float, *,
                     mode: str = "tran", dt: Optional[float] = None,
                     method: str = "trap", source_scale: float = 1.0,
                     gshunt: float = 0.0, max_iter: int = 80,
                     vlimit: float = 1.0, abstol: float = 1e-6,
                     reltol: float = 1e-4, itol: float = 1e-9,
                     analysis: str = "newton") -> np.ndarray:
        """Solve the (possibly nonlinear) MNA system at one time point.

        Returns the converged solution vector; raises
        :class:`ConvergenceError` when the damped Newton iteration fails.
        """
        rt = telemetry.active()
        if rt is None:
            return self._solve_newton_impl(
                x0, t, mode=mode, dt=dt, method=method,
                source_scale=source_scale, gshunt=gshunt,
                max_iter=max_iter, vlimit=vlimit, abstol=abstol,
                reltol=reltol, itol=itol, analysis=analysis, rt=None)
        with rt.tracer.span("mna.newton",
                            {"analysis": analysis, "mode": mode,
                             "size": self.size}):
            return self._solve_newton_impl(
                x0, t, mode=mode, dt=dt, method=method,
                source_scale=source_scale, gshunt=gshunt,
                max_iter=max_iter, vlimit=vlimit, abstol=abstol,
                reltol=reltol, itol=itol, analysis=analysis, rt=rt)

    def _solve_newton_impl(self, x0, t, *, mode, dt, method, source_scale,
                           gshunt, max_iter, vlimit, abstol, reltol, itol,
                           analysis, rt) -> np.ndarray:
        G_base, I_base = self._base_for_point(
            t, mode=mode, dt=dt, method=method,
            source_scale=source_scale, gshunt=gshunt)
        x = np.zeros(self.size) if x0 is None else np.asarray(x0, dtype=float).copy()
        has_nonlinear = self.mosfet_group.n > 0 or bool(self.other_nonlinear)
        x_padded = np.zeros(self.size + 1)
        n = self.n_nodes

        for _iteration in range(max_iter):
            G = G_base.copy()
            I = I_base.copy()
            if has_nonlinear:
                x_padded[:-1] = x
                if self.mosfet_group.n:
                    self.mosfet_group.stamp(G, I, x_padded)
                for el in self.other_nonlinear:
                    el.stamp_nonlinear(self.sys_view(G, I), x, t)
            if self._backend is None:
                self._backend = choose_backend(
                    self.size, matrix_fill(G), self.solver)
                if rt is not None:
                    rt.count("repro_mna_backend_decisions_total",
                             solver=self.solver, backend=self._backend)
            try:
                if self._backend == "sparse":
                    x_new = sparse_solve(G, I)
                else:
                    x_new = np.linalg.solve(G, I)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(
                    f"singular MNA matrix: {exc}", analysis=analysis, time=t
                ) from None
            if not np.all(np.isfinite(x_new)):
                raise ConvergenceError("solution diverged to non-finite values",
                                       analysis=analysis, time=t)
            dx = x_new - x
            if not has_nonlinear:
                if rt is not None:
                    _note_newton(rt, _iteration + 1, self._backend)
                return x_new
            dv = dx[:n]
            clamped = np.abs(dv) > vlimit
            if clamped.any():
                dv = np.clip(dv, -vlimit, vlimit)
                x = x.copy()
                x[:n] += dv
                x[n:] += dx[n:]
                continue
            x = x_new
            v_ok = np.all(np.abs(dv) <= abstol + reltol * np.abs(x_new[:n]))
            i_ok = np.all(
                np.abs(dx[n:]) <= itol + reltol * np.abs(x_new[n:])
            ) if self.size > n else True
            if v_ok and i_ok:
                if rt is not None:
                    _note_newton(rt, _iteration + 1, self._backend)
                return x
        if rt is not None:
            rt.count("repro_mna_convergence_failures_total",
                     analysis=analysis)
        raise ConvergenceError(
            f"Newton failed to converge in {max_iter} iterations",
            analysis=analysis, time=t)

    def sys_view(self, G: np.ndarray, I: np.ndarray) -> MnaSystem:
        """Wrap raw arrays in an :class:`MnaSystem` facade for per-element
        stamping of non-MOSFET nonlinear devices."""
        view = MnaSystem.__new__(MnaSystem)
        view.n_nodes = self.n_nodes
        view.size = self.size
        view.G = G
        view.I = I
        return view

    # -- state plumbing shared by transient/PSS ---------------------------------

    def init_states(self, x: np.ndarray) -> None:
        for el in self.reactive_elements:
            el.init_state(x)

    def accept_step(self, x: np.ndarray, dt: float, method: str) -> None:
        for el in self.reactive_elements:
            el.accept_step(x, dt, method)

    def breakpoints(self, t0: float, t1: float) -> np.ndarray:
        points: "list[float]" = []
        for el in self.circuit.flat_elements:
            points.extend(el.breakpoints(t0, t1))
        if not points:
            return np.empty(0)
        arr = np.unique(np.asarray(points))
        # Merge breakpoints closer than a femtosecond: they would force
        # degenerate steps.
        if arr.size > 1:
            keep = np.concatenate(([True], np.diff(arr) > 1e-15))
            arr = arr[keep]
        return arr
