"""Exception hierarchy for the circuit simulation substrate."""

from __future__ import annotations


class CircuitError(Exception):
    """Base class for every error raised by :mod:`repro.circuit`."""


class UnitError(CircuitError, ValueError):
    """A quantity string could not be parsed."""


class NetlistError(CircuitError):
    """The circuit description is malformed (duplicate names, bad nodes)."""


class ConvergenceError(CircuitError):
    """Newton iteration failed to converge.

    Carries the analysis context so callers can report *where* the solver
    gave up (useful when a sweep point fails).
    """

    def __init__(self, message: str, *, analysis: str = "", time: "float | None" = None):
        detail = message
        if analysis:
            detail = f"{analysis}: {detail}"
        if time is not None:
            detail = f"{detail} (t={time:.6g}s)"
        super().__init__(detail)
        self.analysis = analysis
        self.time = time


class SingularMatrixError(ConvergenceError):
    """The MNA matrix is singular (floating node or short loop)."""


class AnalysisError(CircuitError):
    """An analysis was asked to do something impossible (bad arguments)."""
