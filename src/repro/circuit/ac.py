"""Small-signal AC analysis.

Linearises the circuit at its DC operating point (MOSFETs become
gm/gds + their capacitances, which are already linear elements here) and
solves the complex MNA system ``(G + j*omega*C) x = b`` over a frequency
grid.  Used to characterise the averaging node's low-pass corner and the
cell's supply rejection — quantities the paper reasons about implicitly
through its RC time constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .dc import OpPoint, operating_point
from .elements.base import NONLINEAR, REACTIVE, SOURCE, MnaSystem
from .elements.mosfet import GMIN_DS, Mosfet
from .elements.passives import Capacitor, Inductor
from .elements.sources import VoltageSource
from .exceptions import AnalysisError
from .mna import MnaContext
from .netlist import Circuit
from ..tech.mosfet_models import ids_full


@dataclass(frozen=True)
class AcPoint:
    """Complex response at one frequency."""

    frequency: float
    value: complex

    @property
    def magnitude(self) -> float:
        return float(abs(self.value))

    @property
    def magnitude_db(self) -> float:
        mag = abs(self.value)
        return float(20.0 * np.log10(mag)) if mag > 0 else float("-inf")

    @property
    def phase_deg(self) -> float:
        return float(np.degrees(np.angle(self.value)))


class AcResult:
    """Frequency response ``output(f) / stimulus``."""

    def __init__(self, points: List[AcPoint]):
        if not points:
            raise AnalysisError("AC analysis produced no points")
        self.points = points

    @property
    def frequencies(self) -> np.ndarray:
        return np.asarray([p.frequency for p in self.points])

    @property
    def magnitudes(self) -> np.ndarray:
        return np.asarray([p.magnitude for p in self.points])

    def corner_frequency(self) -> float:
        """First -3 dB point relative to the lowest-frequency magnitude.

        Interpolated on a log-frequency grid; ``inf`` when the response
        never drops 3 dB inside the sweep.
        """
        mags = self.magnitudes
        ref = mags[0]
        if ref == 0:
            raise AnalysisError("zero reference magnitude")
        target = ref / np.sqrt(2.0)
        below = np.nonzero(mags <= target)[0]
        if below.size == 0:
            return float("inf")
        i = int(below[0])
        if i == 0:
            return float(self.frequencies[0])
        f0, f1 = self.frequencies[i - 1], self.frequencies[i]
        m0, m1 = mags[i - 1], mags[i]
        # log-linear interpolation
        frac = (m0 - target) / (m0 - m1) if m0 != m1 else 0.0
        return float(10 ** (np.log10(f0) + frac * (np.log10(f1) - np.log10(f0))))


def _stamp_linearised(ctx: MnaContext, sys_G: np.ndarray,
                      op_x: np.ndarray) -> None:
    """Stamp the small-signal conductances of all nonlinear devices."""
    group = ctx.mosfet_group
    if group.n == 0 and not ctx.other_nonlinear:
        return
    view = ctx.sys_view(sys_G, np.zeros(ctx.size))
    for device in group.devices:
        d, g, s = device._idx
        vd = 0.0 if d < 0 else op_x[d]
        vg = 0.0 if g < 0 else op_x[g]
        vs = 0.0 if s < 0 else op_x[s]
        _ids, gm, gds = ids_full(vd, vg, vs, device.model, device.width,
                                 device.length)
        view.add_vccs(d, s, g, s, gm)
        view.add_conductance(d, s, gds + GMIN_DS)
    for el in ctx.other_nonlinear:
        el.stamp_nonlinear(view, op_x, 0.0)


def ac_analysis(circuit: Circuit, frequencies: Sequence[float], *,
                stimulus: str, output: str,
                op: Optional[OpPoint] = None) -> AcResult:
    """Frequency response from ``stimulus`` (a voltage source, driven
    with a unit AC amplitude) to the voltage of node ``output``.

    All other independent sources are AC-grounded (their DC values only
    set the operating point), exactly as in SPICE ``.AC``.
    """
    circuit.compile()
    freqs = [float(f) for f in frequencies]
    if not freqs or any(f <= 0 for f in freqs):
        raise AnalysisError("AC analysis needs positive frequencies")
    source = circuit.element(stimulus)
    if not isinstance(source, VoltageSource):
        raise AnalysisError(f"{stimulus!r} is not a voltage source")
    out_idx = circuit.node_index(output)
    if out_idx < 0:
        raise AnalysisError("cannot probe the ground node")

    ctx = MnaContext(circuit)
    if op is None:
        op = operating_point(circuit, ctx=ctx)

    n = circuit.size
    # Real part: static stamps + source branch rows + linearised devices.
    G = ctx._G_static.copy()
    view = ctx.sys_view(G, np.zeros(n))
    for el in ctx.source_elements:
        if isinstance(el, VoltageSource):
            a, b = el._idx
            br = el._branch[0]
            view.stamp_branch_kcl(a, b, br)
            view.stamp_branch_voltage_row(br, a, b)
        # Current sources: AC-open (no stamp).
    for el in ctx.reactive_elements:
        if isinstance(el, Inductor):
            a, b = el._idx
            br = el._branch[0]
            view.stamp_branch_kcl(a, b, br)
            view.stamp_branch_voltage_row(br, a, b)
    _stamp_linearised(ctx, G, op.x)

    # Imaginary part: capacitor and inductor reactances.
    C = np.zeros((n, n))
    cview = ctx.sys_view(C, np.zeros(n))
    L_diag: List = []
    for el in ctx.reactive_elements:
        if isinstance(el, Capacitor) and el.capacitance > 0:
            a, b = el._idx
            cview.add_conductance(a, b, el.capacitance)
        elif isinstance(el, Inductor):
            L_diag.append((el._branch[0], el.inductance))

    # RHS: unit AC voltage on the stimulus branch.
    b_vec = np.zeros(n, dtype=complex)
    b_vec[source.branch_index] = 1.0

    points: List[AcPoint] = []
    for f in freqs:
        omega = 2.0 * np.pi * f
        A = G.astype(complex) + 1j * omega * C
        for br, inductance in L_diag:
            A[br, br] -= 1j * omega * inductance
        try:
            x = np.linalg.solve(A, b_vec)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"singular AC system at {f:.4g} Hz: {exc}")
        points.append(AcPoint(frequency=f, value=complex(x[out_idx])))
    return AcResult(points)
