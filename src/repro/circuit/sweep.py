"""Generic parameter-sweep harness used by every experiment.

A sweep evaluates a function over the Cartesian product of parameter
grids and collects per-point records (dicts).  Failures can either
propagate or be recorded, which keeps long benchmark sweeps robust to a
single hard point.

Execution is pluggable: :func:`run_sweep` accepts an ``executor`` from
:mod:`repro.exec.executor` (serial or process pool) and falls back to
the session default installed by the CLI's ``--jobs N`` flag.  Points
are always returned in grid order, so serial and parallel runs produce
identical :class:`SweepResult` records.  Pass ``seed`` to inject a
deterministic per-point seed (derived with
:func:`repro.exec.executor.derive_seed`, independent of worker count)
into each call under ``seed_param``.
"""

from __future__ import annotations

import functools
import itertools
import math
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..exec.executor import derive_seed, get_default_executor
from .exceptions import AnalysisError


def _match(actual: Any, expected: Any) -> bool:
    """Equality with float-safe comparison.

    Floats (and int-vs-float comparisons) use :func:`math.isclose`, so
    records keyed by computed grid values (``0.1 * 3`` vs ``0.3``) are
    still found; everything else is exact equality.
    """
    both_numeric = (isinstance(actual, (int, float))
                    and not isinstance(actual, bool)
                    and isinstance(expected, (int, float))
                    and not isinstance(expected, bool))
    if both_numeric and (isinstance(actual, float)
                        or isinstance(expected, float)):
        return math.isclose(actual, expected,
                            rel_tol=1e-9, abs_tol=1e-12)
    return actual == expected


class SweepResult:
    """Ordered collection of per-point records."""

    def __init__(self, records: List[Dict[str, Any]]):
        self.records = records

    def column(self, name: str) -> List[Any]:
        """Extract one column across all records."""
        missing = [i for i, r in enumerate(self.records) if name not in r]
        if missing:
            raise AnalysisError(
                f"column {name!r} missing from sweep records {missing[:3]}")
        return [r[name] for r in self.records]

    def where(self, **conditions: Any) -> "SweepResult":
        """Filter records by matching conditions.

        Float conditions match with :func:`math.isclose` (computed grid
        values rarely round-trip exactly); other types match exactly.
        """
        kept = [
            r for r in self.records
            if all(k in r and _match(r[k], v) for k, v in conditions.items())
        ]
        return SweepResult(kept)

    @property
    def failures(self) -> "SweepResult":
        """Records whose evaluation failed (``on_error="record"``)."""
        return SweepResult([r for r in self.records if "error" in r])

    @property
    def ok(self) -> "SweepResult":
        """Records whose evaluation succeeded."""
        return SweepResult([r for r in self.records if "error" not in r])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:
        return f"<SweepResult points={len(self.records)}>"


def _evaluate_point(fn, on_error: str, point) -> Dict[str, Any]:
    """Evaluate one sweep point (top-level, hence process-pool safe)."""
    record = dict(point)
    try:
        measured = fn(**point)
        record.update(measured)
    except Exception as exc:  # noqa: BLE001 - deliberate fault barrier
        if on_error == "raise":
            raise
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


def run_sweep(fn: Callable[..., Mapping[str, Any]],
              grid: Mapping[str, Sequence[Any]], *,
              on_error: str = "raise",
              executor=None,
              seed: Optional[int] = None,
              seed_param: str = "seed") -> SweepResult:
    """Evaluate ``fn(**point)`` over the product of ``grid`` values.

    ``fn`` returns a mapping of measured values; each record merges the
    sweep point with the measurement.  ``on_error`` is ``"raise"`` or
    ``"record"`` (store the exception message under ``"error"``).

    ``executor`` selects the map backend (default: the session default,
    normally serial; the CLI's ``--jobs N`` installs a process pool).
    ``seed`` derives a deterministic per-point seed passed to ``fn`` as
    ``seed_param`` — stable across backends and worker counts.
    """
    if on_error not in ("raise", "record"):
        raise AnalysisError(f"bad on_error mode: {on_error!r}")
    executor = executor or get_default_executor()
    names = list(grid.keys())
    points: List[Dict[str, Any]] = []
    for index, combo in enumerate(
            itertools.product(*(grid[n] for n in names))):
        point = dict(zip(names, combo))
        if seed is not None:
            point[seed_param] = derive_seed(seed, index)
        points.append(point)
    # fn rides in a partial, not in every payload, so the process pool
    # pickles it once per chunk rather than once per point.
    records = executor.map(functools.partial(_evaluate_point, fn, on_error),
                           points)
    return SweepResult(list(records))


def sweep(fn: Callable[..., Mapping[str, Any]],
          grid: Mapping[str, Sequence[Any]], *,
          on_error: str = "raise", executor=None) -> SweepResult:
    """Backwards-compatible alias of :func:`run_sweep` (no seeding)."""
    return run_sweep(fn, grid, on_error=on_error, executor=executor)


def sweep1d(fn: Callable[[Any], Mapping[str, Any]], name: str,
            values: Iterable[Any], *, on_error: str = "raise",
            executor=None) -> SweepResult:
    """One-dimensional convenience wrapper around :func:`run_sweep`."""
    return run_sweep(lambda **kw: fn(kw[name]), {name: list(values)},
                     on_error=on_error, executor=executor)
