"""Generic parameter-sweep harness used by every experiment.

A sweep evaluates a function over the Cartesian product of parameter
grids and collects per-point records (dicts).  Failures can either
propagate or be recorded, which keeps long benchmark sweeps robust to a
single hard point.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from .exceptions import AnalysisError


class SweepResult:
    """Ordered collection of per-point records."""

    def __init__(self, records: List[Dict[str, Any]]):
        self.records = records

    def column(self, name: str) -> List[Any]:
        """Extract one column across all records."""
        missing = [i for i, r in enumerate(self.records) if name not in r]
        if missing:
            raise AnalysisError(
                f"column {name!r} missing from sweep records {missing[:3]}")
        return [r[name] for r in self.records]

    def where(self, **conditions: Any) -> "SweepResult":
        """Filter records by exact-match conditions."""
        kept = [
            r for r in self.records
            if all(r.get(k) == v for k, v in conditions.items())
        ]
        return SweepResult(kept)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:
        return f"<SweepResult points={len(self.records)}>"


def sweep(fn: Callable[..., Mapping[str, Any]],
          grid: Mapping[str, Sequence[Any]], *,
          on_error: str = "raise") -> SweepResult:
    """Evaluate ``fn(**point)`` over the product of ``grid`` values.

    ``fn`` returns a mapping of measured values; each record merges the
    sweep point with the measurement.  ``on_error`` is ``"raise"`` or
    ``"record"`` (store the exception message under ``"error"``).
    """
    if on_error not in ("raise", "record"):
        raise AnalysisError(f"bad on_error mode: {on_error!r}")
    names = list(grid.keys())
    records: List[Dict[str, Any]] = []
    for combo in itertools.product(*(grid[n] for n in names)):
        point = dict(zip(names, combo))
        record = dict(point)
        try:
            measured = fn(**point)
            record.update(measured)
        except Exception as exc:  # noqa: BLE001 - deliberate fault barrier
            if on_error == "raise":
                raise
            record["error"] = f"{type(exc).__name__}: {exc}"
        records.append(record)
    return SweepResult(records)


def sweep1d(fn: Callable[[Any], Mapping[str, Any]], name: str,
            values: Iterable[Any], *, on_error: str = "raise") -> SweepResult:
    """One-dimensional convenience wrapper around :func:`sweep`."""
    return sweep(lambda **kw: fn(kw[name]), {name: list(values)},
                 on_error=on_error)
