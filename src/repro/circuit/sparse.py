"""Sparse MNA solve backend with a dense/sparse crossover heuristic.

The dense LAPACK path is unbeatable for the paper's cells (a 6-transistor
inverter bench is a ~10x10 system; the 54-transistor adder ~60x60), but
``O(S^3)`` dense factorisation loses to sparse LU once the system grows
past a few hundred nodes at MNA-typical fill — the regime of the scaled
scenarios on the roadmap (Bayat-style crossbar classifiers).  This module
owns the backend decision:

* :func:`check_solver` validates the user-facing ``solver`` knob
  (``"auto"`` / ``"dense"`` / ``"sparse"``) everywhere it appears — MNA
  contexts, batch solvers, engine options, ``/predict`` payloads;
* :func:`choose_backend` is the crossover heuristic — pure, total and
  cheap, so callers can decide lazily from the first assembled matrix;
* :func:`sparse_solve` / :func:`sparse_solve_batch` wrap
  ``scipy.sparse.linalg.splu`` (CSC + supernodal LU) behind the same
  error surface as the dense path: singular systems raise
  ``numpy.linalg.LinAlgError`` so existing Newton loops handle both
  backends with one ``except`` clause.

scipy is an *optional* dependency: without it ``"auto"`` silently stays
dense and an explicit ``"sparse"`` request fails with an actionable
message at validation time (not mid-solve).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import telemetry
from .exceptions import AnalysisError

try:
    from scipy.sparse import csc_matrix
    from scipy.sparse.linalg import splu

    HAS_SCIPY = True
except ImportError:  # pragma: no cover - exercised on scipy-free installs
    csc_matrix = None
    splu = None
    HAS_SCIPY = False

#: Legal values of the ``solver`` knob, in registry order.
SOLVERS = ("auto", "dense", "sparse")

#: ``auto`` never picks sparse below this system size.  The paper's
#: benches top out near S=60 (the 54-transistor adder) where dense
#: LAPACK wins by an order of magnitude; the conversion + symbolic
#: factorisation overhead of sparse LU only amortises for the scaled
#: crossbar scenarios.
SPARSE_MIN_SIZE = 128

#: ``auto`` never picks sparse above this fill ratio (nnz / S^2).  MNA
#: matrices of big circuits sit well under 10% fill; anything denser
#: factorises faster in LAPACK regardless of size.
SPARSE_MAX_FILL = 0.10


def check_solver(solver: Optional[str]) -> str:
    """Validate the ``solver`` knob (``None`` means ``"auto"``).

    An explicit ``"sparse"`` request without scipy fails here, at the
    choke point, instead of deep inside a Newton iteration.
    """
    if solver is None:
        return "auto"
    if solver not in SOLVERS:
        raise AnalysisError(
            f"unknown solver {solver!r}; use one of: {', '.join(SOLVERS)}")
    if solver == "sparse" and not HAS_SCIPY:
        raise AnalysisError(
            "solver 'sparse' requires scipy, which is not installed; "
            "use 'dense' or 'auto'")
    return solver


def matrix_fill(G: np.ndarray) -> float:
    """Fill ratio ``nnz / S^2`` of one assembled MNA matrix."""
    if G.size == 0:
        return 0.0
    return float(np.count_nonzero(G)) / float(G.size)


def choose_backend(size: int, fill: float, solver: str = "auto") -> str:
    """Resolve a ``solver`` request to a concrete backend.

    Explicit requests pass through (``"sparse"`` only when scipy is
    available — :func:`check_solver` enforces that earlier).  ``"auto"``
    picks sparse iff scipy is present **and** the system is at least
    :data:`SPARSE_MIN_SIZE` unknowns **and** the fill ratio stays under
    :data:`SPARSE_MAX_FILL` — which guarantees the paper's small cells
    always stay on the bit-exact dense path.
    """
    if solver == "dense":
        return "dense"
    if solver == "sparse":
        if not HAS_SCIPY:
            raise AnalysisError(
                "solver 'sparse' requires scipy, which is not installed")
        return "sparse"
    if solver != "auto":
        raise AnalysisError(
            f"unknown solver {solver!r}; use one of: {', '.join(SOLVERS)}")
    if not HAS_SCIPY:
        return "dense"
    if size >= SPARSE_MIN_SIZE and fill <= SPARSE_MAX_FILL:
        return "sparse"
    return "dense"


def sparse_solve(G: np.ndarray, I: np.ndarray) -> np.ndarray:
    """Solve one ``(S, S) @ x = (S,)`` system via CSC + splu.

    Error surface matches ``np.linalg.solve``: singular systems raise
    ``numpy.linalg.LinAlgError`` (callers already translate that into
    :class:`~repro.circuit.exceptions.SingularMatrixError`).
    """
    if not HAS_SCIPY:  # pragma: no cover - guarded by check_solver
        raise AnalysisError("sparse solve requires scipy")
    telemetry.count("repro_mna_lu_factorizations_total", backend="sparse")
    try:
        lu = splu(csc_matrix(G))
        return lu.solve(I)
    except RuntimeError as exc:  # splu signals singularity this way
        raise np.linalg.LinAlgError(str(exc)) from None


def sparse_solve_batch(G_stack: np.ndarray, I_stack: np.ndarray) -> np.ndarray:
    """Solve a stacked ``(B, S, S) @ x = (B, S)`` system sparsely.

    The stack is block-diagonal across points, so each block is
    factorised independently — same iterates as the dense gufunc path,
    just through sparse LU.  Singular blocks raise
    ``numpy.linalg.LinAlgError`` like the scalar wrapper.
    """
    if not HAS_SCIPY:  # pragma: no cover - guarded by check_solver
        raise AnalysisError("sparse solve requires scipy")
    telemetry.count("repro_mna_lu_factorizations_total",
                    G_stack.shape[0], backend="sparse")
    out = np.empty_like(I_stack)
    try:
        for p in range(G_stack.shape[0]):
            out[p] = splu(csc_matrix(G_stack[p])).solve(I_stack[p])
    except RuntimeError as exc:
        raise np.linalg.LinAlgError(str(exc)) from None
    return out
