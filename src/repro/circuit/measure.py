"""Waveform- and series-level measurements.

These are the quantities the paper reports: period averages, supply
power, linearity of transfer curves and flatness of robustness sweeps.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .exceptions import AnalysisError
from .waveform import Waveform


def average(wave: Waveform) -> float:
    """Time-weighted mean (alias of :meth:`Waveform.average`)."""
    return wave.average()


def rms(wave: Waveform) -> float:
    return wave.rms()


def ripple(wave: Waveform) -> float:
    return wave.peak_to_peak()


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares ``y = slope*x + intercept``."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size < 2:
        raise AnalysisError("linear fit needs at least two points")
    slope, intercept = np.polyfit(x_arr, y_arr, 1)
    return float(slope), float(intercept)


def r_squared(x: Sequence[float], y: Sequence[float]) -> float:
    """Coefficient of determination of the best linear fit.

    1.0 means perfectly linear — the paper's criterion for a
    sufficiently large ``Rout``.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    slope, intercept = linear_fit(x_arr, y_arr)
    residuals = y_arr - (slope * x_arr + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((y_arr - y_arr.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def max_linearity_error(x: Sequence[float], y: Sequence[float]) -> float:
    """Worst absolute deviation from the best linear fit (volts)."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    slope, intercept = linear_fit(x_arr, y_arr)
    return float(np.max(np.abs(y_arr - (slope * x_arr + intercept))))


def flatness(values: Sequence[float]) -> float:
    """Relative spread ``(max - min) / mean`` of a series.

    Zero means perfectly flat — used for the frequency- and
    supply-resilience claims (paper Figs. 5 and 7).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("flatness of an empty series")
    mean = float(np.mean(arr))
    if mean == 0.0:
        return float("inf") if np.ptp(arr) > 0 else 0.0
    return float(np.ptp(arr) / abs(mean))


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|`` with a zero-safe guard."""
    if reference == 0.0:
        return abs(measured)
    return abs(measured - reference) / abs(reference)
