"""SPICE-class analog circuit simulation substrate.

This package is the executable replacement for the Cadence Analog Design
Environment used in the paper: netlists of MOSFETs, passives and sources,
solved with modified nodal analysis — DC operating point, transient, and
shooting-method periodic steady state.

Quick example::

    from repro.circuit import Circuit, Vdc, Resistor, Capacitor, transient

    c = Circuit("rc")
    c.add(Vdc("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "out", "1k"))
    c.add(Capacitor("C1", "out", "0", "1u"))
    result = transient(c, tstop=5e-3, dt=1e-5, ic={"out": 0.0})
    print(result.node("out").value_at(1e-3))
"""

from .ac import AcPoint, AcResult, ac_analysis
from .batch_transient import (
    BatchPssResult,
    BatchTransientResult,
    BatchTransientSolver,
    shooting_batch,
    shooting_jacobian_batched,
)
from .dc import OpPoint, dc_sweep, operating_point
from .elements import (
    Capacitor,
    ModulatedVoltage,
    Element,
    Idc,
    Inductor,
    IProfile,
    Mosfet,
    MnaSystem,
    PwmVoltage,
    Resistor,
    Vccs,
    Vcvs,
    Vdc,
    VoltageSource,
    VProfile,
    Vpulse,
    Vpwl,
    Vsin,
    VSwitch,
)
from .exceptions import (
    AnalysisError,
    CircuitError,
    ConvergenceError,
    NetlistError,
    SingularMatrixError,
    UnitError,
)
from .measure import (
    flatness,
    linear_fit,
    max_linearity_error,
    r_squared,
    relative_error,
)
from .mna import MnaContext
from .netlist import Circuit, SubCircuit
from .pss import PssResult, settle_average, shooting
from .sparse import HAS_SCIPY, SOLVERS, check_solver, choose_backend
from .spice_export import to_spice, write_spice
from .sweep import SweepResult, run_sweep, sweep, sweep1d
from .transient import TransientResult, transient
from .units import format_quantity, parse_quantity
from .waveform import Waveform, concatenate

__all__ = [
    # containers
    "Circuit", "SubCircuit",
    # elements
    "Element", "MnaSystem", "Resistor", "Capacitor", "Inductor",
    "Vdc", "Vpulse", "PwmVoltage", "Vsin", "Vpwl", "VProfile",
    "ModulatedVoltage",
    "VoltageSource", "Idc", "IProfile", "Mosfet", "VSwitch", "Vcvs", "Vccs",
    # analyses
    "operating_point", "dc_sweep", "OpPoint", "MnaContext",
    "ac_analysis", "AcResult", "AcPoint",
    "transient", "TransientResult",
    "BatchTransientSolver", "BatchTransientResult", "shooting_batch",
    "BatchPssResult", "shooting_jacobian_batched",
    "shooting", "settle_average", "PssResult",
    "HAS_SCIPY", "SOLVERS", "check_solver", "choose_backend",
    "sweep", "sweep1d", "run_sweep", "SweepResult",
    "to_spice", "write_spice",
    # measurements
    "Waveform", "concatenate", "flatness", "linear_fit",
    "max_linearity_error", "r_squared", "relative_error",
    # units & errors
    "parse_quantity", "format_quantity",
    "CircuitError", "UnitError", "NetlistError", "ConvergenceError",
    "SingularMatrixError", "AnalysisError",
]
