"""Periodic steady-state (PSS) analysis via the shooting method.

For a circuit driven by sources periodic in ``T``, the map
``F(x0) = x(T)`` (one period of transient integration from state ``x0``)
has the periodic steady state as its fixed point.  The PWM cells studied
here have output time constants of hundreds of periods, so brute-force
integration to steady state is wasteful; shooting converges in a handful
of periods instead.

The Jacobian of ``F`` is estimated by finite differences over a small
set of *observed* (slow) nodes — by default the nodes that carry explicit
capacitors, which in the perceptron cells are exactly the slow averaging
nodes.  Fast internal nodes re-settle within one period and need no
Newton treatment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import telemetry
from .dc import operating_point
from .elements.passives import Capacitor
from .exceptions import AnalysisError, ConvergenceError
from .mna import MnaContext
from .netlist import Circuit
from .transient import TransientResult, transient
from .waveform import Waveform


class PssResult:
    """Converged periodic steady state over one period."""

    def __init__(self, circuit: Circuit, period: float,
                 final_period: TransientResult, iterations: int,
                 residual: float):
        self.circuit = circuit
        self.period = period
        self.waves = final_period
        self.iterations = iterations
        self.residual = residual

    def node(self, name: str) -> Waveform:
        return self.waves.node(name)

    def average(self, node: str) -> float:
        """Period-average voltage of ``node`` — the perceptron output
        quantity used throughout the paper."""
        return self.waves.node(node).average()

    def ripple(self, node: str) -> float:
        return self.waves.node(node).peak_to_peak()

    def supply_power(self, source_name: str) -> float:
        """Period-average power delivered by the named source, watts."""
        return self.waves.supply_power(source_name).average()

    def __repr__(self) -> str:
        return (
            f"<PssResult {self.circuit.name!r} T={self.period:.4g}s "
            f"iters={self.iterations} residual={self.residual:.3g}>"
        )


def _default_observe(circuit: Circuit) -> List[str]:
    """Nodes carrying explicit capacitors (the designed slow nodes)."""
    names: List[str] = []
    for el in circuit.elements:
        if isinstance(el, Capacitor):
            for node in el.node_names:
                idx = circuit.node_index(node)
                if idx >= 0 and node not in names:
                    names.append(node)
    return names


def shooting(circuit: Circuit, period: float, *, steps_per_period: int = 200,
             observe: Optional[Sequence[str]] = None,
             x0: Optional[np.ndarray] = None, warmup_periods: int = 2,
             max_iterations: int = 15, tol: float = 1e-4,
             fd_delta: float = 5e-3, method: str = "trap",
             update_limit: float = 2.0,
             ctx: Optional[MnaContext] = None,
             solver: str = "auto") -> PssResult:
    """Find the periodic steady state with Newton shooting.

    Parameters
    ----------
    period:
        The driving period (all periodic sources must share it).
    steps_per_period:
        Nominal transient resolution inside one period.
    observe:
        Names of the slow nodes to apply Newton to.  Defaults to the
        nodes with explicit capacitors.
    tol:
        Convergence threshold on the period-map residual, volts.
    fd_delta:
        Finite-difference perturbation for the Jacobian estimate, volts.
    update_limit:
        Per-node clamp on the Newton correction, volts.  Rail-saturated
        slow nodes can make ``(I - A)`` nearly singular through
        finite-difference noise; clamping keeps the update physical and
        the iteration falls back to (fast) fixed-point behaviour there.
    """
    rt = telemetry.active()
    if rt is None:
        return _shooting_impl(
            circuit, period, steps_per_period=steps_per_period,
            observe=observe, x0=x0, warmup_periods=warmup_periods,
            max_iterations=max_iterations, tol=tol, fd_delta=fd_delta,
            method=method, update_limit=update_limit, ctx=ctx,
            solver=solver)
    with rt.tracer.span("pss.shooting",
                        {"circuit": circuit.name}) as sp:
        try:
            result = _shooting_impl(
                circuit, period, steps_per_period=steps_per_period,
                observe=observe, x0=x0, warmup_periods=warmup_periods,
                max_iterations=max_iterations, tol=tol, fd_delta=fd_delta,
                method=method, update_limit=update_limit, ctx=ctx,
                solver=solver)
        except ConvergenceError:
            rt.count("repro_pss_convergence_failures_total")
            raise
        sp.set_tag("iterations", result.iterations)
        rt.count("repro_pss_solves_total")
        rt.count("repro_pss_iterations_total", result.iterations)
        return result


def _shooting_impl(circuit, period, *, steps_per_period, observe, x0,
                   warmup_periods, max_iterations, tol, fd_delta, method,
                   update_limit, ctx, solver) -> PssResult:
    if period <= 0:
        raise AnalysisError("period must be positive")
    circuit.compile()
    ctx = ctx or MnaContext(circuit, solver=solver)
    observe_names = list(observe) if observe else _default_observe(circuit)
    if not observe_names:
        raise AnalysisError(
            "shooting needs at least one observed node; none carry "
            "explicit capacitors and none were given")
    obs_idx = np.array([circuit.node_index(n) for n in observe_names])
    if np.any(obs_idx < 0):
        raise AnalysisError("cannot observe the ground node")
    dt = period / steps_per_period

    def run_period(x_start: np.ndarray) -> TransientResult:
        return transient(circuit, period, dt, x0=x_start, method=method,
                         ctx=ctx)

    # Starting state: operating point at t=0, then a short warmup so the
    # fast nodes land on their periodic orbits.
    x = operating_point(circuit, t=0.0, ctx=ctx).x.copy() if x0 is None \
        else np.asarray(x0, dtype=float).copy()
    for _ in range(max(warmup_periods, 0)):
        x = run_period(x).final_x

    iterations = 0
    residual = np.inf
    n_obs = len(obs_idx)
    for iterations in range(1, max_iterations + 1):
        base = run_period(x)
        fx = base.final_x
        r = fx[obs_idx] - x[obs_idx]
        residual = float(np.max(np.abs(r)))
        if residual < tol:
            return PssResult(circuit, period, base, iterations, residual)
        # Finite-difference Jacobian of the period map on observed nodes.
        A = np.zeros((n_obs, n_obs))
        for j in range(n_obs):
            x_pert = x.copy()
            x_pert[obs_idx[j]] += fd_delta
            fx_pert = run_period(x_pert).final_x
            A[:, j] = (fx_pert[obs_idx] - fx[obs_idx]) / fd_delta
        # Solve (I - A) dx = r  (Newton on G(x) = F(x) - x = 0).
        try:
            dx_obs = np.linalg.solve(np.eye(n_obs) - A, r)
        except np.linalg.LinAlgError:
            dx_obs = r  # fall back to fixed-point iteration
        if not np.all(np.isfinite(dx_obs)):
            dx_obs = r
        dx_obs = np.clip(dx_obs, -update_limit, update_limit)
        # Carry the full end-state (fast nodes) and correct slow nodes.
        x = fx.copy()
        x[obs_idx] = base.X[0][obs_idx] + dx_obs

    raise ConvergenceError(
        f"shooting did not converge in {max_iterations} iterations "
        f"(residual {residual:.3g} V)", analysis="pss")


def settle_average(circuit: Circuit, period: float, node: str, *,
                   steps_per_period: int = 100, chunk_periods: int = 20,
                   max_chunks: int = 200, tol: float = 1e-3,
                   ic: Optional[dict] = None,
                   method: str = "trap") -> "tuple[float, TransientResult]":
    """Brute-force fallback: integrate until the chunk average settles.

    Returns ``(average, last_chunk_result)``.  Slower than shooting but
    makes no assumption about observability — used to cross-validate the
    shooting engine in tests.
    """
    ctx = MnaContext(circuit)
    dt = period / steps_per_period
    x = operating_point(circuit, t=0.0, ctx=ctx).x.copy()
    if ic:
        for node_name, v in ic.items():
            idx = circuit.node_index(node_name)
            if idx >= 0:
                x[idx] = float(v)
    prev_avg: Optional[float] = None
    result: Optional[TransientResult] = None
    for _chunk in range(max_chunks):
        result = transient(circuit, chunk_periods * period, dt, x0=x,
                           method=method, ctx=ctx)
        avg = result.node(node).average()
        x = result.final_x
        if prev_avg is not None and abs(avg - prev_avg) < tol:
            return avg, result
        prev_avg = avg
    raise ConvergenceError(
        f"settle_average did not converge after {max_chunks} chunks",
        analysis="pss/settle")
