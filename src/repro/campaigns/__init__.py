"""Campaign orchestration: declarative multi-config sweeps.

A campaign turns one registered experiment into a *population* of runs:

* :mod:`repro.campaigns.spec` — :class:`CampaignSpec`, a declarative
  JSON spec whose grid/range/sample/zip axes expand into a
  deterministic, ordered list of canonical
  :class:`~repro.experiments.spec.RunConfig` objects;
* :mod:`repro.campaigns.runner` — :class:`CampaignRunner`, sharded
  (``--shard i/N`` partitions by config hash) and resumable (the
  result cache is the checkpoint: re-runs execute only the misses),
  with per-shard progress manifests and :func:`campaign_status`;
* :mod:`repro.campaigns.results` — aggregation of every config's
  metrics into one tidy table/JSON document that feeds
  :mod:`repro.reporting` for cross-config reports.

Surfaces: ``python -m repro campaign run|status|report SPEC.json`` and
the HTTP API's ``GET /campaigns`` / ``POST /campaigns/<name>/run``.
"""

from .results import (
    collect_results,
    metric_names,
    results_document,
    results_table,
)
from .runner import (
    CampaignRunner,
    PlanEntry,
    RunSummary,
    campaign_status,
    parse_shard,
    read_manifests,
    shard_index,
    shard_timings,
)
from .spec import (
    AlertRule,
    AxisSpec,
    CampaignSpec,
    find_campaigns,
    load_campaign,
)

__all__ = [
    "AlertRule", "AxisSpec", "CampaignSpec", "load_campaign",
    "find_campaigns",
    "CampaignRunner", "PlanEntry", "RunSummary",
    "campaign_status", "parse_shard", "read_manifests", "shard_index",
    "shard_timings",
    "collect_results", "metric_names", "results_document", "results_table",
]
