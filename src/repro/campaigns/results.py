"""Aggregate campaign results into one tidy cross-config table.

Every :class:`~repro.experiments.base.ExperimentResult` carries a flat
``metrics`` dict; a campaign's aggregate view is the tidy table with
one row per finished config — the varied axis parameters as identifier
columns, the union of metric names as value columns — ready for
cross-config figures/tables through :mod:`repro.reporting`.

Rows are emitted in campaign expansion order and built only from the
canonical result cache, so the merged table from ``N`` shards is
byte-identical to a serial (1-shard) run of the same campaign — the
property the acceptance tests pin down.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..exec.cache import ResultCache
from ..experiments.base import ExperimentResult
from ..experiments.spec import RunConfig, format_param_value
from ..reporting.tables import Table
from .spec import CampaignSpec

#: One collected campaign point: (position, config, result-or-None).
CollectedRow = Tuple[int, RunConfig, Optional[ExperimentResult]]


def collect_results(spec: CampaignSpec,
                    cache: ResultCache) -> List[CollectedRow]:
    """Pair every expanded config with its cached result (miss = None).

    Backends exposing a bulk ``get_configs`` (the SQLite
    :class:`~repro.store.db.ResultStore`) are probed in one batched
    query instead of one lookup per config; the flat cache keeps its
    per-file path.  Both return the same rows in the same order.
    """
    configs = list(spec.expand())
    bulk = getattr(cache, "get_configs", None)
    if callable(bulk):
        results = bulk(configs)
    else:
        results = [cache.get_config(config) for config in configs]
    return list(zip(range(len(configs)), configs, results))


def metric_names(collected: List[CollectedRow]) -> List[str]:
    """Sorted union of metric keys over the finished configs."""
    names: "set[str]" = set()
    for _, _, result in collected:
        if result is not None:
            names.update(result.metrics)
    return sorted(names)


def _param_cell(value: Any) -> Any:
    """Table cell for a config parameter (grids compact to ``a,b,c``).

    Scalars pass through untouched so the table's own float formatting
    applies; only grids go through the shared compaction rule.
    """
    if isinstance(value, tuple):
        return format_param_value(value)
    return value


def results_table(spec: CampaignSpec,
                  collected: List[CollectedRow]) -> Table:
    """Tidy table: one row per finished config, metrics as columns."""
    params = list(spec.axis_params()) or \
        [name for name, _ in (collected[0][1].params if collected else ())]
    metrics = metric_names(collected)
    done = sum(1 for _, _, result in collected if result is not None)
    table = Table(["#", "config", *params, *metrics],
                  title=f"campaign {spec.name!r}: {spec.experiment_id} "
                        f"[{spec.fidelity}] — {done}/{len(collected)} "
                        "configs",
                  float_format=".6g")
    for position, config, result in collected:
        if result is None:
            continue
        values = config.param_dict()
        table.add_row(position, config.key()[:8],
                      *[_param_cell(values[p]) for p in params],
                      *[result.metrics.get(m, "") for m in metrics])
    return table


def results_document(spec: CampaignSpec,
                     collected: List[CollectedRow]) -> Dict[str, Any]:
    """Deterministic JSON aggregate (the machine-readable table).

    Contains only content derived from the spec and the results —
    no paths, timestamps or host details — so two complete runs of the
    same campaign serialise identically however they were sharded.
    """
    rows = []
    for position, config, result in collected:
        if result is None:
            continue
        rows.append({
            "position": position,
            "config_key": config.key(),
            "params": config.canonical_dict()["params"],
            "metrics": result.to_dict()["metrics"],
        })
    return {
        "campaign": spec.name,
        "spec_key": spec.key(),
        "experiment": spec.experiment_id,
        "fidelity": spec.fidelity,
        "axis_params": list(spec.axis_params()),
        "total": len(collected),
        "done": len(rows),
        "metrics": metric_names(collected),
        "rows": rows,
    }
