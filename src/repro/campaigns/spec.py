"""Declarative campaign specs: parameter axes over experiment schemas.

A *campaign* turns one experiment into a population of runs — the shape
behind every robustness claim in the paper (accuracy across a supply
grid, yield across mismatch seeds).  A :class:`CampaignSpec` names the
experiment, a fidelity, fixed ``base`` parameters, and a list of *axes*
that each vary one (or, zipped, several) of the experiment's declared
:class:`~repro.experiments.spec.Param` values::

    {
      "name": "montecarlo-yield",
      "experiment": "ext_yield",
      "fidelity": "fast",
      "base": {"method": "vectorized"},
      "axes": [
        {"param": "seed", "sample": {"count": 6, "low": 0, "high": 9999,
                                     "seed": 13}}
      ]
    }

Axis kinds (exactly one of the value keys per axis):

``values``
    Explicit grid: ``{"param": "seed", "values": [0, 1, 2]}``.  For
    ``"floats"`` params each value is itself a list (a whole grid per
    run, e.g. ``vdd_values``).
``range``
    Arithmetic progression ``start + i*step`` for ``count`` points:
    ``{"param": "seed", "range": {"start": 0, "count": 8}}`` (``step``
    defaults to 1) — the idiomatic spelling of a seed range.
``sample``
    Deterministic uniform random draws:
    ``{"param": "seed", "sample": {"count": 4, "low": 0, "high": 9999,
    "seed": 0}}``.  Integer params draw integers over ``[low, high]``,
    float params uniform floats.  Draws are SHA-256-derived from the
    axis' own ``seed`` and the point index — no library RNG stream —
    so the expansion is bit-reproducible on every machine and library
    version (shard processes on different hosts must agree on it).
``zip``
    Lockstep variation of several params:
    ``{"zip": [{"param": "seed", "values": [0, 1]},
    {"param": "method", "values": ["loop", "vectorized"]}]}`` — the
    sub-axes must have equal lengths and contribute *one* product axis.

Expansion (:meth:`CampaignSpec.expand`) is the cartesian product of the
axes in declaration order (last axis fastest), each point merged over
``base`` and validated into a canonical, hashable
:class:`~repro.experiments.spec.RunConfig` — so the expanded list is
deterministic and ordered, the property sharding and resumable
execution (:mod:`repro.campaigns.runner`) are built on.  Duplicate
configs (possible under ``sample`` collisions) are dropped, keeping the
first occurrence.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..circuit.exceptions import AnalysisError
from ..experiments.base import check_fidelity
from ..experiments.spec import ExperimentSpec, Param, RunConfig, get_spec

PathLike = Union[str, Path]

#: Campaign names appear in file paths and URLs; keep them slug-shaped.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_-]*$")

#: The mutually-exclusive value keys an axis may carry.
_AXIS_KINDS = ("values", "range", "sample", "zip")


def _require_dict(data: Any, what: str) -> Dict[str, Any]:
    if not isinstance(data, dict):
        raise AnalysisError(f"{what} must be a JSON object, got {data!r}")
    return data


def _reject_unknown(data: Dict[str, Any], allowed: Iterable[str],
                    what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise AnalysisError(
            f"{what}: unknown field(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}")


@dataclass(frozen=True)
class AxisSpec:
    """One campaign axis: a named kind plus its raw (JSON-shaped) spec.

    ``kind`` is one of :data:`_AXIS_KINDS`; ``param`` is empty for
    ``zip`` axes, whose sub-axes live in ``children``.  The raw payload
    is kept verbatim so :meth:`describe` round-trips the spec file.
    """

    kind: str
    param: str = ""
    payload: Tuple[Tuple[str, Any], ...] = ()
    children: Tuple["AxisSpec", ...] = ()

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "AxisSpec":
        data = _require_dict(data, where)
        kinds = [k for k in _AXIS_KINDS if k in data]
        if len(kinds) != 1:
            raise AnalysisError(
                f"{where}: exactly one of {_AXIS_KINDS} is required, "
                f"got {sorted(data)}")
        kind = kinds[0]
        if kind == "zip":
            _reject_unknown(data, ("zip",), where)
            subaxes = data["zip"]
            if not isinstance(subaxes, list) or len(subaxes) < 2:
                raise AnalysisError(
                    f"{where}: 'zip' expects a list of >= 2 sub-axes")
            children = tuple(
                cls.from_dict(sub, f"{where}.zip[{i}]")
                for i, sub in enumerate(subaxes))
            bad = [c for c in children if c.kind == "zip"]
            if bad:
                raise AnalysisError(f"{where}: zip axes cannot nest")
            return cls(kind="zip", children=children)
        _reject_unknown(data, ("param", kind), where)
        param = data.get("param")
        if not isinstance(param, str) or not param:
            raise AnalysisError(f"{where}: missing 'param' name")
        payload = data[kind]
        if kind == "values":
            if not isinstance(payload, list) or not payload:
                raise AnalysisError(
                    f"{where}: 'values' must be a non-empty list")
            items: Tuple[Tuple[str, Any], ...] = (
                ("values", tuple(_freeze(v) for v in payload)),)
        else:
            payload = _require_dict(payload, f"{where}.{kind}")
            required = (("start", "count") if kind == "range"
                        else ("count", "low", "high"))
            allowed = (required + ("step",) if kind == "range"
                       else required + ("seed",))
            _reject_unknown(payload, allowed, f"{where}.{kind}")
            missing = [k for k in required if k not in payload]
            if missing:
                raise AnalysisError(
                    f"{where}.{kind}: missing field(s) {missing}")
            count = payload["count"]
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 1:
                raise AnalysisError(
                    f"{where}.{kind}: 'count' must be a positive "
                    f"integer, got {count!r}")
            for key in ("start", "step", "low", "high"):
                value = payload.get(key)
                if value is not None and (
                        isinstance(value, bool)
                        or not isinstance(value, (int, float))):
                    raise AnalysisError(
                        f"{where}.{kind}: {key!r} must be a number, "
                        f"got {value!r}")
            sample_seed = payload.get("seed")
            if sample_seed is not None and (
                    isinstance(sample_seed, bool)
                    or not isinstance(sample_seed, int)):
                # _hash_uniform would silently truncate a float seed
                # (int(1.5) == 1), quietly merging specs that spell
                # different seeds; reject it at load time instead.
                raise AnalysisError(
                    f"{where}.{kind}: 'seed' must be an integer, "
                    f"got {sample_seed!r}")
            items = tuple(sorted(payload.items()))
        return cls(kind=kind, param=param, payload=items)

    # -- expansion ----------------------------------------------------------

    @property
    def params(self) -> Tuple[str, ...]:
        """Every parameter name this axis assigns."""
        if self.kind == "zip":
            return tuple(p for c in self.children for p in c.params)
        return (self.param,)

    def size(self) -> int:
        """Point count on this axis, without materialising any point.

        For ``zip`` the first sub-axis speaks for all (a length
        mismatch is caught at expansion time).
        """
        if self.kind == "zip":
            return self.children[0].size()
        payload = dict(self.payload)
        if self.kind == "values":
            return len(payload["values"])
        return payload["count"]

    def assignments(self, experiment: ExperimentSpec
                    ) -> List[Dict[str, Any]]:
        """The ordered list of ``{param: value}`` points on this axis."""
        if self.kind == "zip":
            columns = [c.assignments(experiment) for c in self.children]
            lengths = sorted({len(col) for col in columns})
            if len(lengths) != 1:
                raise AnalysisError(
                    f"zip axis over {self.params}: sub-axes have "
                    f"mismatched lengths {lengths}")
            return [{k: v for col in row for k, v in col.items()}
                    for row in zip(*columns)]
        param = experiment.param(self.param)
        payload = dict(self.payload)
        if self.kind == "values":
            raw = list(payload["values"])
        elif self.kind == "range":
            start, step = payload["start"], payload.get("step", 1)
            raw = [start + i * step for i in range(payload["count"])]
            if param.type == "int":
                raw = [_as_int(v, f"range axis over {self.param!r}")
                       for v in raw]
        else:  # sample
            sample_seed = payload.get("seed", 0)
            low, high = payload["low"], payload["high"]
            if low > high:
                raise AnalysisError(
                    f"sample axis over {self.param!r}: low {low!r} > "
                    f"high {high!r}")
            uniforms = [_hash_uniform(sample_seed, self.param, i)
                        for i in range(payload["count"])]
            if param.type == "int":
                # Inclusive [low, high] semantics: fractional bounds
                # shrink inward (truncating int(0.5) -> 0 would let
                # draws fall below the declared low).
                lo, hi = math.ceil(low), math.floor(high)
                if lo > hi:
                    raise AnalysisError(
                        f"sample axis over {self.param!r}: no integers "
                        f"in [{low!r}, {high!r}]")
                raw = [min(lo + int(u * (hi - lo + 1)), hi)
                       for u in uniforms]
            else:
                raw = [low + u * (high - low) for u in uniforms]
        where = f"campaign axis over {self.param!r}: "
        return [{self.param: param.validate(value, where=where)}
                for value in raw]

    def describe(self) -> Dict[str, Any]:
        if self.kind == "zip":
            return {"zip": [c.describe() for c in self.children]}
        if self.kind == "values":
            values = [_thaw(v) for v in dict(self.payload)["values"]]
            return {"param": self.param, "values": values}
        return {"param": self.param, self.kind: dict(self.payload)}


def _hash_uniform(seed: int, param: str, index: int) -> float:
    """Uniform draw in ``[0, 1)`` from SHA-256 — no library RNG stream.

    Numpy's ``Generator`` streams are not guaranteed stable across
    releases (NEP 19); shard processes on different machines must
    expand a ``sample`` axis to the *same* configs, so draws come from
    a primitive whose output depends only on the spec content.
    """
    payload = f"{int(seed)},{param},{int(index)}".encode("ascii")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


def _freeze(value: Any) -> Any:
    return tuple(_freeze(v) for v in value) \
        if isinstance(value, list) else value


def _thaw(value: Any) -> Any:
    return [_thaw(v) for v in value] if isinstance(value, tuple) else value


def _as_int(value: Any, where: str) -> int:
    if isinstance(value, bool):
        raise AnalysisError(f"{where}: expected an integer, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise AnalysisError(
                f"{where}: produced non-integer value {value!r} for an "
                "integer parameter")
        return int(value)
    if not isinstance(value, int):
        raise AnalysisError(f"{where}: expected an integer, got {value!r}")
    return value


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold rule from a campaign spec.

    ``{"alerts": [{"metric": "yield", "below": 0.9}]}`` — fires when
    any finished config's ``metric`` crosses the threshold (``below``
    and/or ``above``; at least one required).  ``webhook`` optionally
    names an HTTP endpoint the alerts engine POSTs the alert document
    to (:mod:`repro.store.dashboard`).  Alerts are observability, like
    titles: they never affect the expanded config set or the campaign
    :meth:`~CampaignSpec.key`.
    """

    metric: str
    below: Optional[float] = None
    above: Optional[float] = None
    webhook: str = ""

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "AlertRule":
        data = _require_dict(data, where)
        _reject_unknown(data, ("metric", "below", "above", "webhook"),
                        where)
        metric = data.get("metric")
        if not isinstance(metric, str) or not metric:
            raise AnalysisError(f"{where}: missing 'metric' name")
        thresholds = {}
        for key in ("below", "above"):
            value = data.get(key)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise AnalysisError(
                    f"{where}: {key!r} must be a number, got {value!r}")
            thresholds[key] = float(value)
        if not thresholds:
            raise AnalysisError(
                f"{where}: an alert needs 'below' and/or 'above'")
        webhook = data.get("webhook", "")
        if not isinstance(webhook, str):
            raise AnalysisError(
                f"{where}: 'webhook' must be a URL string")
        return cls(metric=metric, below=thresholds.get("below"),
                   above=thresholds.get("above"), webhook=webhook)

    def breached(self, value: Any) -> Optional[str]:
        """``"below"``/``"above"`` when ``value`` crosses, else None."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        if self.below is not None and value < self.below:
            return "below"
        if self.above is not None and value > self.above:
            return "above"
        return None

    def describe(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"metric": self.metric}
        if self.below is not None:
            doc["below"] = self.below
        if self.above is not None:
            doc["above"] = self.above
        if self.webhook:
            doc["webhook"] = self.webhook
        return doc


@dataclass(frozen=True)
class CampaignSpec:
    """A named, declarative multi-config sweep over one experiment."""

    name: str
    experiment_id: str
    fidelity: str = "fast"
    title: str = ""
    description: str = ""
    base: Tuple[Tuple[str, Any], ...] = ()
    axes: Tuple[AxisSpec, ...] = field(default_factory=tuple)
    alerts: Tuple[AlertRule, ...] = ()

    def __post_init__(self):
        if not _NAME_RE.match(self.name):
            raise AnalysisError(
                f"campaign name {self.name!r} must match "
                f"{_NAME_RE.pattern} (it names files and URLs)")
        check_fidelity(self.fidelity)
        spec = get_spec(self.experiment_id)  # raises on unknown id
        assigned: List[str] = [k for k, _ in self.base]
        for axis in self.axes:
            assigned.extend(axis.params)
        dupes = sorted({p for p in assigned if assigned.count(p) > 1})
        if dupes:
            raise AnalysisError(
                f"campaign {self.name!r}: parameter(s) {dupes} assigned "
                "more than once across base/axes")
        declared = {p.name for p in spec.runner_params}
        unknown = sorted(set(assigned) - declared)
        if unknown:
            raise AnalysisError(
                f"campaign {self.name!r}: parameter(s) {unknown} are not "
                f"declared by experiment {self.experiment_id!r}; "
                f"declared: {sorted(declared)}")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        data = _require_dict(data, "campaign spec")
        _reject_unknown(
            data, ("name", "experiment", "fidelity", "title",
                   "description", "base", "axes", "alerts"),
            "campaign spec")
        for key in ("name", "experiment"):
            if not isinstance(data.get(key), str) or not data[key]:
                raise AnalysisError(
                    f"campaign spec: missing or non-string {key!r}")
        base = _require_dict(data.get("base", {}), "campaign 'base'")
        axes_doc = data.get("axes", [])
        if not isinstance(axes_doc, list):
            raise AnalysisError("campaign 'axes' must be a list")
        axes = tuple(AxisSpec.from_dict(axis, f"axes[{i}]")
                     for i, axis in enumerate(axes_doc))
        alerts_doc = data.get("alerts", [])
        if not isinstance(alerts_doc, list):
            raise AnalysisError("campaign 'alerts' must be a list")
        alerts = tuple(AlertRule.from_dict(rule, f"alerts[{i}]")
                       for i, rule in enumerate(alerts_doc))
        return cls(
            name=data["name"], experiment_id=data["experiment"],
            fidelity=data.get("fidelity", "fast"),
            title=str(data.get("title", "")),
            description=str(data.get("description", "")),
            base=tuple(sorted((k, _freeze(v)) for k, v in base.items())),
            axes=axes, alerts=alerts)

    @classmethod
    def load(cls, path: PathLike) -> "CampaignSpec":
        """Load and validate a campaign spec JSON file."""
        target = Path(path)
        try:
            payload = json.loads(target.read_text())
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisError(
                f"cannot read campaign spec {target}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(
                f"campaign spec {target} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    # -- views --------------------------------------------------------------

    @property
    def display_title(self) -> str:
        return self.title or self.name

    def axis_params(self) -> Tuple[str, ...]:
        """Varied parameter names, in axis declaration order."""
        return tuple(p for axis in self.axes for p in axis.params)

    def size_bound(self) -> int:
        """Upper bound on :meth:`expand`'s length, without expanding.

        The product of the declared axis point counts — exact unless
        duplicate points collapse under de-duplication.  O(axes): no
        point (let alone :class:`RunConfig`) is materialised, so
        surfaces can refuse oversized campaigns *before* building
        millions of configs.
        """
        bound = 1
        for axis in self.axes:
            bound *= axis.size()
        return bound

    def expand(self) -> List[RunConfig]:
        """The deterministic, ordered, de-duplicated config list."""
        spec = get_spec(self.experiment_id)
        axis_points = [axis.assignments(spec) for axis in self.axes]
        configs: List[RunConfig] = []
        seen = set()
        for combo in itertools.product(*axis_points):
            params = {k: _thaw(v) for k, v in self.base}
            for assignment in combo:
                params.update(assignment)
            config = RunConfig.build(self.experiment_id, self.fidelity,
                                     params)
            if config not in seen:
                seen.add(config)
                configs.append(config)
        return configs

    def describe(self) -> Dict[str, Any]:
        """JSON-able echo of the spec (round-trips via a spec file)."""
        doc = {
            "name": self.name,
            "experiment": self.experiment_id,
            "fidelity": self.fidelity,
            "title": self.title,
            "description": self.description,
            "base": {k: _thaw(v) for k, v in self.base},
            "axes": [axis.describe() for axis in self.axes],
        }
        if self.alerts:
            doc["alerts"] = [rule.describe() for rule in self.alerts]
        return doc

    def key(self) -> str:
        """Stable short hash of the *execution-relevant* spec content.

        Covers experiment, fidelity, base and axes — what determines
        the expanded config set — and deliberately excludes ``name``,
        ``title``, ``description`` and ``alerts``, so fixing a typo in
        a half-finished campaign's prose (or tightening a threshold
        rule) does not mark its shard manifests stale.
        """
        doc = self.describe()
        execution = {k: doc[k]
                     for k in ("experiment", "fidelity", "base", "axes")}
        canonical = json.dumps(execution, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def load_campaign(path: PathLike) -> CampaignSpec:
    """Module-level alias for :meth:`CampaignSpec.load`."""
    return CampaignSpec.load(path)


def find_campaigns(directory: Optional[PathLike]
                   ) -> List[Tuple[Path, "CampaignSpec | AnalysisError"]]:
    """Scan a directory for ``*.json`` campaign specs.

    Returns ``(path, spec-or-error)`` pairs in sorted path order; files
    that fail to parse/validate yield the :class:`AnalysisError` instead
    of aborting the listing (a served campaign directory should not be
    taken down by one bad file).
    """
    if directory is None:
        return []
    root = Path(directory)
    if not root.is_dir():
        return []
    entries: List[Tuple[Path, "CampaignSpec | AnalysisError"]] = []
    for path in sorted(root.glob("*.json")):
        try:
            entries.append((path, CampaignSpec.load(path)))
        except AnalysisError as exc:
            entries.append((path, exc))
    return entries
