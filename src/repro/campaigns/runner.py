"""Sharded, resumable campaign execution over the result cache.

Execution model
---------------
:meth:`CampaignSpec.expand` yields a deterministic ordered config list;
every config is assigned to a shard by its canonical content hash
(:func:`shard_index` — ``int(config.key(), 16) % n_shards``), so ``N``
independent processes (or machines) each launched with a distinct
``--shard i/N`` cover the set exactly once, with no coordinator and no
shared state beyond the result cache.

Resumability is the cache itself: every finished config is persisted by
:func:`repro.experiments.registry.run_config` under its canonical
:class:`~repro.experiments.spec.RunConfig` key, so re-running a killed
campaign re-executes only the misses — a guarantee the test suite pins.
Corrupt or truncated cache entries read as misses (see
:meth:`repro.exec.cache.ResultCache.get_config`) and are overwritten by
the re-run.

Each runner additionally journals progress to a per-shard manifest
(``<cache root>/campaigns/<name>/shard-<i>of<n>.json`` header plus an
append-only ``.log`` line per config) — purely observability
(``campaign status`` reads it for last-activity reporting);
correctness never depends on it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..circuit.exceptions import AnalysisError
from ..exec.cache import ResultCache
from ..experiments.registry import run_config
from ..experiments.spec import RunConfig
from .spec import CampaignSpec


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a CLI ``I/N`` shard spelling into 1-based ``(index, count)``.

    >>> parse_shard("2/4")
    (2, 4)
    """
    head, sep, tail = text.partition("/")
    try:
        index, count = int(head), int(tail)
    except ValueError:
        index = count = 0
    if not sep or index < 1 or count < 1 or index > count:
        raise AnalysisError(
            f"invalid shard {text!r}: expected I/N with 1 <= I <= N "
            "(e.g. --shard 2/4)")
    return index, count


def shard_index(config: RunConfig, n_shards: int) -> int:
    """Deterministic 0-based shard for a config (content-hash keyed).

    Depends only on the config's canonical encoding — every process
    computes the same partition without coordination, and adding
    configs to a campaign never moves existing ones between shards of
    the same ``n_shards``.
    """
    if n_shards < 1:
        raise AnalysisError(f"shard count must be >= 1, got {n_shards}")
    return int(config.key(), 16) % n_shards


@dataclass(frozen=True)
class PlanEntry:
    """One expanded config with its campaign position and shard."""

    position: int      #: 0-based index in the expansion order
    config: RunConfig
    shard: int         #: 0-based assigned shard
    cached: bool       #: True if the cache already holds the result


@dataclass(frozen=True)
class RunSummary:
    """What one :meth:`CampaignRunner.run` call did."""

    campaign: str
    shard: Tuple[int, int]   #: 1-based (index, count)
    total: int               #: configs in the whole campaign
    in_shard: int            #: configs assigned to this shard
    executed: int            #: freshly run this call
    skipped: int             #: already in the cache (resume hits)
    #: Aggregated per-run telemetry profiles (None with telemetry off).
    telemetry: Optional[Dict[str, Any]] = None


class CampaignRunner:
    """Execute one campaign shard through the experiment engine.

    ``shard`` is the CLI-facing 1-based ``(index, count)`` pair;
    ``(1, 1)`` (the default) runs the whole campaign.  ``jobs`` is
    forwarded to :func:`run_config` per config (the executor pool is
    for points *within* an experiment; shard processes are the
    between-config parallelism).
    """

    def __init__(self, spec: CampaignSpec, cache: ResultCache, *,
                 jobs: Optional[int] = None,
                 shard: Tuple[int, int] = (1, 1)):
        index, count = shard
        if not (1 <= index <= count):
            raise AnalysisError(
                f"invalid shard {index}/{count}: need 1 <= index <= count")
        self.spec = spec
        self.cache = cache
        self.jobs = jobs
        self.shard = (index, count)
        self.configs = spec.expand()

    # -- planning -----------------------------------------------------------

    def _assignments(self) -> List[Tuple[int, RunConfig, int]]:
        """(position, config, shard) for the whole campaign — no I/O."""
        _, count = self.shard
        return [(i, config, shard_index(config, count))
                for i, config in enumerate(self.configs)]

    def shard_entries(self) -> List[PlanEntry]:
        """This runner's slice of the campaign, in expansion order.

        Only this shard's configs are probed against the cache — N
        shard processes together do one probe per config, not N.
        """
        mine = self.shard[0] - 1
        return [PlanEntry(position=i, config=config, shard=shard,
                          cached=self.cache.get_config(config) is not None)
                for i, config, shard in self._assignments()
                if shard == mine]

    # -- execution ----------------------------------------------------------

    def run(self, progress: Optional[Callable[[PlanEntry, bool], None]]
            = None) -> RunSummary:
        """Run this shard's cache misses; returns what happened.

        ``progress`` (if given) is called after each config with the
        entry and whether it was freshly executed (``True``) or
        resumed from the cache (``False``).
        """
        rt = telemetry.active()
        entries = self.shard_entries()
        executed = skipped = 0
        profiles: List[Dict[str, Any]] = []
        manifest = _ShardManifest(self.spec, self.cache.root, self.shard,
                                  total=len(self.configs),
                                  in_shard=len(entries))
        for entry in entries:
            fresh = not entry.cached
            t0 = time.perf_counter()
            if fresh:
                result = run_config(entry.config, jobs=self.jobs,
                                    cache=self.cache)
                executed += 1
                profile = getattr(result, "profile", None)
                if profile is not None:
                    profiles.append(profile)
            else:
                skipped += 1
            seconds = time.perf_counter() - t0
            if rt is not None:
                rt.count("repro_campaign_configs_total",
                         result="fresh" if fresh else "cached")
            manifest.record(entry, fresh, seconds)
            if progress is not None:
                progress(entry, fresh)
        manifest.finish()
        aggregated = None
        if rt is not None:
            from ..telemetry.profile import aggregate_profiles

            aggregated = aggregate_profiles(profiles)
        return RunSummary(campaign=self.spec.name, shard=self.shard,
                          total=len(self.configs), in_shard=len(entries),
                          executed=executed, skipped=skipped,
                          telemetry=aggregated)


class _ShardManifest:
    """Progress journal for one shard: small header + append-only log.

    The header (``shard-<i>of<n>.json``, written atomically at start
    and finish) carries the identity/status fields; per-config progress
    appends one JSONL line to ``shard-<i>of<n>.log`` — O(1) bytes per
    config, where rewriting a growing ``completed`` map per config
    would cost O(n^2) over a shard.  One file pair per ``(index,
    count)`` means concurrent shard processes never contend; a torn
    trailing log line (killed mid-append) is skipped by the reader.
    """

    def __init__(self, spec: CampaignSpec, cache_root: Path,
                 shard: Tuple[int, int], *, total: int, in_shard: int):
        index, count = shard
        directory = Path(cache_root) / "campaigns" / spec.name
        stem = f"shard-{index}of{count}"
        self.path = directory / f"{stem}.json"
        self.log_path = directory / f"{stem}.log"
        self.doc: Dict[str, Any] = {
            "campaign": spec.name,
            "spec_key": spec.key(),
            "experiment": spec.experiment_id,
            "fidelity": spec.fidelity,
            "shard": [index, count],
            "total_configs": total,
            "shard_configs": in_shard,
            "status": "running",
            "started_at": time.time(),
            "updated_at": time.time(),
        }
        self._write_header()
        # A fresh run owns the journal: truncate any previous attempt
        # (its information lives on in the cache entries themselves).
        self.log_path.write_text("")

    def record(self, entry: PlanEntry, fresh: bool,
               seconds: float = 0.0) -> None:
        line = json.dumps({"key": entry.config.key(),
                           "position": entry.position,
                           "fresh": fresh,
                           "seconds": round(seconds, 6)})
        with self.log_path.open("a") as handle:
            handle.write(line + "\n")

    def finish(self) -> None:
        self.doc["status"] = "complete"
        self._write_header()

    def _write_header(self) -> None:
        self.doc["updated_at"] = time.time()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(self.doc))
        os.replace(tmp, self.path)


def read_manifests(spec: CampaignSpec,
                   cache_root: Path) -> List[Dict[str, Any]]:
    """Every readable shard manifest for a campaign (advisory data).

    Each returned document is the shard header with ``completed``
    rebuilt from its journal; unparseable journal lines (torn tails)
    are skipped.
    """
    directory = Path(cache_root) / "campaigns" / spec.name
    manifests = []
    if not directory.is_dir():
        return manifests
    for path in sorted(directory.glob("shard-*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            continue  # a torn write is as good as no manifest
        if not isinstance(doc, dict):
            continue
        completed: Dict[str, Any] = {}
        log_path = path.with_suffix(".log")
        try:
            # A torn tail may cut a line mid-UTF-8-sequence; decode
            # with replacement so the intact lines before it survive
            # (the mangled one then fails JSON parsing and is skipped).
            lines = log_path.read_bytes().decode(
                "utf-8", errors="replace").splitlines()
        except OSError:
            lines = []
        for line in lines:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "key" in record:
                completed[record["key"]] = {
                    "position": record.get("position"),
                    "fresh": record.get("fresh"),
                    "seconds": record.get("seconds", 0.0),
                }
        doc["completed"] = completed
        manifests.append(doc)
    return manifests


#: Most missing-config labels carried in a status document — a 50k-run
#: campaign at 10% done must not serialise 45k labels to say so.
MISSING_LABEL_CAP = 20


def shard_timings(spec: CampaignSpec,
                  cache_root: Path) -> List[Dict[str, Any]]:
    """Per-shard wall-time summary from the manifest journals.

    Advisory (journals are observability, not ground truth): for each
    readable shard manifest, sums the per-config ``seconds`` recorded
    by :meth:`_ShardManifest.record`, split into fresh executions and
    cache resumes — the ``campaign status --telemetry`` payload.
    """
    timings = []
    for doc in read_manifests(spec, cache_root):
        completed = doc.get("completed", {})
        fresh = [c for c in completed.values() if c.get("fresh")]
        cached = [c for c in completed.values() if not c.get("fresh")]
        fresh_seconds = sum(float(c.get("seconds") or 0.0)
                            for c in fresh)
        timings.append({
            "shard": doc.get("shard"),
            "status": doc.get("status"),
            "configs": len(completed),
            "fresh": len(fresh),
            "cached": len(cached),
            "fresh_seconds": round(fresh_seconds, 6),
            "mean_seconds_per_fresh": round(
                fresh_seconds / len(fresh), 6) if fresh else 0.0,
            "wall_seconds": round(
                float(doc.get("updated_at", 0.0))
                - float(doc.get("started_at", 0.0)), 3),
        })
    return timings


def campaign_status(spec: CampaignSpec, cache: ResultCache, *,
                    n_shards: int = 1,
                    with_telemetry: bool = False) -> Dict[str, Any]:
    """Ground-truth campaign progress (cache probes, not manifests).

    ``n_shards`` picks the partition to break the counts down by — the
    same configs are reported however the campaign is being sharded.
    ``missing_labels`` carries at most :data:`MISSING_LABEL_CAP`
    entries (``missing`` is always the full count), and each manifest
    is summarised with ``completed_count`` instead of its full journal.
    ``with_telemetry`` adds the :func:`shard_timings` summary under a
    ``"telemetry"`` key (``campaign status --telemetry``).
    """
    configs = spec.expand()
    per_shard = [{"shard": f"{i + 1}/{n_shards}", "total": 0, "done": 0}
                 for i in range(n_shards)]
    done = 0
    missing: List[str] = []
    for config in configs:
        bucket = per_shard[shard_index(config, n_shards)]
        bucket["total"] += 1
        if cache.get_config(config) is not None:
            bucket["done"] += 1
            done += 1
        elif len(missing) < MISSING_LABEL_CAP:
            missing.append(config.label())
    manifests = []
    for doc in read_manifests(spec, cache.root):
        summary = {k: v for k, v in doc.items() if k != "completed"}
        summary["completed_count"] = len(doc.get("completed", {}))
        manifests.append(summary)
    stale = [doc for doc in manifests
             if doc.get("spec_key") not in (None, spec.key())]
    doc: Dict[str, Any] = {
        "campaign": spec.name,
        "experiment": spec.experiment_id,
        "fidelity": spec.fidelity,
        "spec_key": spec.key(),
        "total": len(configs),
        "done": done,
        "missing": len(configs) - done,
        "missing_labels": missing,
        "missing_labels_truncated": (len(configs) - done) > len(missing),
        "shards": per_shard,
        "manifests": manifests,
        "stale_manifests": len(stale),
    }
    if with_telemetry:
        doc["telemetry"] = shard_timings(spec, cache.root)
    return doc
