"""Weight and input encoding helpers.

Weights are small unsigned integers (``n_bits`` wide) realised as
enabled/disabled binary-weighted cells; inputs are duty cycles in
[0, 1].  Signed weights for the differential perceptron are split into a
positive and a negative bank.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..circuit.exceptions import AnalysisError


def max_weight(n_bits: int) -> int:
    """Largest representable weight: ``2**n_bits - 1``."""
    if n_bits < 1:
        raise AnalysisError("weights need at least one bit")
    return (1 << n_bits) - 1


def weight_to_bits(weight: int, n_bits: int) -> List[int]:
    """LSB-first bit decomposition of an unsigned weight.

    >>> weight_to_bits(5, 3)
    [1, 0, 1]
    """
    w = _check_weight(weight, n_bits)
    return [(w >> b) & 1 for b in range(n_bits)]


def bits_to_weight(bits: Sequence[int]) -> int:
    """Inverse of :func:`weight_to_bits`."""
    for bit in bits:
        if bit not in (0, 1):
            raise AnalysisError(f"bits must be 0/1, got {bit!r}")
    return sum(bit << i for i, bit in enumerate(bits))


def _check_weight(weight: "int | np.integer", n_bits: int) -> int:
    if not isinstance(weight, (int, np.integer)) or isinstance(weight, bool):
        raise AnalysisError(f"weight must be an integer, got {weight!r}")
    limit = max_weight(n_bits)
    if not 0 <= weight <= limit:
        raise AnalysisError(
            f"weight {weight} out of range [0, {limit}] for {n_bits} bits")
    return int(weight)


def check_weights(weights: Sequence[int], n_bits: int) -> List[int]:
    return [_check_weight(w, n_bits) for w in weights]


def check_duties(duties: Sequence[float]) -> List[float]:
    out = []
    for d in duties:
        d = float(d)
        if not 0.0 <= d <= 1.0:
            raise AnalysisError(f"duty cycle {d} outside [0, 1]")
        out.append(d)
    return out


def quantize_weight(value: float, n_bits: int) -> int:
    """Round-and-clip a real weight onto the unsigned hardware grid."""
    return int(np.clip(round(value), 0, max_weight(n_bits)))


def split_signed_weight(weight: int, n_bits: int) -> Tuple[int, int]:
    """Map a signed weight onto (positive-bank, negative-bank) codes.

    >>> split_signed_weight(-3, 3)
    (0, 3)
    >>> split_signed_weight(5, 3)
    (5, 0)
    """
    if not isinstance(weight, (int, np.integer)) or isinstance(weight, bool):
        raise AnalysisError(f"weight must be an integer, got {weight!r}")
    limit = max_weight(n_bits)
    if not -limit <= weight <= limit:
        raise AnalysisError(
            f"signed weight {weight} out of range [-{limit}, {limit}]")
    w = int(weight)
    return (w, 0) if w >= 0 else (0, -w)


def quantize_signed_weight(value: float, n_bits: int) -> int:
    """Round-and-clip a real weight onto the signed hardware grid."""
    limit = max_weight(n_bits)
    return int(np.clip(round(value), -limit, limit))
