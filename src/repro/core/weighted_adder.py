"""The k x n-bit PWM weighted adder (paper Fig. 3) with three engines.

``engine="behavioral"`` evaluates paper Eq. 2 in closed form;
``engine="rc"`` solves the exact switch-level periodic steady state
(:mod:`repro.core.rc_model`); ``engine="spice"`` builds the full
54-transistor netlist and runs shooting PSS on the Level-1 devices.
The three agree in their shared regime and are cross-validated in the
test suite — use behavioural for training loops, RC for Monte Carlo,
SPICE for the paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..circuit.elements.passives import Capacitor
from ..circuit.elements.sources import PwmVoltage, Vdc, VProfile
from ..circuit.exceptions import AnalysisError
from ..circuit.netlist import Circuit
from ..circuit.pss import PssResult, shooting
from ..tech.mosfet_models import on_resistance
from .behavioral import BehavioralAdder, CalibrationModel, eq2_output
from .cells import CellDesign, and_cell_subckt
from .encoding import check_duties, check_weights, max_weight, weight_to_bits
from .rc_model import RcLeg, RcSwitchSolver

ENGINES = ("behavioral", "rc", "spice")


def adder_pss(circuit: Circuit, period: float, *,
              observe: Sequence[str], steps_per_period: int,
              solver: str = "auto") -> PssResult:
    """Shooting PSS with the Jacobian probe runs batched.

    The batched path stacks the base period run and the per-node
    finite-difference probes of each shooting iteration into one
    lock-step solve — bit-identical to scalar
    :func:`~repro.circuit.pss.shooting` (pinned by the equivalence
    tests).  Circuits the batch layer cannot model (inductors,
    switches), and the rare batch where one probe's step halving drags
    the stack into non-convergence, fall back to the scalar engine
    transparently.
    """
    from ..circuit.batch_transient import shooting_jacobian_batched
    from ..circuit.exceptions import ConvergenceError

    try:
        return shooting_jacobian_batched(
            circuit, period, observe=observe,
            steps_per_period=steps_per_period, solver=solver)
    except (AnalysisError, ConvergenceError):
        return shooting(circuit, period, observe=observe,
                        steps_per_period=steps_per_period, solver=solver)

#: Resolution used when computing the common period of multi-frequency
#: inputs, seconds (1 fs).
_PERIOD_QUANTUM = 1e-15


def common_period(frequencies: Sequence[float], *,
                  max_ratio: int = 64) -> float:
    """Least common period of several PWM frequencies.

    Periods are quantised to 1 fs; the result must stay within
    ``max_ratio`` periods of the fastest input (a guard against
    irrational ratios exploding the simulation window).
    """
    if not frequencies:
        raise AnalysisError("need at least one frequency")
    periods_fs = []
    for f in frequencies:
        if f <= 0:
            raise AnalysisError("frequencies must be positive")
        period_fs = round(1.0 / f / _PERIOD_QUANTUM)
        if abs(period_fs * _PERIOD_QUANTUM * f - 1.0) > 1e-6:
            raise AnalysisError(
                f"period of {f:.6g} Hz is not representable on a 1 fs grid")
        periods_fs.append(period_fs)
    lcm = periods_fs[0]
    for p in periods_fs[1:]:
        lcm = lcm * p // math.gcd(lcm, p)
    if lcm > max_ratio * min(periods_fs):
        raise AnalysisError(
            "frequency ratios too irregular: common period is "
            f"{lcm / min(periods_fs):.0f}x the fastest period "
            f"(limit {max_ratio})")
    return lcm * _PERIOD_QUANTUM


@dataclass(frozen=True)
class AdderConfig:
    """Electrical configuration of a weighted adder instance.

    Defaults are the paper's 3x3 setup: three inputs, 3-bit weights,
    ``Cout = 10 pF`` (Table II text), unit-cell values from Table I.
    """

    n_inputs: int = 3
    n_bits: int = 3
    vdd: float = 2.5
    frequency: float = 500e6
    cout: float = 10e-12
    cell: CellDesign = field(default_factory=CellDesign)
    rise_fraction: float = 0.02

    def __post_init__(self):
        if self.n_inputs < 1:
            raise AnalysisError("adder needs at least one input")
        if self.n_bits < 1:
            raise AnalysisError("weights need at least one bit")
        if self.vdd <= 0 or self.frequency <= 0 or self.cout <= 0:
            raise AnalysisError("vdd, frequency and cout must be positive")

    @property
    def period(self) -> float:
        return 1.0 / self.frequency

    @property
    def weight_limit(self) -> int:
        return max_weight(self.n_bits)

    @property
    def n_cells(self) -> int:
        return self.n_inputs * self.n_bits

    @property
    def transistor_count(self) -> int:
        """6 transistors per AND cell — the paper's headline 54 for 3x3."""
        return 6 * self.n_cells


@dataclass(frozen=True)
class AdderResult:
    """Outcome of one adder evaluation."""

    value: float            # average output voltage, volts
    engine: str
    ripple: float = 0.0     # peak-to-peak output ripple, volts
    power: float = 0.0      # average supply power, watts (0 if unknown)
    theoretical: float = 0.0  # paper Eq. 2 prediction

    @property
    def error(self) -> float:
        """Absolute deviation from Eq. 2, volts."""
        return abs(self.value - self.theoretical)


class WeightedAdder:
    """Multi-engine model of the paper's binary-weighted PWM adder."""

    def __init__(self, config: AdderConfig = AdderConfig(), *,
                 calibration: Optional[CalibrationModel] = None):
        self.config = config
        self._behavioral = BehavioralAdder(
            config.n_inputs, config.n_bits, vdd=config.vdd,
            calibration=calibration)

    # -- closed form ---------------------------------------------------------

    def theoretical_output(self, duties: Sequence[float],
                           weights: Sequence[int],
                           *, vdd: Optional[float] = None) -> float:
        """Paper Eq. 2."""
        return eq2_output(duties, weights, n_bits=self.config.n_bits,
                          vdd=self.config.vdd if vdd is None else vdd)

    # -- netlist ---------------------------------------------------------------

    def build_circuit(self, duties: Sequence[float], weights: Sequence[int],
                      *, vdd: Optional[float] = None,
                      input_amplitude: Optional[float] = None,
                      frequency: Optional[float] = None,
                      frequencies: Optional[Sequence[float]] = None,
                      phases: Optional[Sequence[float]] = None,
                      supply_profile=None) -> Circuit:
        """Full transistor-level bench: PWM sources, cells, shared Cout.

        Weight bits are tied to the supply/ground rails (a zero bit's
        cell still pulls the summing node down through its resistor —
        that is what Eq. 2's denominator models).  ``frequencies`` gives
        each input its own PWM frequency (the paper's "various input
        frequencies" check); it overrides ``frequency``.
        """
        cfg = self.config
        duties = check_duties(duties)
        weights = check_weights(weights, cfg.n_bits)
        if len(duties) != cfg.n_inputs or len(weights) != cfg.n_inputs:
            raise AnalysisError(
                f"expected {cfg.n_inputs} duties and weights, got "
                f"{len(duties)}/{len(weights)}")
        supply = cfg.vdd if vdd is None else vdd
        freq = cfg.frequency if frequency is None else frequency
        if frequencies is not None:
            if len(frequencies) != cfg.n_inputs:
                raise AnalysisError(
                    f"expected {cfg.n_inputs} frequencies, got "
                    f"{len(frequencies)}")
            per_input = [float(f) for f in frequencies]
        else:
            per_input = [freq] * cfg.n_inputs
        phases = list(phases) if phases is not None else [0.0] * cfg.n_inputs

        c = Circuit(f"weighted_adder_{cfg.n_inputs}x{cfg.n_bits}")
        if supply_profile is not None:
            c.add(VProfile("VDD", "vdd", "0", supply_profile,
                           breakpoints=getattr(supply_profile, "breakpoints", None)))
        else:
            c.add(Vdc("VDD", "vdd", "0", supply))
        for i, (duty, phase, f_i) in enumerate(zip(duties, phases, per_input)):
            c.add(PwmVoltage(f"VIN{i}", f"in{i}", "0",
                             v_high=input_amplitude or supply,
                             frequency=f_i, duty=duty,
                             rise_fraction=cfg.rise_fraction, phase=phase))
        for i, weight in enumerate(weights):
            for b, bit in enumerate(weight_to_bits(weight, cfg.n_bits)):
                design = cfg.cell.scaled(float(1 << b))
                cell = and_cell_subckt(design, name=f"cell")
                c.instantiate(cell, f"X{i}_{b}", {
                    "pwm": f"in{i}",
                    "w": "vdd" if bit else "0",
                    "out": "out",
                    "vdd": "vdd",
                })
        c.add(Capacitor("COUT", "out", "0", cfg.cout))
        return c

    # -- switch level -----------------------------------------------------------

    def rc_legs(self, duties: Sequence[float], weights: Sequence[int], *,
                vdd: Optional[float] = None,
                phases: Optional[Sequence[float]] = None,
                cell_overrides: Optional[Dict[int, CellDesign]] = None) -> List[RcLeg]:
        """Switch-level legs for every cell.

        ``cell_overrides`` maps flat cell index (``i*n_bits + b``) to a
        perturbed :class:`CellDesign` — the Monte-Carlo hook.
        """
        cfg = self.config
        duties = check_duties(duties)
        weights = check_weights(weights, cfg.n_bits)
        supply = cfg.vdd if vdd is None else vdd
        phases = list(phases) if phases is not None else [0.0] * cfg.n_inputs
        legs: List[RcLeg] = []
        for i, (duty, weight, phase) in enumerate(zip(duties, weights, phases)):
            for b in range(cfg.n_bits):
                flat = i * cfg.n_bits + b
                design = cfg.cell.scaled(float(1 << b))
                if cell_overrides and flat in cell_overrides:
                    design = cell_overrides[flat]
                bit = (weight >> b) & 1
                legs.append(RcLeg(
                    r_up=design.pull_up_resistance(supply),
                    r_down=design.pull_down_resistance(supply),
                    duty=duty if bit else 0.0,
                    phase=phase,
                    v_up=supply,
                    v_down=0.0,
                ))
        return legs

    # -- unified evaluation --------------------------------------------------------

    def evaluate(self, duties: Sequence[float], weights: Sequence[int], *,
                 engine: str = "rc", vdd: Optional[float] = None,
                 frequency: Optional[float] = None,
                 frequencies: Optional[Sequence[float]] = None,
                 phases: Optional[Sequence[float]] = None,
                 input_amplitude: Optional[float] = None,
                 steps_per_period: int = 150,
                 cell_overrides: Optional[Dict[int, CellDesign]] = None,
                 solver: str = "auto") -> AdderResult:
        """Average output voltage via the selected engine.

        ``frequencies`` (one per input) is supported by the behavioural
        engine (which is frequency-independent by construction) and the
        transistor engine (which runs PSS over the least common period);
        the RC engine requires a shared period.
        """
        rt = telemetry.active()
        if rt is None:
            return self._evaluate_impl(
                duties, weights, engine=engine, vdd=vdd,
                frequency=frequency, frequencies=frequencies,
                phases=phases, input_amplitude=input_amplitude,
                steps_per_period=steps_per_period,
                cell_overrides=cell_overrides, solver=solver)
        with rt.tracer.span("adder.evaluate", {"engine": engine}):
            return self._evaluate_impl(
                duties, weights, engine=engine, vdd=vdd,
                frequency=frequency, frequencies=frequencies,
                phases=phases, input_amplitude=input_amplitude,
                steps_per_period=steps_per_period,
                cell_overrides=cell_overrides, solver=solver)

    def _evaluate_impl(self, duties, weights, *, engine, vdd, frequency,
                       frequencies, phases, input_amplitude,
                       steps_per_period, cell_overrides,
                       solver) -> AdderResult:
        if engine not in ENGINES:
            raise AnalysisError(f"unknown engine {engine!r}; use {ENGINES}")
        cfg = self.config
        supply = cfg.vdd if vdd is None else vdd
        freq = cfg.frequency if frequency is None else frequency
        theoretical = self.theoretical_output(duties, weights, vdd=supply)

        if engine == "behavioral":
            value = self._behavioral.output(duties, weights, vdd=supply)
            return AdderResult(value=value, engine=engine,
                               theoretical=theoretical)

        if engine == "rc":
            if frequencies is not None and len(set(frequencies)) > 1:
                raise AnalysisError(
                    "the RC engine needs a shared input period; use the "
                    "spice engine for multi-frequency inputs")
            legs = self.rc_legs(duties, weights, vdd=supply, phases=phases,
                                cell_overrides=cell_overrides)
            solver = RcSwitchSolver(legs, cout=cfg.cout, period=1.0 / freq,
                                    vdd=supply)
            sol = solver.solve()
            return AdderResult(value=sol.average_voltage(), engine=engine,
                               ripple=sol.ripple(), power=sol.supply_power(),
                               theoretical=theoretical)

        circuit = self.build_circuit(duties, weights, vdd=supply,
                                     frequency=freq, frequencies=frequencies,
                                     phases=phases,
                                     input_amplitude=input_amplitude)
        period = (common_period(frequencies) if frequencies is not None
                  else 1.0 / freq)
        pss = adder_pss(circuit, period, observe=["out"],
                        steps_per_period=steps_per_period, solver=solver)
        return AdderResult(value=pss.average("out"), engine=engine,
                           ripple=pss.ripple("out"),
                           power=pss.supply_power("VDD"),
                           theoretical=theoretical)

    def with_calibration(self, calibration: CalibrationModel) -> "WeightedAdder":
        return WeightedAdder(self.config, calibration=calibration)
