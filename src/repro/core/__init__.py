"""The paper's contribution: PWM mixed-signal perceptron building blocks.

The fidelity ladder (see DESIGN.md §5):

* ``engine="behavioral"`` — paper Eq. 2 in closed form,
* ``engine="rc"`` — exact event-driven switch-level steady state,
* ``engine="spice"`` — full transistor-level shooting PSS.
"""

from .behavioral import (
    BehavioralAdder,
    CalibrationModel,
    eq2_output,
    fit_calibration,
)
from .cells import (
    NO_LOAD_ROUT,
    CellDesign,
    and_cell_subckt,
    build_transcoding_inverter_bench,
    inverter_subckt,
    nand2_subckt,
    transcoding_inverter_subckt,
)
from .comparator import (
    AbsoluteComparator,
    DifferentialComparator,
    RatiometricComparator,
)
from .comparator_circuit import (
    ComparatorDesign,
    build_comparator_bench,
    comparator_subckt,
    reference_divider_subckt,
)
from .full_perceptron import (
    FullPerceptronResult,
    build_full_perceptron_circuit,
    evaluate_full_perceptron,
)
from .design_space import (
    CellOperatingPoint,
    CoutAblationPoint,
    RoutAblationPoint,
    cell_transfer_curve,
    cout_ablation,
    recommend_cout,
    recommend_rout,
    rout_ablation,
)
from .encoding import (
    bits_to_weight,
    check_duties,
    check_weights,
    max_weight,
    quantize_signed_weight,
    quantize_weight,
    split_signed_weight,
    weight_to_bits,
)
from .network import PwmHiddenLayer, PwmMlp
from .perceptron import (
    DifferentialPwmPerceptron,
    PerceptronDecision,
    PwmPerceptron,
)
from .rc_model import RcLeg, RcSolution, RcSwitchSolver
from .reencoder import RampReencoder, ReencoderDesign, reencode_ratiometric
from .training import (
    PerceptronTrainer,
    TrainingRecord,
    TrainingResult,
    reference_feedback_step,
)
from .weighted_adder import ENGINES, AdderConfig, AdderResult, WeightedAdder

__all__ = [
    # adder + engines
    "WeightedAdder", "AdderConfig", "AdderResult", "ENGINES",
    "BehavioralAdder", "eq2_output", "CalibrationModel", "fit_calibration",
    "RcLeg", "RcSolution", "RcSwitchSolver",
    # cells
    "CellDesign", "inverter_subckt", "nand2_subckt",
    "transcoding_inverter_subckt", "and_cell_subckt",
    "build_transcoding_inverter_bench", "NO_LOAD_ROUT",
    # encoding
    "max_weight", "weight_to_bits", "bits_to_weight", "check_weights",
    "check_duties", "quantize_weight", "quantize_signed_weight",
    "split_signed_weight",
    # perceptron
    "PwmPerceptron", "DifferentialPwmPerceptron", "PerceptronDecision",
    "RatiometricComparator", "AbsoluteComparator", "DifferentialComparator",
    "ComparatorDesign", "comparator_subckt", "reference_divider_subckt",
    "build_comparator_bench", "build_full_perceptron_circuit",
    "evaluate_full_perceptron", "FullPerceptronResult",
    # training / networks
    "RampReencoder", "ReencoderDesign", "reencode_ratiometric",
    "PerceptronTrainer", "TrainingResult", "TrainingRecord",
    "reference_feedback_step", "PwmMlp", "PwmHiddenLayer",
    # design space
    "CellOperatingPoint", "rout_ablation", "cout_ablation",
    "RoutAblationPoint", "CoutAblationPoint", "recommend_rout",
    "recommend_cout", "cell_transfer_curve",
]
