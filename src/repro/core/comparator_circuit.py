"""Transistor-level comparator: the decision stage of paper Fig. 1.

A five-transistor differential pair (PMOS-mirror load, resistor tail)
plus an output inverter gives the perceptron a concrete mixed-signal
decision stage.  The reference input comes from a resistive divider off
the supply, so the threshold is *ratiometric* — the circuit-level
realisation of :class:`~repro.core.comparator.RatiometricComparator`.

These netlists complete the full perceptron schematic: PWM sources →
AND-cell adder → averaging node → differential pair → digital output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.elements.mosfet import Mosfet
from ..circuit.elements.passives import Capacitor, Resistor
from ..circuit.exceptions import AnalysisError, NetlistError
from ..circuit.netlist import Circuit, SubCircuit
from ..tech.mosfet_models import MosfetParams
from ..tech.umc65 import NMOS_UMC65, PMOS_UMC65


@dataclass(frozen=True)
class ComparatorDesign:
    """Sizing of the differential-pair comparator.

    Wide input devices (vs the adder cells) for gain and matching; the
    tail resistor sets a bias current of roughly
    ``(Vdd/2 - Vgs) / r_tail``.
    """

    nmos: MosfetParams = NMOS_UMC65
    pmos: MosfetParams = PMOS_UMC65
    input_width: float = 3.2e-6
    load_width: float = 3.2e-6
    length: float = 1.2e-6
    r_tail: float = 50e3
    output_cap: float = 50e-15

    def __post_init__(self):
        if self.input_width <= 0 or self.load_width <= 0 or self.length <= 0:
            raise NetlistError("comparator geometry must be positive")
        if self.r_tail <= 0:
            raise NetlistError("tail resistance must be positive")


def comparator_subckt(design: ComparatorDesign = ComparatorDesign(),
                      name: str = "comparator") -> SubCircuit:
    """Differential pair + mirror load + output buffer.

    Ports ``(inp, inn, out, vdd)``: ``out`` swings high when
    ``v(inp) > v(inn)``.  Eight transistors plus the tail resistor.

    Operation: ``inp`` drives the mirror-reference leg, so when
    ``inp > inn`` the mirror sources more current into ``d2`` than the
    ``inn`` device can sink and ``d2`` rises; two inverters buffer
    ``d2`` to rails with positive polarity.
    """
    sub = SubCircuit(name, ports=("inp", "inn", "out", "vdd"))
    sub.add(Mosfet("M1", "d1", "inp", "tail", model=design.nmos,
                   w=design.input_width, l=design.length))
    sub.add(Mosfet("M2", "d2", "inn", "tail", model=design.nmos,
                   w=design.input_width, l=design.length))
    # PMOS current mirror, diode-connected on d1.
    sub.add(Mosfet("M3", "d1", "d1", "vdd", model=design.pmos,
                   w=design.load_width, l=design.length))
    sub.add(Mosfet("M4", "d2", "d1", "vdd", model=design.pmos,
                   w=design.load_width, l=design.length))
    sub.add(Resistor("RT", "tail", "0", design.r_tail))
    # Rail-to-rail buffer (two inverters, positive polarity).
    sub.add(Mosfet("M5", "outb", "d2", "vdd", model=design.pmos,
                   w=design.load_width, l=design.length))
    sub.add(Mosfet("M6", "outb", "d2", "0", model=design.nmos,
                   w=design.input_width, l=design.length))
    sub.add(Mosfet("M7", "out", "outb", "vdd", model=design.pmos,
                   w=design.load_width, l=design.length))
    sub.add(Mosfet("M8", "out", "outb", "0", model=design.nmos,
                   w=design.input_width, l=design.length))
    sub.add(Capacitor("CO", "out", "0", design.output_cap))
    return sub


def reference_divider_subckt(ratio: float, *, total_resistance: float = 1e6,
                             name: str = "refdiv") -> SubCircuit:
    """Ratiometric reference: ``v(ref) = ratio * v(vdd)``.

    Ports ``(ref, vdd)``.  A 1 MΩ total keeps its standing current two
    orders below the adder's.
    """
    if not 0.0 < ratio < 1.0:
        raise AnalysisError(f"divider ratio must lie in (0, 1), got {ratio}")
    sub = SubCircuit(name, ports=("ref", "vdd"))
    sub.add(Resistor("RT", "vdd", "ref", total_resistance * (1.0 - ratio)))
    sub.add(Resistor("RB", "ref", "0", total_resistance * ratio))
    return sub


def build_comparator_bench(v_inp: float, v_inn: float, *, vdd: float = 2.5,
                           design: ComparatorDesign = ComparatorDesign()) -> Circuit:
    """DC test bench for the comparator alone."""
    from ..circuit.elements.sources import Vdc

    c = Circuit("comparator_bench")
    c.add(Vdc("VDD", "vdd", "0", vdd))
    c.add(Vdc("VP", "inp", "0", v_inp))
    c.add(Vdc("VN", "inn", "0", v_inn))
    c.instantiate(comparator_subckt(design), "XC",
                  {"inp": "inp", "inn": "inn", "out": "out", "vdd": "vdd"})
    return c
