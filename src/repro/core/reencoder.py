"""Voltage → duty-cycle re-encoder (the inter-layer block of a PWM MLP).

Multi-layer PWM networks need the inverse of the transcoding inverter:
turn an analog node voltage back into a PWM duty cycle.  The standard
circuit is a *ramp comparator*: compare the voltage against a periodic
ramp spanning the rails; the comparator output is high while the ramp is
below the input, giving ``duty = v / vdd`` — ratiometric again, because
the ramp spans the same rails that produced the voltage.

This module provides a cycle-accurate behavioural model of that block
(with the comparator's offset/delay non-idealities) so network-level
studies can include the re-encoding error, plus the ideal closed form
used by :class:`~repro.core.network.PwmMlp`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.exceptions import AnalysisError
from ..circuit.waveform import Waveform
from ..signals.pwm import PwmSpec


@dataclass(frozen=True)
class ReencoderDesign:
    """Ramp-comparator re-encoder parameters.

    ``comparator_offset`` (volts) and ``comparator_delay`` (fraction of
    the PWM period) model the decision stage's non-idealities;
    ``ramp_nonlinearity`` bends the ramp (a real RC-generated ramp is
    slightly exponential).
    """

    frequency: float = 500e6
    comparator_offset: float = 0.0
    comparator_delay: float = 0.0
    ramp_nonlinearity: float = 0.0

    def __post_init__(self):
        if self.frequency <= 0:
            raise AnalysisError("re-encoder frequency must be positive")
        if not 0.0 <= self.comparator_delay < 0.5:
            raise AnalysisError("comparator delay must lie in [0, 0.5)")
        if not 0.0 <= self.ramp_nonlinearity < 1.0:
            raise AnalysisError("ramp nonlinearity must lie in [0, 1)")


class RampReencoder:
    """Behavioural ramp-comparator re-encoder."""

    def __init__(self, design: ReencoderDesign = ReencoderDesign()):
        self.design = design

    def _ramp(self, phase: np.ndarray, vdd: float) -> np.ndarray:
        """Ramp voltage at period phase in [0, 1)."""
        lin = phase
        if self.design.ramp_nonlinearity > 0.0:
            # Exponential-ish ramp from an RC generator, normalised to
            # span [0, 1] over the period.
            a = self.design.ramp_nonlinearity * 3.0
            lin = (1.0 - np.exp(-a * phase)) / (1.0 - np.exp(-a))
        return lin * vdd

    def encode(self, voltage: float, vdd: float) -> float:
        """Exact duty cycle produced for a (quasi-static) input voltage."""
        if vdd <= 0:
            raise AnalysisError("vdd must be positive")
        v_eff = voltage + self.design.comparator_offset
        phase = np.linspace(0.0, 1.0, 2049)
        below = self._ramp(phase, vdd) < v_eff
        duty = float(np.mean(below))
        duty = min(max(duty + self.design.comparator_delay, 0.0), 1.0)
        return duty

    def encode_spec(self, voltage: float, vdd: float) -> PwmSpec:
        """The produced PWM signal as a :class:`PwmSpec`."""
        return PwmSpec(duty=self.encode(voltage, vdd),
                       frequency=self.design.frequency, v_high=vdd)

    def output_waveform(self, voltage: float, vdd: float,
                        n_periods: int = 2,
                        points_per_period: int = 256) -> Waveform:
        """Sampled comparator output for visual/metric inspection."""
        t_end = n_periods / self.design.frequency
        n = n_periods * points_per_period + 1
        t = np.linspace(0.0, t_end, n)
        phase = (t * self.design.frequency) % 1.0
        v_eff = voltage + self.design.comparator_offset
        y = np.where(self._ramp(phase, vdd) < v_eff, vdd, 0.0)
        return Waveform(t, y, "reencoded_pwm")


def reencode_ratiometric(voltage: float, vdd: float) -> float:
    """Ideal re-encoding: ``duty = clip(v / vdd, 0, 1)``."""
    if vdd <= 0:
        raise AnalysisError("vdd must be positive")
    return float(np.clip(voltage / vdd, 0.0, 1.0))
