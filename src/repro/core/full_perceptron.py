"""The complete mixed-signal perceptron of paper Fig. 1, in one netlist.

PWM sources → 54-transistor weighted adder → averaging node →
ratiometric reference divider → 8-transistor differential comparator →
digital decision.  Everything the paper draws, simulated together at
transistor level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuit.exceptions import AnalysisError
from ..circuit.netlist import Circuit
from .comparator_circuit import (
    ComparatorDesign,
    comparator_subckt,
    reference_divider_subckt,
)
from .encoding import max_weight
from .weighted_adder import AdderConfig, WeightedAdder, adder_pss


@dataclass(frozen=True)
class FullPerceptronResult:
    """One transistor-level classification."""

    decision: int
    v_sum: float        # average adder output, volts
    v_ref: float        # average reference, volts
    v_out: float        # average comparator output, volts
    supply_power: float
    transistor_count: int

    @property
    def margin(self) -> float:
        return self.v_sum - self.v_ref


def build_full_perceptron_circuit(duties: Sequence[float],
                                  weights: Sequence[int],
                                  theta: float, *,
                                  config: Optional[AdderConfig] = None,
                                  vdd: Optional[float] = None,
                                  frequency: Optional[float] = None,
                                  comparator: Optional[ComparatorDesign] = None) -> Circuit:
    """Assemble the full schematic.

    ``theta`` is the decision threshold on the abstract weighted sum
    ``sum(DC_i * W_i)``; the reference divider realises the equivalent
    ratiometric voltage ``theta / (k * (2^n - 1)) * Vdd``.
    """
    config = config or AdderConfig()
    adder = WeightedAdder(config)
    circuit = adder.build_circuit(duties, weights, vdd=vdd,
                                  frequency=frequency)
    denominator = config.n_inputs * max_weight(config.n_bits)
    ratio = theta / denominator
    if not 0.0 < ratio < 1.0:
        raise AnalysisError(
            f"theta {theta} maps to divider ratio {ratio:.3f}, outside (0, 1)")
    # 100k total keeps the reference node fast against the comparator's
    # gate capacitance while drawing only ~25 uA.
    circuit.instantiate(
        reference_divider_subckt(ratio, total_resistance=100e3), "XREF",
        {"ref": "vref", "vdd": "vdd"})
    circuit.instantiate(comparator_subckt(comparator or ComparatorDesign()),
                        "XCMP",
                        {"inp": "out", "inn": "vref", "out": "decision",
                         "vdd": "vdd"})
    return circuit


def evaluate_full_perceptron(duties: Sequence[float],
                             weights: Sequence[int], theta: float, *,
                             config: Optional[AdderConfig] = None,
                             vdd: Optional[float] = None,
                             frequency: Optional[float] = None,
                             steps_per_period: int = 100,
                             solver: str = "auto") -> FullPerceptronResult:
    """Transistor-level PSS of the whole perceptron; the decision is the
    comparator output's period average thresholded at mid-rail."""
    config = config or AdderConfig()
    supply = config.vdd if vdd is None else vdd
    freq = config.frequency if frequency is None else frequency
    circuit = build_full_perceptron_circuit(
        duties, weights, theta, config=config, vdd=supply, frequency=freq)
    # The comparator's internal nodes are slow too (microamp currents
    # into femtofarad caps give multi-period time constants near
    # balance), so shooting must treat them as state as well.  Seven
    # observed nodes means each shooting iteration runs eight period
    # integrations — stacked into one lock-step solve by adder_pss.
    pss = adder_pss(circuit, 1.0 / freq,
                    observe=["out", "decision", "vref", "XCMP.d2",
                             "XCMP.d1", "XCMP.tail", "XCMP.outb"],
                    steps_per_period=steps_per_period, solver=solver)
    v_out = pss.average("decision")
    return FullPerceptronResult(
        decision=int(v_out > supply / 2.0),
        v_sum=pss.average("out"),
        v_ref=pss.average("vref"),
        v_out=v_out,
        supply_power=pss.supply_power("VDD"),
        transistor_count=circuit.stats()["transistors"])
