"""Perceptron training with hardware-quantised weights.

Implements the classic Rosenblatt rule on *shadow* (real-valued) weights
with straight-through quantisation to the n-bit signed hardware grid —
the software analogue of the compare-and-feedback loop in the paper's
Fig. 1.  A hardware-in-the-loop mode runs every forward pass through a
chosen adder engine (behavioural / RC / transistor-level), so training
can be performed against the simulated mixed-signal datapath itself,
including under supply variation.

With the (default) behavioural engine and a plain differential
comparator, the epoch loop runs *vectorised*: all still-unvisited
samples are classified in one
:class:`~repro.serve.engine.BatchInferenceEngine` call, the loop jumps
straight to the first misclassification, updates, and re-batches the
remainder.  Because the batched forward pass is bit-identical to the
scalar one, the training trajectory (weight history, epoch errors,
convergence epoch) is exactly that of the per-sample loop — only faster
when most samples classify correctly.  Pass ``vectorized=False`` to
force the scalar reference path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.exceptions import AnalysisError
from .encoding import max_weight, quantize_signed_weight
from .perceptron import DifferentialPwmPerceptron
from .weighted_adder import AdderConfig


@dataclass
class TrainingRecord:
    """Per-epoch training telemetry."""

    epoch: int
    errors: int
    accuracy: float
    weights: List[int]
    bias: int


@dataclass
class TrainingResult:
    perceptron: DifferentialPwmPerceptron
    history: List[TrainingRecord]
    converged: bool

    @property
    def final_accuracy(self) -> float:
        return self.history[-1].accuracy if self.history else 0.0


class PerceptronTrainer:
    """Rosenblatt training of a :class:`DifferentialPwmPerceptron`.

    Parameters
    ----------
    config:
        Adder configuration for the trained perceptron.
    learning_rate:
        Step applied to the shadow weights per misclassified sample.
    weight_scale:
        Scale from feature space to the integer weight grid: shadow
        weights are multiplied by it before quantisation.  The default
        uses the full grid (``2^n - 1``).
    engine:
        Adder engine used for forward passes during training
        (``"behavioral"`` is exact Eq. 2 and fast; ``"rc"``/``"spice"``
        give true hardware-in-the-loop training).
    """

    def __init__(self, n_features: int, *,
                 config: Optional[AdderConfig] = None,
                 learning_rate: float = 0.2,
                 weight_scale: Optional[float] = None,
                 engine: str = "behavioral",
                 seed: Optional[int] = None):
        if n_features < 1:
            raise AnalysisError("need at least one feature")
        self.n_features = n_features
        self.config = config or AdderConfig()
        self.learning_rate = learning_rate
        self.engine = engine
        limit = max_weight(self.config.n_bits)
        self.weight_scale = float(weight_scale) if weight_scale else float(limit)
        self._rng = np.random.default_rng(seed)

    # -- quantisation -----------------------------------------------------

    def _quantize(self, shadow: np.ndarray) -> "tuple[list[int], int]":
        n_bits = self.config.n_bits
        scaled = shadow * self.weight_scale
        weights = [quantize_signed_weight(v, n_bits) for v in scaled[:-1]]
        bias = quantize_signed_weight(scaled[-1], n_bits)
        return weights, bias

    # -- training loop -----------------------------------------------------

    def _can_vectorize(self, perceptron: DifferentialPwmPerceptron,
                       engine: Optional[str] = None) -> bool:
        """Batched forward passes are available (and bit-identical) for
        the behavioural engine with a stateless differential decision."""
        from ..serve.engine import _plain_differential

        return ((engine or self.engine) == "behavioral"
                and _plain_differential(perceptron.comparator))

    def fit(self, duties: Sequence[Sequence[float]], labels: Sequence[int], *,
            epochs: int = 50, shuffle: bool = True,
            vdd: Optional[float] = None,
            vdd_sampler: Optional[Callable[[], float]] = None,
            target_accuracy: float = 1.0,
            vectorized: Optional[bool] = None) -> TrainingResult:
        """Train until every sample is classified or ``epochs`` elapse.

        ``vdd_sampler`` draws a supply voltage per forward pass, which
        trains the perceptron *under* supply variation — the micro-edge
        scenario of the paper's introduction.

        ``vectorized=None`` (auto) batches the behavioural epoch loop
        through :class:`~repro.serve.engine.BatchInferenceEngine`; the
        trajectory is bit-identical to the scalar loop (the supply
        sampler is consumed in the same per-visit order).  ``False``
        forces the scalar reference path; hardware engines always use it.
        """
        X = np.asarray(duties, dtype=float)
        y = np.asarray(labels, dtype=int)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise AnalysisError(
                f"duty matrix must be (n_samples, {self.n_features})")
        if set(np.unique(y)) - {0, 1}:
            raise AnalysisError("labels must be 0/1")
        if X.min() < 0.0 or X.max() > 1.0:
            raise AnalysisError("duty-cycle features must lie in [0, 1]")

        shadow = self._rng.normal(0.0, 0.1, self.n_features + 1)
        weights, bias = self._quantize(shadow)
        perceptron = DifferentialPwmPerceptron(weights, bias=bias,
                                               config=self.config)
        use_vec = (self._can_vectorize(perceptron) if vectorized is None
                   else bool(vectorized))
        if use_vec and not self._can_vectorize(perceptron):
            raise AnalysisError(
                "vectorized training needs the behavioural engine and a "
                "plain DifferentialComparator")
        history: List[TrainingRecord] = []
        converged = False
        order = np.arange(len(X))

        for epoch in range(epochs):
            if shuffle:
                self._rng.shuffle(order)
            if use_vec:
                errors = self._epoch_vectorized(perceptron, shadow,
                                                X[order], y[order],
                                                vdd, vdd_sampler)
            else:
                errors = self._epoch_scalar(perceptron, shadow, X, y,
                                            order, vdd, vdd_sampler)
            accuracy = self.evaluate(perceptron, X, y, vdd=vdd)
            history.append(TrainingRecord(
                epoch=epoch, errors=errors, accuracy=accuracy,
                weights=list(perceptron.weights), bias=perceptron.bias))
            if errors == 0 and accuracy >= target_accuracy:
                converged = True
                break
        return TrainingResult(perceptron=perceptron, history=history,
                              converged=converged)

    def _apply_update(self, perceptron, shadow: np.ndarray, err: int,
                      x: np.ndarray) -> None:
        step = self.learning_rate * err
        shadow[:-1] += step * x
        shadow[-1] += step
        weights, bias = self._quantize(shadow)
        perceptron.set_weights(weights, bias)

    def _epoch_scalar(self, perceptron, shadow, X, y, order, vdd,
                      vdd_sampler) -> int:
        """Reference per-sample epoch (any engine, stateful comparators)."""
        errors = 0
        for idx in order:
            supply = vdd_sampler() if vdd_sampler else vdd
            pred = perceptron.predict(X[idx], engine=self.engine,
                                      vdd=supply)
            err = int(y[idx]) - pred
            if err != 0:
                errors += 1
                self._apply_update(perceptron, shadow, err, X[idx])
        return errors

    def _epoch_vectorized(self, perceptron, shadow, Xo, yo, vdd,
                          vdd_sampler) -> int:
        """One epoch over pre-shuffled samples via batched forwards.

        Classifies every not-yet-visited sample in one engine call,
        jumps to the first misclassification, updates, and re-batches
        the tail — the weight sequence is exactly the scalar loop's.
        """
        from ..serve.engine import BatchInferenceEngine

        engine = BatchInferenceEngine()
        n = len(Xo)
        if vdd_sampler:
            # One draw per sample visit, in visit order — the same
            # stream consumption as the scalar loop.
            supplies = np.array([float(vdd_sampler()) for _ in range(n)])
        else:
            supplies = None if vdd is None else np.full(n, float(vdd))
        errors = 0
        pos = 0
        while pos < n:
            tail_vdd = None if supplies is None else supplies[pos:]
            preds = engine.predict(perceptron, Xo[pos:], vdd=tail_vdd)
            wrong = np.nonzero(preds != yo[pos:])[0]
            if wrong.size == 0:
                break
            i = pos + int(wrong[0])
            errors += 1
            err = int(yo[i]) - int(preds[wrong[0]])
            self._apply_update(perceptron, shadow, err, Xo[i])
            pos = i + 1
        return errors

    def evaluate(self, perceptron: DifferentialPwmPerceptron,
                 duties: Sequence[Sequence[float]], labels: Sequence[int], *,
                 vdd: Optional[float] = None,
                 engine: Optional[str] = None) -> float:
        """Classification accuracy on a dataset (batched when the
        engine allows — identical result either way)."""
        X = np.asarray(duties, dtype=float)
        y = np.asarray(labels, dtype=int)
        if len(y) == 0:
            return 0.0
        engine = engine or self.engine
        if self._can_vectorize(perceptron, engine) and X.ndim == 2:
            from ..serve.engine import BatchInferenceEngine

            preds = BatchInferenceEngine().predict(perceptron, X, vdd=vdd)
            return int(np.sum(preds == y)) / len(y)
        hits = sum(
            int(perceptron.predict(x, engine=engine, vdd=vdd) == label)
            for x, label in zip(X, y))
        return hits / len(y)


def reference_feedback_step(perceptron: DifferentialPwmPerceptron,
                            duties: Sequence[float], reference: int, *,
                            learning_rate_steps: int = 1,
                            engine: str = "behavioral",
                            vdd: Optional[float] = None) -> bool:
    """One on-line update exactly as drawn in paper Fig. 1.

    The adder output is compared with the reference; on mismatch every
    weight moves by an integer step in the correcting direction (the
    hardware has no fractional weights).  Returns True when the output
    already matched.
    """
    pred = perceptron.predict(duties, engine=engine, vdd=vdd)
    err = int(reference) - pred
    if err == 0:
        return True
    limit = max_weight(perceptron.config.n_bits)
    new_weights = []
    for w, d in zip(perceptron.weights, duties):
        # Move weights whose input was active; integer arithmetic only.
        step = err * learning_rate_steps if d >= 0.5 else 0
        new_weights.append(int(np.clip(w + step, -limit, limit)))
    new_bias = int(np.clip(perceptron.bias + err * learning_rate_steps,
                           -limit, limit))
    perceptron.set_weights(new_weights, new_bias)
    return False
