"""Design-space exploration: the sizing sweeps behind the paper's Table I.

The paper states its parameters "have been optimized after extensive
sweep experiments" that it does not report.  These helpers regenerate
that missing analysis: linearity versus ``Rout`` (why 100 kΩ), ripple
and settling versus ``Cout`` (why 1 pF for the cell and 10 pF for the
adder), and the power cost of each choice — the data behind the ablation
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..circuit.exceptions import AnalysisError
from ..circuit.measure import max_linearity_error, r_squared
from .cells import CellDesign
from .rc_model import RcLeg, RcSwitchSolver


@dataclass(frozen=True)
class CellOperatingPoint:
    """Electrical conditions for a single-cell sweep."""

    vdd: float = 2.5
    frequency: float = 500e6
    cout: float = 1e-12


def cell_transfer_curve(design: CellDesign, op: CellOperatingPoint,
                        duties: Sequence[float]) -> "list[float]":
    """Switch-level transfer curve ``Vout(duty)`` of the inverter cell.

    The inverter pulls up while the input is *low*, so the leg duty is
    the complement of the input duty.
    """
    outputs = []
    for duty in duties:
        leg = RcLeg(r_up=design.pull_up_resistance(op.vdd),
                    r_down=design.pull_down_resistance(op.vdd),
                    duty=1.0 - float(duty), v_up=op.vdd)
        sol = RcSwitchSolver([leg], cout=op.cout, period=1.0 / op.frequency,
                             vdd=op.vdd).solve()
        outputs.append(sol.average_voltage())
    return outputs


@dataclass(frozen=True)
class RoutAblationPoint:
    rout: float
    r2: float
    max_error: float       # worst deviation from the best linear fit, V
    static_power: float    # average supply power at 50% duty, W


def rout_ablation(routs: Sequence[float], *,
                  design: Optional[CellDesign] = None,
                  op: CellOperatingPoint = CellOperatingPoint(),
                  n_points: int = 21) -> List[RoutAblationPoint]:
    """Linearity and power versus output resistor (paper Fig. 4 rationale)."""
    design = design or CellDesign()
    duties = np.linspace(0.0, 1.0, n_points)
    points = []
    for rout in routs:
        if rout <= 0:
            raise AnalysisError("rout values must be positive")
        d = replace(design, rout=float(rout) * design.scale)
        curve = cell_transfer_curve(d, op, duties)
        leg = RcLeg(r_up=d.pull_up_resistance(op.vdd),
                    r_down=d.pull_down_resistance(op.vdd),
                    duty=0.5, v_up=op.vdd)
        sol = RcSwitchSolver([leg], cout=op.cout, period=1.0 / op.frequency,
                             vdd=op.vdd).solve()
        points.append(RoutAblationPoint(
            rout=float(rout),
            r2=r_squared(duties, curve),
            max_error=max_linearity_error(duties, curve),
            static_power=sol.supply_power()))
    return points


@dataclass(frozen=True)
class CoutAblationPoint:
    cout: float
    ripple: float          # peak-to-peak output ripple at 50% duty, V
    settling_time: float   # ~5 tau of the slowest interval, s


def cout_ablation(couts: Sequence[float], *,
                  design: Optional[CellDesign] = None,
                  op: CellOperatingPoint = CellOperatingPoint()) -> List[CoutAblationPoint]:
    """Ripple/settling trade-off versus output capacitor."""
    design = design or CellDesign()
    points = []
    for cout in couts:
        if cout <= 0:
            raise AnalysisError("cout values must be positive")
        leg = RcLeg(r_up=design.pull_up_resistance(op.vdd),
                    r_down=design.pull_down_resistance(op.vdd),
                    duty=0.5, v_up=op.vdd)
        sol = RcSwitchSolver([leg], cout=float(cout),
                             period=1.0 / op.frequency, vdd=op.vdd).solve()
        points.append(CoutAblationPoint(
            cout=float(cout),
            ripple=sol.ripple(),
            settling_time=5.0 * sol.settling_time_constant()))
    return points


def recommend_rout(*, design: Optional[CellDesign] = None,
                   op: CellOperatingPoint = CellOperatingPoint(),
                   min_r2: float = 0.999,
                   candidates: Optional[Sequence[float]] = None) -> float:
    """Smallest Rout meeting the linearity target (smaller = faster)."""
    candidates = list(candidates) if candidates is not None else \
        [1e3, 2e3, 5e3, 10e3, 20e3, 50e3, 100e3, 200e3, 500e3]
    for point in rout_ablation(sorted(candidates), design=design, op=op):
        if point.r2 >= min_r2:
            return point.rout
    raise AnalysisError(
        f"no candidate Rout reaches r^2 >= {min_r2}; largest tried "
        f"{max(candidates):.3g}")


def recommend_cout(*, design: Optional[CellDesign] = None,
                   op: CellOperatingPoint = CellOperatingPoint(),
                   max_ripple: float = 0.02,
                   candidates: Optional[Sequence[float]] = None) -> float:
    """Smallest Cout meeting the ripple target (smaller = faster settling)."""
    candidates = list(candidates) if candidates is not None else \
        [0.1e-12, 0.2e-12, 0.5e-12, 1e-12, 2e-12, 5e-12, 10e-12, 20e-12]
    for point in cout_ablation(sorted(candidates), design=design, op=op):
        if point.ripple <= max_ripple:
            return point.cout
    raise AnalysisError(
        f"no candidate Cout reaches ripple <= {max_ripple:.3g} V")
