"""Netlist builders for the paper's circuit primitives.

Three blocks from the paper:

* the *transcoding inverter* (Fig. 2): a CMOS inverter whose output
  drives an ``Rout``/``Cout`` low-pass so the average output voltage is
  ``Vdd * (1 - duty)``;
* the NAND2 + inverter *AND cell* (Fig. 3): one per (input, weight-bit)
  pair — 6 transistors, which is where the paper's "54 transistors for a
  3x3 adder" comes from;
* the binary-weighted sizing rule: the cell for weight bit *j* has
  ``2^j``-wider transistors and a ``2^j``-smaller output resistor (the
  paper's X1/X2/X4 cells).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..circuit.elements.mosfet import Mosfet
from ..circuit.elements.passives import Capacitor, Resistor
from ..circuit.elements.sources import PwmVoltage, Vdc
from ..circuit.exceptions import NetlistError
from ..circuit.netlist import Circuit, SubCircuit
from ..tech.mosfet_models import MosfetParams, on_resistance
from ..tech.umc65 import NMOS_UMC65, PMOS_UMC65, TABLE1_SIZING


@dataclass(frozen=True)
class CellDesign:
    """Geometry and passives of the unit (X1) cell.

    The defaults are the paper's Table I values.  ``scaled(s)`` yields
    the X2/X4/... variants: transistor widths multiplied and the output
    resistor divided by the scale factor, exactly the paper's rule.
    """

    nmos: MosfetParams = NMOS_UMC65
    pmos: MosfetParams = PMOS_UMC65
    nmos_width: float = TABLE1_SIZING.nmos_width
    pmos_width: float = TABLE1_SIZING.pmos_width
    length: float = TABLE1_SIZING.length
    rout: float = TABLE1_SIZING.rout
    scale: float = 1.0

    def __post_init__(self):
        if self.scale <= 0:
            raise NetlistError("cell scale must be positive")
        if self.rout <= 0:
            raise NetlistError("cell rout must be positive")

    def scaled(self, s: float) -> "CellDesign":
        """Binary-weighted variant: widths x ``s``, Rout / ``s``."""
        return replace(self, scale=self.scale * s)

    # -- effective geometry -------------------------------------------------

    @property
    def wn(self) -> float:
        return self.nmos_width * self.scale

    @property
    def wp(self) -> float:
        return self.pmos_width * self.scale

    @property
    def rout_eff(self) -> float:
        return self.rout / self.scale

    # -- switch-level abstraction ---------------------------------------------

    def pull_up_resistance(self, vdd: float) -> float:
        """Total resistance of the charging path (PMOS on + Rout)."""
        return on_resistance(self.pmos, self.wp, self.length, vdd) + self.rout_eff

    def pull_down_resistance(self, vdd: float) -> float:
        """Total resistance of the discharging path (NMOS on + Rout)."""
        return on_resistance(self.nmos, self.wn, self.length, vdd) + self.rout_eff


def inverter_subckt(design: CellDesign, name: str = "inv") -> SubCircuit:
    """Plain CMOS inverter: ports ``(in, out, vdd)``."""
    sub = SubCircuit(name, ports=("in", "out", "vdd"))
    sub.add(Mosfet("MP", "out", "in", "vdd", model=design.pmos,
                   w=design.wp, l=design.length))
    sub.add(Mosfet("MN", "out", "in", "0", model=design.nmos,
                   w=design.wn, l=design.length))
    return sub


def transcoding_inverter_subckt(design: CellDesign,
                                name: str = "txinv") -> SubCircuit:
    """Paper Fig. 2 cell *without* the output capacitor.

    Ports ``(in, out, vdd)``; the shared ``Cout`` belongs to the bench
    (several cells may share one output node).
    """
    sub = SubCircuit(name, ports=("in", "out", "vdd"))
    sub.add(Mosfet("MP", "drain", "in", "vdd", model=design.pmos,
                   w=design.wp, l=design.length))
    sub.add(Mosfet("MN", "drain", "in", "0", model=design.nmos,
                   w=design.wn, l=design.length))
    sub.add(Resistor("ROUT", "drain", "out", design.rout_eff))
    return sub


def nand2_subckt(design: CellDesign, name: str = "nand2") -> SubCircuit:
    """Two-input NAND: ports ``(a, b, y, vdd)``.

    The series NMOS stack is drawn at twice the inverter NMOS width, the
    usual equal-drive sizing.
    """
    sub = SubCircuit(name, ports=("a", "b", "y", "vdd"))
    sub.add(Mosfet("MPA", "y", "a", "vdd", model=design.pmos,
                   w=design.wp, l=design.length))
    sub.add(Mosfet("MPB", "y", "b", "vdd", model=design.pmos,
                   w=design.wp, l=design.length))
    sub.add(Mosfet("MNA", "y", "a", "mid", model=design.nmos,
                   w=2 * design.wn, l=design.length))
    sub.add(Mosfet("MNB", "mid", "b", "0", model=design.nmos,
                   w=2 * design.wn, l=design.length))
    return sub


def and_cell_subckt(design: CellDesign, name: str = "and_cell") -> SubCircuit:
    """Paper Fig. 3 weighted-adder cell: AND gate (NAND2 + inverter)
    followed by the scaled output resistor.

    Ports ``(pwm, w, out, vdd)`` — ``pwm`` is the duty-coded input,
    ``w`` the weight-bit enable, ``out`` the shared summing node.
    Six transistors per cell.
    """
    sub = SubCircuit(name, ports=("pwm", "w", "out", "vdd"))
    # NAND2
    sub.add(Mosfet("MPA", "nand", "pwm", "vdd", model=design.pmos,
                   w=design.wp, l=design.length))
    sub.add(Mosfet("MPB", "nand", "w", "vdd", model=design.pmos,
                   w=design.wp, l=design.length))
    sub.add(Mosfet("MNA", "nand", "pwm", "mid", model=design.nmos,
                   w=2 * design.wn, l=design.length))
    sub.add(Mosfet("MNB", "mid", "w", "0", model=design.nmos,
                   w=2 * design.wn, l=design.length))
    # Output inverter driving Rout
    sub.add(Mosfet("MPI", "and", "nand", "vdd", model=design.pmos,
                   w=design.wp, l=design.length))
    sub.add(Mosfet("MNI", "and", "nand", "0", model=design.nmos,
                   w=design.wn, l=design.length))
    sub.add(Resistor("ROUT", "and", "out", design.rout_eff))
    return sub


def build_transcoding_inverter_bench(duty: float, *,
                                     design: Optional[CellDesign] = None,
                                     vdd: float = 2.5,
                                     frequency: float = 500e6,
                                     cout: float = 1e-12,
                                     input_amplitude: Optional[float] = None,
                                     rise_fraction: float = 0.02,
                                     rout: Optional[float] = None) -> Circuit:
    """Test bench for the Fig. 2 experiments (Figs. 4–7).

    ``rout=None`` keeps the design's resistor; pass a value (or a tiny
    one for the "no load" curve) to override.
    """
    design = design or CellDesign()
    if rout is not None:
        design = replace(design, rout=rout * design.scale)
    c = Circuit("transcoding_inverter_bench")
    c.add(Vdc("VDD", "vdd", "0", vdd))
    c.add(PwmVoltage("VIN", "in", "0", v_high=input_amplitude or vdd,
                     frequency=frequency, duty=duty,
                     rise_fraction=rise_fraction))
    c.instantiate(transcoding_inverter_subckt(design), "X1",
                  {"in": "in", "out": "out", "vdd": "vdd"})
    c.add(Capacitor("COUT", "out", "0", cout))
    return c


#: Resistance small enough to act as a wire for the "no load" curve of
#: Fig. 4, yet non-zero so the netlist stays well-conditioned.
NO_LOAD_ROUT = 1.0
