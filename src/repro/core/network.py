"""Multi-layer extension: networks of PWM perceptrons.

The paper presents a single perceptron and notes it is the building
block of deep networks.  This module composes layers the way the
hardware would: each hidden unit is a differential pair of weighted
adders, and its *analog differential output* is re-encoded into a duty
cycle ratiometrically (``0.5 + (v_pos - v_neg) / vdd``, clipped), so the
inter-layer signal remains supply-independent.

Training uses the random-hidden-layer (ELM-style) scheme: hidden weights
are drawn once at random on the hardware grid, and only the output
perceptron is trained with the Rosenblatt rule — a scheme that needs no
backpropagation through the analog stack and is therefore realisable
with the paper's Fig. 1 feedback loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..circuit.exceptions import AnalysisError
from .encoding import max_weight
from .perceptron import DifferentialPwmPerceptron
from .training import PerceptronTrainer, TrainingResult
from .weighted_adder import AdderConfig


class PwmHiddenLayer:
    """A bank of differential PWM units with ratiometric re-encoding."""

    def __init__(self, n_features: int, n_units: int, *,
                 config: Optional[AdderConfig] = None, gain: float = 2.0,
                 seed: Optional[int] = None):
        if n_units < 1:
            raise AnalysisError("hidden layer needs at least one unit")
        self.config = config or AdderConfig()
        self.gain = gain
        rng = np.random.default_rng(seed)
        limit = max_weight(self.config.n_bits)
        self.units: List[DifferentialPwmPerceptron] = []
        for _ in range(n_units):
            weights = rng.integers(-limit, limit + 1, n_features)
            bias = int(rng.integers(-limit, limit + 1))
            self.units.append(DifferentialPwmPerceptron(
                [int(w) for w in weights], bias=bias, config=self.config))

    def forward(self, duties: Sequence[float], *, engine: str = "behavioral",
                vdd: Optional[float] = None) -> "list[float]":
        """Hidden activations as duty cycles in [0, 1].

        The activation is the clipped, gained ratiometric differential:
        a hardware-friendly piecewise-linear sigmoid.
        """
        supply = self.config.vdd if vdd is None else vdd
        out = []
        for unit in self.units:
            decision = unit.decide(duties, engine=engine, vdd=supply)
            ratio = decision.v_out / supply  # differential, in [-1, 1]
            out.append(float(np.clip(0.5 + self.gain * ratio, 0.0, 1.0)))
        return out


class PwmMlp:
    """Two-layer PWM network: random hidden layer + trained output unit."""

    def __init__(self, n_features: int, n_hidden: int, *,
                 config: Optional[AdderConfig] = None, gain: float = 2.0,
                 seed: Optional[int] = None):
        self.hidden = PwmHiddenLayer(n_features, n_hidden, config=config,
                                     gain=gain, seed=seed)
        self.config = self.hidden.config
        self.n_hidden = n_hidden
        self.output: Optional[DifferentialPwmPerceptron] = None
        self._seed = seed

    def hidden_features(self, X: Sequence[Sequence[float]], *,
                        engine: str = "behavioral",
                        vdd: Optional[float] = None) -> np.ndarray:
        """Hidden activations for a whole sample matrix.

        The behavioural engine runs as one vectorised
        :class:`~repro.serve.engine.BatchInferenceEngine` pass —
        bit-identical to the per-sample loop, which the hardware
        engines still use.
        """
        if engine == "behavioral":
            from ..serve.engine import BatchInferenceEngine

            return BatchInferenceEngine().hidden_features(
                self.hidden, np.asarray(X, dtype=float), vdd=vdd)
        return np.asarray([
            self.hidden.forward(x, engine=engine, vdd=vdd) for x in X
        ])

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[int], *,
            epochs: int = 60, engine: str = "behavioral",
            learning_rate: float = 0.2,
            vdd: Optional[float] = None) -> TrainingResult:
        """Train the output unit on the hidden duty-cycle features."""
        H = self.hidden_features(X, engine=engine, vdd=vdd)
        trainer = PerceptronTrainer(self.n_hidden, config=self.config,
                                    learning_rate=learning_rate,
                                    engine=engine, seed=self._seed)
        result = trainer.fit(H, y, epochs=epochs, vdd=vdd)
        self.output = result.perceptron
        return result

    def predict(self, duties: Sequence[float], *, engine: str = "behavioral",
                vdd: Optional[float] = None) -> int:
        if self.output is None:
            raise AnalysisError("network is not trained; call fit() first")
        hidden = self.hidden.forward(duties, engine=engine, vdd=vdd)
        return self.output.predict(hidden, engine=engine, vdd=vdd)

    def predict_batch(self, X: Sequence[Sequence[float]], *,
                      vdd: Optional[float] = None) -> np.ndarray:
        """Behavioural classification of a whole ``(samples, features)``
        matrix in one vectorised pass (bit-identical to per-sample
        :meth:`predict`)."""
        from ..serve.engine import BatchInferenceEngine

        return BatchInferenceEngine().predict_mlp(
            self, np.asarray(X, dtype=float), vdd=vdd)

    def accuracy(self, X: Sequence[Sequence[float]], y: Sequence[int], *,
                 engine: str = "behavioral",
                 vdd: Optional[float] = None) -> float:
        if len(y) == 0:
            return 0.0
        if engine == "behavioral" and self.output is not None:
            from ..serve.engine import _plain_differential

            if _plain_differential(self.output.comparator):
                preds = self.predict_batch(X, vdd=vdd)
                return int(np.sum(preds == np.asarray(y, dtype=int))) / len(y)
        hits = sum(int(self.predict(x, engine=engine, vdd=vdd) == label)
                   for x, label in zip(X, y))
        return hits / len(y)

    @property
    def transistor_count(self) -> int:
        """Adder transistors across all units (comparators excluded)."""
        count = sum(u.transistor_count for u in self.hidden.units)
        if self.output is not None:
            count += self.output.transistor_count
        return count
