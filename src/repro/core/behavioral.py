"""Closed-form behavioural model of the weighted adder (paper Eq. 2).

The ideal adder output is

    Vout = Vdd * sum_i(DC_i * W_i) / (k * (2^n - 1))

because each weight bit contributes a conductance proportional to its
binary significance, disabled/low cells pull toward ground, and the
shared node averages.  An optional calibration polynomial (fit against
the transistor-level engine) corrects the systematic deviation caused by
the PMOS/NMOS on-resistance asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..circuit.exceptions import AnalysisError
from .encoding import check_duties, check_weights, max_weight


def eq2_output(duties: Sequence[float], weights: Sequence[int], *,
               n_bits: int, vdd: float) -> float:
    """Paper Eq. 2: the theoretical adder output voltage.

    ``k`` is the number of inputs and ``n`` the weight bit-width; the
    denominator normalises by the total cell conductance, so the output
    can never exceed ``Vdd``.
    """
    duties = check_duties(duties)
    weights = check_weights(weights, n_bits)
    if len(duties) != len(weights):
        raise AnalysisError(
            f"{len(duties)} duties vs {len(weights)} weights")
    k = len(duties)
    if k == 0:
        raise AnalysisError("adder needs at least one input")
    acc = sum(d * w for d, w in zip(duties, weights))
    return vdd * acc / (k * max_weight(n_bits))


@dataclass
class CalibrationModel:
    """Polynomial correction ``v_corrected = p(v_ideal / vdd) * vdd``.

    Fit with :func:`fit_calibration` against transistor-level results;
    the identity calibration has coefficients ``[0, 1]`` (constant,
    linear).
    """

    coefficients: "list[float]" = field(default_factory=lambda: [0.0, 1.0])

    def apply(self, v_ideal: float, vdd: float) -> float:
        if vdd <= 0:
            raise AnalysisError("vdd must be positive")
        x = v_ideal / vdd
        # Horner evaluation, coefficients in ascending order.
        acc = 0.0
        for c in reversed(self.coefficients):
            acc = acc * x + c
        return float(np.clip(acc, 0.0, 1.0)) * vdd


def fit_calibration(v_ideal: Sequence[float], v_measured: Sequence[float],
                    vdd: float, degree: int = 2) -> CalibrationModel:
    """Least-squares polynomial fit of measured vs ideal (both in volts)."""
    x = np.asarray(v_ideal, dtype=float) / vdd
    y = np.asarray(v_measured, dtype=float) / vdd
    if x.size != y.size or x.size < degree + 1:
        raise AnalysisError(
            f"need at least {degree + 1} calibration points, got {x.size}")
    coeffs_desc = np.polyfit(x, y, degree)
    return CalibrationModel(list(coeffs_desc[::-1]))


class BehavioralAdder:
    """Instant adder evaluation: Eq. 2 plus optional calibration."""

    def __init__(self, n_inputs: int, n_bits: int, *, vdd: float = 2.5,
                 calibration: Optional[CalibrationModel] = None):
        if n_inputs < 1:
            raise AnalysisError("adder needs at least one input")
        self.n_inputs = n_inputs
        self.n_bits = n_bits
        self.vdd = vdd
        self.calibration = calibration

    def output(self, duties: Sequence[float], weights: Sequence[int],
               *, vdd: Optional[float] = None) -> float:
        """Average output voltage for the operand set."""
        supply = self.vdd if vdd is None else vdd
        if len(duties) != self.n_inputs:
            raise AnalysisError(
                f"expected {self.n_inputs} duties, got {len(duties)}")
        v = eq2_output(duties, weights, n_bits=self.n_bits, vdd=supply)
        if self.calibration is not None:
            v = self.calibration.apply(v, supply)
        return v

    def output_ratio(self, duties: Sequence[float],
                     weights: Sequence[int]) -> float:
        """Supply-normalised output ``Vout/Vdd`` — the power-elastic
        readout quantity (paper Fig. 7)."""
        return self.output(duties, weights) / self.vdd

    def dot_product(self, duties: Sequence[float],
                    weights: Sequence[int]) -> float:
        """The abstract weighted sum ``sum(DC_i * W_i)`` the voltage
        encodes, recovered from the ideal model."""
        duties = check_duties(duties)
        weights = check_weights(weights, self.n_bits)
        return float(sum(d * w for d, w in zip(duties, weights)))
